// Correctness tests for the reader-writer lock subsystem (src/rw/):
// writer exclusion, reader-reader concurrency, no lost updates under
// mixed load, and protocol-switch correctness of the reactive rwlock,
// on both the native platform (real threads) and the simulated
// multiprocessor (deterministic high-contention interleavings).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/policy.hpp"
#include "platform/native_platform.hpp"
#include "rw/queue_rw_lock.hpp"
#include "rw/reactive_rw_lock.hpp"
#include "rw/rw_concepts.hpp"
#include "rw/simple_rw_lock.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"

namespace reactive {

/**
 * White-box driver for QueueRwLock::retract_or_commit_write (friend of
 * the lock): the helper resolves the drained-reader-group race, whose
 * decisive interleavings happen *inside* one try_start_write call and
 * are therefore unreachable from any sequence of complete public calls
 * on the deterministic simulator. The peer installs the exact
 * post-Dekker-failure state each branch is defined for and drives the
 * helper directly.
 */
struct QueueRwLockTestPeer {
    template <typename L>
    using Node = typename L::Node;

    /// State after try_start_write won the empty tail and stored
    /// next_writer_, but the Dekker check saw @p readers inside.
    template <typename L>
    static void install_dekker_failure(L& lock, Node<L>& w,
                                       std::uint32_t readers)
    {
        w.kind = L::Kind::kWriter;
        w.next.store(nullptr, std::memory_order_relaxed);
        w.state.store(0, std::memory_order_relaxed);
        lock.tail_.store(&w, std::memory_order_relaxed);
        lock.next_writer_.store(&w, std::memory_order_relaxed);
        lock.reader_count_.store(readers, std::memory_order_relaxed);
    }

    /// What end_read's last-leaving reader does when it claims the
    /// registered writer: empties next_writer_ and signals GO.
    template <typename L>
    static void claim_as_reader(L& lock, Node<L>& w)
    {
        lock.reader_count_.store(0, std::memory_order_relaxed);
        lock.next_writer_.store(nullptr, std::memory_order_relaxed);
        w.state.fetch_or(L::kGoBit, std::memory_order_release);
    }

    /// What a competing writer's tail exchange does: moves the tail to
    /// @p s with @p w as its (not yet linked) predecessor.
    template <typename L>
    static void enqueue_successor(L& lock, Node<L>& s)
    {
        s.kind = L::Kind::kWriter;
        s.next.store(nullptr, std::memory_order_relaxed);
        s.state.store(0, std::memory_order_relaxed);
        lock.tail_.store(&s, std::memory_order_relaxed);
        lock.reader_count_.store(0, std::memory_order_relaxed);
    }

    template <typename L>
    static auto retract_or_commit_write(L& lock, Node<L>& w)
    {
        return lock.retract_or_commit_write(w);
    }

    template <typename L>
    static Node<L>* tail(L& lock)
    {
        return lock.tail_.load(std::memory_order_relaxed);
    }

    template <typename L>
    static Node<L>* next_writer(L& lock)
    {
        return lock.next_writer_.load(std::memory_order_relaxed);
    }
};

namespace {

using sim::SimPlatform;

static_assert(RwLock<SimpleRwLock<NativePlatform>>);
static_assert(RwLock<QueueRwLock<NativePlatform>>);
static_assert(RwLock<ReactiveRwLock<NativePlatform>>);
static_assert(RwLock<SimpleRwLock<SimPlatform>>);
static_assert(RwLock<QueueRwLock<SimPlatform>>);
static_assert(RwLock<ReactiveRwLock<SimPlatform>>);

/// Test-only policy that demands a protocol change every @p k writer
/// acquisitions in either protocol: maximizes switch frequency so the
/// switch paths run constantly under load.
class MetronomePolicy {
  public:
    explicit MetronomePolicy(std::uint32_t k = 3) : k_(k) {}
    bool on_tts_acquire(bool) { return ++n_ % k_ == 0; }
    bool on_queue_acquire(bool) { return ++n_ % k_ == 0; }
    void on_switch() {}

  private:
    std::uint32_t k_;
    std::uint32_t n_ = 0;
};
static_assert(SwitchPolicy<MetronomePolicy>);

// ---- native-thread exclusion / lost-update tests ----------------------

/**
 * Real-thread torture: writers increment a plain counter (lost updates
 * detectable by the final count); readers verify they never observe a
 * torn/mid-write state and that no writer runs concurrently.
 */
template <typename RW>
void native_rw_torture(std::uint32_t writers, std::uint32_t readers,
                       std::uint32_t iters)
{
    RW lock;
    long a = 0, b = 0;  // writer-updated pair; invariant a == b
    std::atomic<bool> violation{false};
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < writers; ++t) {
        pool.emplace_back([&] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                typename RW::Node n;
                lock.lock_write(n);
                const long cur = a;
                a = cur + 1;
                b = cur + 1;  // a!=b here is visible to readers
                lock.unlock_write(n);
            }
        });
    }
    for (std::uint32_t t = 0; t < readers; ++t) {
        pool.emplace_back([&] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                typename RW::Node n;
                lock.lock_read(n);
                if (a != b)
                    violation.store(true);
                lock.unlock_read(n);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_FALSE(violation.load());
    EXPECT_EQ(a, static_cast<long>(writers) * iters);
    EXPECT_EQ(b, static_cast<long>(writers) * iters);
}

template <typename RW>
class NativeRwTest : public ::testing::Test {};

using NativeRwTypes =
    ::testing::Types<SimpleRwLock<NativePlatform>, QueueRwLock<NativePlatform>,
                     ReactiveRwLock<NativePlatform>,
                     ReactiveRwLock<NativePlatform, Competitive3Policy>,
                     ReactiveRwLock<NativePlatform, HysteresisPolicy>,
                     ReactiveRwLock<NativePlatform, MetronomePolicy>>;
TYPED_TEST_SUITE(NativeRwTest, NativeRwTypes);

TYPED_TEST(NativeRwTest, NoLostUpdatesUnderThreads)
{
    const std::uint32_t hw =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    native_rw_torture<TypeParam>(hw, hw, 300);
}

TYPED_TEST(NativeRwTest, SingleThreadedAllPaths)
{
    TypeParam lock;
    for (int i = 0; i < 1000; ++i) {
        typename TypeParam::Node r, w;
        lock.lock_read(r);
        lock.unlock_read(r);
        lock.lock_write(w);
        lock.unlock_write(w);
    }
    SUCCEED();
}

TYPED_TEST(NativeRwTest, ScopedGuards)
{
    TypeParam lock;
    int x = 0;
    {
        ScopedWriteLock guard(lock);
        x = 1;
    }
    {
        ScopedReadLock guard(lock);
        EXPECT_EQ(x, 1);
    }
    {
        ScopedWriteLock guard(lock);  // must be acquirable again
        x = 2;
    }
    EXPECT_EQ(x, 2);
}

// ---- simulated-machine property tests ---------------------------------

struct RwInvariants {
    int readers_inside = 0;
    int writers_inside = 0;
    int max_concurrent_readers = 0;
    int violations = 0;
    long writes = 0;
    long reads = 0;
};

/**
 * Mixed-load torture on the simulated machine: every acquisition checks
 * the exclusion invariants (a writer inside means exactly one writer
 * and zero readers; readers inside mean zero writers) with simulated
 * delays inside the critical/shared sections so the scheduler
 * interleaves aggressively.
 */
template <typename RW>
RwInvariants sim_rw_torture(std::shared_ptr<RW> lock, std::uint32_t procs,
                            std::uint32_t iters, std::uint32_t read_permille,
                            std::uint64_t seed = 1,
                            std::uint32_t read_hold = 20)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto inv = std::make_shared<RwInvariants>();
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                typename RW::Node n;
                if (sim::random_below(1000) < read_permille) {
                    lock->lock_read(n);
                    const int r = ++inv->readers_inside;
                    inv->max_concurrent_readers =
                        std::max(inv->max_concurrent_readers, r);
                    if (inv->writers_inside != 0)
                        ++inv->violations;
                    sim::delay(read_hold + sim::random_below(60));
                    if (inv->writers_inside != 0)
                        ++inv->violations;
                    --inv->readers_inside;
                    ++inv->reads;
                    lock->unlock_read(n);
                } else {
                    lock->lock_write(n);
                    if (++inv->writers_inside != 1 ||
                        inv->readers_inside != 0)
                        ++inv->violations;
                    sim::delay(20 + sim::random_below(60));
                    if (inv->writers_inside != 1 ||
                        inv->readers_inside != 0)
                        ++inv->violations;
                    --inv->writers_inside;
                    ++inv->writes;
                    lock->unlock_write(n);
                }
                sim::delay(sim::random_below(150));
            }
        });
    }
    m.run();
    return *inv;
}

template <typename RW>
class SimRwTest : public ::testing::Test {};

using SimRwTypes =
    ::testing::Types<SimpleRwLock<SimPlatform>, QueueRwLock<SimPlatform>,
                     ReactiveRwLock<SimPlatform>,
                     ReactiveRwLock<SimPlatform, Competitive3Policy>,
                     ReactiveRwLock<SimPlatform, HysteresisPolicy>,
                     ReactiveRwLock<SimPlatform, MetronomePolicy>>;
TYPED_TEST_SUITE(SimRwTest, SimRwTypes);

TYPED_TEST(SimRwTest, ExclusionUnderMixedHighContention)
{
    auto lock = std::make_shared<TypeParam>();
    const RwInvariants inv =
        sim_rw_torture(lock, 16, 40, /*read_permille=*/600);
    EXPECT_EQ(inv.violations, 0);
    EXPECT_EQ(inv.reads + inv.writes, 16 * 40);
}

TYPED_TEST(SimRwTest, ExclusionWriteHeavyManySeeds)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        auto lock = std::make_shared<TypeParam>();
        const RwInvariants inv =
            sim_rw_torture(lock, 8, 30, /*read_permille=*/200, seed);
        EXPECT_EQ(inv.violations, 0) << "seed " << seed;
        EXPECT_EQ(inv.reads + inv.writes, 8 * 30) << "seed " << seed;
    }
}

TYPED_TEST(SimRwTest, ExclusionReadMostlyManySeeds)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        auto lock = std::make_shared<TypeParam>();
        const RwInvariants inv =
            sim_rw_torture(lock, 12, 30, /*read_permille=*/950, seed);
        EXPECT_EQ(inv.violations, 0) << "seed " << seed;
        EXPECT_EQ(inv.reads + inv.writes, 12 * 30) << "seed " << seed;
    }
}

TYPED_TEST(SimRwTest, ReadersActuallyOverlap)
{
    // All-reader load with holds much longer than the acquisition cost
    // (which serializes at the lock's home directory): a reader-writer
    // lock must admit them concurrently (a mutex in disguise would show
    // max 1; the queue protocol's serial grant propagation costs ~a
    // hundred cycles per reader, hence the generous hold).
    auto lock = std::make_shared<TypeParam>();
    const RwInvariants inv = sim_rw_torture(lock, 12, 25,
                                            /*read_permille=*/1000,
                                            /*seed=*/1, /*read_hold=*/2000);
    EXPECT_EQ(inv.violations, 0);
    EXPECT_GT(inv.max_concurrent_readers, 4);
}

TYPED_TEST(SimRwTest, WriterNotStarvedByReaderStream)
{
    // A continuous reader stream with one writer: the writer must get
    // in (the simulation deadlock-detects if it never does) and the
    // invariants must hold throughout.
    auto lock = std::make_shared<TypeParam>();
    sim::Machine m(9, sim::CostModel::alewife(), 7);
    auto inv = std::make_shared<RwInvariants>();
    for (std::uint32_t p = 0; p < 8; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < 60; ++i) {
                typename TypeParam::Node n;
                lock->lock_read(n);
                ++inv->readers_inside;
                if (inv->writers_inside != 0)
                    ++inv->violations;
                sim::delay(40);
                --inv->readers_inside;
                lock->unlock_read(n);
                sim::delay(sim::random_below(40));
            }
        });
    }
    m.spawn(8, [=] {
        for (std::uint32_t i = 0; i < 10; ++i) {
            typename TypeParam::Node n;
            lock->lock_write(n);
            if (++inv->writers_inside != 1 || inv->readers_inside != 0)
                ++inv->violations;
            sim::delay(30);
            --inv->writers_inside;
            ++inv->writes;
            lock->unlock_write(n);
            sim::delay(sim::random_below(200));
        }
    });
    m.run();
    EXPECT_EQ(inv->violations, 0);
    EXPECT_EQ(inv->writes, 10);
}

// ---- queue rwlock specifics -------------------------------------------

// Writers are granted in FIFO arrival order (the fairness the queue
// protocol buys over the centralized one).
TEST(QueueRwFairnessTest, WritersFifoGrantOrder)
{
    using L = QueueRwLock<SimPlatform>;
    sim::Machine m(8);
    auto lock = std::make_shared<L>();
    auto arrival = std::make_shared<std::vector<int>>();
    auto grant = std::make_shared<std::vector<int>>();
    for (std::uint32_t p = 0; p < 8; ++p) {
        m.spawn(p, [=] {
            sim::delay(100 * (p + 1));  // staggered deterministic arrivals
            typename L::Node n;
            arrival->push_back(static_cast<int>(p));
            lock->lock_write(n);
            grant->push_back(static_cast<int>(p));
            sim::delay(500);  // hold long enough that all later procs queue
            lock->unlock_write(n);
        });
    }
    m.run();
    EXPECT_EQ(*grant, *arrival);
}

// A reader group arriving behind a waiting writer queues behind it and
// is then granted together once the writer leaves.
TEST(QueueRwFairnessTest, ReaderGroupBatchesBehindWriter)
{
    using L = QueueRwLock<SimPlatform>;
    sim::Machine m(6);
    auto lock = std::make_shared<L>();
    auto inv = std::make_shared<RwInvariants>();
    // p0: reader holding; p1: writer queues; p2-5: readers queue behind.
    m.spawn(0, [=] {
        typename L::Node n;
        lock->lock_read(n);
        sim::delay(800);
        lock->unlock_read(n);
    });
    m.spawn(1, [=] {
        sim::delay(100);
        typename L::Node n;
        lock->lock_write(n);
        if (++inv->writers_inside != 1 || inv->readers_inside != 0)
            ++inv->violations;
        sim::delay(300);
        --inv->writers_inside;
        lock->unlock_write(n);
    });
    for (std::uint32_t p = 2; p < 6; ++p) {
        m.spawn(p, [=] {
            sim::delay(200 + 10 * p);
            typename L::Node n;
            lock->lock_read(n);
            const int r = ++inv->readers_inside;
            inv->max_concurrent_readers =
                std::max(inv->max_concurrent_readers, r);
            if (inv->writers_inside != 0)
                ++inv->violations;
            sim::delay(2500);  // long hold: outlasts the serial grant
                               // propagation down the reader chain
            --inv->readers_inside;
            lock->unlock_read(n);
        });
    }
    m.run();
    EXPECT_EQ(inv->violations, 0);
    // The four trailing readers overlap once the writer is done.
    EXPECT_EQ(inv->max_concurrent_readers, 4);
}

// ---- queue rwlock try paths (std try_lock facade backing) -------------

// A reader group can drain its queue presence while a member is still
// inside: A wins the empty tail, B joins A, B (the tail) leaves —
// clearing the tail with A's read-side critical section still open.
// try_start_write must fail fast on that state, and the lock must be
// cleanly acquirable once A leaves.
TEST(QueueRwTryTest, TryWriteFailsFastWithDrainedReaderGroupInside)
{
    using L = QueueRwLock<NativePlatform>;
    L lock;
    typename L::Node a, b;
    EXPECT_EQ(lock.start_read(a), L::Outcome::kAcquiredEmpty);
    EXPECT_EQ(lock.start_read(b), L::Outcome::kAcquiredWaited);  // joins A
    lock.end_read(b);  // tail cleared; A still inside
    EXPECT_EQ(lock.reader_count(), 1u);
    typename L::Node w;
    EXPECT_EQ(lock.try_start_write(w), L::Outcome::kInvalid);
    lock.end_read(a);
    EXPECT_EQ(lock.try_start_write(w), L::Outcome::kAcquiredEmpty);
    lock.end_write(w);
    // Fully released: a reader can win the empty tail again.
    EXPECT_EQ(lock.start_read(a), L::Outcome::kAcquiredEmpty);
    lock.end_read(a);
}

// Latency canary: a writer fiber hammers try_start_write across the
// drained-group dance (the state where the tail is empty but a reader
// hold is open for kReadHold cycles) at many seeds. Every try must
// complete in a bounded handful of memory operations; any variant of
// try_start_write that can reach the Dekker handshake and then *wait*
// (instead of retracting) pays ~kReadHold the moment the handshake
// sees the reader and fails the bound.
TEST(QueueRwTryTest, TryWriteNeverWaitsOutReaderCriticalSections)
{
    using L = QueueRwLock<SimPlatform>;
    constexpr std::uint64_t kReadHold = 20000;
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        sim::Machine m(2, sim::CostModel::alewife(), seed);
        auto lock = std::make_shared<L>();
        auto max_try = std::make_shared<std::uint64_t>(0);
        auto tries = std::make_shared<long>(0);
        auto wins = std::make_shared<long>(0);
        auto done = std::make_shared<bool>(false);
        m.spawn(0, [=] {
            // The drained-group dance, from one fiber: all three steps
            // are non-blocking, so it needs no partner cooperation.
            for (std::uint32_t i = 0; i < 15; ++i) {
                typename L::Node a, b;
                (void)lock->start_read(a);
                (void)lock->start_read(b);  // joins A (A is active)
                lock->end_read(b);          // clears the tail
                sim::delay(kReadHold);      // A's critical section
                lock->end_read(a);
                sim::delay(sim::random_below(300));
            }
            *done = true;
        });
        m.spawn(1, [=] {
            while (!*done) {
                typename L::Node w;
                const std::uint64_t t0 = SimPlatform::now();
                const auto out = lock->try_start_write(w);
                const std::uint64_t dt = SimPlatform::now() - t0;
                *max_try = std::max(*max_try, dt);
                ++*tries;
                if (out != L::Outcome::kInvalid) {
                    ++*wins;
                    lock->end_write(w);
                }
                sim::delay(sim::random_below(200));
            }
        });
        m.run();
        EXPECT_GT(*tries, 0) << "seed " << seed;
        // A try is a handful of memory operations; waiting out a
        // reader hold would cost ~kReadHold.
        EXPECT_LT(*max_try, kReadHold / 4) << "seed " << seed;
    }
}

// White-box branch coverage of retract_or_commit_write (the decisive
// interleavings happen inside one try_start_write call and cannot be
// reproduced by complete public calls; see QueueRwLockTestPeer).

// Branch 1: the Dekker check saw a drained reader group still inside
// and nothing else intervened — the node fully retracts (tail and
// next_writer_ restored) and the try fails clean.
TEST(QueueRwTryTest, RetractUnwindsTailAndWriterRegistration)
{
    using L = QueueRwLock<NativePlatform>;
    using Peer = QueueRwLockTestPeer;
    L lock;
    typename L::Node w;
    Peer::install_dekker_failure(lock, w, /*readers=*/1);
    EXPECT_EQ(Peer::retract_or_commit_write(lock, w), L::Outcome::kInvalid);
    EXPECT_EQ(Peer::tail(lock), nullptr);
    EXPECT_EQ(Peer::next_writer(lock), nullptr);
    // The retracted node was not granted and is clean for reuse.
    EXPECT_EQ(w.state.load(), 0u);
}

// Branch 2: the last leaving reader exchanged the node out of
// next_writer_ before the retraction — the GO signal is in flight, so
// the attempt commits and owns the lock.
TEST(QueueRwTryTest, RetractCommitsWhenReaderAlreadyClaimedTheNode)
{
    using L = QueueRwLock<NativePlatform>;
    using Peer = QueueRwLockTestPeer;
    L lock;
    typename L::Node w;
    Peer::install_dekker_failure(lock, w, /*readers=*/1);
    Peer::claim_as_reader(lock, w);
    EXPECT_EQ(Peer::retract_or_commit_write(lock, w),
              L::Outcome::kAcquiredWaited);
    lock.end_write(w);
    EXPECT_EQ(Peer::tail(lock), nullptr);
    typename L::Node n;  // fully released: publicly acquirable again
    EXPECT_EQ(lock.try_start_write(n), L::Outcome::kAcquiredEmpty);
    lock.end_write(n);
}

// Branch 3: a successor enqueued behind the node, so the tail cannot be
// retracted — the attempt re-registers, takes the handoff, and the
// normal release chain still reaches the successor.
TEST(QueueRwTryTest, RetractCommitsWhenSuccessorMakesItImpossible)
{
    using L = QueueRwLock<NativePlatform>;
    using Peer = QueueRwLockTestPeer;
    L lock;
    typename L::Node w, s;
    Peer::install_dekker_failure(lock, w, /*readers=*/1);
    Peer::enqueue_successor(lock, s);  // reader group drained meanwhile
    EXPECT_EQ(Peer::retract_or_commit_write(lock, w),
              L::Outcome::kAcquiredWaited);
    EXPECT_NE(w.state.load() & L::kGoBit, 0u);
    w.next.store(&s);  // the successor finishes linking in
    lock.end_write(w);
    EXPECT_NE(s.state.load() & L::kGoBit, 0u);  // handoff reached it
    lock.end_write(s);
    EXPECT_EQ(Peer::tail(lock), nullptr);
}

// Native torture over every try/blocking combination: a try-writer and
// a blocking writer racing reader pairs that continually form and
// partially drain groups. Exercises retraction (tail CAS back), the
// commit-on-successor path, and reuse of the retracted node, under
// TSan in CI.
TEST(QueueRwTryTest, TryWriteStormKeepsExclusionOnNativeThreads)
{
    using L = QueueRwLock<NativePlatform>;
    L lock;
    long a = 0, b = 0;  // writer-updated pair; invariant a == b
    std::atomic<bool> violation{false};
    std::atomic<long> try_wins{0};
    std::atomic<bool> stop{false};
    constexpr std::uint32_t kIters = 2000;
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < 2; ++t) {
        pool.emplace_back([&] {
            // Single non-nested reads: a reader must never hold one
            // read lock while queuing for another — behind the
            // blocking writer that nesting deadlocks (the writer
            // waits for the held read to drain, the nested read waits
            // for the writer). Drained-group states still form
            // whenever the two readers overlap and the later-queued
            // one leaves first.
            for (std::uint32_t i = 0; i < kIters; ++i) {
                typename L::Node r;
                lock.start_read(r);
                if (a != b)
                    violation.store(true);
                lock.end_read(r);
            }
        });
    }
    pool.emplace_back([&] {  // blocking writer
        for (std::uint32_t i = 0; i < kIters; ++i) {
            typename L::Node n;
            lock.lock_write(n);
            const long cur = a;
            a = cur + 1;
            b = cur + 1;
            lock.unlock_write(n);
        }
    });
    pool.emplace_back([&] {  // try-writer
        while (!stop.load(std::memory_order_relaxed)) {
            typename L::Node n;
            if (lock.try_start_write(n) != L::Outcome::kInvalid) {
                const long cur = a;
                a = cur + 1;
                b = cur + 1;
                try_wins.fetch_add(1, std::memory_order_relaxed);
                lock.end_write(n);
            }
        }
    });
    for (std::size_t t = 0; t + 1 < pool.size(); ++t)
        pool[t].join();
    stop.store(true);
    pool.back().join();
    EXPECT_FALSE(violation.load());
    EXPECT_EQ(a, static_cast<long>(kIters) + try_wins.load());
    EXPECT_EQ(b, a);
}

// ---- reactive rwlock: protocol-switch correctness ---------------------

TEST(ReactiveRwSwitchTest, ConvergesToQueueUnderWriteContention)
{
    using L = ReactiveRwLock<SimPlatform, AlwaysSwitchPolicy>;
    // A huge empty-streak threshold pins the lock in queue mode once it
    // gets there (otherwise the last fiber finishing alone could
    // legitimately streak the protocol back to simple).
    auto lock = std::make_shared<L>(ReactiveRwLockParams{},
                                    AlwaysSwitchPolicy(1u << 30));
    EXPECT_EQ(lock->mode(), L::Mode::kSimple);
    const RwInvariants inv =
        sim_rw_torture(lock, 16, 40, /*read_permille=*/0);
    EXPECT_EQ(inv.violations, 0);
    EXPECT_GT(lock->protocol_changes(), 0u);
    EXPECT_EQ(lock->mode(), L::Mode::kQueue);
}

TEST(ReactiveRwSwitchTest, ConvergesBackToSimpleWhenUncontended)
{
    using L = ReactiveRwLock<SimPlatform, AlwaysSwitchPolicy>;
    auto lock = std::make_shared<L>();
    // Phase 1: heavy write contention drives it into queue mode. (The
    // run may legitimately end back in simple mode if the last fiber
    // finishes alone and streaks the protocol back; all we need is
    // that a switch happened.)
    (void)sim_rw_torture(lock, 16, 30, /*read_permille=*/0);
    ASSERT_GE(lock->protocol_changes(), 1u);
    // Phase 2: a lone writer sees an empty queue every time; the
    // empty-streak signal must bring the protocol back to simple.
    (void)sim_rw_torture(lock, 1, 30, /*read_permille=*/0, /*seed=*/2);
    EXPECT_EQ(lock->mode(), L::Mode::kSimple);
}

TEST(ReactiveRwSwitchTest, ForcedSwitchStormKeepsInvariants)
{
    // MetronomePolicy forces a protocol change every 2nd writer
    // acquisition while readers stream through both protocols: every
    // switch happens with readers arriving, spinning, and retrying
    // through the dispatcher. Exclusion must survive all of it.
    using L = ReactiveRwLock<SimPlatform, MetronomePolicy>;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        auto lock = std::make_shared<L>(ReactiveRwLockParams{},
                                        MetronomePolicy(2));
        const RwInvariants inv =
            sim_rw_torture(lock, 12, 40, /*read_permille=*/700, seed);
        EXPECT_EQ(inv.violations, 0) << "seed " << seed;
        EXPECT_EQ(inv.reads + inv.writes, 12 * 40) << "seed " << seed;
        EXPECT_GT(lock->protocol_changes(), 4u) << "seed " << seed;
    }
}

TEST(ReactiveRwSwitchTest, ForcedSwitchStormOnNativeThreads)
{
    using L = ReactiveRwLock<NativePlatform, MetronomePolicy>;
    // Optimistic fast-path wins bypass the policy (by design); disable
    // it so switches happen on a deterministic schedule.
    ReactiveRwLockParams params;
    params.optimistic_simple = false;
    L lock(params, MetronomePolicy(2));
    const std::uint32_t hw =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    long a = 0, b = 0;
    std::atomic<bool> violation{false};
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < hw; ++t) {
        pool.emplace_back([&] {
            for (std::uint32_t i = 0; i < 400; ++i) {
                typename L::Node n;
                if (i % 3 == 0) {
                    lock.lock_write(n);
                    const long cur = a;
                    a = cur + 1;
                    b = cur + 1;
                    lock.unlock_write(n);
                } else {
                    lock.lock_read(n);
                    if (a != b)
                        violation.store(true);
                    lock.unlock_read(n);
                }
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_FALSE(violation.load());
    EXPECT_GT(lock.protocol_changes(), 0u);
    const long writes_expected = static_cast<long>(hw) * ((400 + 2) / 3);
    EXPECT_EQ(a, writes_expected);
}

TEST(ReactiveRwSwitchTest, ReadersActiveDuringSwitchRetryCorrectly)
{
    // Deterministic forced-switch scenario: a writer whose release
    // performs a simple->queue change while reader fibers are mid-spin
    // on the simple protocol, then the reverse change with readers
    // queued on the queue protocol. Every reader must complete exactly
    // once and exclusion must hold.
    using L = ReactiveRwLock<SimPlatform, MetronomePolicy>;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        // Optimistic fast-path wins bypass the policy; disable it so
        // *every* writer release performs a protocol change.
        ReactiveRwLockParams params;
        params.optimistic_simple = false;
        auto lock = std::make_shared<L>(params, MetronomePolicy(1));
        sim::Machine m(10, sim::CostModel::alewife(), seed);
        auto inv = std::make_shared<RwInvariants>();
        for (std::uint32_t p = 0; p < 8; ++p) {
            m.spawn(p, [=] {
                for (std::uint32_t i = 0; i < 30; ++i) {
                    typename L::Node n;
                    lock->lock_read(n);
                    const int r = ++inv->readers_inside;
                    inv->max_concurrent_readers =
                        std::max(inv->max_concurrent_readers, r);
                    if (inv->writers_inside != 0)
                        ++inv->violations;
                    sim::delay(10 + sim::random_below(30));
                    --inv->readers_inside;
                    ++inv->reads;
                    lock->unlock_read(n);
                    sim::delay(sim::random_below(60));
                }
            });
        }
        for (std::uint32_t p = 8; p < 10; ++p) {
            m.spawn(p, [=] {
                for (std::uint32_t i = 0; i < 25; ++i) {
                    typename L::Node n;
                    lock->lock_write(n);
                    if (++inv->writers_inside != 1 ||
                        inv->readers_inside != 0)
                        ++inv->violations;
                    sim::delay(10 + sim::random_below(30));
                    --inv->writers_inside;
                    ++inv->writes;
                    lock->unlock_write(n);
                    sim::delay(sim::random_below(100));
                }
            });
        }
        m.run();
        EXPECT_EQ(inv->violations, 0) << "seed " << seed;
        EXPECT_EQ(inv->reads, 8 * 30) << "seed " << seed;
        EXPECT_EQ(inv->writes, 2 * 25) << "seed " << seed;
        // Every writer release switched: the storm really happened.
        EXPECT_EQ(lock->protocol_changes(), 2u * 25u) << "seed " << seed;
    }
}

}  // namespace
}  // namespace reactive
