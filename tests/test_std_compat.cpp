// std-compatibility conformance for the reactive facades: a
// static_assert-based check that ReactiveMutex satisfies the standard
// Lockable shape (usable with std::lock_guard / std::unique_lock /
// std::scoped_lock), ReactiveSharedMutex the shared_mutex shape
// (std::shared_lock), and ReactiveBarrier the arrive_and_wait() entry
// point — plus native-thread smoke tests that drive each facade
// through the std wrappers under real contention. ("The interface to
// the application program remains constant", thesis Section 1.1 — here
// the interface is the C++ standard library's.)

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "barrier/dissemination_barrier.hpp"
#include "barrier/reactive_barrier.hpp"
#include "core/cost_model.hpp"
#include "core/protocol_set.hpp"
#include "core/reactive_mutex.hpp"
#include "platform/native_platform.hpp"
#include "rw/reactive_shared_mutex.hpp"

namespace reactive {
namespace {

// ---- conformance (compile-time) ---------------------------------------

// The standard's named requirements, spelled as concepts so the
// conformance check is a static_assert, not a convention.
template <typename M>
concept StdBasicLockable = requires(M m) {
    { m.lock() } -> std::same_as<void>;
    { m.unlock() } -> std::same_as<void>;
};

template <typename M>
concept StdLockable = StdBasicLockable<M> && requires(M m) {
    { m.try_lock() } -> std::same_as<bool>;
};

template <typename M>
concept StdSharedLockable = StdLockable<M> && requires(M m) {
    { m.lock_shared() } -> std::same_as<void>;
    { m.try_lock_shared() } -> std::same_as<bool>;
    { m.unlock_shared() } -> std::same_as<void>;
};

/// Three-protocol ladder policy with a matching default constructor.
struct Ladder3 : LadderCompetitivePolicy {
    Ladder3()
        : LadderCompetitivePolicy({/*protocols=*/3, /*residual_up=*/150,
                                   /*residual_down=*/15,
                                   /*switch_round_trip=*/8800})
    {
    }
};

using Mutex = ReactiveMutex<NativePlatform>;
using CalMutex = ReactiveMutex<NativePlatform, CalibratedCompetitive3Policy>;
using SharedMutex = ReactiveSharedMutex<NativePlatform>;
using Barrier2 = ReactiveBarrier<NativePlatform>;
using Barrier3 =
    ReactiveBarrier<NativePlatform, Ladder3,
                    ProtocolSet<CentralBarrier<NativePlatform>,
                                CombiningTreeBarrier<NativePlatform>,
                                DisseminationBarrier<NativePlatform>>>;

static_assert(StdLockable<Mutex>);
static_assert(StdLockable<CalMutex>);
static_assert(StdSharedLockable<SharedMutex>);

// The std wrappers themselves must accept the facades.
static_assert(std::is_constructible_v<std::lock_guard<Mutex>, Mutex&>);
static_assert(std::is_constructible_v<std::unique_lock<Mutex>, Mutex&>);
static_assert(
    std::is_constructible_v<std::shared_lock<SharedMutex>, SharedMutex&>);
static_assert(std::is_constructible_v<std::scoped_lock<Mutex, Mutex>,
                                      Mutex&, Mutex&>);

// arrive_and_wait, std::barrier's vocabulary.
static_assert(requires(Barrier2 b) {
    { b.arrive_and_wait() } -> std::same_as<void>;
});
static_assert(requires(Barrier3 b) {
    { b.arrive_and_wait() } -> std::same_as<void>;
});

// ---- runtime smoke (native threads through the std wrappers) ----------

TEST(StdCompatTest, LockGuardExcludesUnderContention)
{
    Mutex mu;
    long counter = 0;
    const int kThreads = 4, kIters = 20000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                std::lock_guard<Mutex> g(mu);
                ++counter;
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(StdCompatTest, UniqueLockTryLockAndDeferredWork)
{
    Mutex mu;
    {
        std::unique_lock<Mutex> l(mu);
        ASSERT_TRUE(l.owns_lock());
        // A held mutex must fail try_lock from another thread.
        std::thread([&] {
            std::unique_lock<Mutex> t(mu, std::try_to_lock);
            EXPECT_FALSE(t.owns_lock());
        }).join();
    }
    std::unique_lock<Mutex> l(mu, std::defer_lock);
    EXPECT_TRUE(l.try_lock());
    l.unlock();
}

TEST(StdCompatTest, ScopedLockAcquiresTwoReactiveMutexes)
{
    Mutex a, b;
    std::scoped_lock g(a, b);  // std::lock's deadlock-avoiding protocol
    std::thread([&] {
        std::unique_lock<Mutex> t(a, std::try_to_lock);
        EXPECT_FALSE(t.owns_lock());
    }).join();
}

TEST(StdCompatTest, SharedLockAdmitsReadersExcludesWriter)
{
    SharedMutex mu;
    long value = 0;
    std::atomic<int> reader_errors{0};
    const int kWriters = 2, kReaders = 2, kIters = 4000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kWriters; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                std::lock_guard<SharedMutex> g(mu);
                ++value;  // exclusive
            }
        });
    }
    for (int t = 0; t < kReaders; ++t) {
        pool.emplace_back([&] {
            long last = 0;
            for (int i = 0; i < kIters; ++i) {
                std::shared_lock<SharedMutex> g(mu);
                if (value < last)
                    reader_errors.fetch_add(1);  // monotone under writers
                last = value;
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(value, static_cast<long>(kWriters) * kIters);
    EXPECT_EQ(reader_errors.load(), 0);
}

TEST(StdCompatTest, TryLockSharedRespectsWriter)
{
    SharedMutex mu;
    EXPECT_TRUE(mu.try_lock_shared());
    EXPECT_TRUE(mu.try_lock_shared());  // readers share
    mu.unlock_shared();
    mu.unlock_shared();
    mu.lock();
    std::thread([&] { EXPECT_FALSE(mu.try_lock_shared()); }).join();
    mu.unlock();
}

/// Binary policy pinning the rwlock in the queue protocol: the first
/// slow-path write switches simple -> queue and nothing switches back.
struct PinQueuePolicy {
    bool on_tts_acquire(bool) { return true; }
    bool on_queue_acquire(bool) { return false; }
    void on_switch() {}
};

TEST(StdCompatTest, TryLockStaysUsableInQueueMode)
{
    // Regression: try_lock()/try_lock_shared() must be able to win a
    // momentarily free lock in *either* protocol — a queue-mode lock
    // whose tries always fail would livelock std::lock /
    // std::scoped_lock over several reactive mutexes for as long as
    // the queue protocol persists.
    using QueueMutex = ReactiveSharedMutex<NativePlatform, PinQueuePolicy>;
    ReactiveRwLockParams rp;
    rp.optimistic_simple = false;  // route writes through the policy
    QueueMutex a(rp), b(rp);
    for (QueueMutex* m : {&a, &b}) {
        m->lock();
        m->unlock();  // the release performs the simple -> queue switch
        ASSERT_EQ(m->rw_lock().mode(), QueueMutex::RwLock::Mode::kQueue);
    }
    EXPECT_TRUE(a.try_lock());
    std::thread([&] { EXPECT_FALSE(a.try_lock_shared()); }).join();
    a.unlock();
    EXPECT_TRUE(a.try_lock_shared());
    a.unlock_shared();
    {
        std::scoped_lock g(a, b);  // std::lock's try-based protocol
    }
    EXPECT_EQ(a.rw_lock().mode(), QueueMutex::RwLock::Mode::kQueue);
}

TEST(StdCompatTest, ArriveAndWaitSurvivesBarrierAddressReuse)
{
    // Regression: the facade's thread-local Nodes are keyed by a
    // unique per-barrier token, not the address. A thread that
    // participated in a destroyed barrier must get a *fresh* node for
    // a successor barrier constructed at the same storage (barrier
    // Nodes are bound to their barrier for life — a stale node's sense
    // would deadlock the successor's first episode or let it pass
    // unordered).
    std::optional<Barrier2> bar;
    for (int generation = 0; generation < 4; ++generation) {
        bar.emplace(2);  // same std::optional storage every generation
        // The main thread is the reused participant; the helper is
        // fresh each generation (fresh thread, fresh slot table).
        std::thread helper([&] {
            for (int e = 0; e < 50; ++e)
                bar->arrive_and_wait();
        });
        for (int e = 0; e < 50; ++e)
            bar->arrive_and_wait();
        helper.join();
        bar.reset();
    }
    SUCCEED();
}

TEST(StdCompatTest, ArriveAndWaitRunsEpisodesOnBothSets)
{
    // One participant == one thread (the facade's thread-local node);
    // episode ordering is the regular torture property.
    for (const int which : {2, 3}) {
        const std::uint32_t threads =
            std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
        std::vector<std::atomic<std::uint32_t>> progress(threads);
        for (auto& a : progress)
            a.store(0);
        std::atomic<int> violations{0};
        Barrier2 b2(threads);
        Barrier3 b3(threads);
        std::vector<std::thread> pool;
        for (std::uint32_t t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                for (std::uint32_t e = 0; e < 200; ++e) {
                    progress[t].store(e + 1, std::memory_order_relaxed);
                    if (which == 2)
                        b2.arrive_and_wait();
                    else
                        b3.arrive_and_wait();
                    for (std::uint32_t j = 0; j < threads; ++j) {
                        const std::uint32_t seen =
                            progress[j].load(std::memory_order_relaxed);
                        if (seen < e + 1 || seen > e + 2)
                            violations.fetch_add(1);
                    }
                }
            });
        }
        for (auto& th : pool)
            th.join();
        EXPECT_EQ(violations.load(), 0) << "set size " << which;
    }
}

}  // namespace
}  // namespace reactive
