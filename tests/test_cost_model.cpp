// Tests for the runtime cost-calibration layer (src/core/cost_model.hpp)
// and its threading through the reactive primitives:
//
//  - CostEstimator: deterministic EWMA convergence (monotone approach,
//    exact settle on constant input), fast start from wrong seeds,
//    first-switch-sample replacement, derived residuals.
//  - CalibratedCompetitive3Policy: converges to the correct protocol
//    from 10x-wrong seeds in BOTH directions on the simulated machine;
//    re-probe cadence is bounded (exponential backoff, reset on real
//    switches).
//  - CalibratedHysteresisPolicy: streak thresholds derived from the
//    estimator, clamped.
//  - Zero-traffic claim: enabling calibration adds no simulated memory
//    operations on the uncontended fast path (the acceptance check).
//  - Reduced crossover envelope: calibrated-with-wrong-seeds within 10%
//    of the best static protocol at representative (P, regime) points.
//  - Native storms over lock/rwlock/barrier with calibrating policies
//    (run under TSan in CI).

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "apps/workloads.hpp"
#include "barrier/reactive_barrier.hpp"
#include "core/cost_model.hpp"
#include "core/reactive_mutex.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/tts_lock.hpp"
#include "platform/native_platform.hpp"
#include "rw/reactive_rw_lock.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"

namespace reactive {
namespace {

using sim::SimPlatform;

// ---- CostEstimator ----------------------------------------------------

TEST(CostEstimatorTest, DefaultsReproduceThesisConstants)
{
    CostEstimator est;
    EXPECT_EQ(est.residual_tts_contended(), 150u);
    EXPECT_EQ(est.residual_queue_empty(), 15u);
    EXPECT_EQ(est.switch_round_trip(), 8800u);
}

TEST(CostEstimatorTest, MonotoneConvergenceToConstantInput)
{
    CostEstimator est;
    std::uint64_t prev = est.tts_uncontended();
    for (int i = 0; i < 200; ++i) {
        est.sample_tts(/*contended=*/false, 500);
        const std::uint64_t v = est.tts_uncontended();
        EXPECT_GE(v, prev) << "EWMA must approach the sample monotonically";
        EXPECT_LE(v, 500u) << "EWMA must never overshoot the sample";
        prev = v;
    }
    EXPECT_EQ(prev, 500u) << "constant input must settle exactly";

    // And downward, from a too-high seed.
    CostEstimator high(CostEstimator::Params{}.scaled(10, 1));
    prev = high.queue_empty();
    EXPECT_EQ(prev, 650u);
    for (int i = 0; i < 200; ++i) {
        high.sample_queue(/*empty=*/true, 65);
        const std::uint64_t v = high.queue_empty();
        EXPECT_LE(v, prev);
        EXPECT_GE(v, 65u);
        prev = v;
    }
    EXPECT_EQ(prev, 65u);
}

TEST(CostEstimatorTest, FastStartCorrectsWrongSeedQuickly)
{
    // A 10x-wrong seed must lose most of its weight within a handful of
    // samples (gain 1/2 for the first 4), not linger for dozens.
    CostEstimator est(CostEstimator::Params{}.scaled(10, 1));
    EXPECT_EQ(est.tts_contended(), 2500u);
    for (int i = 0; i < 4; ++i)
        est.sample_tts(/*contended=*/true, 250);
    EXPECT_LE(est.tts_contended(), 250u + (2500u - 250u) / 16)
        << "after 4 fast-start samples at gain 1/2, seed weight <= 1/16";
}

TEST(CostEstimatorTest, FirstSwitchSampleReplacesSeed)
{
    CostEstimator est(CostEstimator::Params{}.scaled(10, 1));
    EXPECT_EQ(est.switch_one_way(), 1000u);
    est.sample_switch(80);
    EXPECT_EQ(est.switch_one_way(), 80u)
        << "switches are rare; the first measurement supersedes the seed";
    est.sample_switch(80);
    EXPECT_EQ(est.switch_one_way(), 80u);
}

TEST(CostEstimatorTest, ResidualsTrackClassEstimates)
{
    CostEstimator est;
    // Cheapen the queue's waited class: the TTS residual grows.
    for (int i = 0; i < 100; ++i)
        est.sample_queue(/*empty=*/false, 50);
    EXPECT_EQ(est.residual_tts_contended(), 200u);
    // Cross the estimates: the residual floors at 1, never underflows.
    for (int i = 0; i < 200; ++i)
        est.sample_tts(/*contended=*/true, 10);
    EXPECT_EQ(est.residual_tts_contended(), 1u);
}

// ---- CalibratedHysteresisPolicy ---------------------------------------

// ---- socket-split latency classes (NUMA two-level estimator) ----------

TEST(SocketSplitTest, FlatSequenceIsBitIdenticalToPlainEwma)
{
    // With no cross-socket samples the split stat must be the plain
    // EWMA — value for value, count for count — which is what keeps
    // every flat-topology benchmark number byte-identical.
    EwmaStat plain{100};
    SocketSplitStat split{100};
    std::uint64_t sample = 37;
    for (int i = 0; i < 64; ++i) {
        sample = sample * 13 % 997;
        plain.update(sample, 3);
        split.update(sample, 3, /*cross=*/false);
        ASSERT_EQ(split.value(), plain.value) << "sample " << i;
    }
    EXPECT_EQ(split.count(), plain.count);
    EXPECT_EQ(split.cross_frac, 0u);
}

TEST(SocketSplitTest, SeparatesPopulationsAndBlendsByFraction)
{
    // Alternating 100-cycle local and 400-cycle cross handoffs: one
    // EWMA would sit uselessly between the populations while claiming
    // to track both; the split tracks each and reports the mix.
    SocketSplitStat s{100};
    for (int i = 0; i < 200; ++i)
        s.update(i % 2 == 0 ? 100 : 400, 3, /*cross=*/i % 2 != 0);
    EXPECT_NEAR(static_cast<double>(s.local.value), 100.0, 10.0);
    EXPECT_NEAR(static_cast<double>(s.remote.value), 400.0, 10.0);
    EXPECT_NEAR(static_cast<double>(s.cross_frac), 128.0, 16.0);
    EXPECT_GT(s.value(), 200u);
    EXPECT_LT(s.value(), 300u);

    // An all-cross phase shifts the blend toward the remote population
    // without disturbing the local estimate.
    for (int i = 0; i < 64; ++i)
        s.update(400, 3, /*cross=*/true);
    EXPECT_GT(s.value(), 350u);
    EXPECT_NEAR(static_cast<double>(s.local.value), 100.0, 10.0);
}

TEST(SocketSplitTest, EstimatorResidualsUseTheBlend)
{
    // Residuals respond to the traffic mix: the same contended-TTS
    // samples read as a larger residual when the queue handoffs they
    // are compared against are mostly socket-local.
    CostEstimator est;
    for (int i = 0; i < 64; ++i) {
        est.sample_tts(true, 500, /*cross=*/i % 2 != 0);
        est.sample_queue(false, i % 2 != 0 ? 400 : 150, i % 2 != 0);
    }
    const std::uint64_t mixed = est.residual_tts_contended();
    // queue_waited blends 150/400 -> ~275; residual ~= 500 - 275.
    EXPECT_GT(mixed, 150u);
    EXPECT_LT(mixed, 350u);
    EXPECT_GT(est.split_queue_waited().remote.count, 0u);
    EXPECT_GT(est.split_queue_waited().local.count, 0u);
}

TEST(SocketSplitTest, LadderRungsSplitBySocketBit)
{
    CalibratedLadderPolicy::Params pp;
    pp.protocols = 3;
    pp.probe_period = 0;  // no scheduled probes: pure measurement
    CalibratedLadderPolicy pol(pp);
    // Rung 0 samples alternate 100 local / 300 cross.
    for (int i = 0; i < 64; ++i)
        (void)pol.next_protocol(ProtocolSignal{0, 0}, i % 2 == 0 ? 100 : 300,
                                i % 2 != 0);
    EXPECT_GT(pol.latency(0), 150u);
    EXPECT_LT(pol.latency(0), 250u);
}

TEST(SocketSplitTest, ReactiveLockFeedsBothPopulationsOnSocketedMachine)
{
    // End to end: a hot loop on a two-socket machine must populate
    // both the local and the remote class of the writer-fed estimator
    // (the holder computes the bit from holder-only state).
    using L = ReactiveNodeLock<SimPlatform, CalibratedCompetitive3Policy>;
    auto lock = std::make_shared<L>();
    (void)apps::run_lock_cycle<L>(8, 120, /*cs=*/80, /*think=*/150,
                                  /*seed=*/1, lock, sim::Topology{2, 4});
    const CostEstimator& est = lock->inner().policy().estimator();
    const bool split_populated =
        est.split_tts_contended().remote.count > 0 ||
        est.split_queue_waited().remote.count > 0;
    EXPECT_TRUE(split_populated);
    EXPECT_GT(est.samples(), 0u);
}

TEST(CalibratedHysteresisTest, ThresholdsDerivedFromEstimator)
{
    CalibratedHysteresisPolicy h;
    EXPECT_EQ(h.to_queue_streak(), 8800u / 150u);
    EXPECT_EQ(h.to_tts_streak(), 8800u / 15u);

    // Measured switch cost collapses: round trip 2*44*1 = 88, so the
    // TTS->queue threshold (88/150 = 0) clamps at min_streak and the
    // queue->TTS threshold derives as 88/15 = 5.
    h.on_switch_cycles(1);
    EXPECT_EQ(h.estimator().switch_one_way(), 1u);
    EXPECT_EQ(h.to_queue_streak(), 2u);
    EXPECT_EQ(h.to_tts_streak(), 5u);
}

TEST(CalibratedHysteresisTest, BehavesLikeHysteresisAtDerivedStreaks)
{
    CalibratedHysteresisPolicy h;
    const std::uint32_t x = h.to_queue_streak();
    for (std::uint32_t i = 0; i + 1 < x; ++i)
        EXPECT_FALSE(h.on_tts_acquire(true));
    EXPECT_FALSE(h.on_tts_acquire(false)) << "a break must reset the streak";
    for (std::uint32_t i = 0; i + 1 < x; ++i)
        EXPECT_FALSE(h.on_tts_acquire(true));
    EXPECT_TRUE(h.on_tts_acquire(true));
}

TEST(CalibratedHysteresisTest, ZeroPeriodNeverProbes)
{
    // The default (probe_period = 0) is the historical non-probing
    // policy: decisions depend on the streaks alone, forever.
    CalibratedHysteresisPolicy h;
    for (int i = 0; i < 50000; ++i)
        EXPECT_FALSE(h.on_tts_acquire(false, 50));
    EXPECT_EQ(h.probes_started(), 0u);
}

TEST(CalibratedHysteresisTest, RefreshProbesUnfreezeDormantResiduals)
{
    // The staleness hole the flag closes: a policy parked forever in
    // the TTS home never samples the queue protocol, so the
    // queue-waited class — and the TTS->queue evidence bar derived
    // from it — is frozen at its seed no matter how the dormant
    // protocol's real cost drifts. Here the queue's waited handoffs
    // have silently become far cheaper than seeded (30 cycles); only
    // a probe can observe that.
    CalibratedHysteresisPolicy::Params pp;
    pp.probe_period = 128;
    pp.probe_len = 2;
    CalibratedHysteresisPolicy frozen;  // default: no probes
    CalibratedHysteresisPolicy probing(pp);
    const std::uint32_t before = probing.to_queue_streak();

    // Drive the primitive's contract: quiet TTS home traffic; every
    // "switch now" flips the protocol and notifies. (No
    // on_switch_cycles: the switch round trip stays at its seed so
    // the threshold movement isolates the residual refresh.)
    auto drive = [](CalibratedHysteresisPolicy& h, std::uint64_t n) {
        bool in_tts = true;
        std::uint64_t switches = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            const bool sw = in_tts ? h.on_tts_acquire(false, 50)
                                   : h.on_queue_acquire(false, 30);
            if (sw) {
                h.on_switch();
                in_tts = !in_tts;
                ++switches;
            }
        }
        EXPECT_TRUE(in_tts) << "probes must always return home";
        return switches;
    };
    drive(frozen, 100000);
    const std::uint64_t switches = drive(probing, 100000);

    EXPECT_EQ(frozen.probes_started(), 0u);
    EXPECT_EQ(frozen.to_queue_streak(), before) << "stale forever";

    // Backoff: periods 128, 256, ..., cap at 128<<6 — ~17 probes in
    // 100k acquisitions; without backoff it would be ~780.
    EXPECT_GE(probing.probes_started(), 5u);
    EXPECT_LE(probing.probes_started(), 20u);
    EXPECT_EQ(switches, 2 * probing.probes_started())
        << "every probe is exactly one round trip";
    // Cheaper queue-waited handoffs grow the contended-TTS residual,
    // so each contended acquisition is worth more evidence and the
    // streak needed to leave TTS drops.
    EXPECT_LT(probing.to_queue_streak(), before);
}

// ---- CalibratedCompetitive3Policy: probing --------------------------

TEST(CalibratedCompetitive3Test, ReprobeCadenceIsBoundedAndBacksOff)
{
    CalibratedCompetitive3Policy::Params pp;
    pp.probe_period = 128;
    pp.probe_len = 2;
    CalibratedCompetitive3Policy p(pp);

    // Drive 100k signal-free observed acquisitions, simulating the
    // primitive: every "switch now" flips the mode and notifies.
    bool in_tts = true;
    std::uint64_t switches = 0;
    for (std::uint64_t i = 0; i < 100000; ++i) {
        const bool sw = in_tts ? p.on_tts_acquire(false, 50)
                               : p.on_queue_acquire(false, 100);
        if (sw) {
            p.on_switch();
            p.on_switch_cycles(100);
            in_tts = !in_tts;
            ++switches;
        }
    }
    EXPECT_TRUE(in_tts) << "probes must always return home";
    EXPECT_EQ(switches, 2 * p.probes_started())
        << "every probe is exactly one round trip";
    // Backoff: periods 128, 256, ..., 8192, then every 8192 — about 17
    // probes in 100k acquisitions; without backoff it would be ~780.
    EXPECT_GE(p.probes_started(), 5u);
    EXPECT_LE(p.probes_started(), 20u);
}

TEST(CalibratedCompetitive3Test, ZeroPeriodDisablesProbing)
{
    CalibratedCompetitive3Policy::Params pp;
    pp.probe_period = 0;
    CalibratedCompetitive3Policy p(pp);
    for (std::uint64_t i = 0; i < 50000; ++i)
        EXPECT_FALSE(p.on_tts_acquire(false, 50));
    EXPECT_EQ(p.probes_started(), 0u);
}

TEST(CalibratedCompetitive3Test, SignalDrivenSwitchUsesMeasuredCosts)
{
    // With fresh measurements equal to the thesis constants, the switch
    // point must match Competitive3Policy's: ceil(8800/150) = 59.
    CalibratedCompetitive3Policy::Params pp;
    pp.probe_period = 0;  // isolate the competitive logic
    CalibratedCompetitive3Policy p(pp);
    int n = 0;
    bool switched = false;
    while (!switched && n < 100) {
        switched = p.on_tts_acquire(true);
        ++n;
    }
    EXPECT_TRUE(switched);
    EXPECT_EQ(n, 59);
}

// ---- convergence from wrong seeds on the simulated machine ------------

// The same mis-tuning presets fig_calibration measures (single source
// of truth in CostEstimator::Params).
CostEstimator::Params reluctant_seeds()
{
    return CostEstimator::Params::mis_tuned_reluctant();
}

CostEstimator::Params eager_seeds()
{
    return CostEstimator::Params::mis_tuned_eager();
}

using CalLockSim = ReactiveLock<SimPlatform, CalibratedCompetitive3Policy>;

struct SimRunResult {
    typename CalLockSim::Mode final_mode;
    std::uint64_t protocol_changes;
    double cycles_per_op;
};

using CalNodeLockSim =
    ReactiveNodeLock<SimPlatform, CalibratedCompetitive3Policy>;

SimRunResult run_calibrated_lock(std::uint32_t procs, std::uint32_t iters,
                                 std::uint32_t think,
                                 CostEstimator::Params seeds,
                                 std::uint64_t seed = 1)
{
    CalibratedCompetitive3Policy::Params pp;
    pp.costs = seeds;
    auto lock = std::make_shared<CalNodeLockSim>(
        ReactiveLockParams{}, CalibratedCompetitive3Policy(pp));
    const std::uint64_t elapsed = apps::run_lock_cycle<CalNodeLockSim>(
        procs, iters, /*cs=*/100, think, seed, lock);
    return {lock->inner().mode(), lock->inner().protocol_changes(),
            static_cast<double>(elapsed) /
                (static_cast<double>(procs) * iters)};
}

TEST(CalibrationConvergenceTest, ReluctantSeedsStillReachQueueUnderContention)
{
    // 16 contenders, short think: the queue protocol is clearly right
    // (static TTS is ~3.5x worse). Seeded to believe switching costs
    // 10x more than it does and that residuals are ~zero, the policy
    // must measure its way to the queue protocol anyway.
    const SimRunResult r = run_calibrated_lock(16, 1200, 500,
                                               reluctant_seeds());
    EXPECT_EQ(r.final_mode, CalLockSim::Mode::kQueue);
    EXPECT_GE(r.protocol_changes, 1u);
    EXPECT_LE(r.protocol_changes, 64u) << "converge, not oscillate";
}

TEST(CalibrationConvergenceTest, EagerSeedsSettleInTtsAtLowContention)
{
    // 2 processors, long think times: TTS is right. Seeded to believe
    // switching is nearly free and residuals are huge (the oscillation
    // failure mode), the policy must settle in TTS.
    const SimRunResult r =
        run_calibrated_lock(2, 3000, 2000, eager_seeds());
    EXPECT_EQ(r.final_mode, CalLockSim::Mode::kTts);
    EXPECT_LE(r.protocol_changes, 32u) << "converge, not oscillate";
}

TEST(CalibrationConvergenceTest, SwitchSpanIsMeasuredInConsensus)
{
    // Contention with think time (so waiters spin rather than convoy —
    // the fast-path factor stays near 1) makes at least one switch
    // happen; check the estimator recorded real switch-span samples
    // (the seed is replaced by the first measurement).
    CalibratedCompetitive3Policy::Params pp;
    pp.costs = eager_seeds();
    auto lock = std::make_shared<CalNodeLockSim>(
        ReactiveLockParams{}, CalibratedCompetitive3Policy(pp));
    apps::run_lock_cycle<CalNodeLockSim>(8, 400, /*cs=*/50, /*think=*/400,
                                         /*seed=*/1, lock);
    ASSERT_GE(lock->inner().protocol_changes(), 1u);
    const CostEstimator& est = lock->inner().policy().estimator();
    EXPECT_NE(est.switch_one_way(), eager_seeds().switch_one_way)
        << "a measured switch span must have replaced the seed";
    EXPECT_GT(est.samples(), 0u);
}

// ---- zero-traffic acceptance check ------------------------------------

template <typename Policy>
std::uint64_t uncontended_mem_ops()
{
    sim::Machine m(1, sim::CostModel::alewife(), 1);
    auto lock =
        std::make_shared<ReactiveNodeLock<SimPlatform, Policy>>();
    m.spawn(0, [=] {
        typename ReactiveNodeLock<SimPlatform, Policy>::Node node;
        for (int i = 0; i < 2000; ++i) {
            lock->lock(node);
            sim::delay(10);
            lock->unlock(node);
        }
    });
    m.run();
    return m.stats().mem_ops;
}

TEST(CalibrationTrafficTest, IdleCalibrationAddsNoMemoryOperations)
{
    // The uncontended fast path must be bit-identical in shared-memory
    // behaviour whether the policy calibrates or not: estimation lives
    // entirely in in-consensus private state.
    const std::uint64_t plain = uncontended_mem_ops<Competitive3Policy>();
    const std::uint64_t calibrated =
        uncontended_mem_ops<CalibratedCompetitive3Policy>();
    EXPECT_EQ(plain, calibrated);
}

// ---- reduced crossover envelope (the benchmark's acceptance, in CI) ---

template <typename L>
double static_lock_cycles(std::uint32_t procs, std::uint32_t iters,
                          std::uint32_t think, std::uint64_t seed = 1)
{
    const std::uint64_t elapsed =
        apps::run_lock_cycle<L>(procs, iters, /*cs=*/100, think, seed);
    return static_cast<double>(elapsed) /
           (static_cast<double>(procs) * iters);
}

TEST(CalibrationEnvelopeTest, WrongSeedsWithinTenPercentOfBestStatic)
{
    using TtsSim = TtsLock<SimPlatform>;
    using McsSim = McsLock<SimPlatform, McsVariant::kFetchStore>;

    struct Point {
        std::uint32_t procs;
        std::uint32_t iters;
        std::uint32_t think;
    };
    // One queue-favoured point and one TTS-favoured point, sized like
    // the fig_calibration cells.
    const Point points[] = {{16, 1500, 500}, {4, 3000, 0}};
    for (const Point& pt : points) {
        const double tts =
            static_lock_cycles<TtsSim>(pt.procs, pt.iters, pt.think);
        const double mcs =
            static_lock_cycles<McsSim>(pt.procs, pt.iters, pt.think);
        const double ideal = std::min(tts, mcs);
        for (const bool eager : {false, true}) {
            const SimRunResult r = run_calibrated_lock(
                pt.procs, pt.iters, pt.think,
                eager ? eager_seeds() : reluctant_seeds());
            EXPECT_LE(r.cycles_per_op, 1.10 * ideal)
                << "P=" << pt.procs << " think=" << pt.think
                << (eager ? " eager" : " reluctant")
                << ": calibrated=" << r.cycles_per_op << " tts=" << tts
                << " mcs=" << mcs;
        }
    }
}

// ---- barrier calibration ----------------------------------------------

TEST(BarrierCalibrationTest, RmwFloorHealsFromWrongSeedBothDirections)
{
    using Bar = ReactiveBarrier<SimPlatform, AlwaysSwitchPolicy>;

    // Seeded 10x high: the first measured central RMW drops it.
    ReactiveBarrierParams high;
    high.calibrate = true;
    high.bunched_cycles_per_arrival = 1500;  // floor seed 500
    auto bar_high = std::make_shared<Bar>(8, high);
    apps::run_barrier_uniform<Bar>(8, 120, /*compute=*/200, 1, bar_high);
    EXPECT_LT(bar_high->rmw_floor(), 500u);

    // Seeded 10x low: the decaying min grows toward the measured cost.
    ReactiveBarrierParams low;
    low.calibrate = true;
    low.bunched_cycles_per_arrival = 15;  // floor seed 5
    auto bar_low = std::make_shared<Bar>(8, low);
    apps::run_barrier_uniform<Bar>(8, 120, /*compute=*/200, 1, bar_low);
    EXPECT_GT(bar_low->rmw_floor(), 5u);
}

TEST(BarrierCalibrationTest, CalibratingPolicyReachesTreeUnderBunchedLoad)
{
    using Bar = ReactiveBarrier<SimPlatform, CalibratedCompetitive3Policy>;
    ReactiveBarrierParams bp;
    bp.calibrate = true;
    // This test validates the thesis-style spread-signal calibration
    // path (opt-in since free_monitoring became the default).
    bp.free_monitoring = false;
    CalibratedCompetitive3Policy::Params pp;
    pp.costs = reluctant_seeds();
    pp.probe_period = 32;
    pp.probe_len = 2;  // first dormant episode is the discarded cold one
    auto bar = std::make_shared<Bar>(
        16, bp, CalibratedCompetitive3Policy(pp));
    apps::run_barrier_uniform<Bar>(16, 240, /*compute=*/200, 1, bar);
    EXPECT_EQ(bar->mode(), Bar::Mode::kTree)
        << "bunched arrivals at P=16 clearly favour the tree";
    EXPECT_GE(bar->protocol_changes(), 1u);
}

// ---- native storms (TSan coverage) ------------------------------------

TEST(NativeCalibrationTest, LockStormWithFrequentProbes)
{
    using L = ReactiveLock<NativePlatform, CalibratedCompetitive3Policy>;
    const std::uint32_t threads =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    CalibratedCompetitive3Policy::Params pp;
    pp.probe_period = 16;  // force frequent probe switches
    pp.probe_len = 1;
    L lock{ReactiveLockParams{}, CalibratedCompetitive3Policy(pp)};
    long counter = 0;
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < 3000; ++i) {
                typename L::Node n;
                auto rm = lock.acquire(n);
                counter += 1;
                lock.release(n, rm);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(counter, static_cast<long>(threads) * 3000);
}

TEST(NativeCalibrationTest, RwLockStormWithCalibration)
{
    using RW = ReactiveRwLock<NativePlatform, CalibratedCompetitive3Policy>;
    const std::uint32_t threads =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    CalibratedCompetitive3Policy::Params pp;
    pp.probe_period = 16;
    pp.probe_len = 1;
    RW lock{ReactiveRwLockParams{}, CalibratedCompetitive3Policy(pp)};
    long writes = 0;
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (int i = 0; i < 2000; ++i) {
                typename RW::Node n;
                if ((i + t) % 4 == 0) {
                    lock.lock_write(n);
                    writes += 1;
                    lock.unlock_write(n);
                } else {
                    lock.lock_read(n);
                    lock.unlock_read(n);
                }
            }
        });
    }
    for (auto& th : pool)
        th.join();
    long expected = 0;
    for (std::uint32_t t = 0; t < threads; ++t)
        for (int i = 0; i < 2000; ++i)
            expected += (i + t) % 4 == 0 ? 1 : 0;
    EXPECT_EQ(writes, expected);
}

TEST(NativeCalibrationTest, BarrierStormWithCalibration)
{
    using Bar = ReactiveBarrier<NativePlatform, CalibratedCompetitive3Policy>;
    const std::uint32_t threads =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    ReactiveBarrierParams bp;
    bp.calibrate = true;
    CalibratedCompetitive3Policy::Params pp;
    pp.probe_period = 8;  // switch protocols constantly
    pp.probe_len = 1;
    Bar bar(threads, bp, CalibratedCompetitive3Policy(pp));
    std::vector<long> counts(threads, 0);
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            typename Bar::Node n;
            for (int e = 0; e < 600; ++e) {
                bar.arrive(n);
                counts[t] += 1;
            }
        });
    }
    for (auto& th : pool)
        th.join();
    for (std::uint32_t t = 0; t < threads; ++t)
        EXPECT_EQ(counts[t], 600);
}

}  // namespace
}  // namespace reactive
