// Correctness tests for the barrier subsystem (src/barrier/): episode
// ordering (nobody passes episode e before everyone arrived at e),
// sense reuse across many episodes with the same Nodes, protocol-switch
// correctness of the reactive barrier under forced-switch storms —
// including three-protocol storms cycling central -> tree ->
// dissemination through every episode — and the interop regression
// that keeps the spin barriers' episode semantics aligned with the
// waiting-algorithm barrier (src/waiting/sync/barrier.hpp) — on both
// the native platform (real threads) and the simulated multiprocessor.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "apps/workloads.hpp"
#include "barrier/barrier_concepts.hpp"
#include "barrier/central_barrier.hpp"
#include "barrier/combining_tree_barrier.hpp"
#include "barrier/dissemination_barrier.hpp"
#include "barrier/reactive_barrier.hpp"
#include "core/policy.hpp"
#include "core/protocol_set.hpp"
#include "platform/native_platform.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"
#include "waiting/sync/barrier.hpp"

namespace reactive {
namespace {

using sim::SimPlatform;

static_assert(Barrier<CentralBarrier<NativePlatform>>);
static_assert(Barrier<CombiningTreeBarrier<NativePlatform>>);
static_assert(Barrier<DisseminationBarrier<NativePlatform>>);
static_assert(Barrier<ReactiveBarrier<NativePlatform>>);
static_assert(Barrier<WaitingBarrier<NativePlatform>>);
static_assert(Barrier<CentralBarrier<SimPlatform>>);
static_assert(Barrier<CombiningTreeBarrier<SimPlatform>>);
static_assert(Barrier<DisseminationBarrier<SimPlatform>>);
static_assert(Barrier<ReactiveBarrier<SimPlatform>>);
static_assert(Barrier<WaitingBarrier<SimPlatform>>);

// Every barrier protocol is a ProtocolSet slot; the waiting barrier is
// deliberately not (it has no decomposed consensus interface).
static_assert(BarrierProtocolSlot<CentralBarrier<SimPlatform>>);
static_assert(BarrierProtocolSlot<CombiningTreeBarrier<SimPlatform>>);
static_assert(BarrierProtocolSlot<DisseminationBarrier<SimPlatform>>);
static_assert(BarrierProtocolSlot<CentralBarrier<NativePlatform>>);
static_assert(BarrierProtocolSlot<CombiningTreeBarrier<NativePlatform>>);
static_assert(BarrierProtocolSlot<DisseminationBarrier<NativePlatform>>);
static_assert(!BarrierProtocolSlot<WaitingBarrier<SimPlatform>>);

/// The acceptance instantiation: a reactive barrier over the full
/// three-protocol set.
template <typename Plat>
using Barrier3Set = ProtocolSet<CentralBarrier<Plat>,
                                CombiningTreeBarrier<Plat>,
                                DisseminationBarrier<Plat>>;

/// LadderCompetitivePolicy sized for the three-protocol set, with a
/// round trip small enough that the short torture runs actually climb
/// and descend the ladder.
struct Ladder3Policy : LadderCompetitivePolicy {
    Ladder3Policy()
        : LadderCompetitivePolicy({/*protocols=*/3, /*residual_up=*/150,
                                   /*residual_down=*/150,
                                   /*switch_round_trip=*/1500})
    {
    }
};

/// Test-only policy that demands a protocol change every @p k episodes
/// in either protocol: maximizes switch frequency so both switch
/// directions run constantly under load.
class MetronomePolicy {
  public:
    explicit MetronomePolicy(std::uint32_t k = 3) : k_(k) {}
    bool on_tts_acquire(bool) { return ++n_ % k_ == 0; }
    bool on_queue_acquire(bool) { return ++n_ % k_ == 0; }
    void on_switch() {}

  private:
    std::uint32_t k_;
    std::uint32_t n_ = 0;
};
static_assert(SwitchPolicy<MetronomePolicy>);

/// Test-only N-protocol policy that walks the set every @p k episodes
/// (step +1 cycles up: central -> tree -> dissemination -> central;
/// step -1 cycles down, covering the opposite switch directions).
class CycleSelectPolicy {
  public:
    explicit CycleSelectPolicy(std::uint32_t protocols = 3,
                               std::uint32_t k = 3, int step = +1)
        : protocols_(protocols), k_(k), step_(step)
    {
    }

    std::uint32_t next_protocol(ProtocolSignal s)
    {
        if (++n_ % k_ != 0)
            return s.protocol;
        const auto delta = static_cast<std::uint32_t>(
            static_cast<int>(protocols_) + step_);
        return (s.protocol + delta) % protocols_;
    }

    void on_switch() {}

  private:
    std::uint32_t protocols_;
    std::uint32_t k_;
    int step_;
    std::uint64_t n_ = 0;
};
static_assert(SelectPolicy<CycleSelectPolicy>);

// ---- simulated-machine episode-ordering tests -------------------------

/**
 * The fundamental barrier property, checked per episode per process:
 * right after passing barrier episode e, every other participant must
 * have finished its episode-e work (progress >= e+1) and cannot have
 * passed the *next* barrier (progress <= e+2).
 */
template <typename B>
int sim_barrier_torture(std::shared_ptr<B> bar, std::uint32_t procs,
                        std::uint32_t episodes, std::uint32_t compute,
                        std::uint64_t seed = 1, std::uint32_t straggle = 0,
                        sim::Topology topo = {})
{
    sim::Machine m(procs, topo, sim::CostModel::alewife(), seed);
    auto progress = std::make_shared<std::vector<std::uint32_t>>(procs, 0u);
    auto nodes = std::make_shared<std::vector<typename B::Node>>(procs);
    auto violations = std::make_shared<int>(0);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename B::Node& n = (*nodes)[p];
            for (std::uint32_t e = 0; e < episodes; ++e) {
                sim::delay(sim::random_below(compute + 1));
                if (straggle > 0 && e % procs == p)
                    sim::delay(straggle);
                (*progress)[p] = e + 1;
                bar->arrive(n);
                for (std::uint32_t j = 0; j < procs; ++j) {
                    const std::uint32_t seen = (*progress)[j];
                    if (seen < e + 1 || seen > e + 2)
                        ++*violations;
                }
            }
        });
    }
    m.run();
    return *violations;
}

template <typename B>
class SimBarrierTest : public ::testing::Test {};

using SimBarrierTypes =
    ::testing::Types<CentralBarrier<SimPlatform>,
                     CombiningTreeBarrier<SimPlatform>,
                     DisseminationBarrier<SimPlatform>,
                     ReactiveBarrier<SimPlatform>,
                     ReactiveBarrier<SimPlatform, Competitive3Policy>,
                     ReactiveBarrier<SimPlatform, HysteresisPolicy>,
                     ReactiveBarrier<SimPlatform, MetronomePolicy>,
                     ReactiveBarrier<SimPlatform, CycleSelectPolicy,
                                     Barrier3Set<SimPlatform>>,
                     ReactiveBarrier<SimPlatform, Ladder3Policy,
                                     Barrier3Set<SimPlatform>>,
                     WaitingBarrier<SimPlatform>>;
TYPED_TEST_SUITE(SimBarrierTest, SimBarrierTypes);

TYPED_TEST(SimBarrierTest, EpisodeOrderingBunchedArrivals)
{
    auto bar = std::make_shared<TypeParam>(16);
    EXPECT_EQ(sim_barrier_torture(bar, 16, 40, /*compute=*/120), 0);
}

TYPED_TEST(SimBarrierTest, EpisodeOrderingSkewedArrivals)
{
    auto bar = std::make_shared<TypeParam>(8);
    EXPECT_EQ(sim_barrier_torture(bar, 8, 30, /*compute=*/100, /*seed=*/3,
                                  /*straggle=*/20000),
              0);
}

TYPED_TEST(SimBarrierTest, SenseReuseOverManyEpisodesManySeeds)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        auto bar = std::make_shared<TypeParam>(12);
        EXPECT_EQ(sim_barrier_torture(bar, 12, 60, /*compute=*/60, seed), 0)
            << "seed " << seed;
    }
}

TYPED_TEST(SimBarrierTest, SingleParticipantPassesThrough)
{
    auto bar = std::make_shared<TypeParam>(1);
    EXPECT_EQ(sim_barrier_torture(bar, 1, 200, /*compute=*/0), 0);
}

// Non-power-of-two participant counts and odd fan-ins exercise the
// partial leaf/interior nodes of the tree.
TEST(CombiningTreeShapeTest, OddFanInsAndParticipantCounts)
{
    for (const std::uint32_t fan : {2u, 3u, 5u, 8u}) {
        for (const std::uint32_t procs : {2u, 5u, 13u, 16u}) {
            auto bar = std::make_shared<CombiningTreeBarrier<SimPlatform>>(
                procs, fan);
            EXPECT_EQ(sim_barrier_torture(bar, procs, 25, /*compute=*/80),
                      0)
                << "fan " << fan << " procs " << procs;
        }
    }
}

// ---- topology-aware placement (NUMA) ----------------------------------

TEST(TopoBarrierTest, TopologyAwareTreeOrderingOddSocketSplits)
{
    // Non-power-of-two socket splits, odd participant counts, socket
    // ranges that do not divide the fan-in: the segment construction
    // must still produce a correct episode structure.
    struct Shape {
        std::uint32_t procs, sockets, cps, fan;
    };
    for (const Shape c : {Shape{13, 3, 5, 4}, Shape{9, 3, 3, 2},
                          Shape{12, 5, 3, 4}, Shape{7, 2, 4, 3},
                          Shape{11, 4, 0, 5}}) {
        for (const std::uint64_t seed : {1ull, 42ull}) {
            auto bar = std::make_shared<CombiningTreeBarrier<SimPlatform>>(
                c.procs, c.fan, false, c.sockets, c.cps);
            EXPECT_EQ(sim_barrier_torture(bar, c.procs, 25, /*compute=*/120,
                                          seed, /*straggle=*/0,
                                          sim::Topology{c.sockets, c.cps}),
                      0)
                << "P=" << c.procs << " S=" << c.sockets << " cps=" << c.cps
                << " fan=" << c.fan << " seed=" << seed;
        }
    }
}

TEST(TopoBarrierTest, ForcedSwitchStormsAcrossThreeProtocolsWithTopology)
{
    // Cycle storms in both directions over a socketed machine with the
    // topology-aware tree slot, odd P and a non-power-of-two split —
    // every protocol change runs while all waiters are parked in the
    // slot being left.
    using B = ReactiveBarrier<SimPlatform, CycleSelectPolicy,
                              Barrier3Set<SimPlatform>>;
    for (const int step : {+1, -1}) {
        ReactiveBarrierParams bp;
        bp.sockets = 3;
        bp.cores_per_socket = 5;
        auto bar = std::make_shared<B>(13, bp, CycleSelectPolicy(3, 2, step));
        EXPECT_EQ(sim_barrier_torture(bar, 13, 40, /*compute=*/100,
                                      /*seed=*/1, /*straggle=*/0,
                                      sim::Topology{3, 5}),
                  0)
            << "step " << step;
        EXPECT_EQ(bar->protocol_changes(), 40u / 2u) << "step " << step;
    }
    // The same storm with stragglers and a ragged last socket.
    ReactiveBarrierParams bp;
    bp.sockets = 2;
    bp.cores_per_socket = 4;
    auto bar = std::make_shared<B>(7, bp, CycleSelectPolicy(3, 3, +1));
    EXPECT_EQ(sim_barrier_torture(bar, 7, 30, /*compute=*/100, /*seed=*/3,
                                  /*straggle=*/4000, sim::Topology{2, 4}),
              0);
}

TEST(TopoBarrierTest, TopologyAwareTreeStormOnNativeThreads)
{
    // Real threads with declared sockets (NativePlatform's
    // TopologyAware extension): placement uses the declared ids, the
    // ordering property must hold regardless.
    const std::uint32_t hw = std::thread::hardware_concurrency();
    const std::uint32_t threads = std::max(3u, std::min(6u, hw));
    CombiningTreeBarrier<NativePlatform> bar(threads, /*fan_in=*/2,
                                             /*track=*/false,
                                             /*sockets=*/3);
    std::vector<std::atomic<std::uint32_t>> progress(threads);
    for (auto& a : progress)
        a.store(0, std::memory_order_relaxed);
    std::atomic<int> violations{0};
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            NativePlatform::set_current_socket(t % 3);
            typename CombiningTreeBarrier<NativePlatform>::Node n;
            for (std::uint32_t e = 0; e < 200; ++e) {
                progress[t].store(e + 1, std::memory_order_relaxed);
                bar.arrive(n);
                for (std::uint32_t j = 0; j < threads; ++j) {
                    const std::uint32_t seen =
                        progress[j].load(std::memory_order_relaxed);
                    if (seen < e + 1 || seen > e + 2)
                        violations.fetch_add(1);
                }
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(violations.load(), 0);
}

TEST(TopoBarrierDeathTest, OversubscriptionStillAbortsWithTopology)
{
    // A (P+1)-th Node must abort instead of wrapping into a duplicate
    // id, exactly as on the flat path — including when the spill scan
    // has walked every socket range.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            CombiningTreeBarrier<NativePlatform> bar(3, /*fan_in=*/2,
                                                     /*track=*/false,
                                                     /*sockets=*/2);
            CombiningTreeBarrier<NativePlatform>::Node nodes[4];
            // Three legitimate participants would deadlock a real
            // episode here, so drive id assignment via arrive_only.
            for (auto& n : nodes)
                (void)bar.arrive_only(n);
        },
        "");
}

// ---- native-thread episode-ordering tests -----------------------------

template <typename B>
int native_barrier_torture(B& bar, std::uint32_t threads,
                           std::uint32_t episodes)
{
    std::vector<std::atomic<std::uint32_t>> progress(threads);
    for (auto& a : progress)
        a.store(0, std::memory_order_relaxed);
    std::atomic<int> violations{0};
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            typename B::Node n;
            for (std::uint32_t e = 0; e < episodes; ++e) {
                progress[t].store(e + 1, std::memory_order_relaxed);
                bar.arrive(n);
                for (std::uint32_t j = 0; j < threads; ++j) {
                    const std::uint32_t seen =
                        progress[j].load(std::memory_order_relaxed);
                    if (seen < e + 1 || seen > e + 2)
                        violations.fetch_add(1);
                }
            }
        });
    }
    for (auto& th : pool)
        th.join();
    return violations.load();
}

template <typename B>
class NativeBarrierTest : public ::testing::Test {};

using NativeBarrierTypes =
    ::testing::Types<CentralBarrier<NativePlatform>,
                     CombiningTreeBarrier<NativePlatform>,
                     DisseminationBarrier<NativePlatform>,
                     ReactiveBarrier<NativePlatform>,
                     ReactiveBarrier<NativePlatform, Competitive3Policy>,
                     ReactiveBarrier<NativePlatform, HysteresisPolicy>,
                     ReactiveBarrier<NativePlatform, MetronomePolicy>,
                     ReactiveBarrier<NativePlatform, CycleSelectPolicy,
                                     Barrier3Set<NativePlatform>>>;
TYPED_TEST_SUITE(NativeBarrierTest, NativeBarrierTypes);

TYPED_TEST(NativeBarrierTest, EpisodeOrderingUnderThreads)
{
    const std::uint32_t hw =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    TypeParam bar(hw);
    EXPECT_EQ(native_barrier_torture(bar, hw, 200), 0);
}

TYPED_TEST(NativeBarrierTest, SingleParticipantManyEpisodes)
{
    TypeParam bar(1);
    typename TypeParam::Node n;
    for (int i = 0; i < 1000; ++i)
        bar.arrive(n);
    SUCCEED();
}

// ---- reactive barrier: protocol-switch correctness --------------------

/// The thesis-style arrival-spread signal path, now opt-in
/// (free_monitoring defaults on since the NUMA PR); the convergence
/// tests below were written against it and keep validating it through
/// its deprecation window.
ReactiveBarrierParams spread_signal_params()
{
    ReactiveBarrierParams p;
    p.free_monitoring = false;
    return p;
}

TEST(ReactiveBarrierSwitchTest, ConvergesToTreeUnderBunchedArrivals)
{
    using B = ReactiveBarrier<SimPlatform, AlwaysSwitchPolicy>;
    // A huge empty-streak threshold pins the barrier in tree mode once
    // it gets there (mirrors the rwlock convergence test).
    auto bar = std::make_shared<B>(32, spread_signal_params(),
                                   AlwaysSwitchPolicy(1u << 30));
    EXPECT_EQ(bar->mode(), B::Mode::kCentral);
    (void)apps::run_barrier_uniform<B>(32, 30, /*compute=*/100, /*seed=*/1,
                                       bar);
    EXPECT_GT(bar->protocol_changes(), 0u);
    EXPECT_EQ(bar->mode(), B::Mode::kTree);
}

TEST(ReactiveBarrierSwitchTest, ConvergesBackToCentralWhenSkewed)
{
    // One run, two regimes (a barrier's Nodes are bound to it for life,
    // so regime changes must happen inside one machine): a bunched
    // phase drives the protocol into the tree, then the straggler
    // phase's skew streak must bring it back to the centralized
    // barrier.
    using B = ReactiveBarrier<SimPlatform, AlwaysSwitchPolicy>;
    auto bar = std::make_shared<B>(8, spread_signal_params());
    (void)apps::run_barrier_phases<B>(8, /*phases=*/2,
                                      /*episodes_per_phase=*/25,
                                      /*straggle=*/40000, /*compute=*/80,
                                      /*seed=*/1, bar);
    EXPECT_EQ(bar->mode(), B::Mode::kCentral);
    EXPECT_GE(bar->protocol_changes(), 2u);
}

TEST(ReactiveBarrierSwitchTest, ForcedSwitchStormKeepsOrdering)
{
    // MetronomePolicy(2) forces a protocol change every 2nd episode:
    // every other release performs a switch while all waiters are
    // parked in the protocol being retired. Episode ordering must
    // survive every one of them, in both directions, at several seeds.
    using B = ReactiveBarrier<SimPlatform, MetronomePolicy>;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        auto bar = std::make_shared<B>(12, ReactiveBarrierParams{},
                                       MetronomePolicy(2));
        EXPECT_EQ(sim_barrier_torture(bar, 12, 40, /*compute=*/100, seed),
                  0)
            << "seed " << seed;
        // One consensus step per episode, one switch per 2 episodes.
        EXPECT_EQ(bar->protocol_changes(), 40u / 2u) << "seed " << seed;
    }
}

TEST(ReactiveBarrierSwitchTest, ForcedSwitchStormOnNativeThreads)
{
    // Every single release switches protocols (MetronomePolicy(1)) on
    // real threads: central -> tree -> central -> ... for the whole
    // run. This is the storm the TSan CI job replays.
    using B = ReactiveBarrier<NativePlatform, MetronomePolicy>;
    const std::uint32_t hw =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    B bar(hw, ReactiveBarrierParams{}, MetronomePolicy(1));
    EXPECT_EQ(native_barrier_torture(bar, hw, 300), 0);
    EXPECT_EQ(bar.protocol_changes(), 300u);
}

// ---- three-protocol switching (ProtocolSet<central, tree, dissem>) ----

TEST(ProtocolSetTest, DispatchClampsOutOfRangeIndexToLastSlot)
{
    // dispatch() must never silently drop an operation: in release
    // builds an index past the set clamps to the last slot (the same
    // clamp the consensus side applies to policy-requested indices),
    // so a dropped barrier arrival cannot deadlock an episode. Debug
    // builds assert instead, so only the in-range half runs there.
    Barrier3Set<NativePlatform> set(1, BarrierSlotOptions{});
    int hit = -1;
    const auto record = [&](auto&, auto idx) {
        hit = static_cast<int>(idx());
    };
    set.dispatch(1, record);
    EXPECT_EQ(hit, 1);
    set.dispatch(2, record);
    EXPECT_EQ(hit, 2);
#ifdef NDEBUG
    set.dispatch(3, record);
    EXPECT_EQ(hit, 2);
    set.dispatch(0xffffffffu, record);
    EXPECT_EQ(hit, 2);
#endif
}

TEST(ReactiveBarrier3Test, CycleStormKeepsOrderingBothDirections)
{
    // A protocol change every single episode, walking the full ladder:
    // up-cycle covers central->tree, tree->dissemination,
    // dissemination->central; down-cycle covers the other three
    // directions. Episode ordering must survive every switch, at
    // several seeds.
    using B = ReactiveBarrier<SimPlatform, CycleSelectPolicy,
                              Barrier3Set<SimPlatform>>;
    for (const int step : {+1, -1}) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            auto bar = std::make_shared<B>(
                12, ReactiveBarrierParams{},
                CycleSelectPolicy(/*protocols=*/3, /*k=*/1, step));
            EXPECT_EQ(sim_barrier_torture(bar, 12, 42, /*compute=*/100,
                                          seed),
                      0)
                << "step " << step << " seed " << seed;
            // One consensus step per episode, one switch per episode.
            EXPECT_EQ(bar->protocol_changes(), 42u)
                << "step " << step << " seed " << seed;
        }
    }
}

TEST(ReactiveBarrier3Test, CycleStormSurvivesStragglersAndOddCounts)
{
    // Non-power-of-two participants exercise the dissemination round
    // arithmetic and partial tree nodes while the set cycles.
    using B = ReactiveBarrier<SimPlatform, CycleSelectPolicy,
                              Barrier3Set<SimPlatform>>;
    for (const std::uint32_t procs : {2u, 5u, 13u}) {
        auto bar = std::make_shared<B>(
            procs, ReactiveBarrierParams{},
            CycleSelectPolicy(/*protocols=*/3, /*k=*/2, +1));
        EXPECT_EQ(sim_barrier_torture(bar, procs, 36, /*compute=*/80,
                                      /*seed=*/5, /*straggle=*/15000),
                  0)
            << "procs " << procs;
    }
}

TEST(ReactiveBarrier3Test, CycleStormOnNativeThreads)
{
    // Every release switches to the next protocol of the 3-set on real
    // threads — the storm the TSan CI job replays for the full ladder.
    using B = ReactiveBarrier<NativePlatform, CycleSelectPolicy,
                              Barrier3Set<NativePlatform>>;
    const std::uint32_t hw =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    B bar(hw, ReactiveBarrierParams{},
          CycleSelectPolicy(/*protocols=*/3, /*k=*/1, +1));
    EXPECT_EQ(native_barrier_torture(bar, hw, 300), 0);
    EXPECT_EQ(bar.protocol_changes(), 300u);
}

TEST(ReactiveBarrier3Test, LadderClimbsUnderBunchedArrivals)
{
    // Bunched arrivals at P=32: the drift signal fires every episode in
    // central mode and keeps firing in tree mode (a more scalable rung
    // exists), so the plain ladder policy must climb off the bottom
    // rung and eventually reach the dissemination rung.
    using B = ReactiveBarrier<SimPlatform, Ladder3Policy,
                              Barrier3Set<SimPlatform>>;
    auto bar = std::make_shared<B>(32, spread_signal_params(),
                                   Ladder3Policy{});
    (void)apps::run_barrier_uniform<B>(32, 60, /*compute=*/100, /*seed=*/1,
                                       bar);
    EXPECT_GE(bar->protocol_changes(), 2u);
    EXPECT_EQ(bar->mode(), B::Mode::kDissemination);
}

TEST(ReactiveBarrier3Test, MeasuredPolicyReturnsToCentralWhenSkewed)
{
    // One run, two regimes, under traffic-free monitoring (the
    // recommended configuration for N >= 3 sets): a bunched phase (the
    // measured policy may adopt a scalable rung), then a long
    // straggler phase — the skewed drift evidence (completer-identity
    // streaks; the designated completer's own wait) must bring the
    // measured ladder policy back to the bottom rung, across two rungs
    // if needed.
    using B = ReactiveBarrier<SimPlatform, CalibratedLadderPolicy,
                              Barrier3Set<SimPlatform>>;
    CalibratedLadderPolicy::Params pp;
    pp.protocols = 3;
    pp.probe_period = 8;
    pp.drift_round_trip = 1500;
    ReactiveBarrierParams bp;
    bp.free_monitoring = true;
    auto bar = std::make_shared<B>(8, bp, CalibratedLadderPolicy(pp));
    (void)apps::run_barrier_phases<B>(8, /*phases=*/2,
                                      /*episodes_per_phase=*/60,
                                      /*straggle=*/40000, /*compute=*/80,
                                      /*seed=*/1, bar);
    EXPECT_EQ(bar->mode(), B::Mode::kCentral);
    EXPECT_GT(bar->protocol_changes(), 0u);
}

TEST(ReactiveBarrier3Test, FreeMonitoringCycleStormKeepsOrdering)
{
    // The cycle storm again with untracked slots (free monitoring):
    // switch correctness must not depend on the spread machinery.
    using B = ReactiveBarrier<SimPlatform, CycleSelectPolicy,
                              Barrier3Set<SimPlatform>>;
    ReactiveBarrierParams bp;
    bp.free_monitoring = true;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        auto bar = std::make_shared<B>(
            12, bp, CycleSelectPolicy(/*protocols=*/3, /*k=*/1, +1));
        EXPECT_EQ(sim_barrier_torture(bar, 12, 42, /*compute=*/100, seed),
                  0)
            << "seed " << seed;
        EXPECT_EQ(bar->protocol_changes(), 42u) << "seed " << seed;
    }
}

TEST(ReactiveBarrier3Test, ParkedFreeMonitoringBarrierAddsOnlyTheModeRead)
{
    // The free_monitoring default-flip regression (ROADMAP follow-on):
    // a reactive barrier parked in its initial protocol must execute
    // the static protocol's exact shared-memory operations — the only
    // extra access is the one mode-hint read each arrival's dispatch
    // performs, which free monitoring cannot remove and which existed
    // in every prior configuration too. The spread path, by contrast,
    // pays stamp traffic every episode.
    struct NeverPolicy {
        bool on_tts_acquire(bool) { return false; }
        bool on_queue_acquire(bool) { return false; }
        void on_switch() {}
    };
    using Parked = ReactiveBarrier<SimPlatform, NeverPolicy>;
    static constexpr std::uint32_t kEpisodes = 40;
    auto run = [](std::uint32_t procs, auto make_barrier) {
        sim::Machine m(procs, sim::CostModel::alewife(), 1);
        auto bar = make_barrier(procs);
        using B = typename decltype(bar)::element_type;
        auto nodes =
            std::make_shared<std::vector<typename B::Node>>(procs);
        for (std::uint32_t p = 0; p < procs; ++p) {
            m.spawn(p, [=] {
                for (std::uint32_t e = 0; e < kEpisodes; ++e) {
                    sim::delay(sim::random_below(200));
                    bar->arrive((*nodes)[p]);
                }
            });
        }
        m.run();
        return m.stats().mem_ops;
    };
    auto central = [](std::uint32_t procs) {
        return std::make_shared<CentralBarrier<SimPlatform>>(procs);
    };
    auto parked = [](std::uint32_t procs) {
        return std::make_shared<Parked>(procs);  // defaults: free monitoring
    };
    auto spread = [](std::uint32_t procs) {
        return std::make_shared<Parked>(procs, spread_signal_params());
    };
    // Spin-free configuration (one participant: nobody ever polls a
    // sense word, so the op count is schedule-independent): the parked
    // barrier executes *exactly* the static protocol's memory
    // operations plus the one mode-hint read per arrival — the
    // dispatch read free monitoring cannot remove and every prior
    // configuration also paid.
    EXPECT_EQ(run(1, parked), run(1, central) + kEpisodes);
    // Contended configuration: poll counts shift with scheduling, so
    // the per-op claim is bounded rather than exact — the parked
    // barrier stays within the mode reads plus poll noise of the
    // static protocol — while the spread path's stamp traffic (a CAS
    // per arrival plus the completer's reads) is well outside it.
    const std::uint64_t central_ops = run(12, central);
    const std::uint64_t parked_ops = run(12, parked);
    const std::uint64_t spread_ops = run(12, spread);
    const std::uint64_t mode_reads = 12u * kEpisodes;
    const std::uint64_t poll_noise = central_ops / 50;  // 2%
    EXPECT_LE(parked_ops, central_ops + mode_reads + poll_noise);
    EXPECT_GE(parked_ops + poll_noise, central_ops);
    EXPECT_GT(spread_ops, parked_ops + mode_reads);
}

TEST(ReactiveBarrierSwitchTest, PhaseShiftingTracksBothRegimes)
{
    // Across alternating bunched/straggler phases the reactive barrier
    // must keep switching (at least once per regime flip would be
    // ideal; we require that it reacts repeatedly, not just once).
    using B = ReactiveBarrier<SimPlatform, AlwaysSwitchPolicy>;
    auto bar = std::make_shared<B>(16, spread_signal_params());
    (void)apps::run_barrier_phases<B>(16, /*phases=*/6,
                                      /*episodes_per_phase=*/20,
                                      /*straggle=*/40000, /*compute=*/100,
                                      /*seed=*/1, bar);
    EXPECT_GE(bar->protocol_changes(), 4u);
}

// ---- interop regression: spin barriers vs the waiting barrier ---------
//
// src/waiting/sync/barrier.hpp predates this subsystem and implements
// the same sense-reversing episode semantics over a WaitQueue. These
// tests pin the shared contract — immediate reuse after the last
// arrival's reset, per-node sense reuse across episodes — by running
// the two families in lockstep: each processor alternates an arrival at
// the CentralBarrier with an arrival at the WaitingBarrier every
// episode. Any divergence in reset timing or sense handling deadlocks
// the lockstep (the simulator detects it) or breaks the ordering
// checks.

TEST(BarrierInteropTest, CentralAndWaitingAgreeInLockstep)
{
    constexpr std::uint32_t kProcs = 12;
    constexpr std::uint32_t kEpisodes = 30;
    sim::Machine m(kProcs, sim::CostModel::alewife(), 1);
    auto central = std::make_shared<CentralBarrier<SimPlatform>>(kProcs);
    auto waiting = std::make_shared<WaitingBarrier<SimPlatform>>(kProcs);
    auto cnodes = std::make_shared<
        std::vector<CentralBarrier<SimPlatform>::Node>>(kProcs);
    auto wnodes = std::make_shared<
        std::vector<WaitingBarrier<SimPlatform>::Node>>(kProcs);
    auto progress =
        std::make_shared<std::vector<std::uint32_t>>(kProcs, 0u);
    auto violations = std::make_shared<int>(0);
    for (std::uint32_t p = 0; p < kProcs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t e = 0; e < kEpisodes; ++e) {
                sim::delay(sim::random_below(120));
                (*progress)[p] = 2 * e + 1;
                central->arrive((*cnodes)[p]);
                for (std::uint32_t j = 0; j < kProcs; ++j)
                    if ((*progress)[j] < 2 * e + 1 ||
                        (*progress)[j] > 2 * e + 3)
                        ++*violations;
                sim::delay(sim::random_below(120));
                (*progress)[p] = 2 * e + 2;
                waiting->arrive((*wnodes)[p]);
                for (std::uint32_t j = 0; j < kProcs; ++j)
                    if ((*progress)[j] < 2 * e + 2 ||
                        (*progress)[j] > 2 * e + 4)
                        ++*violations;
            }
        });
    }
    m.run();
    EXPECT_EQ(*violations, 0);
}

TEST(BarrierInteropTest, ImmediateReuseAfterLastArrivalReset)
{
    // Both families must be re-arrivable the instant arrive() returns:
    // the last arrival resets the counter *before* releasing, so a
    // ping-pong of back-to-back episodes with zero think time cannot
    // deadlock or skip an episode. (This is the semantics PR 1's
    // WaitingBarrier established; CentralBarrier must not diverge.)
    constexpr std::uint32_t kProcs = 4;
    constexpr std::uint32_t kEpisodes = 200;
    sim::Machine m(kProcs, sim::CostModel::alewife(), 2);
    auto central = std::make_shared<CentralBarrier<SimPlatform>>(kProcs);
    auto waiting = std::make_shared<WaitingBarrier<SimPlatform>>(kProcs);
    auto cnodes = std::make_shared<
        std::vector<CentralBarrier<SimPlatform>::Node>>(kProcs);
    auto wnodes = std::make_shared<
        std::vector<WaitingBarrier<SimPlatform>::Node>>(kProcs);
    auto done = std::make_shared<std::vector<std::uint32_t>>(kProcs, 0u);
    for (std::uint32_t p = 0; p < kProcs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t e = 0; e < kEpisodes; ++e) {
                central->arrive((*cnodes)[p]);
                waiting->arrive((*wnodes)[p]);
                ++(*done)[p];
            }
        });
    }
    m.run();
    for (std::uint32_t p = 0; p < kProcs; ++p)
        EXPECT_EQ((*done)[p], kEpisodes) << "proc " << p;
}

TEST(BarrierInteropTest, SingleParticipantSemanticsMatch)
{
    // participants == 1: both families degrade to a no-op arrive that
    // still flips senses correctly on every episode.
    CentralBarrier<NativePlatform> central(1);
    WaitingBarrier<NativePlatform> waiting(1);
    CentralBarrier<NativePlatform>::Node cn;
    WaitingBarrier<NativePlatform>::Node wn;
    for (int i = 0; i < 500; ++i) {
        central.arrive(cn);
        waiting.arrive(wn);
    }
    SUCCEED();
}

}  // namespace
}  // namespace reactive
