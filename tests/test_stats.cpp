// Unit tests for the statistics substrate.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace reactive::stats {
namespace {

TEST(OnlineStatsTest, BasicMoments)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    // population variance is 4; sample variance is 32/7
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(OnlineStatsTest, MergeMatchesSequential)
{
    OnlineStats a, b, all;
    for (int i = 0; i < 100; ++i) {
        double x = std::sin(i) * 10 + i;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmpty)
{
    OnlineStats a, empty;
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(SamplesTest, QuantilesInterpolate)
{
    Samples s;
    for (int i = 1; i <= 5; ++i)
        s.add(i);  // 1..5
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SamplesTest, EmptyIsSafe)
{
    Samples s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(LinearHistogramTest, BucketsAndClamp)
{
    LinearHistogram h(10.0, 5);  // [0,10) [10,20) ... [40,50)+overflow
    h.add(0);
    h.add(9.9);
    h.add(10);
    h.add(49);
    h.add(1e9);  // clamps into last bucket
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 2u);
    EXPECT_EQ(h.stats().count(), 5u);
}

TEST(LinearHistogramTest, CdfMonotone)
{
    LinearHistogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i);
    double prev = 0;
    for (double x = 0; x < 100; x += 7) {
        double c = h.cdf_at(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cdf_at(1000), 1.0);
}

TEST(Log2HistogramTest, PowerBuckets)
{
    Log2Histogram h(12);
    h.add(0.0);   // bucket 0
    h.add(0.5);   // bucket 0
    h.add(1.0);   // bucket 1: [1,2)
    h.add(3.0);   // bucket 2: [2,4)
    h.add(1024);  // bucket 11
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(11), 1u);
    EXPECT_DOUBLE_EQ(h.bucket_low(1), 1.0);
    EXPECT_DOUBLE_EQ(h.bucket_low(3), 4.0);
}

TEST(TableTest, AlignedOutput)
{
    Table t("demo");
    t.header({"algo", "P=1", "P=64"});
    t.row({"test-and-set", "30", "4000"});
    t.row({"mcs", "60", "120"});
    t.note("cycles per op");
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("test-and-set"), std::string::npos);
    EXPECT_NE(out.find("note: cycles per op"), std::string::npos);
    // header and rows share column alignment: "P=64" right-aligned above 4000
    EXPECT_NE(out.find("P=64"), std::string::npos);
}

TEST(TableTest, FmtHelpers)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(std::uint64_t{42}), "42");
}

TEST(HistogramRenderTest, RendersBars)
{
    LinearHistogram h(1.0, 10);
    for (int i = 0; i < 50; ++i)
        h.add(i % 3);
    std::ostringstream os;
    render_histogram(os, h, [&](std::size_t i) {
        return std::to_string(static_cast<int>(h.bucket_low(i)));
    });
    EXPECT_NE(os.str().find('#'), std::string::npos);
}

TEST(HistogramRenderTest, EmptyHistogram)
{
    Log2Histogram h(8);
    std::ostringstream os;
    render_histogram(os, h, [](std::size_t) { return std::string("x"); });
    EXPECT_NE(os.str().find("no samples"), std::string::npos);
}

}  // namespace
}  // namespace reactive::stats
