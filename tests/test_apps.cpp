// Smoke and shape tests for the application kernels: each kernel must
// complete deterministically, and the contention contrasts the thesis
// relies on (fine vs coarse grain, hot vs cold objects) must be visible
// in the kernels' behaviour.

#include <gtest/gtest.h>

#include "apps/workloads.hpp"
#include "core/reactive_fetch_op.hpp"
#include "core/reactive_lock.hpp"
#include "core/reactive_mutex.hpp"
#include "fetchop/combining_tree.hpp"
#include "fetchop/locked_fetch_op.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/tas_lock.hpp"
#include "locks/tts_lock.hpp"

namespace reactive::apps {
namespace {

using sim::SimPlatform;
using QueueLockFetchOp =
    LockedFetchOp<SimPlatform, McsLock<SimPlatform, McsVariant::kFetchStore>>;

// A FetchOp wrapper usable where kernels construct F(procs).
struct QueueFetchOpForApps : QueueLockFetchOp {
    explicit QueueFetchOpForApps(std::uint32_t) {}
};
struct TtsFetchOpForApps : LockedFetchOp<SimPlatform, TtsLock<SimPlatform>> {
    explicit TtsFetchOpForApps(std::uint32_t) {}
};
struct ReactiveFetchOpForApps : ReactiveFetchOp<SimPlatform> {
    explicit ReactiveFetchOpForApps(std::uint32_t procs)
        : ReactiveFetchOp<SimPlatform>(procs)
    {
    }
};

TEST(GamtebTest, CompletesAndIsDeterministic)
{
    const std::uint64_t a = run_gamteb<QueueFetchOpForApps>(8, 20, 3);
    const std::uint64_t b = run_gamteb<QueueFetchOpForApps>(8, 20, 3);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0u);
}

TEST(GamtebTest, RunsWithReactiveFetchOp)
{
    EXPECT_GT(run_gamteb<ReactiveFetchOpForApps>(8, 20), 0u);
}

TEST(QueueAppTest, TspCompletesAcrossFetchOps)
{
    EXPECT_GT(run_tsp<TtsFetchOpForApps>(8, 120), 0u);
    EXPECT_GT(run_tsp<QueueFetchOpForApps>(8, 120), 0u);
    EXPECT_GT(run_tsp<ReactiveFetchOpForApps>(8, 120), 0u);
}

TEST(QueueAppTest, AqIsCoarserGrainedThanTsp)
{
    // Same task count: AQ (coarse grain) must take longer in absolute
    // time but put *less* pressure on the ticket counters. Use elapsed
    // per task as a proxy: AQ per-task elapsed >> TSP per-task elapsed.
    const std::uint64_t tsp = run_queue_app<QueueFetchOpForApps>(8, 150, 700);
    const std::uint64_t aq = run_queue_app<QueueFetchOpForApps>(8, 150, 4000);
    EXPECT_GT(aq, tsp);
}

TEST(Mp3dTest, CompletesWithEveryLock)
{
    EXPECT_GT(run_mp3d<TasLock<SimPlatform>>(8, 10, 2), 0u);
    EXPECT_GT(
        (run_mp3d<McsLock<SimPlatform, McsVariant::kFetchStore>>(8, 10, 2)),
        0u);
    EXPECT_GT((run_mp3d<ReactiveNodeLock<SimPlatform>>(8, 10, 2)), 0u);
}

TEST(Mp3dTest, Deterministic)
{
    using L = McsLock<SimPlatform, McsVariant::kFetchStore>;
    EXPECT_EQ((run_mp3d<L>(6, 8, 2, 128, 7)), (run_mp3d<L>(6, 8, 2, 128, 7)));
}

TEST(CholeskyTest, CompletesWithEveryLock)
{
    EXPECT_GT(run_cholesky<TasLock<SimPlatform>>(8, 20), 0u);
    EXPECT_GT(
        (run_cholesky<McsLock<SimPlatform, McsVariant::kFetchStore>>(8, 20)),
        0u);
    EXPECT_GT((run_cholesky<ReactiveNodeLock<SimPlatform>>(8, 20)), 0u);
}

TEST(AdapterTest, ReactiveNodeLockConformsAndAdapts)
{
    static_assert(NodeLock<ReactiveNodeLock<SimPlatform>>);
    // Exercise adaptation through the adapter: contended phase drives
    // the inner lock into queue mode.
    sim::Machine m(16);
    auto lock = std::make_shared<ReactiveNodeLock<SimPlatform>>();
    for (std::uint32_t p = 0; p < 16; ++p) {
        m.spawn(p, [=] {
            for (int i = 0; i < 20; ++i) {
                typename ReactiveNodeLock<SimPlatform>::Node n;
                lock->lock(n);
                sim::delay(100);
                lock->unlock(n);
                sim::delay(sim::random_below(100));
            }
        });
    }
    m.run();
    EXPECT_GT(lock->inner().protocol_changes(), 0u);
}

}  // namespace
}  // namespace reactive::apps
