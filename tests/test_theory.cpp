// Tests for the competitive-analysis theory module: task systems, the
// nearly-oblivious 3-competitive algorithm, and the two-phase waiting
// cost model of Chapter 4 (closed forms, optimal Lpoll, competitive
// factors).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "platform/prng.hpp"
#include "theory/task_system.hpp"
#include "theory/waiting_cost.hpp"

namespace reactive::theory {
namespace {

// ---- task systems -----------------------------------------------------

TaskSystem example_system()
{
    // Figure 3.13 shape: switching costs 8000/800, residuals 150/15.
    return make_protocol_task_system(8000, 800, 150, 15);
}

TEST(TaskSystemTest, ScheduleCostEvaluation)
{
    TaskSystem ts = example_system();
    // Stay in state 0 for tasks {low, high, low}: residual only on high.
    EXPECT_DOUBLE_EQ(ts.schedule_cost({0, 1, 0}, {0, 0, 0}), 150.0);
    // Move to state 1 for the high task, move back.
    EXPECT_DOUBLE_EQ(ts.schedule_cost({0, 1, 0}, {0, 1, 0}),
                     8000.0 + 800.0);
}

TEST(TaskSystemTest, OfflineOptimalNeverSwitchesForOneBurst)
{
    TaskSystem ts = example_system();
    // A short burst of high-contention tasks is cheaper to absorb than
    // a round trip (150 * 10 < 8800).
    std::vector<std::size_t> reqs(10, 1);
    EXPECT_DOUBLE_EQ(offline_optimal(ts, reqs), 1500.0);
}

TEST(TaskSystemTest, OfflineOptimalSwitchesForLongBurst)
{
    TaskSystem ts = example_system();
    // 100 high-contention tasks: switching (8000) beats 100*150.
    std::vector<std::size_t> reqs(100, 1);
    EXPECT_DOUBLE_EQ(offline_optimal(ts, reqs), 8000.0);
}

TEST(TaskSystemTest, OfflineOptimalDominatesAnySchedule)
{
    TaskSystem ts = example_system();
    XorShift64Star rng(11);
    std::vector<std::size_t> reqs;
    for (int i = 0; i < 300; ++i)
        reqs.push_back(rng.below(2));
    const double opt = offline_optimal(ts, reqs);
    // Compare with a few heuristic schedules.
    std::vector<std::size_t> stay0(reqs.size(), 0), stay1(reqs.size(), 1);
    std::vector<std::size_t> follow(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        follow[i] = reqs[i];
    EXPECT_LE(opt, ts.schedule_cost(reqs, stay0));
    EXPECT_LE(opt, ts.schedule_cost(reqs, stay1));
    EXPECT_LE(opt, ts.schedule_cost(reqs, follow));
}

TEST(NearlyOblivious2Test, SwitchesAfterRoundTripAccumulation)
{
    TaskSystem ts = example_system();
    NearlyOblivious2 algo(ts);
    // ceil(8800/150) = 59 high-contention tasks accumulate the round
    // trip; the 60th request is serviced after the move.
    for (int i = 0; i < 59; ++i)
        algo.service(1);
    EXPECT_EQ(algo.state(), 0u);
    algo.service(1);
    EXPECT_EQ(algo.state(), 1u);
}

TEST(NearlyOblivious2Test, ThreeCompetitiveOnAdversarialSequences)
{
    TaskSystem ts = example_system();
    XorShift64Star rng(5);
    // Bursty sequences with varied burst lengths, including ones sized
    // near the switching threshold (the worst case of Figure 3.14).
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::size_t> reqs;
        std::size_t current = 0;
        while (reqs.size() < 2000) {
            const std::size_t burst = 10 + rng.below(120);
            for (std::size_t i = 0; i < burst; ++i)
                reqs.push_back(current);
            current = 1 - current;
        }
        NearlyOblivious2 algo(ts);
        const double online = algo.run(reqs);
        const double opt = offline_optimal(ts, reqs);
        // c-competitive with c = 2n-1 = 3 (allow the additive constant
        // of one round trip).
        EXPECT_LE(online, 3.0 * opt + 8800.0)
            << "trial " << trial << " online " << online << " opt " << opt;
    }
}

// ---- two-phase waiting cost model --------------------------------------

TEST(WaitingCostTest, ClosedFormMatchesNumericIntegrationExponential)
{
    WaitCosts c{500.0, 1.0};
    ExponentialWait w{800.0};
    for (double alpha : {0.25, 0.5413, 1.0}) {
        const double t_poll = alpha * c.poll_efficiency * c.block_cost;
        const double numeric =
            integrate([&](double t) { return t / c.poll_efficiency * w.pdf(t); },
                      0, t_poll) +
            (1 + alpha) * c.block_cost * (1.0 - w.cdf(t_poll));
        EXPECT_NEAR(expected_two_phase_cost(w, alpha, c), numeric,
                    numeric * 1e-6);
    }
}

TEST(WaitingCostTest, ClosedFormMatchesNumericIntegrationUniform)
{
    WaitCosts c{500.0, 1.0};
    for (double upper : {200.0, 700.0, 3000.0}) {
        UniformWait w{upper};
        for (double alpha : {0.3, 0.62, 1.0}) {
            const double t_poll = alpha * c.poll_efficiency * c.block_cost;
            const double numeric =
                integrate(
                    [&](double t) { return t / c.poll_efficiency * w.pdf(t); },
                    0, std::min(t_poll, upper)) +
                (1 + alpha) * c.block_cost * (1.0 - w.cdf(t_poll));
            EXPECT_NEAR(expected_two_phase_cost(w, alpha, c), numeric,
                        std::max(1e-9, numeric * 1e-6))
                << "upper " << upper << " alpha " << alpha;
        }
    }
}

TEST(WaitingCostTest, MonteCarloAgreesWithClosedForm)
{
    WaitCosts c{500.0, 1.0};
    ExponentialWait w{600.0};
    const double closed = expected_two_phase_cost(w, 0.5413, c);
    const double mc = replay_two_phase(w, 0.5413, c, 400000, 7);
    EXPECT_NEAR(mc, closed, closed * 0.01);

    UniformWait u{1500.0};
    const double closed_u = expected_two_phase_cost(u, 0.62, c);
    const double mc_u = replay_two_phase(u, 0.62, c, 400000, 9);
    EXPECT_NEAR(mc_u, closed_u, closed_u * 0.01);
}

TEST(WaitingCostTest, OptimalAlphaExponentialIsLnEMinus1)
{
    // Thesis Section 4.5.1: alpha* = ln(e-1) ~= 0.5413 under
    // exponentially distributed waits.
    WaitCosts c{500.0, 1.0};
    const double analytic = exponential_optimal_alpha();
    EXPECT_NEAR(analytic, 0.5413, 1e-3);
    const double numeric = optimal_alpha<ExponentialWait>(c);
    EXPECT_NEAR(numeric, analytic, 0.02);
}

TEST(WaitingCostTest, ExponentialFactorIsAboutOnePointFiveEight)
{
    // Thesis: the resulting waiting algorithm is ~1.58-competitive
    // (abstract says "at most 1.59").
    WaitCosts c{500.0, 1.0};
    const double f =
        worst_case_factor<ExponentialWait>(exponential_optimal_alpha(), c);
    EXPECT_GT(f, 1.50);
    EXPECT_LT(f, 1.60);
}

TEST(WaitingCostTest, UniformOptimalAlphaAndFactor)
{
    // Thesis Section 4.5.2: alpha* ~= 0.62 with factor ~= 1.62.
    WaitCosts c{500.0, 1.0};
    const double a = optimal_alpha<UniformWait>(c);
    EXPECT_NEAR(a, 0.62, 0.04);
    const double f = worst_case_factor<UniformWait>(a, c);
    EXPECT_GT(f, 1.55);
    EXPECT_LT(f, 1.65);
}

TEST(WaitingCostTest, AlphaOneIsTwoCompetitive)
{
    // Lpoll = B yields the classic 2-competitive bound; under the
    // restricted adversary the expected factor must stay below 2.
    WaitCosts c{500.0, 1.0};
    EXPECT_LT(worst_case_factor<ExponentialWait>(1.0, c), 2.0);
    EXPECT_LT(worst_case_factor<UniformWait>(1.0, c), 2.0);
    // And it must be worse than the optimal alpha (that is the point).
    EXPECT_GT(worst_case_factor<ExponentialWait>(1.0, c),
              worst_case_factor<ExponentialWait>(
                  exponential_optimal_alpha(), c));
}

TEST(WaitingCostTest, FactorLimitsMakeSense)
{
    WaitCosts c{500.0, 1.0};
    // Very short waits: polling wins, factor -> 1.
    EXPECT_NEAR(expected_factor(ExponentialWait{5.0}, 0.5413, c), 1.0, 0.05);
    // Very long waits: two-phase pays (1+alpha)B vs B, factor -> 1+alpha.
    EXPECT_NEAR(expected_factor(ExponentialWait{500000.0}, 0.5413, c),
                1.5413, 0.02);
}

TEST(WaitingCostTest, SwitchSpinningShiftsBreakeven)
{
    // With beta = 4 (four hardware contexts), polling is 4x cheaper, so
    // at a fixed mean wait the expected two-phase cost must drop.
    ExponentialWait w{800.0};
    WaitCosts spin{500.0, 1.0};
    WaitCosts sswitch{500.0, 4.0};
    EXPECT_LT(expected_two_phase_cost(w, 0.5413, sswitch),
              expected_two_phase_cost(w, 0.5413, spin));
}

}  // namespace
}  // namespace reactive::theory
