// Correctness tests for every passive spin-lock protocol, on both the
// native platform (real threads) and the simulated multiprocessor
// (deterministic high-contention interleavings).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/cohort_queue.hpp"
#include "core/reactive_mutex.hpp"
#include "locks/anderson_lock.hpp"
#include "locks/lock_concepts.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/tas_lock.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/tts_lock.hpp"
#include "platform/native_platform.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"

namespace reactive {
namespace {

using sim::SimPlatform;

// ---- factory so typed tests can construct any lock uniformly ---------

template <typename L>
L make_lock(std::uint32_t max_contenders)
{
    if constexpr (std::is_constructible_v<L, std::uint32_t>) {
        return L(max_contenders);
    } else {
        (void)max_contenders;
        return L();
    }
}

// Locks hold atomics and are immovable; heap-allocate for shared use.
template <typename L>
std::shared_ptr<L> make_shared_lock(std::uint32_t max_contenders)
{
    if constexpr (std::is_constructible_v<L, std::uint32_t>)
        return std::make_shared<L>(max_contenders);
    else
        return std::make_shared<L>();
}

// ---- native-thread mutual exclusion ----------------------------------

template <typename L>
void native_mutex_torture(std::uint32_t threads, std::uint32_t iters)
{
    L lock = make_lock<L>(threads);
    long counter = 0;
    std::atomic<bool> violation{false};
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                typename L::Node node;
                lock.lock(node);
                const long before = counter;
                counter = before + 1;
                if (counter != before + 1)
                    violation.store(true);
                lock.unlock(node);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_FALSE(violation.load());
    EXPECT_EQ(counter, static_cast<long>(threads) * iters);
}

template <typename L>
class NativeLockTest : public ::testing::Test {};

using NativeLockTypes =
    ::testing::Types<TasLock<NativePlatform>, TtsLock<NativePlatform>,
                     McsLock<NativePlatform, McsVariant::kFetchStore>,
                     McsLock<NativePlatform, McsVariant::kCompareSwap>,
                     TicketLock<NativePlatform>, AndersonLock<NativePlatform>>;
TYPED_TEST_SUITE(NativeLockTest, NativeLockTypes);

TYPED_TEST(NativeLockTest, MutualExclusionUnderThreads)
{
    // The host may have very few cores; keep iteration counts modest so
    // pure spinning under preemption stays fast.
    const std::uint32_t threads =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    native_mutex_torture<TypeParam>(threads, 400);
}

TYPED_TEST(NativeLockTest, SingleThreadedLockUnlock)
{
    TypeParam lock = make_lock<TypeParam>(4);
    for (int i = 0; i < 1000; ++i) {
        typename TypeParam::Node n;
        lock.lock(n);
        lock.unlock(n);
    }
    SUCCEED();
}

TYPED_TEST(NativeLockTest, ScopedLockGuards)
{
    TypeParam lock = make_lock<TypeParam>(4);
    int x = 0;
    {
        ScopedLock guard(lock);
        x = 1;
    }
    {
        ScopedLock guard(lock);  // must be acquirable again
        x = 2;
    }
    EXPECT_EQ(x, 2);
}

TYPED_TEST(NativeLockTest, TryLockSemantics)
{
    if constexpr (TryNodeLock<TypeParam>) {
        TypeParam lock = make_lock<TypeParam>(4);
        typename TypeParam::Node a, b;
        EXPECT_TRUE(lock.try_lock(a));
        EXPECT_FALSE(lock.try_lock(b));  // held
        lock.unlock(a);
        EXPECT_TRUE(lock.try_lock(b));
        lock.unlock(b);
    }
}

// ---- simulated-machine mutual exclusion ------------------------------

/**
 * Runs @p procs simulated processors hammering one lock. The critical
 * section contains simulated delays so the scheduler interleaves
 * aggressively; any mutual-exclusion failure corrupts `inside`.
 */
template <typename L>
void sim_mutex_torture(std::uint32_t procs, std::uint32_t iters,
                       std::uint64_t seed = 1)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto lock = make_shared_lock<L>(procs);
    auto inside = std::make_shared<int>(0);
    auto counter = std::make_shared<long>(0);
    auto violations = std::make_shared<int>(0);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                typename L::Node node;
                lock->lock(node);
                if (++*inside != 1)
                    ++*violations;
                sim::delay(10 + sim::random_below(40));
                if (*inside != 1)
                    ++*violations;
                --*inside;
                ++*counter;
                lock->unlock(node);
                sim::delay(sim::random_below(100));
            }
        });
    }
    m.run();
    EXPECT_EQ(*violations, 0);
    EXPECT_EQ(*counter, static_cast<long>(procs) * iters);
}

template <typename L>
class SimLockTest : public ::testing::Test {};

using SimLockTypes =
    ::testing::Types<TasLock<SimPlatform>, TtsLock<SimPlatform>,
                     McsLock<SimPlatform, McsVariant::kFetchStore>,
                     McsLock<SimPlatform, McsVariant::kCompareSwap>,
                     TicketLock<SimPlatform>, AndersonLock<SimPlatform>>;
TYPED_TEST_SUITE(SimLockTest, SimLockTypes);

TYPED_TEST(SimLockTest, MutualExclusionHighContention)
{
    sim_mutex_torture<TypeParam>(16, 40);
}

TYPED_TEST(SimLockTest, MutualExclusionLowContention)
{
    sim_mutex_torture<TypeParam>(2, 200);
}

TYPED_TEST(SimLockTest, MutualExclusionManySeeds)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed)
        sim_mutex_torture<TypeParam>(8, 25, seed);
}

// The fetch&store-only MCS release has a cleanup path for the race where
// a waiter enqueues while the holder is emptying the queue (thesis
// Section 3.5.3). Two processors with tiny think times hit it hard.
TEST(McsRaceTest, UsurperPathIsCorrect)
{
    using L = McsLock<SimPlatform, McsVariant::kFetchStore>;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        sim::Machine m(2, sim::CostModel::alewife(), seed);
        auto lock = std::make_shared<L>();
        auto counter = std::make_shared<long>(0);
        for (std::uint32_t p = 0; p < 2; ++p) {
            m.spawn(p, [=] {
                for (int i = 0; i < 300; ++i) {
                    typename L::Node node;
                    lock->lock(node);
                    ++*counter;
                    lock->unlock(node);
                    sim::delay(sim::random_below(8));
                }
            });
        }
        m.run();
        EXPECT_EQ(*counter, 600);
    }
}

// MCS grants the lock in FIFO arrival order (fairness; thesis cites this
// as one of the queue lock's advantages).
TEST(McsFairnessTest, FifoGrantOrder)
{
    using L = McsLock<SimPlatform, McsVariant::kFetchStore>;
    sim::Machine m(8);
    auto lock = std::make_shared<L>();
    auto arrival = std::make_shared<std::vector<int>>();
    auto grant = std::make_shared<std::vector<int>>();
    for (std::uint32_t p = 0; p < 8; ++p) {
        m.spawn(p, [=] {
            sim::delay(100 * (p + 1));  // staggered, deterministic arrivals
            typename L::Node node;
            arrival->push_back(static_cast<int>(p));
            lock->lock(node);
            grant->push_back(static_cast<int>(p));
            sim::delay(500);  // hold long enough that all later procs queue
            lock->unlock(node);
        });
    }
    m.run();
    EXPECT_EQ(*grant, *arrival);
}

TEST(TicketFairnessTest, FifoGrantOrder)
{
    using L = TicketLock<SimPlatform>;
    sim::Machine m(6);
    auto lock = std::make_shared<L>();
    auto arrival = std::make_shared<std::vector<int>>();
    auto grant = std::make_shared<std::vector<int>>();
    for (std::uint32_t p = 0; p < 6; ++p) {
        m.spawn(p, [=] {
            sim::delay(150 * (p + 1));
            typename L::Node node;
            arrival->push_back(static_cast<int>(p));
            lock->lock(node);
            grant->push_back(static_cast<int>(p));
            sim::delay(600);
            lock->unlock(node);
        });
    }
    m.run();
    EXPECT_EQ(*grant, *arrival);
}

// ---- cohort queue native storms (the TSan CI job replays these) -------
//
// The two-level cohort queue's native coverage: threads *declare*
// their socket (NativePlatform::set_current_socket — the declared-id
// model the header documents), so the per-socket local queues, the
// cohort passes, and the budget-driven global handoffs all execute on
// real threads under ThreadSanitizer.

TEST(NativeCohortTest, MutualExclusionWithDeclaredSockets)
{
    const std::uint32_t threads =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    CohortQueue<NativePlatform>::Params cp;
    cp.sockets = 2;
    CohortQueue<NativePlatform> q(/*initially_valid=*/true, cp);
    long counter = 0;
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            NativePlatform::set_current_socket(t % 2);
            for (int i = 0; i < 400; ++i) {
                CohortQueue<NativePlatform>::Node n;
                (void)q.acquire(n);
                ++counter;  // protected by the lock
                q.release(n);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(counter, static_cast<long>(threads) * 400);
}

TEST(NativeCohortTest, RemoteWaiterIsNotStarvedByLocalStream)
{
    // One declared-remote thread against an all-local stream that only
    // stops once the remote finished: the bounded cohort budget is
    // what lets this test terminate.
    const std::uint32_t locals =
        std::max(1u, std::min(3u, std::thread::hardware_concurrency() - 1));
    CohortQueue<NativePlatform>::Params cp;
    cp.sockets = 2;
    CohortQueue<NativePlatform> q(/*initially_valid=*/true, cp);
    std::atomic<bool> done{false};
    long counter = 0;
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < locals; ++t) {
        pool.emplace_back([&] {
            NativePlatform::set_current_socket(0);
            while (!done.load(std::memory_order_relaxed)) {
                CohortQueue<NativePlatform>::Node n;
                (void)q.acquire(n);
                ++counter;
                q.release(n);
            }
        });
    }
    std::thread remote([&] {
        NativePlatform::set_current_socket(1);
        for (int i = 0; i < 200; ++i) {
            CohortQueue<NativePlatform>::Node n;
            (void)q.acquire(n);
            ++counter;
            q.release(n);
        }
        done.store(true, std::memory_order_relaxed);
    });
    remote.join();
    for (auto& th : pool)
        th.join();
    EXPECT_TRUE(done.load());
}

TEST(NativeCohortTest, ReactiveSwitchStormOverCohortQueue)
{
    // TTS <-> cohort protocol changes on real threads: every third
    // observed acquisition switches, driving acquire_invalid /
    // invalidate / the local-bailout dismantle paths under TSan.
    struct Metronome {
        std::uint32_t n = 0;
        bool on_tts_acquire(bool) { return ++n % 3 == 0; }
        bool on_queue_acquire(bool) { return ++n % 3 == 0; }
        void on_switch() {}
    };
    using RL = ReactiveNodeLock<NativePlatform, Metronome,
                                CohortQueue<NativePlatform>>;
    const std::uint32_t threads =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    CohortQueue<NativePlatform>::Params cp;
    cp.sockets = 2;
    // Without the optimistic fast path every acquisition is observed,
    // so the metronome fires even on hosts where preemption-grain
    // scheduling leaves the lock uncontended (1-core CI runners).
    ReactiveLockParams lp;
    lp.optimistic_tts = false;
    RL lock{lp, Metronome{}, cp};
    long counter = 0;
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            NativePlatform::set_current_socket(t % 2);
            for (int i = 0; i < 300; ++i) {
                typename RL::Node n;
                lock.lock(n);
                ++counter;
                lock.unlock(n);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(counter, static_cast<long>(threads) * 300);
    EXPECT_GT(lock.inner().protocol_changes(), 0u);
}

// Queue locks make waiters spin on their own cache line: under heavy
// contention MCS must generate far less coherence traffic and finish
// sooner than the centralized protocols (the core scalability claim of
// Section 3.1).
TEST(TrafficShapeTest, McsBeatsCentralizedLocksUnderContention)
{
    struct Outcome {
        std::uint64_t invalidated_copies;
        std::uint64_t elapsed;
    };
    auto run = []<typename L>(std::type_identity<L>, std::uint32_t procs) {
        sim::Machine m(procs);
        auto lock = make_shared_lock<L>(procs);
        for (std::uint32_t p = 0; p < procs; ++p) {
            m.spawn(p, [=] {
                for (int i = 0; i < 20; ++i) {
                    typename L::Node node;
                    lock->lock(node);
                    sim::delay(100);
                    lock->unlock(node);
                    sim::delay(sim::random_below(200));
                }
            });
        }
        m.run();
        return Outcome{m.stats().invalidations, m.elapsed()};
    };
    const Outcome tas = run(std::type_identity<TasLock<SimPlatform>>{}, 16);
    const Outcome tts = run(std::type_identity<TtsLock<SimPlatform>>{}, 16);
    const Outcome mcs = run(
        std::type_identity<McsLock<SimPlatform, McsVariant::kFetchStore>>{},
        16);
    // TTS read-pollers all re-cache the lock word, so every release pays
    // an invalidation round over ~P copies; MCS signals one waiter.
    EXPECT_LT(mcs.invalidated_copies, tts.invalidated_copies / 2);
    // End-to-end, the queue lock wins at high contention (Figure 1.1).
    EXPECT_LT(mcs.elapsed, tas.elapsed);
}

}  // namespace
}  // namespace reactive
