// Tests for the simulated multiprocessor substrate (the NWO-substitute).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"
#include "sim/sim_platform.hpp"

namespace reactive::sim {
namespace {

TEST(FiberTest, RunsToCompletion)
{
    int x = 0;
    Fiber f([&] { x = 42; });
    EXPECT_FALSE(f.done());
    f.resume();
    EXPECT_TRUE(f.done());
    EXPECT_EQ(x, 42);
}

TEST(FiberTest, YieldAndResume)
{
    std::vector<int> order;
    Fiber f([&] {
        order.push_back(1);
        Fiber::yield_current();
        order.push_back(3);
    });
    f.resume();
    order.push_back(2);
    f.resume();
    EXPECT_TRUE(f.done());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(FiberTest, ManyFibersInterleave)
{
    std::vector<int> order;
    std::vector<std::unique_ptr<Fiber>> fibers;
    for (int i = 0; i < 4; ++i) {
        fibers.emplace_back(std::make_unique<Fiber>([&order, i] {
            order.push_back(i);
            Fiber::yield_current();
            order.push_back(i + 10);
        }));
    }
    for (auto& f : fibers)
        f->resume();
    for (auto& f : fibers)
        f->resume();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 10, 11, 12, 13}));
}

TEST(FiberTest, DeepStackUse)
{
    // Exercise a good chunk of the stack below the guard page.
    bool ok = false;
    Fiber f(
        [&] {
            volatile char buf[48 * 1024];
            for (std::size_t i = 0; i < sizeof(buf); i += 4096)
                buf[i] = static_cast<char>(i);
            ok = buf[4096] == static_cast<char>(4096);
        },
        64 * 1024);
    f.resume();
    EXPECT_TRUE(ok);
}

TEST(MachineTest, DelayAdvancesClock)
{
    Machine m(2);
    m.spawn(0, [] { delay(1000); });
    m.spawn(1, [] { delay(500); });
    m.run();
    EXPECT_GE(m.cycles(0), 1000u + m.costs().thread_reload);
    EXPECT_GE(m.cycles(1), 500u);
    EXPECT_LT(m.cycles(1), m.cycles(0));
    EXPECT_EQ(m.elapsed(), m.cycles(0));
}

TEST(MachineTest, DeterministicAcrossRuns)
{
    auto experiment = [](std::uint64_t seed) {
        Machine m(8, CostModel::alewife(), seed);
        auto counter = std::make_shared<Atomic<int>>(0);
        for (std::uint32_t p = 0; p < 8; ++p) {
            m.spawn(p, [counter] {
                for (int i = 0; i < 50; ++i) {
                    counter->fetch_add(1);
                    delay(random_below(100));
                }
            });
        }
        m.run();
        return m.elapsed();
    };
    EXPECT_EQ(experiment(3), experiment(3));
    EXPECT_NE(experiment(3), experiment(4));  // seeds change the schedule
}

TEST(MachineTest, AtomicCoherenceCosts)
{
    Machine m(2);
    std::uint64_t local_hit_time = 0, remote_time = 0;
    auto shared = std::make_shared<Atomic<int>>(0);
    m.spawn(0, [&, shared] {
        shared->store(1);  // miss: first touch
        const std::uint64_t t0 = now();
        shared->store(2);  // owned: cache hit
        local_hit_time = now() - t0;
        delay(10000);      // let cpu1 take the line
        const std::uint64_t t1 = now();
        shared->store(3);  // must invalidate cpu1's copy
        remote_time = now() - t1;
    });
    m.spawn(1, [shared] {
        delay(2000);
        (void)shared->load();  // become a sharer
        delay(20000);
    });
    m.run();
    EXPECT_EQ(local_hit_time, m.costs().cache_hit);
    EXPECT_GT(remote_time, local_hit_time * 2);
}

TEST(MachineTest, InvalidationCostScalesWithSharers)
{
    auto release_cost = [](std::uint32_t sharers) {
        Machine m(sharers + 1);
        auto flag = std::make_shared<Atomic<int>>(0);
        auto cost = std::make_shared<std::uint64_t>(0);
        for (std::uint32_t p = 1; p <= sharers; ++p)
            m.spawn(p, [flag] { (void)flag->load(); });
        m.spawn(0, [flag, cost] {
            delay(5000);  // after all sharers cached the line
            const std::uint64_t t0 = now();
            flag->store(1);
            *cost = now() - t0;
        });
        m.run();
        return *cost;
    };
    const std::uint64_t few = release_cost(2);
    const std::uint64_t many = release_cost(32);
    EXPECT_GT(many, few + 100);  // sequential invalidations + overflow trap
}

TEST(MachineTest, FullMapDirectoryCheaperThanLimited)
{
    auto storm = [](CostModel cm) {
        Machine m(33, cm);
        auto flag = std::make_shared<Atomic<int>>(0);
        auto cost = std::make_shared<std::uint64_t>(0);
        for (std::uint32_t p = 1; p <= 32; ++p)
            m.spawn(p, [flag] { (void)flag->load(); });
        m.spawn(0, [flag, cost] {
            delay(5000);
            const std::uint64_t t0 = now();
            flag->store(1);
            *cost = now() - t0;
        });
        m.run();
        return *cost;
    };
    EXPECT_LT(storm(CostModel::dirnnb()), storm(CostModel::alewife()));
}

TEST(MachineTest, MessagesDeliveredInOrder)
{
    Machine m(2);
    auto log = std::make_shared<std::vector<int>>();
    m.spawn(0, [&m, log] {
        m.send(1, [log] { log->push_back(1); });
        m.send(1, [log] { log->push_back(2); });
        m.send(1, [log] { log->push_back(3); });
        delay(1000);
    });
    m.spawn(1, [] { delay(2000); });
    m.run();
    EXPECT_EQ(*log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(m.stats().messages, 3u);
    EXPECT_EQ(m.stats().handlers, 3u);
}

TEST(MachineTest, MessageRoundTrip)
{
    Machine m(2);
    auto reply_flag = std::make_shared<Atomic<int>>(0);
    std::uint64_t rtt = 0;
    m.spawn(0, [&, reply_flag] {
        const std::uint64_t t0 = now();
        m.send(1, [&m, reply_flag] {
            // Handler runs on cpu 1; reply to cpu 0.
            m.send(0, [reply_flag] { reply_flag->store(1); });
        });
        while (reply_flag->load() == 0)
            pause();
        rtt = now() - t0;
    });
    m.run();
    const auto& c = m.costs();
    EXPECT_GE(rtt, 2u * (c.msg_send_overhead + c.msg_latency));
    EXPECT_EQ(m.stats().handlers, 2u);
}

TEST(MachineTest, MessageToSelfDelivered)
{
    Machine m(1);
    auto got = std::make_shared<Atomic<int>>(0);
    m.spawn(0, [&m, got] {
        m.send(0, [got] { got->store(1); });
        while (got->load() == 0)
            pause();
    });
    m.run();
    EXPECT_EQ(got->load(), 1);
}

TEST(MachineTest, WaitQueueBlocksAndWakes)
{
    Machine m(2, CostModel::alewife());
    auto q = std::make_shared<SimWaitQueue>();
    auto data = std::make_shared<Atomic<int>>(0);
    auto observed = std::make_shared<int>(-1);
    m.spawn(0, [q, data, observed] {
        for (;;) {
            std::uint32_t e = q->prepare_wait();
            if (data->load() != 0) {
                q->cancel_wait();
                break;
            }
            q->commit_wait(e);
        }
        *observed = data->load();
    });
    m.spawn(1, [q, data] {
        delay(5000);
        data->store(7);
        q->notify_one();
    });
    m.run();
    EXPECT_EQ(*observed, 7);
    EXPECT_EQ(m.stats().blocks, 1u);
    EXPECT_EQ(m.stats().wakes, 1u);
    // The blocked waiter must not have burned cycles while blocked: its
    // processor clock restarts near the waker's notification time.
    EXPECT_GT(m.cycles(0), 5000u);
}

TEST(MachineTest, BlockingCostMatchesTable41)
{
    // One thread blocks, another wakes it; the wakee's processor should
    // be charged roughly unload + reload, and the waker reenable.
    Machine m(2);
    auto q = std::make_shared<SimWaitQueue>();
    auto flag = std::make_shared<Atomic<int>>(0);
    m.spawn(0, [q, flag] {
        std::uint32_t e = q->prepare_wait();
        if (flag->load() == 0)
            q->commit_wait(e);
        else
            q->cancel_wait();
    });
    m.spawn(1, [q, flag] {
        delay(3000);
        flag->store(1);
        q->notify_one();
    });
    m.run();
    const auto& c = m.costs();
    EXPECT_GE(c.blocking_cost(), 400u);  // ~500 cycles on Alewife
    EXPECT_LE(c.blocking_cost(), 600u);
    EXPECT_EQ(m.stats().blocks, 1u);
}

TEST(MachineTest, NotifyAllWakesEveryone)
{
    Machine m(5);
    auto q = std::make_shared<SimWaitQueue>();
    auto go = std::make_shared<Atomic<int>>(0);
    auto woke = std::make_shared<Atomic<int>>(0);
    for (std::uint32_t p = 1; p < 5; ++p) {
        m.spawn(p, [q, go, woke] {
            for (;;) {
                std::uint32_t e = q->prepare_wait();
                if (go->load() != 0) {
                    q->cancel_wait();
                    break;
                }
                q->commit_wait(e);
            }
            woke->fetch_add(1);
        });
    }
    m.spawn(0, [q, go] {
        delay(10000);
        go->store(1);
        q->notify_all();
    });
    m.run();
    EXPECT_EQ(woke->load(), 4);
}

TEST(MachineTest, DeadlockDetected)
{
    Machine m(1);
    auto q = std::make_shared<SimWaitQueue>();
    m.spawn(0, [q] {
        std::uint32_t e = q->prepare_wait();
        q->commit_wait(e);  // nobody will ever notify
    });
    EXPECT_THROW(m.run(), std::runtime_error);
}

TEST(MachineTest, MultithreadedContextsShareProcessor)
{
    CostModel cm = CostModel::multithreaded(4);
    Machine m(1, cm);
    auto log = std::make_shared<std::vector<int>>();
    for (int t = 0; t < 3; ++t) {
        m.spawn(0, [&m, log, t] {
            for (int i = 0; i < 3; ++i) {
                log->push_back(t);
                m.context_switch();
            }
        });
    }
    m.run();
    ASSERT_EQ(log->size(), 9u);
    // Context switching must interleave the three resident threads.
    EXPECT_EQ((*log)[0], 0);
    EXPECT_EQ((*log)[1], 1);
    EXPECT_EQ((*log)[2], 2);
    EXPECT_GT(m.stats().context_switches, 0u);
}

TEST(MachineTest, SpawnFromInsideSim)
{
    Machine m(2);
    auto sum = std::make_shared<Atomic<int>>(0);
    m.spawn(0, [&m, sum] {
        for (int i = 0; i < 3; ++i)
            m.spawn(1, [sum] { sum->fetch_add(1); });
        delay(100);
    });
    m.run();
    EXPECT_EQ(sum->load(), 3);
    EXPECT_EQ(m.stats().threads_spawned, 4u);
}

TEST(MachineTest, ReadySpilloverRunsSequentially)
{
    // More threads than hardware contexts on one processor: all must
    // still complete (loaded as slots free up).
    Machine m(1);  // 1 hardware context
    auto count = std::make_shared<Atomic<int>>(0);
    for (int t = 0; t < 5; ++t)
        m.spawn(0, [count] {
            delay(100);
            count->fetch_add(1);
        });
    m.run();
    EXPECT_EQ(count->load(), 5);
}

TEST(SimPlatformTest, SatisfiesPlatformConcept)
{
    static_assert(reactive::Platform<SimPlatform>);
    SUCCEED();
}

TEST(SimPlatformTest, NowAndDelayInsideSim)
{
    Machine m(1);
    std::uint64_t t0 = 0, t1 = 0;
    m.spawn(0, [&] {
        t0 = SimPlatform::now();
        SimPlatform::delay(777);
        t1 = SimPlatform::now();
    });
    m.run();
    EXPECT_EQ(t1 - t0, 777u);
}

TEST(SimPlatformTest, AtomicOutsideSimIsDirect)
{
    Atomic<int> a(5);
    EXPECT_EQ(a.load(), 5);
    a.store(6);
    EXPECT_EQ(a.exchange(7), 6);
    int expected = 7;
    EXPECT_TRUE(a.compare_exchange_strong(expected, 8));
    EXPECT_EQ(a.fetch_add(2), 8);
    EXPECT_EQ(a.load(), 10);
}

}  // namespace
}  // namespace reactive::sim
