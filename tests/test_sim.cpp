// Tests for the simulated multiprocessor substrate (the NWO-substitute).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"
#include "sim/sim_platform.hpp"

namespace reactive::sim {
namespace {

TEST(FiberTest, RunsToCompletion)
{
    int x = 0;
    Fiber f([&] { x = 42; });
    EXPECT_FALSE(f.done());
    f.resume();
    EXPECT_TRUE(f.done());
    EXPECT_EQ(x, 42);
}

TEST(FiberTest, YieldAndResume)
{
    std::vector<int> order;
    Fiber f([&] {
        order.push_back(1);
        Fiber::yield_current();
        order.push_back(3);
    });
    f.resume();
    order.push_back(2);
    f.resume();
    EXPECT_TRUE(f.done());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(FiberTest, ManyFibersInterleave)
{
    std::vector<int> order;
    std::vector<std::unique_ptr<Fiber>> fibers;
    for (int i = 0; i < 4; ++i) {
        fibers.emplace_back(std::make_unique<Fiber>([&order, i] {
            order.push_back(i);
            Fiber::yield_current();
            order.push_back(i + 10);
        }));
    }
    for (auto& f : fibers)
        f->resume();
    for (auto& f : fibers)
        f->resume();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 10, 11, 12, 13}));
}

TEST(FiberTest, DeepStackUse)
{
    // Exercise a good chunk of the stack below the guard page.
    bool ok = false;
    Fiber f(
        [&] {
            volatile char buf[48 * 1024];
            for (std::size_t i = 0; i < sizeof(buf); i += 4096)
                buf[i] = static_cast<char>(i);
            ok = buf[4096] == static_cast<char>(4096);
        },
        64 * 1024);
    f.resume();
    EXPECT_TRUE(ok);
}

TEST(MachineTest, DelayAdvancesClock)
{
    Machine m(2);
    m.spawn(0, [] { delay(1000); });
    m.spawn(1, [] { delay(500); });
    m.run();
    EXPECT_GE(m.cycles(0), 1000u + m.costs().thread_reload);
    EXPECT_GE(m.cycles(1), 500u);
    EXPECT_LT(m.cycles(1), m.cycles(0));
    EXPECT_EQ(m.elapsed(), m.cycles(0));
}

TEST(MachineTest, DeterministicAcrossRuns)
{
    auto experiment = [](std::uint64_t seed) {
        Machine m(8, CostModel::alewife(), seed);
        auto counter = std::make_shared<Atomic<int>>(0);
        for (std::uint32_t p = 0; p < 8; ++p) {
            m.spawn(p, [counter] {
                for (int i = 0; i < 50; ++i) {
                    counter->fetch_add(1);
                    delay(random_below(100));
                }
            });
        }
        m.run();
        return m.elapsed();
    };
    EXPECT_EQ(experiment(3), experiment(3));
    EXPECT_NE(experiment(3), experiment(4));  // seeds change the schedule
}

TEST(MachineTest, AtomicCoherenceCosts)
{
    Machine m(2);
    std::uint64_t local_hit_time = 0, remote_time = 0;
    auto shared = std::make_shared<Atomic<int>>(0);
    m.spawn(0, [&, shared] {
        shared->store(1);  // miss: first touch
        const std::uint64_t t0 = now();
        shared->store(2);  // owned: cache hit
        local_hit_time = now() - t0;
        delay(10000);      // let cpu1 take the line
        const std::uint64_t t1 = now();
        shared->store(3);  // must invalidate cpu1's copy
        remote_time = now() - t1;
    });
    m.spawn(1, [shared] {
        delay(2000);
        (void)shared->load();  // become a sharer
        delay(20000);
    });
    m.run();
    EXPECT_EQ(local_hit_time, m.costs().cache_hit);
    EXPECT_GT(remote_time, local_hit_time * 2);
}

TEST(MachineTest, InvalidationCostScalesWithSharers)
{
    auto release_cost = [](std::uint32_t sharers) {
        Machine m(sharers + 1);
        auto flag = std::make_shared<Atomic<int>>(0);
        auto cost = std::make_shared<std::uint64_t>(0);
        for (std::uint32_t p = 1; p <= sharers; ++p)
            m.spawn(p, [flag] { (void)flag->load(); });
        m.spawn(0, [flag, cost] {
            delay(5000);  // after all sharers cached the line
            const std::uint64_t t0 = now();
            flag->store(1);
            *cost = now() - t0;
        });
        m.run();
        return *cost;
    };
    const std::uint64_t few = release_cost(2);
    const std::uint64_t many = release_cost(32);
    EXPECT_GT(many, few + 100);  // sequential invalidations + overflow trap
}

TEST(MachineTest, FullMapDirectoryCheaperThanLimited)
{
    auto storm = [](CostModel cm) {
        Machine m(33, cm);
        auto flag = std::make_shared<Atomic<int>>(0);
        auto cost = std::make_shared<std::uint64_t>(0);
        for (std::uint32_t p = 1; p <= 32; ++p)
            m.spawn(p, [flag] { (void)flag->load(); });
        m.spawn(0, [flag, cost] {
            delay(5000);
            const std::uint64_t t0 = now();
            flag->store(1);
            *cost = now() - t0;
        });
        m.run();
        return *cost;
    };
    EXPECT_LT(storm(CostModel::dirnnb()), storm(CostModel::alewife()));
}

TEST(MachineTest, MessagesDeliveredInOrder)
{
    Machine m(2);
    auto log = std::make_shared<std::vector<int>>();
    m.spawn(0, [&m, log] {
        m.send(1, [log] { log->push_back(1); });
        m.send(1, [log] { log->push_back(2); });
        m.send(1, [log] { log->push_back(3); });
        delay(1000);
    });
    m.spawn(1, [] { delay(2000); });
    m.run();
    EXPECT_EQ(*log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(m.stats().messages, 3u);
    EXPECT_EQ(m.stats().handlers, 3u);
}

TEST(MachineTest, MessageRoundTrip)
{
    Machine m(2);
    auto reply_flag = std::make_shared<Atomic<int>>(0);
    std::uint64_t rtt = 0;
    m.spawn(0, [&, reply_flag] {
        const std::uint64_t t0 = now();
        m.send(1, [&m, reply_flag] {
            // Handler runs on cpu 1; reply to cpu 0.
            m.send(0, [reply_flag] { reply_flag->store(1); });
        });
        while (reply_flag->load() == 0)
            pause();
        rtt = now() - t0;
    });
    m.run();
    const auto& c = m.costs();
    EXPECT_GE(rtt, 2u * (c.msg_send_overhead + c.msg_latency));
    EXPECT_EQ(m.stats().handlers, 2u);
}

TEST(MachineTest, MessageToSelfDelivered)
{
    Machine m(1);
    auto got = std::make_shared<Atomic<int>>(0);
    m.spawn(0, [&m, got] {
        m.send(0, [got] { got->store(1); });
        while (got->load() == 0)
            pause();
    });
    m.run();
    EXPECT_EQ(got->load(), 1);
}

TEST(MachineTest, WaitQueueBlocksAndWakes)
{
    Machine m(2, CostModel::alewife());
    auto q = std::make_shared<SimWaitQueue>();
    auto data = std::make_shared<Atomic<int>>(0);
    auto observed = std::make_shared<int>(-1);
    m.spawn(0, [q, data, observed] {
        for (;;) {
            std::uint32_t e = q->prepare_wait();
            if (data->load() != 0) {
                q->cancel_wait();
                break;
            }
            q->commit_wait(e);
        }
        *observed = data->load();
    });
    m.spawn(1, [q, data] {
        delay(5000);
        data->store(7);
        q->notify_one();
    });
    m.run();
    EXPECT_EQ(*observed, 7);
    EXPECT_EQ(m.stats().blocks, 1u);
    EXPECT_EQ(m.stats().wakes, 1u);
    // The blocked waiter must not have burned cycles while blocked: its
    // processor clock restarts near the waker's notification time.
    EXPECT_GT(m.cycles(0), 5000u);
}

TEST(MachineTest, BlockingCostMatchesTable41)
{
    // One thread blocks, another wakes it; the wakee's processor should
    // be charged roughly unload + reload, and the waker reenable.
    Machine m(2);
    auto q = std::make_shared<SimWaitQueue>();
    auto flag = std::make_shared<Atomic<int>>(0);
    m.spawn(0, [q, flag] {
        std::uint32_t e = q->prepare_wait();
        if (flag->load() == 0)
            q->commit_wait(e);
        else
            q->cancel_wait();
    });
    m.spawn(1, [q, flag] {
        delay(3000);
        flag->store(1);
        q->notify_one();
    });
    m.run();
    const auto& c = m.costs();
    EXPECT_GE(c.blocking_cost(), 400u);  // ~500 cycles on Alewife
    EXPECT_LE(c.blocking_cost(), 600u);
    EXPECT_EQ(m.stats().blocks, 1u);
}

TEST(MachineTest, NotifyAllWakesEveryone)
{
    Machine m(5);
    auto q = std::make_shared<SimWaitQueue>();
    auto go = std::make_shared<Atomic<int>>(0);
    auto woke = std::make_shared<Atomic<int>>(0);
    for (std::uint32_t p = 1; p < 5; ++p) {
        m.spawn(p, [q, go, woke] {
            for (;;) {
                std::uint32_t e = q->prepare_wait();
                if (go->load() != 0) {
                    q->cancel_wait();
                    break;
                }
                q->commit_wait(e);
            }
            woke->fetch_add(1);
        });
    }
    m.spawn(0, [q, go] {
        delay(10000);
        go->store(1);
        q->notify_all();
    });
    m.run();
    EXPECT_EQ(woke->load(), 4);
}

TEST(MachineTest, WaitQueueCountsAdvertisedWaitersLikeNative)
{
    // waiters() mirrors the native eventcounts (platform/parker.hpp):
    // the count moves at prepare_wait (the advertisement), not at the
    // block, and is retracted by cancel_wait or when the committed
    // wait resolves. A releaser consulting the count during the
    // prepare/commit window therefore sees the waiter — the semantics
    // wait_site.hpp's sim-side notify skip is sound under. (The old
    // drift — sim counting only *blocked* waiters — would make that
    // skip strand a preparing waiter on its stale epoch snapshot.)
    SimWaitQueue q;
    EXPECT_EQ(q.waiters(), 0u);
    std::uint32_t e = q.prepare_wait();
    EXPECT_EQ(q.waiters(), 1u);
    q.cancel_wait();
    EXPECT_EQ(q.waiters(), 0u);
    e = q.prepare_wait();
    q.notify_one();              // epoch moves inside the window
    EXPECT_EQ(q.waiters(), 1u);  // advertised until the wait resolves
    q.commit_wait(e);            // stale epoch: returns, no block
    EXPECT_EQ(q.waiters(), 0u);
}

TEST(MachineTest, NotifyInsidePrepareCommitWindowIsSeenInSim)
{
    // Sim counterpart of EventCountContractTest's race-window test: a
    // notify landing between prepare_wait and commit_wait must make
    // commit_wait return via the epoch re-check, and the notifier
    // consulting waiters() inside that window must see the preparing
    // waiter advertised. Together these are what make "skip the
    // notify when waiters() == 0" exact in the sequential simulation.
    Machine m(2);
    auto q = std::make_shared<SimWaitQueue>();
    auto seen = std::make_shared<std::uint32_t>(99);
    m.spawn(0, [q] {
        std::uint32_t e = q->prepare_wait();
        delay(5000);        // hold the prepare/commit window open
        q->commit_wait(e);  // a lost wakeup would deadlock the run
    });
    m.spawn(1, [q, seen] {
        delay(1000);  // land inside the waiter's window
        *seen = q->waiters();
        q->notify_all();
    });
    m.run();  // the deadlock detector is the lost-wakeup canary
    EXPECT_EQ(*seen, 1u);
}

TEST(MachineTest, DeadlockDetected)
{
    Machine m(1);
    auto q = std::make_shared<SimWaitQueue>();
    m.spawn(0, [q] {
        std::uint32_t e = q->prepare_wait();
        q->commit_wait(e);  // nobody will ever notify
    });
    EXPECT_THROW(m.run(), std::runtime_error);
}

TEST(MachineTest, MultithreadedContextsShareProcessor)
{
    CostModel cm = CostModel::multithreaded(4);
    Machine m(1, cm);
    auto log = std::make_shared<std::vector<int>>();
    for (int t = 0; t < 3; ++t) {
        m.spawn(0, [&m, log, t] {
            for (int i = 0; i < 3; ++i) {
                log->push_back(t);
                m.context_switch();
            }
        });
    }
    m.run();
    ASSERT_EQ(log->size(), 9u);
    // Context switching must interleave the three resident threads.
    EXPECT_EQ((*log)[0], 0);
    EXPECT_EQ((*log)[1], 1);
    EXPECT_EQ((*log)[2], 2);
    EXPECT_GT(m.stats().context_switches, 0u);
}

TEST(MachineTest, SpawnFromInsideSim)
{
    Machine m(2);
    auto sum = std::make_shared<Atomic<int>>(0);
    m.spawn(0, [&m, sum] {
        for (int i = 0; i < 3; ++i)
            m.spawn(1, [sum] { sum->fetch_add(1); });
        delay(100);
    });
    m.run();
    EXPECT_EQ(sum->load(), 3);
    EXPECT_EQ(m.stats().threads_spawned, 4u);
}

TEST(MachineTest, ReadySpilloverRunsSequentially)
{
    // More threads than hardware contexts on one processor: all must
    // still complete (loaded as slots free up).
    Machine m(1);  // 1 hardware context
    auto count = std::make_shared<Atomic<int>>(0);
    for (int t = 0; t < 5; ++t)
        m.spawn(0, [count] {
            delay(100);
            count->fetch_add(1);
        });
    m.run();
    EXPECT_EQ(count->load(), 5);
}

// ---- topology (two-level NUMA cost model) -----------------------------

TEST(TopologyTest, SocketMappingCoversRaggedLastSocket)
{
    Machine m(10, Topology{3, 4});
    EXPECT_EQ(m.sockets(), 3u);
    EXPECT_EQ(m.cores_per_socket(), 4u);
    EXPECT_EQ(m.socket_of(0), 0u);
    EXPECT_EQ(m.socket_of(3), 0u);
    EXPECT_EQ(m.socket_of(4), 1u);
    EXPECT_EQ(m.socket_of(9), 2u);

    Machine derived(12, Topology{4, 0});  // cores_per_socket derived
    EXPECT_EQ(derived.cores_per_socket(), 3u);
    EXPECT_EQ(derived.socket_of(11), 3u);

    // More sockets than processors clamps (no empty socket can hold a
    // processor).
    Machine tiny(2, Topology{8, 0});
    EXPECT_EQ(tiny.sockets(), 2u);
}

/// Shared-contention kernel for the invariance tests: every processor
/// hammers one line and one private line with seeded think time.
std::uint64_t topology_kernel(Machine& m, std::uint32_t procs)
{
    auto hot = std::make_shared<Atomic<std::uint32_t>>(0);
    auto flags = std::make_shared<std::vector<std::unique_ptr<
        Atomic<std::uint32_t>>>>();
    for (std::uint32_t p = 0; p < procs; ++p)
        flags->push_back(std::make_unique<Atomic<std::uint32_t>>(0));
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (int i = 0; i < 40; ++i) {
                hot->fetch_add(1);
                (void)hot->load();
                (*flags)[p]->store(static_cast<std::uint32_t>(i));
                delay(random_below(200));
            }
        });
    }
    m.run();
    return m.elapsed();
}

TEST(TopologyTest, FlatTopologyIsByteIdenticalAndTrafficFree)
{
    // The explicit one-socket topology must change *nothing*: same
    // cycles, same memory-op and miss counts as the historical flat
    // constructor, and the cross-socket counters never fire.
    constexpr std::uint32_t kProcs = 12;
    Machine flat(kProcs, CostModel::alewife(), 7);
    const std::uint64_t flat_elapsed = topology_kernel(flat, kProcs);

    Machine one(kProcs, Topology{1, 0}, CostModel::alewife(), 7);
    EXPECT_EQ(topology_kernel(one, kProcs), flat_elapsed);
    EXPECT_EQ(one.stats().mem_ops, flat.stats().mem_ops);
    EXPECT_EQ(one.stats().remote_misses, flat.stats().remote_misses);
    EXPECT_EQ(one.stats().invalidations, flat.stats().invalidations);
    EXPECT_EQ(one.stats().cross_socket_transfers, 0u);
    EXPECT_EQ(one.stats().cross_socket_invalidations, 0u);
    EXPECT_EQ(flat.stats().cross_socket_transfers, 0u);
}

TEST(TopologyTest, ZeroedExtrasMakeSocketsCostNeutral)
{
    // The topology layer itself adds zero traffic and zero cost: a
    // two-socket machine whose cross-socket extras are zeroed produces
    // byte-identical cycles and op counts to the flat machine — the
    // only difference is that the cross-socket *counters* now see the
    // traffic the extras would have charged.
    constexpr std::uint32_t kProcs = 12;
    Machine flat(kProcs, CostModel::alewife(), 9);
    const std::uint64_t flat_elapsed = topology_kernel(flat, kProcs);

    CostModel zeroed = CostModel::alewife();
    zeroed.cross_socket_extra = 0;
    zeroed.invalidate_cross_extra = 0;
    Machine numa(kProcs, Topology{2, 6}, zeroed, 9);
    EXPECT_EQ(topology_kernel(numa, kProcs), flat_elapsed);
    EXPECT_EQ(numa.stats().mem_ops, flat.stats().mem_ops);
    EXPECT_EQ(numa.stats().remote_misses, flat.stats().remote_misses);
    EXPECT_GT(numa.stats().cross_socket_transfers, 0u);
}

TEST(TopologyTest, CrossSocketFetchCostsExtra)
{
    // cpu0 dirties a line; a reader on another socket pays the
    // two-level extra over a same-socket reader.
    auto read_cost = [](std::uint32_t reader) {
        Machine m(4, Topology{2, 2});
        auto line = std::make_shared<Atomic<std::uint32_t>>(0);
        auto cost = std::make_shared<std::uint64_t>(0);
        m.spawn(0, [line] { line->store(1); });
        m.spawn(reader, [line, cost] {
            delay(5000);
            const std::uint64_t t0 = now();
            (void)line->load();
            *cost = now() - t0;
        });
        m.run();
        return *cost;
    };
    const std::uint64_t intra = read_cost(1);   // same socket as writer
    const std::uint64_t cross = read_cost(2);   // other socket
    // Jitter is [0,4); the extra is 50.
    EXPECT_GE(cross, intra + CostModel{}.cross_socket_extra - 4);
}

TEST(TopologyTest, CrossSocketInvalidationCostsExtra)
{
    // A writer invalidating sharers pays per-copy extras only for the
    // sharers on other sockets.
    auto write_cost = [](std::uint32_t writer) {
        Machine m(6, Topology{2, 3});
        auto line = std::make_shared<Atomic<std::uint32_t>>(0);
        auto cost = std::make_shared<std::uint64_t>(0);
        for (std::uint32_t p = 0; p < 6; ++p) {
            if (p == writer)
                continue;
            m.spawn(p, [line] { (void)line->load(); });
        }
        m.spawn(writer, [line, cost] {
            delay(5000);
            const std::uint64_t t0 = now();
            line->store(7);
            *cost = now() - t0;
        });
        m.run();
        return std::pair(*cost, m.stats().cross_socket_invalidations);
    };
    const auto [c0, x0] = write_cost(0);
    (void)c0;
    EXPECT_EQ(x0, 3u);  // three sharers live on socket 1
}

TEST(SimPlatformTest, CurrentSocketTracksTopology)
{
    Machine m(4, Topology{2, 2});
    std::vector<std::uint32_t> seen(4, 99);
    for (std::uint32_t p = 0; p < 4; ++p)
        m.spawn(p, [&seen, p] { seen[p] = SimPlatform::current_socket(); });
    m.run();
    EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 0, 1, 1}));
    EXPECT_EQ(SimPlatform::current_socket(), 0u);  // outside any sim
    EXPECT_EQ(SimPlatform::socket_count(), 1u);
}

TEST(SimPlatformTest, SatisfiesPlatformConcept)
{
    static_assert(reactive::Platform<SimPlatform>);
    SUCCEED();
}

TEST(SimPlatformTest, NowAndDelayInsideSim)
{
    Machine m(1);
    std::uint64_t t0 = 0, t1 = 0;
    m.spawn(0, [&] {
        t0 = SimPlatform::now();
        SimPlatform::delay(777);
        t1 = SimPlatform::now();
    });
    m.run();
    EXPECT_EQ(t1 - t0, 777u);
}

TEST(SimPlatformTest, AtomicOutsideSimIsDirect)
{
    Atomic<int> a(5);
    EXPECT_EQ(a.load(), 5);
    a.store(6);
    EXPECT_EQ(a.exchange(7), 6);
    int expected = 7;
    EXPECT_TRUE(a.compare_exchange_strong(expected, 8));
    EXPECT_EQ(a.fetch_add(2), 8);
    EXPECT_EQ(a.load(), 10);
}

}  // namespace
}  // namespace reactive::sim
