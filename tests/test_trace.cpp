/**
 * @file
 * Tracing layer acceptance (ISSUE: observability PR).
 *
 * Compiled with REACTIVE_TRACE forced on (this TU defines it before
 * any include), which is the point: the same headers every other test
 * compiles with the layer off are exercised here with it on.
 *
 *  - TraceRing unit tests: wrap-around, drop-oldest accounting by
 *    victim class, incremental drain ordering, metric-shard counters.
 *  - Switch-storm audit: a forced-switch lock run on the simulator must
 *    leave a switch-event trail that reconstructs the policy's actual
 *    decision sequence event-for-event (chain-connected, alternating,
 *    count == protocol_changes(), endpoint == final protocol).
 *  - Zero overhead: the same simulated workload with tracing
 *    runtime-disabled vs enabled produces identical elapsed cycles and
 *    identical machine mem-op counts (the layer touches host memory
 *    only). The compiled-out half of the guarantee is checked in CI by
 *    byte-diffing fig_calibration output across build modes.
 *  - Native storm: a writer thread publishing while another drains;
 *    every delivered event self-consistent and in order. Runs under
 *    TSan in CI.
 */
#define REACTIVE_TRACE 1

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <fstream>
#include <iterator>
#include <string>

#include "apps/workloads.hpp"
#include "barrier/reactive_barrier.hpp"
#include "core/cost_model.hpp"
#include "core/policy.hpp"
#include "core/reactive_mutex.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"
#include "trace/export.hpp"
#include "trace/instrument.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

using namespace reactive;
using sim::SimPlatform;

namespace {

static_assert(trace::kCompiled, "this TU must compile the tracing layer in");

trace::Event make_event(std::uint64_t i,
                        trace::ObjectClass cls = trace::ObjectClass::kLock,
                        trace::EventType type = trace::EventType::kAcqSample)
{
    trace::Event e;
    e.ts = 1000 + i;
    e.object = 7;
    e.type = type;
    e.cls = cls;
    e.from = static_cast<std::uint8_t>(i % 2);
    e.to = static_cast<std::uint8_t>((i + 1) % 2);
    e.a0 = i;
    e.a1 = i * 3 + 1;
    e.a2 = ~i;
    return e;
}

// ---- TraceRing unit tests ---------------------------------------------

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(trace::TraceRing(1).capacity(), 16u);
    EXPECT_EQ(trace::TraceRing(16).capacity(), 16u);
    EXPECT_EQ(trace::TraceRing(17).capacity(), 32u);
    EXPECT_EQ(trace::TraceRing(8192).capacity(), 8192u);
}

TEST(TraceRingTest, DrainDeliversInPublishOrder)
{
    trace::TraceRing ring(64);
    for (std::uint64_t i = 0; i < 10; ++i)
        ring.publish(make_event(i));
    std::vector<trace::Event> got;
    EXPECT_EQ(ring.drain([&](const trace::Event& e) { got.push_back(e); }),
              10u);
    ASSERT_EQ(got.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(got[i].a0, i);
        EXPECT_EQ(got[i].a1, i * 3 + 1);
        EXPECT_EQ(got[i].a2, ~i);
        EXPECT_EQ(got[i].ts, 1000 + i);
        EXPECT_EQ(got[i].object, 7u);
    }
    // Nothing left; a second drain is empty.
    EXPECT_EQ(ring.drain([](const trace::Event&) {}), 0u);
    EXPECT_EQ(ring.total_drops(), 0u);
}

TEST(TraceRingTest, IncrementalDrainsResumeWhereTheyStopped)
{
    trace::TraceRing ring(32);
    for (std::uint64_t i = 0; i < 5; ++i)
        ring.publish(make_event(i));
    std::vector<std::uint64_t> got;
    ring.drain([&](const trace::Event& e) { got.push_back(e.a0); });
    for (std::uint64_t i = 5; i < 8; ++i)
        ring.publish(make_event(i));
    ring.drain([&](const trace::Event& e) { got.push_back(e.a0); });
    ASSERT_EQ(got.size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(TraceRingTest, WrapAroundKeepsNewestAndCountsDropsByClass)
{
    trace::TraceRing ring(16);  // exact power of two
    // 40 events: 24 oldest must be dropped. Alternate victim classes so
    // the per-class accounting is visible: even i = kLock, odd i =
    // kBarrier.
    for (std::uint64_t i = 0; i < 40; ++i)
        ring.publish(make_event(i, i % 2 == 0 ? trace::ObjectClass::kLock
                                              : trace::ObjectClass::kBarrier));
    std::vector<trace::Event> got;
    EXPECT_EQ(ring.drain([&](const trace::Event& e) { got.push_back(e); }),
              16u);
    ASSERT_EQ(got.size(), 16u);
    for (std::uint64_t i = 0; i < 16; ++i)
        EXPECT_EQ(got[i].a0, 24 + i) << "oldest dropped, newest kept";
    EXPECT_EQ(ring.total_drops(), 24u);
    // Victims were events 0..23: 12 even (kLock), 12 odd (kBarrier).
    EXPECT_EQ(ring.drops(trace::ObjectClass::kLock), 12u);
    EXPECT_EQ(ring.drops(trace::ObjectClass::kBarrier), 12u);
    EXPECT_EQ(ring.published(), 40u);
}

TEST(TraceRingTest, MetricShardCountsEveryPublishDespiteDrops)
{
    using ET = trace::EventType;
    using OC = trace::ObjectClass;
    using M = trace::Metric;
    trace::TraceRing ring(16);
    for (std::uint64_t i = 0; i < 100; ++i)
        ring.publish(make_event(i, OC::kLock, ET::kAcqSample));
    ring.publish(make_event(100, OC::kLock, ET::kFastAcquire));
    ring.publish(make_event(101, OC::kLock, ET::kSwitch));
    {
        trace::Event probe_won = make_event(102, OC::kBarrier, ET::kProbeEnd);
        probe_won.a0 = 1;
        ring.publish(probe_won);
        trace::Event probe_lost = make_event(103, OC::kBarrier, ET::kProbeEnd);
        probe_lost.a0 = 0;
        ring.publish(probe_lost);
    }
    // The counters are exact even though the 16-slot ring dropped most
    // of the 105 events.
    EXPECT_EQ(ring.counter(OC::kLock, M::kAcquisitions), 101u);
    EXPECT_EQ(ring.counter(OC::kLock, M::kFastPathWins), 1u);
    EXPECT_EQ(ring.counter(OC::kLock, M::kSwitches), 1u);
    EXPECT_EQ(ring.counter(OC::kBarrier, M::kProbesWon), 1u);
    EXPECT_EQ(ring.counter(OC::kBarrier, M::kProbesLost), 1u);
    EXPECT_GT(ring.total_drops(), 0u);
}

// ---- registry / emit path ---------------------------------------------

TEST(TraceRegistryTest, EmitIsIgnoredUntilEnabledAndCaptureDrains)
{
    trace::reset();
    trace::set_enabled(false);
    // Instrumentation sites always check enabled() first; emulate that
    // contract here.
    if (trace::enabled())
        trace::emit(make_event(0));
    trace::set_enabled(true);
    if (trace::enabled())
        trace::emit(make_event(1));
    trace::set_enabled(false);

    const trace::Capture cap = trace::capture();
    ASSERT_EQ(cap.events.size(), 1u);
    EXPECT_EQ(cap.events[0].e.a0, 1u);
    trace::reset();
}

TEST(TraceRegistryTest, ResetDropsRecordedEventsAndRingCapacityApplies)
{
    trace::reset(/*ring_capacity=*/16);
    trace::set_enabled(true);
    for (std::uint64_t i = 0; i < 50; ++i)
        trace::emit(make_event(i));
    trace::set_enabled(false);
    trace::Capture cap = trace::capture();
    EXPECT_EQ(cap.events.size(), 16u) << "reset() capacity must apply";
    EXPECT_EQ(cap.total_dropped, 34u);
    trace::reset();
    cap = trace::capture();
    EXPECT_TRUE(cap.events.empty()) << "reset() must drop recorded events";
}

// ---- switch-storm audit trail -----------------------------------------

using StormLockSim = ReactiveNodeLock<SimPlatform, AlwaysSwitchPolicy>;

TEST(TraceAuditTest, SwitchTrailMatchesPolicyDecisionsEventForEvent)
{
    trace::reset();
    trace::set_enabled(true);
    // Optimistic TTS wins bypass the policy (by design), which would
    // starve the queue->TTS signal in the solo rounds; the storm wants
    // every acquisition voting.
    ReactiveLockParams storm_params;
    storm_params.optimistic_tts = false;
    auto lock = std::make_shared<StormLockSim>(storm_params);
    // Forced-switch storm: contended rounds drive TTS -> queue, solo
    // rounds drain the queue empty and drive it back (AlwaysSwitchPolicy
    // switches on the first contended TTS acquisition and after 4 empty
    // queue acquisitions). The lock carries across rounds; the trail is
    // harvested per sub-run because each run is its own machine with
    // its own cycle clock (capture() orders by timestamp, which is only
    // meaningful within one machine's lifetime).
    std::vector<trace::Event> switches;
    std::uint64_t dropped = 0, metric_switches = 0;
    const auto harvest = [&] {
        const trace::Capture cap = trace::capture();
        // Ring drop/metric counters are lifetime-cumulative, so the
        // last harvest holds the storm-wide totals.
        dropped = cap.total_dropped;
        metric_switches = cap.metrics.counter(trace::ObjectClass::kLock,
                                              trace::Metric::kSwitches);
        std::uint64_t last_ts = 0;
        for (const trace::CapturedEvent& ce : cap.events) {
            EXPECT_GE(ce.e.ts, last_ts) << "capture must be time-ordered";
            last_ts = ce.e.ts;
            if (ce.e.type == trace::EventType::kSwitch)
                switches.push_back(ce.e);
        }
    };
    for (int round = 0; round < 4; ++round) {
        apps::run_lock_cycle<StormLockSim>(8, 60, /*cs=*/100, /*think=*/0,
                                           /*seed=*/1 + round, lock);
        harvest();
        apps::run_lock_cycle<StormLockSim>(1, 40, /*cs=*/100, /*think=*/300,
                                           /*seed=*/100 + round, lock);
        harvest();
    }
    trace::set_enabled(false);

    const std::uint64_t truth = lock->inner().protocol_changes();
    ASSERT_GE(truth, 4u) << "storm workload must actually switch";
    EXPECT_EQ(dropped, 0u) << "default ring must hold the whole storm";

    // Event-for-event: one trail entry per completed protocol change...
    ASSERT_EQ(switches.size(), truth);
    // ...chain-connected from the initial protocol (TTS = 0) with
    // strict alternation (the set has two protocols)...
    std::uint8_t current = 0;
    for (const trace::Event& e : switches) {
        EXPECT_EQ(e.cls, trace::ObjectClass::kLock);
        EXPECT_EQ(e.from, current) << "audit chain must connect";
        EXPECT_NE(e.to, e.from);
        current = e.to;
    }
    // ...and ending on the protocol the lock actually runs.
    EXPECT_EQ(current, lock->inner().protocol_index());
    // The metric rollup agrees with the trail.
    EXPECT_EQ(metric_switches, truth);
    trace::reset();
}

using LadderBarrierSim = ReactiveBarrier<SimPlatform, CalibratedLadderPolicy>;

TEST(TraceAuditTest, BarrierTrailCountsSwitchesAndEpisodes)
{
    trace::reset();
    trace::set_enabled(true);
    CalibratedLadderPolicy::Params pp;
    pp.probe_period = 8;
    pp.probe_len = 2;
    auto bar = std::make_shared<LadderBarrierSim>(
        16, ReactiveBarrierParams{}, CalibratedLadderPolicy(pp));
    apps::run_barrier_uniform<LadderBarrierSim>(16, 150, /*compute=*/100,
                                                /*seed=*/1, bar);
    trace::set_enabled(false);

    const trace::Capture cap = trace::capture();
    std::uint64_t switches = 0, episodes = 0;
    std::uint8_t current = 0;
    for (const trace::CapturedEvent& ce : cap.events) {
        if (ce.e.cls != trace::ObjectClass::kBarrier)
            continue;
        if (ce.e.type == trace::EventType::kSwitch) {
            EXPECT_EQ(ce.e.from, current) << "audit chain must connect";
            current = ce.e.to;
            ++switches;
        } else if (ce.e.type == trace::EventType::kEpisode) {
            ++episodes;
        }
    }
    EXPECT_EQ(switches, bar->protocol_changes());
    EXPECT_EQ(current, bar->protocol_index());
    EXPECT_GT(episodes, 0u) << "episode cost samples must be recorded";
    EXPECT_LE(episodes, 150u);
    trace::reset();
}

// ---- zero-overhead guarantee ------------------------------------------

using CalStormLockSim =
    ReactiveNodeLock<SimPlatform, CalibratedCompetitive3Policy>;

std::uint64_t traced_run(bool tracing_on, sim::MachineStats* stats)
{
    trace::reset();
    trace::set_enabled(tracing_on);
    CalibratedCompetitive3Policy::Params pp;
    pp.costs = CostEstimator::Params::mis_tuned_eager();
    auto lock = std::make_shared<CalStormLockSim>(
        ReactiveLockParams{}, CalibratedCompetitive3Policy(pp));
    const std::uint64_t elapsed = apps::run_lock_cycle<CalStormLockSim>(
        8, 300, /*cs=*/50, /*think=*/400, /*seed=*/1, lock, {}, stats);
    trace::set_enabled(false);
    return elapsed;
}

TEST(TraceOverheadTest, RecordingPerturbsNeitherScheduleNorTraffic)
{
    // The trace layer must be invisible to the simulated machine: same
    // elapsed cycles, same memory-operation counts, whether recording
    // or not. (It reuses timestamps the primitives already took and
    // writes only host memory.)
    sim::MachineStats off{}, on{};
    const std::uint64_t elapsed_off = traced_run(false, &off);
    const std::uint64_t elapsed_on = traced_run(true, &on);

    EXPECT_EQ(elapsed_off, elapsed_on);
    EXPECT_EQ(off.mem_ops, on.mem_ops);
    EXPECT_EQ(off.remote_misses, on.remote_misses);
    EXPECT_EQ(off.invalidations, on.invalidations);
    EXPECT_EQ(off.messages, on.messages);

    // And the traced run did record a useful decision history.
    const trace::Capture cap = trace::capture();
    EXPECT_GT(cap.events.size(), 0u);
    trace::reset();
}

// ---- native concurrent drain-while-recording storm --------------------

TEST(TraceStormTest, ConcurrentDrainNeverTearsOrReorders)
{
    // One writer publishing directly into a small ring while a reader
    // drains in a loop: every delivered event must be self-consistent
    // (payload invariant intact) and strictly in publish order; the
    // accounting must cover every published event. TSan (CI job) checks
    // the memory model; the asserts check the seqlock logic.
    trace::TraceRing ring(64);
    constexpr std::uint64_t kEvents = 200000;
    std::atomic<bool> done{false};
    std::uint64_t delivered = 0;
    std::uint64_t last_a0 = 0;
    bool first = true;
    std::uint64_t torn = 0, reordered = 0;

    std::thread reader([&] {
        const auto check = [&](const trace::Event& e) {
            if (e.a1 != e.a0 * 3 + 1 || e.a2 != ~e.a0 || e.ts != 1000 + e.a0)
                ++torn;
            if (!first && e.a0 <= last_a0)
                ++reordered;
            first = false;
            last_a0 = e.a0;
            ++delivered;
        };
        while (!done.load(std::memory_order_acquire))
            ring.drain(check);
        ring.drain(check);  // final sweep
    });

    for (std::uint64_t i = 0; i < kEvents; ++i)
        ring.publish(make_event(i, i % 2 == 0 ? trace::ObjectClass::kLock
                                              : trace::ObjectClass::kCohort));
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(torn, 0u);
    EXPECT_EQ(reordered, 0u);
    EXPECT_GT(delivered, 0u);
    EXPECT_LE(delivered, kEvents);
    EXPECT_EQ(ring.published(), kEvents);
    // Drop accounting may overcount only when the writer overwrites a
    // slot the reader copied in the same instant (diagnostic-only
    // race, documented in publish()); it can never undercount.
    EXPECT_GE(delivered + ring.total_drops(), kEvents);
}

// ---- exporters --------------------------------------------------------

TEST(TraceExportTest, ChromeJsonAndAuditRoundTrip)
{
    trace::reset();
    trace::set_enabled(true);
    auto lock = std::make_shared<StormLockSim>();
    apps::run_lock_cycle<StormLockSim>(4, 100, /*cs=*/100, /*think=*/200,
                                       /*seed=*/1, lock);
    trace::set_enabled(false);

    // Write under the gtest temp dir, not the CWD, so test runs never
    // litter the repo root.
    const std::string json_path =
        ::testing::TempDir() + "test_trace_out.json";
    ASSERT_TRUE(trace::drain_to_json(json_path, json_path + ".audit"));

    std::ifstream json(json_path);
    ASSERT_TRUE(json.good());
    std::string text((std::istreambuf_iterator<char>(json)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"reactiveMetrics\""), std::string::npos);
    EXPECT_NE(text.find("\"switch\""), std::string::npos);
    EXPECT_NE(text.find("\"dropped_by_class\""), std::string::npos);
    EXPECT_NE(text.find("\"regret_samples\""), std::string::npos);

    std::ifstream audit(json_path + ".audit");
    ASSERT_TRUE(audit.good());
    std::string line;
    std::uint64_t switch_lines = 0;
    std::uint64_t comment_lines = 0;
    while (std::getline(audit, line)) {
        if (line.rfind("#", 0) == 0) {
            ++comment_lines;  // percentile / regret / drop footers
            continue;
        }
        EXPECT_EQ(line.rfind("t=", 0), 0u) << "audit line format";
        EXPECT_NE(line.find("lock"), std::string::npos);
        ++switch_lines;
    }
    EXPECT_EQ(switch_lines, lock->inner().protocol_changes());
    // The run sampled acquisitions, so the footer must carry at least
    // the lock latency percentile summary.
    EXPECT_GE(comment_lines, 1u);
    trace::reset();
}

TEST(TraceExportTest, EmptyCaptureStillWritesValidSkeleton)
{
    trace::reset();
    const std::string json_path =
        ::testing::TempDir() + "test_trace_empty.json";
    ASSERT_TRUE(trace::drain_to_json(json_path));
    std::ifstream json(json_path);
    std::string text((std::istreambuf_iterator<char>(json)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
