// Correctness tests for the passive fetch-and-op protocols: lock-based
// centralized counters and the software combining tree. The key
// property checked is linearizability of fetch-and-increment: with N
// increments of +1 from any mix of threads, the returned "prior" values
// must be exactly the set {initial, initial+1, ..., initial+N-1}.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "fetchop/combining_tree.hpp"
#include "fetchop/locked_fetch_op.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/tts_lock.hpp"
#include "platform/native_platform.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"

namespace reactive {
namespace {

using sim::SimPlatform;

template <typename F>
struct NeedsWidth : std::false_type {};
template <typename P>
struct NeedsWidth<CombiningFetchOp<P>> : std::true_type {};

template <typename F>
std::shared_ptr<F> make_fetchop(std::uint32_t width)
{
    if constexpr (NeedsWidth<F>::value)
        return std::make_shared<F>(width);
    else
        return std::make_shared<F>();
}

void expect_priors_are_permutation(std::vector<FetchOpValue> priors,
                                   FetchOpValue initial = 0)
{
    std::sort(priors.begin(), priors.end());
    for (std::size_t i = 0; i < priors.size(); ++i)
        ASSERT_EQ(priors[i], initial + static_cast<FetchOpValue>(i))
            << "prior values are not a dense permutation at index " << i;
}

// ---- native threads ---------------------------------------------------

template <typename F>
class NativeFetchOpTest : public ::testing::Test {};

using NativeFetchOpTypes = ::testing::Types<
    LockedFetchOp<NativePlatform, TtsLock<NativePlatform>>,
    LockedFetchOp<NativePlatform,
                  McsLock<NativePlatform, McsVariant::kFetchStore>>,
    CombiningFetchOp<NativePlatform>>;
TYPED_TEST_SUITE(NativeFetchOpTest, NativeFetchOpTypes);

TYPED_TEST(NativeFetchOpTest, SingleThreadSequence)
{
    auto f = make_fetchop<TypeParam>(8);
    typename TypeParam::Node node;
    for (FetchOpValue i = 0; i < 100; ++i)
        EXPECT_EQ(f->fetch_add(node, 1), i);
    EXPECT_EQ(f->read(), 100);
}

TYPED_TEST(NativeFetchOpTest, ConcurrentIncrementsAreLinearizable)
{
    const std::uint32_t threads =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    const std::uint32_t iters = 300;
    auto f = make_fetchop<TypeParam>(threads);
    std::vector<std::vector<FetchOpValue>> priors(threads);
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            typename TypeParam::Node node;
            for (std::uint32_t i = 0; i < iters; ++i)
                priors[t].push_back(f->fetch_add(node, 1));
        });
    }
    for (auto& th : pool)
        th.join();
    std::vector<FetchOpValue> all;
    for (auto& v : priors)
        all.insert(all.end(), v.begin(), v.end());
    expect_priors_are_permutation(std::move(all));
    EXPECT_EQ(f->read(), static_cast<FetchOpValue>(threads) * iters);
}

TYPED_TEST(NativeFetchOpTest, MixedDeltasSumCorrectly)
{
    const std::uint32_t threads = 3;
    auto f = make_fetchop<TypeParam>(threads);
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            typename TypeParam::Node node;
            for (int i = 0; i < 200; ++i)
                f->fetch_add(node, static_cast<FetchOpValue>(t + 1));
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(f->read(), 200 * (1 + 2 + 3));
}

// ---- simulated machine ------------------------------------------------

template <typename F>
void sim_fetchop_torture(std::uint32_t procs, std::uint32_t iters,
                         std::uint64_t seed = 1)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto f = make_fetchop<F>(procs);
    auto priors = std::make_shared<std::vector<FetchOpValue>>();
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename F::Node node;
            for (std::uint32_t i = 0; i < iters; ++i) {
                priors->push_back(f->fetch_add(node, 1));
                sim::delay(sim::random_below(120));
            }
        });
    }
    m.run();
    ASSERT_EQ(priors->size(), static_cast<std::size_t>(procs) * iters);
    expect_priors_are_permutation(std::move(*priors));
    EXPECT_EQ(f->read(), static_cast<FetchOpValue>(procs) * iters);
}

template <typename F>
class SimFetchOpTest : public ::testing::Test {};

using SimFetchOpTypes = ::testing::Types<
    LockedFetchOp<SimPlatform, TtsLock<SimPlatform>>,
    LockedFetchOp<SimPlatform, McsLock<SimPlatform, McsVariant::kFetchStore>>,
    CombiningFetchOp<SimPlatform>>;
TYPED_TEST_SUITE(SimFetchOpTest, SimFetchOpTypes);

TYPED_TEST(SimFetchOpTest, HighContentionLinearizable)
{
    sim_fetchop_torture<TypeParam>(32, 15);
}

TYPED_TEST(SimFetchOpTest, LowContentionLinearizable)
{
    sim_fetchop_torture<TypeParam>(2, 150);
}

TYPED_TEST(SimFetchOpTest, SeedSweep)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        sim_fetchop_torture<TypeParam>(12, 20, seed);
}

// ---- combining-tree specifics ------------------------------------------

TEST(CombiningTreeTest, CombiningActuallyHappens)
{
    // Under full contention, some batch reaching the root must carry
    // more than one request (that is the point of the tree).
    sim::Machine m(32);
    auto tree = std::make_shared<CombiningTree<SimPlatform>>(32);
    auto max_batch = std::make_shared<std::uint32_t>(0);
    for (std::uint32_t p = 0; p < 32; ++p) {
        m.spawn(p, [=] {
            typename CombiningTree<SimPlatform>::Node node;
            node.leaf = p;
            for (int i = 0; i < 30; ++i) {
                TreeResult r = tree->apply(node, 1);
                ASSERT_TRUE(r.ok);
                if (r.at_root)
                    *max_batch = std::max(*max_batch, r.combined);
            }
        });
    }
    m.run();
    EXPECT_EQ(tree->read(), 32 * 30);
    EXPECT_GT(*max_batch, 1u);
}

TEST(CombiningTreeTest, WidthRoundsToPowerOfTwo)
{
    CombiningTree<NativePlatform> t(5);
    EXPECT_EQ(t.width(), 8u);
    CombiningTree<NativePlatform> t1(1);
    EXPECT_EQ(t1.width(), 1u);
}

TEST(CombiningTreeTest, InitialValueRespected)
{
    CombiningTree<NativePlatform> t(4, 1000);
    typename CombiningTree<NativePlatform>::Node n;
    EXPECT_EQ(t.fetch_add(n, 5), 1000);
    EXPECT_EQ(t.read(), 1005);
}

TEST(CombiningTreeTest, InvalidRootRejectsAndPropagatesRetry)
{
    // With the root invalidated, every process in a combined batch must
    // observe ok == false and the value must stay untouched.
    sim::Machine m(8);
    auto tree = std::make_shared<CombiningTree<SimPlatform>>(8, 7);
    auto rejected = std::make_shared<int>(0);
    tree->invalidate();
    for (std::uint32_t p = 0; p < 8; ++p) {
        m.spawn(p, [=] {
            typename CombiningTree<SimPlatform>::Node node;
            node.leaf = p;
            TreeResult r = tree->apply(node, 1);
            if (!r.ok)
                ++*rejected;
        });
    }
    m.run();
    EXPECT_EQ(*rejected, 8);
    tree->validate(7);
    EXPECT_EQ(tree->read(), 7);
}

TEST(CombiningTreeTest, InvalidateValidateRoundTrip)
{
    CombiningTree<NativePlatform> t(4, 0);
    EXPECT_TRUE(t.is_valid());
    EXPECT_TRUE(t.invalidate());
    EXPECT_FALSE(t.is_valid());
    EXPECT_FALSE(t.invalidate());  // second invalidate loses
    t.validate(55);
    EXPECT_TRUE(t.is_valid());
    typename CombiningTree<NativePlatform>::Node n;
    EXPECT_EQ(t.fetch_add(n, 1), 55);
}

TEST(CombiningTreeTest, ThroughputScalesUnderContentionOnSim)
{
    // The defining shape from Figure 3.2: at high contention the
    // combining tree's per-op overhead must beat the TTS-lock counter's.
    auto run = []<typename F>(std::type_identity<F>, std::uint32_t procs) {
        sim::Machine m(procs);
        auto f = make_fetchop<F>(procs);
        const std::uint32_t iters = 20;
        for (std::uint32_t p = 0; p < procs; ++p) {
            m.spawn(p, [=] {
                typename F::Node node;
                for (std::uint32_t i = 0; i < iters; ++i) {
                    f->fetch_add(node, 1);
                    sim::delay(sim::random_below(100));
                }
            });
        }
        m.run();
        return static_cast<double>(m.elapsed()) / (procs * iters);
    };
    const double tree_cost =
        run(std::type_identity<CombiningFetchOp<SimPlatform>>{}, 64);
    const double lock_cost = run(
        std::type_identity<LockedFetchOp<SimPlatform, TtsLock<SimPlatform>>>{},
        64);
    EXPECT_LT(tree_cost, lock_cost);
}

}  // namespace
}  // namespace reactive
