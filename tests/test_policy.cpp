// Unit tests for the protocol-switching policies (src/core/policy.hpp):
// the distinguishing property of the 3-competitive policy is that its
// cumulative residual survives breaks in the signal streak, while
// hysteresis resets on any break; and on_switch() must clear the
// decision state of every policy.

#include <gtest/gtest.h>

#include "core/policy.hpp"
#include "core/protocol_set.hpp"

namespace reactive {
namespace {

// ---- Competitive3Policy ----------------------------------------------

TEST(Competitive3Test, AccumulatesResidualAcrossStreakBreaks)
{
    Competitive3Policy::Params params;
    params.residual_tts_contended = 150;
    params.residual_queue_empty = 15;
    params.switch_round_trip = 8800;
    Competitive3Policy p(params);

    // 30 contended acquisitions: residual builds but stays below the
    // switch threshold.
    for (int i = 0; i < 30; ++i)
        EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_EQ(p.cumulative_residual(), 30u * 150u);

    // A long run of uncontended acquisitions breaks the streak but must
    // NOT reset the accumulated residual (this is what separates the
    // competitive policy from hysteresis and yields the 3x bound).
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(p.on_tts_acquire(false));
    EXPECT_EQ(p.cumulative_residual(), 30u * 150u);

    // Resuming contended acquisitions continues from the old total:
    // ceil(8800/150) = 59 contended acquisitions trigger the switch.
    int trues = 30;
    bool switched = false;
    for (int i = 0; i < 40 && !switched; ++i) {
        switched = p.on_tts_acquire(true);
        ++trues;
    }
    EXPECT_TRUE(switched);
    EXPECT_EQ(trues, 59);
}

TEST(Competitive3Test, QueueResidualAccumulatesAcrossBreaks)
{
    Competitive3Policy::Params params;
    params.residual_queue_empty = 15;
    params.switch_round_trip = 8800;
    Competitive3Policy p(params);

    for (int i = 0; i < 200; ++i)
        EXPECT_FALSE(p.on_queue_acquire(true));
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(p.on_queue_acquire(false));  // break: no reset
    EXPECT_EQ(p.cumulative_residual(), 200u * 15u);

    // ceil(8800/15) = 587 empty acquisitions in total.
    int empties = 200;
    bool switched = false;
    while (!switched && empties < 1000) {
        switched = p.on_queue_acquire(true);
        ++empties;
    }
    EXPECT_TRUE(switched);
    EXPECT_EQ(empties, 587);
}

TEST(Competitive3Test, OnSwitchClearsResidual)
{
    Competitive3Policy p;
    for (int i = 0; i < 20; ++i)
        (void)p.on_tts_acquire(true);
    ASSERT_GT(p.cumulative_residual(), 0u);
    p.on_switch();
    EXPECT_EQ(p.cumulative_residual(), 0u);
    // Post-switch accounting starts from zero.
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_EQ(p.cumulative_residual(), 150u);
}

// ---- HysteresisPolicy ------------------------------------------------

TEST(HysteresisTest, AnyBreakResetsTheStreak)
{
    HysteresisPolicy p(/*to_queue_streak=*/3, /*to_tts_streak=*/2);

    // Two contended, a break, then two more: no switch (unlike the
    // competitive policy, the break discards all prior evidence).
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_FALSE(p.on_tts_acquire(false));
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_FALSE(p.on_tts_acquire(true));
    // The third consecutive contended acquisition completes the streak.
    EXPECT_TRUE(p.on_tts_acquire(true));
}

TEST(HysteresisTest, QueueStreakResetsOnNonEmpty)
{
    HysteresisPolicy p(/*to_queue_streak=*/3, /*to_tts_streak=*/2);
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(false));  // break
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_TRUE(p.on_queue_acquire(true));    // 2 consecutive empties
}

TEST(HysteresisTest, OnSwitchClearsBothStreaks)
{
    HysteresisPolicy p(/*to_queue_streak=*/2, /*to_tts_streak=*/2);
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    p.on_switch();
    // Both streaks must restart from zero.
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_TRUE(p.on_tts_acquire(true));
    p.on_switch();
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_TRUE(p.on_queue_acquire(true));
}

// ---- AlwaysSwitchPolicy ----------------------------------------------

TEST(AlwaysSwitchTest, TtsSignalSwitchesImmediately)
{
    AlwaysSwitchPolicy p;
    EXPECT_FALSE(p.on_tts_acquire(false));
    EXPECT_TRUE(p.on_tts_acquire(true));
}

TEST(AlwaysSwitchTest, EmptyStreakGuardsQueueSignal)
{
    AlwaysSwitchPolicy p(/*empty_streak_limit=*/4);
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(false));  // break resets
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_TRUE(p.on_queue_acquire(true));
}

TEST(AlwaysSwitchTest, OnSwitchClearsEmptyStreak)
{
    AlwaysSwitchPolicy p(/*empty_streak_limit=*/2);
    EXPECT_FALSE(p.on_queue_acquire(true));
    p.on_switch();
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_TRUE(p.on_queue_acquire(true));
}

// ---- SelectAdapter: binary policies as the two-protocol case ----------

TEST(SelectAdapterTest, MapsSignalsToHistoricalCallsAndFlipsIndex)
{
    // The adapter must reproduce Competitive3Policy's decision shape
    // through the index interface: ceil(8800/150) = 59 contended
    // protocol-0 observations switch to protocol 1, and drift-free
    // observations accumulate nothing.
    SelectAdapter<Competitive3Policy> a{Competitive3Policy{}};
    for (int i = 0; i < 58; ++i)
        EXPECT_EQ(a.next_protocol({0, +1}), 0u) << i;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_protocol({0, 0}), 0u);  // break: no reset
    EXPECT_EQ(a.next_protocol({0, +1}), 1u);
    a.on_switch();
    EXPECT_EQ(a.underlying().cumulative_residual(), 0u);
    // Queue-side: drift -1 maps to on_queue_acquire(empty=true).
    for (int i = 0; i < 586; ++i)
        EXPECT_EQ(a.next_protocol({1, -1}), 1u) << i;
    EXPECT_EQ(a.next_protocol({1, -1}), 0u);
}

// ---- LadderCompetitivePolicy ------------------------------------------

LadderCompetitivePolicy::Params ladder3(std::uint64_t residual,
                                        std::uint64_t round_trip)
{
    LadderCompetitivePolicy::Params p;
    p.protocols = 3;
    p.residual_up = residual;
    p.residual_down = residual;
    p.switch_round_trip = round_trip;
    return p;
}

TEST(LadderCompetitiveTest, AccountsSurviveRoundTripThroughThirdProtocol)
{
    // The N-ary accumulate-across-breaks property: evidence toward
    // protocol B gathered while running A must survive an A -> C -> A
    // round trip through a third protocol C. Here A = 1 (middle rung),
    // B = 0, C = 2.
    LadderCompetitivePolicy p(ladder3(/*residual=*/100, /*round_trip=*/1000));

    // Half an account of evidence toward B = 0.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(p.next_protocol({1, -1}), 1u);
    EXPECT_EQ(p.account(0), 500u);

    // Up-drift drives A -> C; C's account is consumed by the move.
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(p.next_protocol({1, +1}), 1u);
    EXPECT_EQ(p.next_protocol({1, +1}), 2u);
    p.on_switch();
    EXPECT_EQ(p.account(2), 0u);

    // Down-drift at C drives C -> A (credits the adjacent rung 1).
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(p.next_protocol({2, -1}), 2u);
    EXPECT_EQ(p.next_protocol({2, -1}), 1u);
    p.on_switch();

    // B's account survived the round trip through C ...
    EXPECT_EQ(p.account(0), 500u);
    // ... so completing it needs only the other half, not a restart.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(p.next_protocol({1, -1}), 1u);
    EXPECT_EQ(p.next_protocol({1, -1}), 0u);
}

TEST(LadderCompetitiveTest, DriftAtLadderEndsAccumulatesNothing)
{
    LadderCompetitivePolicy p(ladder3(100, 300));
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(p.next_protocol({0, -1}), 0u);  // no rung below 0
        EXPECT_EQ(p.next_protocol({2, +1}), 2u);  // no rung above top
    }
    EXPECT_EQ(p.account(0), 0u);
    EXPECT_EQ(p.account(1), 0u);
    EXPECT_EQ(p.account(2), 0u);
}

TEST(LadderCompetitiveTest, TwoProtocolLadderMirrorsCompetitive3Shape)
{
    // With N = 2 and the thesis constants, the ladder reproduces the
    // 3-competitive switch points through the index interface.
    LadderCompetitivePolicy::Params params;
    params.protocols = 2;
    params.residual_up = 150;
    params.residual_down = 15;
    params.switch_round_trip = 8800;
    LadderCompetitivePolicy p(params);
    int ups = 0;
    while (p.next_protocol({0, +1}) == 0 && ups < 100)
        ++ups;
    EXPECT_EQ(ups + 1, 59);  // ceil(8800/150)
    p.on_switch();
    int downs = 0;
    while (p.next_protocol({1, -1}) == 1 && downs < 1000)
        ++downs;
    EXPECT_EQ(downs + 1, 587);  // ceil(8800/15)
}

// ---- CalibratedLadderPolicy -------------------------------------------

CalibratedLadderPolicy::Params measured3()
{
    CalibratedLadderPolicy::Params p;
    p.protocols = 3;
    p.probe_period = 0;  // isolate the drift-triggered mechanics
    p.probe_len = 2;
    p.drift_residual = 150;
    p.drift_round_trip = 300;
    p.adopt_margin_pct = 5;
    return p;
}

TEST(CalibratedLadderTest, DriftProbeAdoptsOnMeasuredTie)
{
    // Sustained drift triggers an excursion; on a measurement tie the
    // drift evidence wins and the probed rung is adopted (the skewed
    // regime costs the same spread on every rung — the signal is the
    // only discriminator).
    CalibratedLadderPolicy p(measured3());
    EXPECT_EQ(p.next_protocol({0, +1}, 1000), 0u);
    EXPECT_EQ(p.next_protocol({0, +1}, 1000), 1u);  // account full: probe
    p.on_switch();
    EXPECT_TRUE(p.probing());
    EXPECT_EQ(p.next_protocol({1, 0}, 5000), 1u);  // discarded cold sample
    EXPECT_EQ(p.next_protocol({1, 0}, 1010), 1u);  // tie within margin
    EXPECT_FALSE(p.probing());
    EXPECT_EQ(p.home(), 1u);
    EXPECT_EQ(p.adoptions(), 1u);
}

TEST(CalibratedLadderTest, DriftProbeReturnsHomeWhenMeasuredWorse)
{
    CalibratedLadderPolicy p(measured3());
    EXPECT_EQ(p.next_protocol({0, +1}, 1000), 0u);
    EXPECT_EQ(p.next_protocol({0, +1}, 1000), 1u);
    p.on_switch();
    EXPECT_EQ(p.next_protocol({1, 0}, 9000), 1u);   // discarded
    EXPECT_EQ(p.next_protocol({1, 0}, 2000), 0u);   // worse: go home
    p.on_switch();
    EXPECT_EQ(p.home(), 0u);
    EXPECT_EQ(p.adoptions(), 0u);
    // The failed excursion doubled the destination's evidence bar:
    // the same two drifting observations no longer trigger a probe.
    EXPECT_EQ(p.next_protocol({0, +1}, 1000), 0u);
    EXPECT_EQ(p.next_protocol({0, +1}, 1000), 0u);
}

TEST(CalibratedLadderTest, FirstSampleAfterSwitchIsDiscarded)
{
    CalibratedLadderPolicy::Params params = measured3();
    CalibratedLadderPolicy p(params);
    EXPECT_EQ(p.next_protocol({0, 0}, 700), 0u);
    EXPECT_EQ(p.latency(0), 700u);
    p.on_switch();  // e.g. an external mode change
    EXPECT_EQ(p.next_protocol({0, 0}, 100000), 0u);  // cold: discarded
    EXPECT_EQ(p.latency(0), 700u);
    EXPECT_EQ(p.next_protocol({0, 0}, 700), 0u);
    EXPECT_EQ(p.latency(0), 700u);
}

}  // namespace
}  // namespace reactive
