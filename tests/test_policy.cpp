// Unit tests for the protocol-switching policies (src/core/policy.hpp):
// the distinguishing property of the 3-competitive policy is that its
// cumulative residual survives breaks in the signal streak, while
// hysteresis resets on any break; and on_switch() must clear the
// decision state of every policy.

#include <gtest/gtest.h>

#include "core/policy.hpp"

namespace reactive {
namespace {

// ---- Competitive3Policy ----------------------------------------------

TEST(Competitive3Test, AccumulatesResidualAcrossStreakBreaks)
{
    Competitive3Policy::Params params;
    params.residual_tts_contended = 150;
    params.residual_queue_empty = 15;
    params.switch_round_trip = 8800;
    Competitive3Policy p(params);

    // 30 contended acquisitions: residual builds but stays below the
    // switch threshold.
    for (int i = 0; i < 30; ++i)
        EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_EQ(p.cumulative_residual(), 30u * 150u);

    // A long run of uncontended acquisitions breaks the streak but must
    // NOT reset the accumulated residual (this is what separates the
    // competitive policy from hysteresis and yields the 3x bound).
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(p.on_tts_acquire(false));
    EXPECT_EQ(p.cumulative_residual(), 30u * 150u);

    // Resuming contended acquisitions continues from the old total:
    // ceil(8800/150) = 59 contended acquisitions trigger the switch.
    int trues = 30;
    bool switched = false;
    for (int i = 0; i < 40 && !switched; ++i) {
        switched = p.on_tts_acquire(true);
        ++trues;
    }
    EXPECT_TRUE(switched);
    EXPECT_EQ(trues, 59);
}

TEST(Competitive3Test, QueueResidualAccumulatesAcrossBreaks)
{
    Competitive3Policy::Params params;
    params.residual_queue_empty = 15;
    params.switch_round_trip = 8800;
    Competitive3Policy p(params);

    for (int i = 0; i < 200; ++i)
        EXPECT_FALSE(p.on_queue_acquire(true));
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(p.on_queue_acquire(false));  // break: no reset
    EXPECT_EQ(p.cumulative_residual(), 200u * 15u);

    // ceil(8800/15) = 587 empty acquisitions in total.
    int empties = 200;
    bool switched = false;
    while (!switched && empties < 1000) {
        switched = p.on_queue_acquire(true);
        ++empties;
    }
    EXPECT_TRUE(switched);
    EXPECT_EQ(empties, 587);
}

TEST(Competitive3Test, OnSwitchClearsResidual)
{
    Competitive3Policy p;
    for (int i = 0; i < 20; ++i)
        (void)p.on_tts_acquire(true);
    ASSERT_GT(p.cumulative_residual(), 0u);
    p.on_switch();
    EXPECT_EQ(p.cumulative_residual(), 0u);
    // Post-switch accounting starts from zero.
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_EQ(p.cumulative_residual(), 150u);
}

// ---- HysteresisPolicy ------------------------------------------------

TEST(HysteresisTest, AnyBreakResetsTheStreak)
{
    HysteresisPolicy p(/*to_queue_streak=*/3, /*to_tts_streak=*/2);

    // Two contended, a break, then two more: no switch (unlike the
    // competitive policy, the break discards all prior evidence).
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_FALSE(p.on_tts_acquire(false));
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_FALSE(p.on_tts_acquire(true));
    // The third consecutive contended acquisition completes the streak.
    EXPECT_TRUE(p.on_tts_acquire(true));
}

TEST(HysteresisTest, QueueStreakResetsOnNonEmpty)
{
    HysteresisPolicy p(/*to_queue_streak=*/3, /*to_tts_streak=*/2);
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(false));  // break
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_TRUE(p.on_queue_acquire(true));    // 2 consecutive empties
}

TEST(HysteresisTest, OnSwitchClearsBothStreaks)
{
    HysteresisPolicy p(/*to_queue_streak=*/2, /*to_tts_streak=*/2);
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    p.on_switch();
    // Both streaks must restart from zero.
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_TRUE(p.on_tts_acquire(true));
    p.on_switch();
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_TRUE(p.on_queue_acquire(true));
}

// ---- AlwaysSwitchPolicy ----------------------------------------------

TEST(AlwaysSwitchTest, TtsSignalSwitchesImmediately)
{
    AlwaysSwitchPolicy p;
    EXPECT_FALSE(p.on_tts_acquire(false));
    EXPECT_TRUE(p.on_tts_acquire(true));
}

TEST(AlwaysSwitchTest, EmptyStreakGuardsQueueSignal)
{
    AlwaysSwitchPolicy p(/*empty_streak_limit=*/4);
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(false));  // break resets
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_TRUE(p.on_queue_acquire(true));
}

TEST(AlwaysSwitchTest, OnSwitchClearsEmptyStreak)
{
    AlwaysSwitchPolicy p(/*empty_streak_limit=*/2);
    EXPECT_FALSE(p.on_queue_acquire(true));
    p.on_switch();
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_TRUE(p.on_queue_acquire(true));
}

}  // namespace
}  // namespace reactive
