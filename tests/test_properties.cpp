// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// the core invariants checked across grids of processor counts, seeds,
// cost models, and algorithm parameters.
//
//  - mutual exclusion and completion for every lock protocol,
//  - fetch-and-increment linearizability (dense prior permutation),
//  - reactive consistency: protocol changes never lose or duplicate
//    operations,
//  - two-phase waiting cost bounds: measured waiting cost of a replayed
//    distribution never exceeds the competitive bound,
//  - determinism: same seed => same simulated elapsed time.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "core/cohort_queue.hpp"
#include "core/reactive_fetch_op.hpp"
#include "core/reactive_mutex.hpp"
#include "fetchop/combining_tree.hpp"
#include "fetchop/locked_fetch_op.hpp"
#include "locks/anderson_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/tas_lock.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/tts_lock.hpp"
#include "platform/prng.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"
#include "theory/waiting_cost.hpp"

namespace reactive {
namespace {

using sim::SimPlatform;

// ---- lock exclusion sweep ---------------------------------------------

enum class LockKind {
    kTas,
    kTts,
    kMcsFs,
    kMcsCas,
    kTicket,
    kAnderson,
    kReactiveAlways,
    kReactiveCompetitive,
    kReactiveHysteresis,
};

const char* lock_kind_name(LockKind k)
{
    switch (k) {
    case LockKind::kTas: return "tas";
    case LockKind::kTts: return "tts";
    case LockKind::kMcsFs: return "mcs_fs";
    case LockKind::kMcsCas: return "mcs_cas";
    case LockKind::kTicket: return "ticket";
    case LockKind::kAnderson: return "anderson";
    case LockKind::kReactiveAlways: return "reactive_always";
    case LockKind::kReactiveCompetitive: return "reactive_competitive";
    default: return "reactive_hysteresis";
    }
}

using LockSweepParam = std::tuple<LockKind, std::uint32_t, std::uint64_t>;

std::string lock_param_name(
    const ::testing::TestParamInfo<LockSweepParam>& info)
{
    return std::string(lock_kind_name(std::get<0>(info.param))) + "_p" +
           std::to_string(std::get<1>(info.param)) + "_s" +
           std::to_string(std::get<2>(info.param));
}

template <typename L>
void lock_exclusion_property(std::uint32_t procs, std::uint64_t seed,
                             std::shared_ptr<L> lock)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto inside = std::make_shared<int>(0);
    auto violations = std::make_shared<int>(0);
    auto count = std::make_shared<long>(0);
    const std::uint32_t iters = 200 / procs + 10;
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                typename L::Node node;
                lock->lock(node);
                if (++*inside != 1)
                    ++*violations;
                sim::delay(5 + sim::random_below(60));
                if (*inside != 1)
                    ++*violations;
                --*inside;
                ++*count;
                lock->unlock(node);
                sim::delay(sim::random_below(120));
            }
        });
    }
    m.run();
    EXPECT_EQ(*violations, 0);
    EXPECT_EQ(*count, static_cast<long>(procs) * iters);
}

class LockExclusionSweep : public ::testing::TestWithParam<LockSweepParam> {};

TEST_P(LockExclusionSweep, HoldsMutualExclusion)
{
    const auto [kind, procs, seed] = GetParam();
    switch (kind) {
    case LockKind::kTas:
        lock_exclusion_property(procs, seed,
                                std::make_shared<TasLock<SimPlatform>>());
        break;
    case LockKind::kTts:
        lock_exclusion_property(procs, seed,
                                std::make_shared<TtsLock<SimPlatform>>());
        break;
    case LockKind::kMcsFs:
        lock_exclusion_property(
            procs, seed,
            std::make_shared<McsLock<SimPlatform, McsVariant::kFetchStore>>());
        break;
    case LockKind::kMcsCas:
        lock_exclusion_property(
            procs, seed,
            std::make_shared<
                McsLock<SimPlatform, McsVariant::kCompareSwap>>());
        break;
    case LockKind::kTicket:
        lock_exclusion_property(procs, seed,
                                std::make_shared<TicketLock<SimPlatform>>());
        break;
    case LockKind::kAnderson:
        lock_exclusion_property(
            procs, seed, std::make_shared<AndersonLock<SimPlatform>>(procs));
        break;
    case LockKind::kReactiveAlways:
        lock_exclusion_property(
            procs, seed,
            std::make_shared<ReactiveNodeLock<SimPlatform>>());
        break;
    case LockKind::kReactiveCompetitive:
        lock_exclusion_property(
            procs, seed,
            std::make_shared<
                ReactiveNodeLock<SimPlatform, Competitive3Policy>>());
        break;
    case LockKind::kReactiveHysteresis:
        lock_exclusion_property(
            procs, seed,
            std::make_shared<ReactiveNodeLock<SimPlatform, HysteresisPolicy>>(
                ReactiveLockParams{}, HysteresisPolicy(4, 8)));
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllLocks, LockExclusionSweep,
    ::testing::Combine(
        ::testing::Values(LockKind::kTas, LockKind::kTts, LockKind::kMcsFs,
                          LockKind::kMcsCas, LockKind::kTicket,
                          LockKind::kAnderson, LockKind::kReactiveAlways,
                          LockKind::kReactiveCompetitive,
                          LockKind::kReactiveHysteresis),
        ::testing::Values(2u, 5u, 16u), ::testing::Values(1ull, 42ull)),
    lock_param_name);

// ---- fetch-op linearizability sweep -------------------------------------

enum class FopKind { kTtsLock, kQueueLock, kTree, kReactive };

using FopSweepParam = std::tuple<FopKind, std::uint32_t, std::uint64_t>;

std::string fop_param_name(const ::testing::TestParamInfo<FopSweepParam>& info)
{
    static const char* names[] = {"ttslock", "queuelock", "tree", "reactive"};
    return std::string(names[static_cast<int>(std::get<0>(info.param))]) +
           "_p" + std::to_string(std::get<1>(info.param)) + "_s" +
           std::to_string(std::get<2>(info.param));
}

template <typename F>
void fop_linearizability_property(std::uint32_t procs, std::uint64_t seed,
                                  std::shared_ptr<F> f)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto priors = std::make_shared<std::vector<FetchOpValue>>();
    const std::uint32_t iters = 160 / procs + 8;
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename F::Node node;
            for (std::uint32_t i = 0; i < iters; ++i) {
                priors->push_back(f->fetch_add(node, 1));
                sim::delay(sim::random_below(150));
            }
        });
    }
    m.run();
    std::sort(priors->begin(), priors->end());
    for (std::size_t i = 0; i < priors->size(); ++i)
        ASSERT_EQ((*priors)[i], static_cast<FetchOpValue>(i));
    EXPECT_EQ(f->read(), static_cast<FetchOpValue>(procs) * iters);
}

class FetchOpLinearizabilitySweep
    : public ::testing::TestWithParam<FopSweepParam> {};

TEST_P(FetchOpLinearizabilitySweep, DensePriorPermutation)
{
    const auto [kind, procs, seed] = GetParam();
    switch (kind) {
    case FopKind::kTtsLock:
        fop_linearizability_property(
            procs, seed,
            std::make_shared<LockedFetchOp<SimPlatform, TtsLock<SimPlatform>>>());
        break;
    case FopKind::kQueueLock:
        fop_linearizability_property(
            procs, seed,
            std::make_shared<LockedFetchOp<
                SimPlatform, McsLock<SimPlatform, McsVariant::kFetchStore>>>());
        break;
    case FopKind::kTree:
        fop_linearizability_property(
            procs, seed, std::make_shared<CombiningFetchOp<SimPlatform>>(procs));
        break;
    case FopKind::kReactive: {
        ReactiveFetchOpParams params;
        params.queue_wait_limit = 600;  // force the full protocol ladder
        fop_linearizability_property(
            procs, seed,
            std::make_shared<ReactiveFetchOp<SimPlatform>>(procs, 0, params));
        break;
    }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFetchOps, FetchOpLinearizabilitySweep,
    ::testing::Combine(::testing::Values(FopKind::kTtsLock,
                                         FopKind::kQueueLock, FopKind::kTree,
                                         FopKind::kReactive),
                       ::testing::Values(2u, 8u, 24u),
                       ::testing::Values(3ull, 77ull)),
    fop_param_name);

// ---- cohort queue fairness sweep ----------------------------------------
//
// The cohort queue's explicit fairness bound (core/cohort_queue.hpp):
// once a remote waiter is enqueued in the global queue, at most B
// critical sections complete under the serving socket before the
// global lock is handed over — so with two sockets it acquires within
// B+1 lock grants of its global enqueue, including its own. The sweep
// drives an *adversarial all-local arrival stream* (the serving
// socket's waiters re-acquire with zero think time, so the local queue
// is never empty and only the budget can end a batch) against a lone
// remote waiter, across budgets and seeds, and checks the exact bound
// on the deterministic simulator (grants() and Node::enqueue_grants
// are exact there).

using CohortFairnessParam = std::tuple<std::uint32_t, std::uint64_t>;

class CohortFairnessSweep
    : public ::testing::TestWithParam<CohortFairnessParam> {};

TEST_P(CohortFairnessSweep, RemoteWaiterAcquiresWithinBPlusOneGrants)
{
    const auto [budget, seed] = GetParam();
    constexpr std::uint32_t kLocals = 4;       // socket 0
    constexpr std::uint32_t kProcs = kLocals + 1;  // remote on socket 1
    constexpr int kRemoteAcqs = 12;
    sim::Machine m(kProcs, sim::Topology{2, kLocals},
                   sim::CostModel::alewife(), seed);
    CohortQueue<SimPlatform>::Params cp;
    cp.sockets = 2;
    cp.cohort_limit = budget;
    auto q = std::make_shared<CohortQueue<SimPlatform>>(true, cp);
    auto done = std::make_shared<sim::Atomic<std::uint32_t>>(0);
    auto max_gap = std::make_shared<std::uint64_t>(0);
    auto remote_acqs = std::make_shared<int>(0);
    for (std::uint32_t p = 0; p < kLocals; ++p) {
        m.spawn(p, [=] {
            CohortQueue<SimPlatform>::Node n;
            // The starvation canary: the stream outlasts the remote
            // waiter unless the budget hands the lock across (the cap
            // only bounds a *failing* run so it terminates and fails
            // the assertions instead of wedging the suite).
            for (int i = 0; i < 100000 && done->load() == 0; ++i) {
                (void)q->acquire(n);
                sim::delay(40);
                q->release(n);
            }
        });
    }
    m.spawn(kLocals, [=] {
        for (int i = 0; i < kRemoteAcqs; ++i) {
            CohortQueue<SimPlatform>::Node n;
            (void)q->acquire(n);
            const std::uint64_t gap = q->grants() - n.enqueue_grants;
            if (gap > *max_gap)
                *max_gap = gap;
            ++*remote_acqs;
            sim::delay(40);
            q->release(n);
            sim::delay(500);
        }
        done->store(1);
    });
    m.run();
    EXPECT_EQ(*remote_acqs, kRemoteAcqs);
    EXPECT_LE(*max_gap, static_cast<std::uint64_t>(budget) + 1)
        << "B=" << budget << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndSeeds, CohortFairnessSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1ull, 7ull, 42ull, 1234ull)),
    [](const ::testing::TestParamInfo<CohortFairnessParam>& info) {
        return "B" + std::to_string(std::get<0>(info.param)) + "_s" +
               std::to_string(std::get<1>(info.param));
    });

// ---- cohort queue auto-budget fairness sweep ----------------------------
//
// With auto_budget on, the per-socket batch budget floats between
// budget_min and budget_max — one step per cohort grant, driven by the
// local depth the releasing holder reads for free — and the fairness
// constant becomes (sockets - 1) x (budget_max + 1). The same
// adversarial all-local stream as above now faces the *worst* budget
// the resizer could legally reach, so the sweep checks the dynamic
// bound, not the static one.

class CohortAutoBudgetSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CohortAutoBudgetSweep, RemoteWaiterBoundedByBudgetMaxPlusOne)
{
    const std::uint64_t seed = GetParam();
    constexpr std::uint32_t kLocals = 4;       // socket 0
    constexpr std::uint32_t kProcs = kLocals + 1;  // remote on socket 1
    constexpr int kRemoteAcqs = 12;
    sim::Machine m(kProcs, sim::Topology{2, kLocals},
                   sim::CostModel::alewife(), seed);
    CohortQueue<SimPlatform>::Params cp;
    cp.sockets = 2;
    cp.auto_budget = true;
    cp.budget_min = 2;
    cp.budget_max = 6;
    auto q = std::make_shared<CohortQueue<SimPlatform>>(true, cp);
    auto done = std::make_shared<sim::Atomic<std::uint32_t>>(0);
    auto max_gap = std::make_shared<std::uint64_t>(0);
    auto remote_acqs = std::make_shared<int>(0);
    for (std::uint32_t p = 0; p < kLocals; ++p) {
        m.spawn(p, [=] {
            CohortQueue<SimPlatform>::Node n;
            for (int i = 0; i < 100000 && done->load() == 0; ++i) {
                (void)q->acquire(n);
                sim::delay(40);
                q->release(n);
            }
        });
    }
    m.spawn(kLocals, [=] {
        for (int i = 0; i < kRemoteAcqs; ++i) {
            CohortQueue<SimPlatform>::Node n;
            (void)q->acquire(n);
            const std::uint64_t gap = q->grants() - n.enqueue_grants;
            if (gap > *max_gap)
                *max_gap = gap;
            ++*remote_acqs;
            sim::delay(40);
            q->release(n);
            sim::delay(500);
        }
        done->store(1);
    });
    m.run();
    EXPECT_EQ(*remote_acqs, kRemoteAcqs);
    EXPECT_LE(*max_gap, static_cast<std::uint64_t>(cp.budget_max) + 1)
        << "budget_max=" << cp.budget_max << " seed=" << seed;
    // The resizer must have kept every socket's budget inside its
    // clamp (the invariant the bound's constant rests on).
    for (std::uint32_t s = 0; s < 2; ++s) {
        EXPECT_GE(q->socket_budget(s), cp.budget_min) << "socket " << s;
        EXPECT_LE(q->socket_budget(s), cp.budget_max) << "socket " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CohortAutoBudgetSweep,
    ::testing::Values(1ull, 7ull, 42ull, 1234ull),
    [](const ::testing::TestParamInfo<std::uint64_t>& info) {
        return "s" + std::to_string(info.param);
    });

// ---- cohort queue exclusion / reactive-switch storms --------------------

TEST(CohortQueueProperties, MutualExclusionAcrossTopologies)
{
    for (const std::uint32_t sockets : {1u, 2u, 3u}) {
        for (const std::uint32_t procs : {4u, 9u}) {
            for (const std::uint64_t seed : {1ull, 42ull}) {
                sim::Machine m(procs, sim::Topology{sockets, 0},
                               sim::CostModel::alewife(), seed);
                CohortQueue<SimPlatform>::Params cp;
                cp.sockets = sockets;
                auto q = std::make_shared<CohortQueue<SimPlatform>>(true,
                                                                    cp);
                auto inside = std::make_shared<int>(0);
                auto violations = std::make_shared<int>(0);
                auto count = std::make_shared<long>(0);
                const std::uint32_t iters = 200 / procs + 10;
                for (std::uint32_t p = 0; p < procs; ++p) {
                    m.spawn(p, [=] {
                        for (std::uint32_t i = 0; i < iters; ++i) {
                            CohortQueue<SimPlatform>::Node node;
                            (void)q->acquire(node);
                            if (++*inside != 1)
                                ++*violations;
                            sim::delay(5 + sim::random_below(60));
                            if (*inside != 1)
                                ++*violations;
                            --*inside;
                            ++*count;
                            q->release(node);
                            sim::delay(sim::random_below(120));
                        }
                    });
                }
                m.run();
                EXPECT_EQ(*violations, 0)
                    << "S=" << sockets << " P=" << procs << " seed=" << seed;
                EXPECT_EQ(*count, static_cast<long>(procs) * iters);
            }
        }
    }
}

TEST(CohortQueueProperties, ReactiveSwitchStormOverCohortQueue)
{
    // Forced frequent protocol changes TTS <-> cohort queue: every
    // third observed acquisition switches, exercising
    // acquire_invalid/invalidate (the reactive consensus dialect) on
    // the two-level queue under a socketed machine.
    struct Metronome {
        std::uint32_t n = 0;
        bool on_tts_acquire(bool) { return ++n % 3 == 0; }
        bool on_queue_acquire(bool) { return ++n % 3 == 0; }
        void on_switch() {}
    };
    using RL = ReactiveNodeLock<SimPlatform, Metronome,
                                CohortQueue<SimPlatform>>;
    for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
        sim::Machine m(8, sim::Topology{2, 4}, sim::CostModel::alewife(),
                       seed);
        CohortQueue<SimPlatform>::Params cp;
        cp.sockets = 2;
        auto lock = std::make_shared<RL>(ReactiveLockParams{}, Metronome{},
                                         cp);
        auto inside = std::make_shared<int>(0);
        auto violations = std::make_shared<int>(0);
        auto count = std::make_shared<long>(0);
        for (std::uint32_t p = 0; p < 8; ++p) {
            m.spawn(p, [=] {
                for (int i = 0; i < 40; ++i) {
                    typename RL::Node node;
                    lock->lock(node);
                    if (++*inside != 1)
                        ++*violations;
                    sim::delay(30);
                    --*inside;
                    ++*count;
                    lock->unlock(node);
                    sim::delay(sim::random_below(150));
                }
            });
        }
        m.run();
        EXPECT_EQ(*violations, 0) << "seed " << seed;
        EXPECT_EQ(*count, 320);
        EXPECT_GT(lock->inner().protocol_changes(), 10u) << "seed " << seed;
    }
}

// ---- two-phase waiting bound sweep --------------------------------------

using WaitBoundParam = std::tuple<double, double>;  // alpha, mean/B

class TwoPhaseBoundSweep : public ::testing::TestWithParam<WaitBoundParam> {};

TEST_P(TwoPhaseBoundSweep, ReplayNeverExceedsWorstCaseBound)
{
    const auto [alpha, mean_over_b] = GetParam();
    theory::WaitCosts costs{500.0, 1.0};
    theory::ExponentialWait w{mean_over_b * costs.block_cost};
    const double replayed =
        theory::replay_two_phase(w, alpha, costs, 200000, 11);
    const double opt = theory::expected_optimal_cost(w, costs);
    const double bound = theory::worst_case_factor<theory::ExponentialWait>(
        alpha, costs);
    // Monte Carlo noise allowance of 3%.
    EXPECT_LE(replayed / opt, bound * 1.03)
        << "alpha " << alpha << " mean/B " << mean_over_b;
}

INSTANTIATE_TEST_SUITE_P(
    AlphaTimesMean, TwoPhaseBoundSweep,
    ::testing::Combine(::testing::Values(0.25, 0.5413, 1.0),
                       ::testing::Values(0.1, 0.5, 1.0, 3.0, 20.0)),
    [](const ::testing::TestParamInfo<WaitBoundParam>& info) {
        auto s = "a" + std::to_string(std::get<0>(info.param)) + "_m" +
                 std::to_string(std::get<1>(info.param));
        for (auto& c : s)
            if (c == '.')
                c = '_';
        return s;
    });

// ---- determinism sweep ----------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, SameSeedSameElapsed)
{
    const std::uint64_t seed = GetParam();
    auto experiment = [&] {
        sim::Machine m(12, sim::CostModel::alewife(), seed);
        auto lock = std::make_shared<ReactiveNodeLock<SimPlatform>>();
        for (std::uint32_t p = 0; p < 12; ++p) {
            m.spawn(p, [=] {
                for (int i = 0; i < 25; ++i) {
                    typename ReactiveNodeLock<SimPlatform>::Node n;
                    lock->lock(n);
                    sim::delay(50);
                    lock->unlock(n);
                    sim::delay(sim::random_below(200));
                }
            });
        }
        m.run();
        return m.elapsed();
    };
    EXPECT_EQ(experiment(), experiment());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(1ull, 7ull, 123ull, 9999ull));

}  // namespace
}  // namespace reactive
