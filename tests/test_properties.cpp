// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// the core invariants checked across grids of processor counts, seeds,
// cost models, and algorithm parameters.
//
//  - mutual exclusion and completion for every lock protocol,
//  - fetch-and-increment linearizability (dense prior permutation),
//  - reactive consistency: protocol changes never lose or duplicate
//    operations,
//  - two-phase waiting cost bounds: measured waiting cost of a replayed
//    distribution never exceeds the competitive bound,
//  - determinism: same seed => same simulated elapsed time.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "core/reactive_fetch_op.hpp"
#include "core/reactive_mutex.hpp"
#include "fetchop/combining_tree.hpp"
#include "fetchop/locked_fetch_op.hpp"
#include "locks/anderson_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/tas_lock.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/tts_lock.hpp"
#include "platform/prng.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"
#include "theory/waiting_cost.hpp"

namespace reactive {
namespace {

using sim::SimPlatform;

// ---- lock exclusion sweep ---------------------------------------------

enum class LockKind {
    kTas,
    kTts,
    kMcsFs,
    kMcsCas,
    kTicket,
    kAnderson,
    kReactiveAlways,
    kReactiveCompetitive,
    kReactiveHysteresis,
};

const char* lock_kind_name(LockKind k)
{
    switch (k) {
    case LockKind::kTas: return "tas";
    case LockKind::kTts: return "tts";
    case LockKind::kMcsFs: return "mcs_fs";
    case LockKind::kMcsCas: return "mcs_cas";
    case LockKind::kTicket: return "ticket";
    case LockKind::kAnderson: return "anderson";
    case LockKind::kReactiveAlways: return "reactive_always";
    case LockKind::kReactiveCompetitive: return "reactive_competitive";
    default: return "reactive_hysteresis";
    }
}

using LockSweepParam = std::tuple<LockKind, std::uint32_t, std::uint64_t>;

std::string lock_param_name(
    const ::testing::TestParamInfo<LockSweepParam>& info)
{
    return std::string(lock_kind_name(std::get<0>(info.param))) + "_p" +
           std::to_string(std::get<1>(info.param)) + "_s" +
           std::to_string(std::get<2>(info.param));
}

template <typename L>
void lock_exclusion_property(std::uint32_t procs, std::uint64_t seed,
                             std::shared_ptr<L> lock)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto inside = std::make_shared<int>(0);
    auto violations = std::make_shared<int>(0);
    auto count = std::make_shared<long>(0);
    const std::uint32_t iters = 200 / procs + 10;
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                typename L::Node node;
                lock->lock(node);
                if (++*inside != 1)
                    ++*violations;
                sim::delay(5 + sim::random_below(60));
                if (*inside != 1)
                    ++*violations;
                --*inside;
                ++*count;
                lock->unlock(node);
                sim::delay(sim::random_below(120));
            }
        });
    }
    m.run();
    EXPECT_EQ(*violations, 0);
    EXPECT_EQ(*count, static_cast<long>(procs) * iters);
}

class LockExclusionSweep : public ::testing::TestWithParam<LockSweepParam> {};

TEST_P(LockExclusionSweep, HoldsMutualExclusion)
{
    const auto [kind, procs, seed] = GetParam();
    switch (kind) {
    case LockKind::kTas:
        lock_exclusion_property(procs, seed,
                                std::make_shared<TasLock<SimPlatform>>());
        break;
    case LockKind::kTts:
        lock_exclusion_property(procs, seed,
                                std::make_shared<TtsLock<SimPlatform>>());
        break;
    case LockKind::kMcsFs:
        lock_exclusion_property(
            procs, seed,
            std::make_shared<McsLock<SimPlatform, McsVariant::kFetchStore>>());
        break;
    case LockKind::kMcsCas:
        lock_exclusion_property(
            procs, seed,
            std::make_shared<
                McsLock<SimPlatform, McsVariant::kCompareSwap>>());
        break;
    case LockKind::kTicket:
        lock_exclusion_property(procs, seed,
                                std::make_shared<TicketLock<SimPlatform>>());
        break;
    case LockKind::kAnderson:
        lock_exclusion_property(
            procs, seed, std::make_shared<AndersonLock<SimPlatform>>(procs));
        break;
    case LockKind::kReactiveAlways:
        lock_exclusion_property(
            procs, seed,
            std::make_shared<ReactiveNodeLock<SimPlatform>>());
        break;
    case LockKind::kReactiveCompetitive:
        lock_exclusion_property(
            procs, seed,
            std::make_shared<
                ReactiveNodeLock<SimPlatform, Competitive3Policy>>());
        break;
    case LockKind::kReactiveHysteresis:
        lock_exclusion_property(
            procs, seed,
            std::make_shared<ReactiveNodeLock<SimPlatform, HysteresisPolicy>>(
                ReactiveLockParams{}, HysteresisPolicy(4, 8)));
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllLocks, LockExclusionSweep,
    ::testing::Combine(
        ::testing::Values(LockKind::kTas, LockKind::kTts, LockKind::kMcsFs,
                          LockKind::kMcsCas, LockKind::kTicket,
                          LockKind::kAnderson, LockKind::kReactiveAlways,
                          LockKind::kReactiveCompetitive,
                          LockKind::kReactiveHysteresis),
        ::testing::Values(2u, 5u, 16u), ::testing::Values(1ull, 42ull)),
    lock_param_name);

// ---- fetch-op linearizability sweep -------------------------------------

enum class FopKind { kTtsLock, kQueueLock, kTree, kReactive };

using FopSweepParam = std::tuple<FopKind, std::uint32_t, std::uint64_t>;

std::string fop_param_name(const ::testing::TestParamInfo<FopSweepParam>& info)
{
    static const char* names[] = {"ttslock", "queuelock", "tree", "reactive"};
    return std::string(names[static_cast<int>(std::get<0>(info.param))]) +
           "_p" + std::to_string(std::get<1>(info.param)) + "_s" +
           std::to_string(std::get<2>(info.param));
}

template <typename F>
void fop_linearizability_property(std::uint32_t procs, std::uint64_t seed,
                                  std::shared_ptr<F> f)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto priors = std::make_shared<std::vector<FetchOpValue>>();
    const std::uint32_t iters = 160 / procs + 8;
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename F::Node node;
            for (std::uint32_t i = 0; i < iters; ++i) {
                priors->push_back(f->fetch_add(node, 1));
                sim::delay(sim::random_below(150));
            }
        });
    }
    m.run();
    std::sort(priors->begin(), priors->end());
    for (std::size_t i = 0; i < priors->size(); ++i)
        ASSERT_EQ((*priors)[i], static_cast<FetchOpValue>(i));
    EXPECT_EQ(f->read(), static_cast<FetchOpValue>(procs) * iters);
}

class FetchOpLinearizabilitySweep
    : public ::testing::TestWithParam<FopSweepParam> {};

TEST_P(FetchOpLinearizabilitySweep, DensePriorPermutation)
{
    const auto [kind, procs, seed] = GetParam();
    switch (kind) {
    case FopKind::kTtsLock:
        fop_linearizability_property(
            procs, seed,
            std::make_shared<LockedFetchOp<SimPlatform, TtsLock<SimPlatform>>>());
        break;
    case FopKind::kQueueLock:
        fop_linearizability_property(
            procs, seed,
            std::make_shared<LockedFetchOp<
                SimPlatform, McsLock<SimPlatform, McsVariant::kFetchStore>>>());
        break;
    case FopKind::kTree:
        fop_linearizability_property(
            procs, seed, std::make_shared<CombiningFetchOp<SimPlatform>>(procs));
        break;
    case FopKind::kReactive: {
        ReactiveFetchOpParams params;
        params.queue_wait_limit = 600;  // force the full protocol ladder
        fop_linearizability_property(
            procs, seed,
            std::make_shared<ReactiveFetchOp<SimPlatform>>(procs, 0, params));
        break;
    }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFetchOps, FetchOpLinearizabilitySweep,
    ::testing::Combine(::testing::Values(FopKind::kTtsLock,
                                         FopKind::kQueueLock, FopKind::kTree,
                                         FopKind::kReactive),
                       ::testing::Values(2u, 8u, 24u),
                       ::testing::Values(3ull, 77ull)),
    fop_param_name);

// ---- two-phase waiting bound sweep --------------------------------------

using WaitBoundParam = std::tuple<double, double>;  // alpha, mean/B

class TwoPhaseBoundSweep : public ::testing::TestWithParam<WaitBoundParam> {};

TEST_P(TwoPhaseBoundSweep, ReplayNeverExceedsWorstCaseBound)
{
    const auto [alpha, mean_over_b] = GetParam();
    theory::WaitCosts costs{500.0, 1.0};
    theory::ExponentialWait w{mean_over_b * costs.block_cost};
    const double replayed =
        theory::replay_two_phase(w, alpha, costs, 200000, 11);
    const double opt = theory::expected_optimal_cost(w, costs);
    const double bound = theory::worst_case_factor<theory::ExponentialWait>(
        alpha, costs);
    // Monte Carlo noise allowance of 3%.
    EXPECT_LE(replayed / opt, bound * 1.03)
        << "alpha " << alpha << " mean/B " << mean_over_b;
}

INSTANTIATE_TEST_SUITE_P(
    AlphaTimesMean, TwoPhaseBoundSweep,
    ::testing::Combine(::testing::Values(0.25, 0.5413, 1.0),
                       ::testing::Values(0.1, 0.5, 1.0, 3.0, 20.0)),
    [](const ::testing::TestParamInfo<WaitBoundParam>& info) {
        auto s = "a" + std::to_string(std::get<0>(info.param)) + "_m" +
                 std::to_string(std::get<1>(info.param));
        for (auto& c : s)
            if (c == '.')
                c = '_';
        return s;
    });

// ---- determinism sweep ----------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, SameSeedSameElapsed)
{
    const std::uint64_t seed = GetParam();
    auto experiment = [&] {
        sim::Machine m(12, sim::CostModel::alewife(), seed);
        auto lock = std::make_shared<ReactiveNodeLock<SimPlatform>>();
        for (std::uint32_t p = 0; p < 12; ++p) {
            m.spawn(p, [=] {
                for (int i = 0; i < 25; ++i) {
                    typename ReactiveNodeLock<SimPlatform>::Node n;
                    lock->lock(n);
                    sim::delay(50);
                    lock->unlock(n);
                    sim::delay(sim::random_below(200));
                }
            });
        }
        m.run();
        return m.elapsed();
    };
    EXPECT_EQ(experiment(), experiment());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(1ull, 7ull, 123ull, 9999ull));

}  // namespace
}  // namespace reactive
