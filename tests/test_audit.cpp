/**
 * @file
 * Decision-audit acceptance (ISSUE: decision-quality observability PR).
 *
 * Compiled with REACTIVE_TRACE forced on (audit rides the trace gate).
 *
 *  - Regret-counter exactness: record() arithmetic (clamp at zero),
 *    per-object attribution and worst-offender ordering, and the
 *    table-full overflow path folding into exact per-class totals.
 *  - best_alternative() dispatch: estimator-pair policies, ladder
 *    policies with unmeasured rungs, and estimate-free policies
 *    (nullopt — no counterfactual, no sample).
 *  - Integration: a calibrated lock run emits regret samples whose
 *    count matches the drop-immune metric shard and whose payloads
 *    satisfy regret == max(0, realized - best). This is also the
 *    regression test for SelectAdapter's monitoring passthrough — a
 *    wrapped calibrated policy must not trace as estimate-free.
 *  - Zero overhead: the same simulated episode stream with audit
 *    runtime-disabled vs enabled produces identical elapsed cycles and
 *    identical machine mem-op counts — the audit-off schedule is
 *    byte-identical to one that never took a sample. The compiled-out
 *    half is checked in CI by byte-diffing fig binary output across
 *    build modes.
 *  - Oracle replay determinism: same stream + same seed → bit-identical
 *    costs for static, reactive, and clairvoyant replays.
 *  - Native storm: writer threads record()ing while a reader loops
 *    audit_snapshot(); every observed word must be a value some prefix
 *    of the writes produced. Runs under TSan in CI.
 */
#define REACTIVE_TRACE 1

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "apps/workloads.hpp"
#include "audit/audit.hpp"
#include "audit/oracle.hpp"
#include "barrier/reactive_barrier.hpp"
#include "core/cost_model.hpp"
#include "core/policy.hpp"
#include "core/reactive_mutex.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/tts_lock.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

using namespace reactive;
using sim::SimPlatform;

namespace {

static_assert(audit::kCompiled, "this TU must compile the audit layer in");

using OC = trace::ObjectClass;

// ---- regret-counter exactness -----------------------------------------

TEST(AuditRecordTest, ClampsAtZeroAndSumsExactly)
{
    audit::reset();
    EXPECT_EQ(audit::record(OC::kLock, 5, 100, 60), 40u);
    EXPECT_EQ(audit::record(OC::kLock, 5, 50, 60), 0u)
        << "beating the best alternative is zero regret, not negative";
    EXPECT_EQ(audit::record(OC::kLock, 5, 60, 60), 0u);

    const audit::Snapshot s = reactive::audit_snapshot();
    ASSERT_EQ(s.objects.size(), 1u);
    EXPECT_EQ(s.objects[0].object, 5u);
    EXPECT_EQ(s.objects[0].cls, OC::kLock);
    EXPECT_EQ(s.objects[0].samples, 3u);
    EXPECT_EQ(s.objects[0].realized, 210u);
    EXPECT_EQ(s.objects[0].best, 180u);
    EXPECT_EQ(s.objects[0].regret, 40u);

    const auto& row = s.classes[static_cast<std::size_t>(OC::kLock)];
    EXPECT_EQ(row.samples, 3u);
    EXPECT_EQ(row.realized, 210u);
    EXPECT_EQ(row.best, 180u);
    EXPECT_EQ(row.regret, 40u);
    EXPECT_EQ(row.overflow_objects, 0u);
    EXPECT_EQ(s.total_samples(), 3u);
    EXPECT_EQ(s.total_regret(), 40u);
    audit::reset();
}

TEST(AuditRecordTest, WorstOffenderOrderingAndClassSeparation)
{
    audit::reset();
    audit::record(OC::kLock, 1, 150, 50);     // regret 100
    audit::record(OC::kLock, 2, 400, 100);    // regret 300
    audit::record(OC::kBarrier, 3, 10, 500);  // regret 0
    const audit::Snapshot s = audit::snapshot();
    ASSERT_EQ(s.objects.size(), 3u);
    EXPECT_EQ(s.objects[0].object, 2u) << "regret-descending";
    EXPECT_EQ(s.objects[1].object, 1u);
    EXPECT_EQ(s.objects[2].object, 3u);
    // Accounts never mix across classes (DESIGN.md: regret is only
    // sound per class).
    EXPECT_EQ(s.classes[static_cast<std::size_t>(OC::kLock)].samples, 2u);
    EXPECT_EQ(s.classes[static_cast<std::size_t>(OC::kLock)].regret, 400u);
    EXPECT_EQ(s.classes[static_cast<std::size_t>(OC::kBarrier)].samples,
              1u);
    EXPECT_EQ(s.classes[static_cast<std::size_t>(OC::kBarrier)].regret, 0u);
    audit::reset();
}

TEST(AuditRecordTest, TableOverflowFoldsIntoExactClassTotals)
{
    audit::reset();
    // 200 more distinct objects than the table holds: per-object
    // resolution saturates at kTableSize, the class account stays exact.
    const auto total =
        static_cast<std::uint32_t>(audit::detail::kTableSize + 200);
    for (std::uint32_t obj = 1; obj <= total; ++obj)
        audit::record(OC::kRwLock, obj, 10, 4);
    const audit::Snapshot s = audit::snapshot();
    EXPECT_EQ(s.objects.size(), audit::detail::kTableSize);
    const auto& row = s.classes[static_cast<std::size_t>(OC::kRwLock)];
    EXPECT_EQ(row.samples, total);
    EXPECT_EQ(row.realized, static_cast<std::uint64_t>(total) * 10);
    EXPECT_EQ(row.best, static_cast<std::uint64_t>(total) * 4);
    EXPECT_EQ(row.regret, static_cast<std::uint64_t>(total) * 6);
    EXPECT_EQ(row.overflow_objects, 200u);
    audit::reset();
}

// ---- best_alternative dispatch ----------------------------------------

struct FakeEstimator {
    double tts = 0, queue = 0;
    double tts_latency() const { return tts; }
    double queue_latency() const { return queue; }
};
struct EstimatorSelect {
    FakeEstimator est;
    const FakeEstimator& estimator() const { return est; }
};
struct LadderSelect {
    double lat[3] = {900, 250, 400};
    bool meas[3] = {false, true, true};
    double latency(std::uint32_t i) const { return lat[i]; }
    bool measured(std::uint32_t i) const { return meas[i]; }
};
struct OpaqueSelect {};

TEST(BestAlternativeTest, EstimatorPairTakesCheaperEwma)
{
    EstimatorSelect s;
    s.est = {320.5, 118.9};
    const auto v = audit::best_alternative(s, 2);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 118u);
}

TEST(BestAlternativeTest, LadderSkipsUnmeasuredRungs)
{
    LadderSelect s;
    const auto v = audit::best_alternative(s, 3);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 250u) << "rung 0 is unmeasured; min over measured only";

    LadderSelect none;
    none.meas[1] = none.meas[2] = false;
    EXPECT_FALSE(audit::best_alternative(none, 3).has_value())
        << "no measured rung, no counterfactual";
}

TEST(BestAlternativeTest, EstimateFreePolicyYieldsNoSample)
{
    EXPECT_FALSE(audit::best_alternative(OpaqueSelect{}, 2).has_value());
}

// ---- integration: calibrated run feeds the meter ----------------------

using CalLockSim = ReactiveNodeLock<SimPlatform, CalibratedCompetitive3Policy>;

TEST(AuditIntegrationTest, CalibratedRunMatchesMeterAndEventPayloads)
{
    audit::reset();
    trace::reset();
    trace::set_enabled(true);
    CalibratedCompetitive3Policy::Params pp;
    pp.costs = CostEstimator::Params::mis_tuned_eager();
    auto lock = std::make_shared<CalLockSim>(ReactiveLockParams{},
                                             CalibratedCompetitive3Policy(pp));
    apps::run_lock_cycle<CalLockSim>(8, 300, /*cs=*/50, /*think=*/400,
                                     /*seed=*/1, lock);
    trace::set_enabled(false);

    const audit::Snapshot s = reactive::audit_snapshot();
    const auto& row = s.classes[static_cast<std::size_t>(OC::kLock)];
    // A wrapped calibrated policy must expose its estimator through
    // SelectAdapter; zero samples here means the monitoring passthrough
    // regressed and the whole meter went silently inert.
    EXPECT_GT(row.samples, 0u);
    EXPECT_GT(row.realized, 0u);
    EXPECT_GE(row.realized, row.regret);

    const trace::Capture cap = trace::capture();
    // The metric shard counts every emit even when the ring drops, so
    // it must agree exactly with the audit account (one emit per
    // record() by construction of the hook sites).
    EXPECT_EQ(cap.metrics.counter(OC::kLock, trace::Metric::kRegretSamples),
              row.samples);
    std::uint64_t seen = 0;
    for (const trace::CapturedEvent& ce : cap.events) {
        if (ce.e.type != trace::EventType::kRegret)
            continue;
        ++seen;
        EXPECT_EQ(ce.e.cls, OC::kLock);
        const std::uint64_t expect =
            ce.e.a0 > ce.e.a1 ? ce.e.a0 - ce.e.a1 : 0;
        EXPECT_EQ(ce.e.a2, expect) << "payload: regret = clamp diff";
    }
    EXPECT_GT(seen, 0u);
    EXPECT_LE(seen, row.samples) << "ring may drop, meter may not";
    trace::reset();
    audit::reset();
}

// ---- zero-overhead guarantee ------------------------------------------

std::uint64_t streamed_run(bool audit_on)
{
    audit::reset();
    trace::reset();
    trace::set_enabled(audit_on);
    const audit::EpisodeStream stream = audit::phase_shift_stream(8);
    const std::uint64_t elapsed = audit::run_stream<CalLockSim>(
        8, stream, /*seed=*/3, std::make_shared<CalLockSim>());
    trace::set_enabled(false);
    return elapsed;
}

TEST(AuditOverheadTest, MeterOffIsByteIdenticalSchedule)
{
    // The meter reuses cost samples the consensus path already took and
    // writes host memory only: the simulated schedule cannot see it.
    const std::uint64_t off = streamed_run(false);
    const std::uint64_t on = streamed_run(true);
    EXPECT_EQ(off, on);
    // And the enabled run really took samples (the comparison is not
    // vacuous).
    EXPECT_GT(streamed_run(true), 0u);
    const audit::Snapshot s = audit::snapshot();
    EXPECT_GT(s.total_samples(), 0u);
    audit::reset();
    trace::reset();
}

using LadderBarrierSim = ReactiveBarrier<SimPlatform, CalibratedLadderPolicy>;

std::uint64_t barrier_run(bool audit_on, sim::MachineStats* stats)
{
    audit::reset();
    trace::reset();
    trace::set_enabled(audit_on);
    CalibratedLadderPolicy::Params pp;
    pp.probe_period = 8;
    pp.probe_len = 2;
    auto bar = std::make_shared<LadderBarrierSim>(
        16, ReactiveBarrierParams{}, CalibratedLadderPolicy(pp));
    const std::uint64_t elapsed = apps::run_barrier_uniform<LadderBarrierSim>(
        16, 150, /*compute=*/100, /*seed=*/1, bar, {}, stats);
    trace::set_enabled(false);
    return elapsed;
}

TEST(AuditOverheadTest, BarrierMeterPerturbsNeitherScheduleNorTraffic)
{
    sim::MachineStats off{}, on{};
    const std::uint64_t elapsed_off = barrier_run(false, &off);
    const std::uint64_t elapsed_on = barrier_run(true, &on);
    EXPECT_EQ(elapsed_off, elapsed_on);
    EXPECT_EQ(off.mem_ops, on.mem_ops);
    EXPECT_EQ(off.remote_misses, on.remote_misses);
    EXPECT_EQ(off.invalidations, on.invalidations);
    EXPECT_EQ(off.messages, on.messages);
    audit::reset();
    trace::reset();
}

// ---- oracle replay determinism ----------------------------------------

using TtsSim = TtsLock<SimPlatform>;
using McsSim = McsLock<SimPlatform, McsVariant::kFetchStore>;

TEST(OracleTest, StreamGeneratorsAreSeedDeterministic)
{
    const audit::EpisodeStream a = audit::bursty_stream(24, 42);
    const audit::EpisodeStream b = audit::bursty_stream(24, 42);
    ASSERT_EQ(a.size(), b.size());
    bool any_hot = false, any_sparse = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].iters, b[i].iters);
        EXPECT_EQ(a[i].cs, b[i].cs);
        EXPECT_EQ(a[i].think, b[i].think);
        any_hot |= a[i].think == 0;
        any_sparse |= a[i].think > 0;
    }
    EXPECT_TRUE(any_hot && any_sparse) << "bursty must actually mix";
    const audit::EpisodeStream c = audit::bursty_stream(24, 43);
    bool differs = false;
    for (std::size_t i = 0; i < c.size(); ++i)
        differs |= c[i].think != a[i].think;
    EXPECT_TRUE(differs) << "different seed, different burst pattern";
}

TEST(OracleTest, ReplayCostsAreBitIdenticalAcrossRuns)
{
    const audit::EpisodeStream stream = audit::bursty_stream(10, 7);
    for (std::uint32_t p : {2u, 8u}) {
        EXPECT_EQ(audit::static_stream_cost<TtsSim>(p, stream, 7),
                  audit::static_stream_cost<TtsSim>(p, stream, 7));
        EXPECT_EQ(audit::static_stream_cost<McsSim>(p, stream, 7),
                  audit::static_stream_cost<McsSim>(p, stream, 7));
        EXPECT_EQ((audit::clairvoyant_cost<TtsSim, McsSim>(p, stream, 7)),
                  (audit::clairvoyant_cost<TtsSim, McsSim>(p, stream, 7)));
        EXPECT_EQ(audit::run_stream<CalLockSim>(
                      p, stream, 7, std::make_shared<CalLockSim>()),
                  audit::run_stream<CalLockSim>(
                      p, stream, 7, std::make_shared<CalLockSim>()));
    }
}

TEST(OracleTest, ClairvoyantIsMinOfItsProtocolPack)
{
    // With a one-protocol pack the clairvoyant degenerates to that
    // protocol's per-episode replay sum; the two-protocol pack can only
    // be cheaper or equal.
    const audit::EpisodeStream stream = audit::phase_shift_stream(6);
    const std::uint32_t p = 4;
    const std::uint64_t both =
        audit::clairvoyant_cost<TtsSim, McsSim>(p, stream, 5);
    EXPECT_LE(both, audit::clairvoyant_cost<TtsSim>(p, stream, 5));
    EXPECT_LE(both, audit::clairvoyant_cost<McsSim>(p, stream, 5));
}

TEST(OracleTest, EpisodeBoundariesAreRecordedMonotonically)
{
    const audit::EpisodeStream stream = audit::hot_stream(5, /*iters=*/10);
    std::vector<std::uint64_t> ends;
    const std::uint64_t elapsed = audit::run_stream<TtsSim>(
        4, stream, 9, std::make_shared<TtsSim>(), &ends);
    ASSERT_EQ(ends.size(), stream.size());
    for (std::size_t i = 1; i < ends.size(); ++i)
        EXPECT_GT(ends[i], ends[i - 1]);
    EXPECT_LE(ends.back(), elapsed);
}

// ---- native concurrent snapshot storm ---------------------------------

TEST(AuditStormTest, SnapshotNeverTearsWordsUnderConcurrentWriters)
{
    // Four writers, each the single writer of its own object (the
    // consensus discipline, emulated with distinct ids), against a
    // reader looping snapshot(). Per-word atomicity means every counter
    // a snapshot sees is a value some prefix of that writer's updates
    // produced: divisible by the per-sample increment, bounded by the
    // final total, and monotone across snapshots. Cross-counter tearing
    // (samples from one instant, cycles from another) is allowed and
    // documented. TSan (CI job) checks the memory model on top.
    audit::reset();
    constexpr std::uint64_t kSamples = 50000;
    constexpr std::uint32_t kWriters = 4;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> violations{0};

    std::thread reader([&] {
        std::array<std::uint64_t, kWriters + 1> last_samples{};
        while (!done.load(std::memory_order_acquire)) {
            const audit::Snapshot s = reactive::audit_snapshot();
            for (const audit::ObjectRegret& r : s.objects) {
                if (r.object > kWriters || r.cls != OC::kLock ||
                    r.samples > kSamples || r.realized % 7 != 0 ||
                    r.best % 3 != 0 || r.regret % 4 != 0 ||
                    r.realized > kSamples * 7 ||
                    r.samples < last_samples[r.object]) {
                    violations.fetch_add(1);
                } else {
                    last_samples[r.object] = r.samples;
                }
            }
        }
    });

    std::vector<std::thread> writers;
    for (std::uint32_t w = 1; w <= kWriters; ++w) {
        writers.emplace_back([w] {
            for (std::uint64_t i = 0; i < kSamples; ++i)
                audit::record(OC::kLock, w, 7, 3);
        });
    }
    for (auto& t : writers)
        t.join();
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(violations.load(), 0u);
    const audit::Snapshot s = audit::snapshot();
    ASSERT_EQ(s.objects.size(), kWriters);
    for (const audit::ObjectRegret& r : s.objects) {
        EXPECT_EQ(r.samples, kSamples);
        EXPECT_EQ(r.realized, kSamples * 7);
        EXPECT_EQ(r.best, kSamples * 3);
        EXPECT_EQ(r.regret, kSamples * 4);
    }
    audit::reset();
}

}  // namespace
