// Tests for the message-passing protocols (Section 3.6): centralized
// lock manager, centralized fetch-and-op server, message combining
// tree, and the reactive algorithms that select between shared-memory
// and message-passing protocols.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "msg/message_fetch_op.hpp"
#include "msg/message_lock.hpp"
#include "msg/reactive_msg.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace reactive::msg {
namespace {

TEST(MessageQueueLockTest, MutualExclusion)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        sim::Machine m(8, sim::CostModel::alewife(), seed);
        auto lock = std::make_shared<MessageQueueLock>(0);
        auto inside = std::make_shared<int>(0);
        auto violations = std::make_shared<int>(0);
        auto count = std::make_shared<long>(0);
        for (std::uint32_t p = 0; p < 8; ++p) {
            m.spawn(p, [=] {
                for (int i = 0; i < 30; ++i) {
                    MessageQueueLock::Node n;
                    ASSERT_TRUE(lock->lock(n));
                    if (++*inside != 1)
                        ++*violations;
                    sim::delay(20 + sim::random_below(50));
                    --*inside;
                    ++*count;
                    lock->unlock();
                    sim::delay(sim::random_below(100));
                }
            });
        }
        m.run();
        EXPECT_EQ(*violations, 0);
        EXPECT_EQ(*count, 8 * 30);
    }
}

TEST(MessageQueueLockTest, FifoGrantOrder)
{
    sim::Machine m(6);
    auto lock = std::make_shared<MessageQueueLock>(0);
    auto grants = std::make_shared<std::vector<int>>();
    for (std::uint32_t p = 0; p < 6; ++p) {
        m.spawn(p, [=] {
            sim::delay(300 * (p + 1));  // deterministic staggered arrivals
            MessageQueueLock::Node n;
            lock->lock(n);
            grants->push_back(static_cast<int>(p));
            sim::delay(2000);
            lock->unlock();
        });
    }
    m.run();
    EXPECT_EQ(*grants, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(MessageQueueLockTest, InvalidLockRepliesRetry)
{
    sim::Machine m(2);
    auto lock = std::make_shared<MessageQueueLock>(0, /*initially_valid=*/false);
    auto got_retry = std::make_shared<bool>(false);
    m.spawn(1, [=] {
        MessageQueueLock::Node n;
        *got_retry = !lock->lock(n);
    });
    m.run();
    EXPECT_TRUE(*got_retry);
}

TEST(MessageQueueLockTest, GrantCarriesQueueDepthHint)
{
    sim::Machine m(3);
    auto lock = std::make_shared<MessageQueueLock>(0);
    auto hints = std::make_shared<std::vector<bool>>();
    m.spawn(0, [=] {
        MessageQueueLock::Node n;
        lock->lock(n);
        hints->push_back(n.queue_was_empty);  // free lock -> "empty"
        sim::delay(3000);                     // both others queue behind
        lock->unlock();
    });
    for (std::uint32_t p = 1; p < 3; ++p) {
        m.spawn(p, [=] {
            sim::delay(300 * p);
            MessageQueueLock::Node n;
            lock->lock(n);
            hints->push_back(n.queue_was_empty);
            sim::delay(100);
            lock->unlock();
        });
    }
    m.run();
    ASSERT_EQ(hints->size(), 3u);
    EXPECT_TRUE((*hints)[0]);
    EXPECT_FALSE((*hints)[1]);  // another waiter was still queued
    EXPECT_TRUE((*hints)[2]);   // last waiter drained the queue
}

void expect_dense(std::vector<FetchOpValue> priors)
{
    std::sort(priors.begin(), priors.end());
    for (std::size_t i = 0; i < priors.size(); ++i)
        ASSERT_EQ(priors[i], static_cast<FetchOpValue>(i));
}

TEST(MessageFetchOpTest, LinearizableUnderContention)
{
    sim::Machine m(16);
    auto f = std::make_shared<MessageFetchOp>(0);
    auto priors = std::make_shared<std::vector<FetchOpValue>>();
    for (std::uint32_t p = 0; p < 16; ++p) {
        m.spawn(p, [=] {
            MessageFetchOp::Node n;
            for (int i = 0; i < 25; ++i) {
                ASSERT_TRUE(f->fetch_add(n, 1));
                priors->push_back(n.prior);
                sim::delay(sim::random_below(100));
            }
        });
    }
    m.run();
    ASSERT_EQ(priors->size(), 16u * 25u);
    expect_dense(std::move(*priors));
    EXPECT_EQ(f->read_quiescent(), 16 * 25);
}

TEST(MessageFetchOpTest, TwoMessagesPerUncontendedOp)
{
    sim::Machine m(2);
    auto f = std::make_shared<MessageFetchOp>(0);
    m.spawn(1, [=] {
        MessageFetchOp::Node n;
        f->fetch_add(n, 1);
    });
    m.run();
    EXPECT_EQ(m.stats().messages, 2u);  // request + reply
}

TEST(MessageFetchOpTest, HotHintUnderBackToBackLoad)
{
    sim::Machine m(16);
    auto f = std::make_shared<MessageFetchOp>(0);
    auto hot_seen = std::make_shared<bool>(false);
    for (std::uint32_t p = 0; p < 16; ++p) {
        m.spawn(p, [=] {
            MessageFetchOp::Node n;
            for (int i = 0; i < 20; ++i) {
                f->fetch_add(n, 1);
                if (n.hot)
                    *hot_seen = true;
            }
        });
    }
    m.run();
    EXPECT_TRUE(*hot_seen);
}

TEST(MessageCombiningTreeTest, LinearizableAndCombines)
{
    sim::Machine m(32);
    auto t = std::make_shared<MessageCombiningTree>(32);
    auto priors = std::make_shared<std::vector<FetchOpValue>>();
    auto max_batch = std::make_shared<std::uint32_t>(0);
    for (std::uint32_t p = 0; p < 32; ++p) {
        m.spawn(p, [=] {
            MessageCombiningTree::Node n;
            for (int i = 0; i < 15; ++i) {
                ASSERT_TRUE(t->fetch_add(n, 1));
                priors->push_back(n.prior);
                *max_batch = std::max(*max_batch, n.batch);
                sim::delay(sim::random_below(80));
            }
        });
    }
    m.run();
    ASSERT_EQ(priors->size(), 32u * 15u);
    expect_dense(std::move(*priors));
    EXPECT_EQ(t->read_quiescent(), 32 * 15);
    EXPECT_GT(*max_batch, 1u);  // combining actually happened
}

TEST(MessageCombiningTreeTest, SingleProcessorStillWorks)
{
    sim::Machine m(1);
    auto t = std::make_shared<MessageCombiningTree>(1, 100);
    auto ok = std::make_shared<bool>(true);
    m.spawn(0, [=] {
        MessageCombiningTree::Node n;
        for (FetchOpValue i = 0; i < 20; ++i) {
            *ok = *ok && t->fetch_add(n, 1) && n.prior == 100 + i;
        }
    });
    m.run();
    EXPECT_TRUE(*ok);
    EXPECT_EQ(t->read_quiescent(), 120);
}

TEST(MessageCombiningTreeTest, InvalidTreeRetries)
{
    sim::Machine m(4);
    auto t = std::make_shared<MessageCombiningTree>(4, 0, /*initially_valid=*/false);
    auto retries = std::make_shared<int>(0);
    for (std::uint32_t p = 0; p < 4; ++p) {
        m.spawn(p, [=] {
            MessageCombiningTree::Node n;
            if (!t->fetch_add(n, 1))
                ++*retries;
        });
    }
    m.run();
    EXPECT_EQ(*retries, 4);
}

// ---- reactive shared-memory <-> message-passing algorithms -----------

TEST(ReactiveMessageLockTest, MutualExclusionAndAdaptation)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        sim::Machine m(16, sim::CostModel::alewife(), seed);
        auto lock = std::make_shared<ReactiveMessageLock>(0);
        auto inside = std::make_shared<int>(0);
        auto violations = std::make_shared<int>(0);
        auto count = std::make_shared<long>(0);
        for (std::uint32_t p = 0; p < 16; ++p) {
            m.spawn(p, [=] {
                for (int i = 0; i < 25; ++i) {
                    ReactiveMessageLock::Node n;
                    auto rm = lock->acquire(n);
                    if (++*inside != 1)
                        ++*violations;
                    sim::delay(20 + sim::random_below(50));
                    --*inside;
                    ++*count;
                    lock->release(n, rm);
                    sim::delay(sim::random_below(100));
                }
            });
        }
        m.run();
        EXPECT_EQ(*violations, 0);
        EXPECT_EQ(*count, 16 * 25);
        // Heavy contention must have driven it to the message protocol.
        EXPECT_GT(lock->protocol_changes(), 0u);
    }
}

TEST(ReactiveMessageLockTest, UncontendedStaysSharedMemory)
{
    sim::Machine m(2);
    auto lock = std::make_shared<ReactiveMessageLock>(0);
    m.spawn(1, [=] {
        for (int i = 0; i < 100; ++i) {
            ReactiveMessageLock::Node n;
            auto rm = lock->acquire(n);
            sim::delay(10);
            lock->release(n, rm);
            sim::delay(50);
        }
    });
    m.run();
    EXPECT_EQ(lock->protocol_changes(), 0u);
    EXPECT_EQ(lock->mode(), ReactiveMessageLock::Mode::kTts);
}

TEST(ReactiveMessageFetchOpTest, LinearizableAcrossProtocolChanges)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        sim::Machine m(24, sim::CostModel::alewife(), seed);
        auto f = std::make_shared<ReactiveMessageFetchOp>(24, 0);
        auto priors = std::make_shared<std::vector<FetchOpValue>>();
        for (std::uint32_t p = 0; p < 24; ++p) {
            m.spawn(p, [=] {
                ReactiveMessageFetchOp::Node n;
                for (int i = 0; i < 20; ++i) {
                    priors->push_back(f->fetch_add(n, 1));
                    sim::delay(sim::random_below(120));
                }
            });
        }
        m.run();
        ASSERT_EQ(priors->size(), 24u * 20u);
        expect_dense(std::move(*priors));
        EXPECT_EQ(f->read_quiescent(), 24 * 20);
        EXPECT_GT(f->protocol_changes(), 0u);
    }
}

TEST(ReactiveMessageFetchOpTest, UncontendedStaysTts)
{
    sim::Machine m(2);
    auto f = std::make_shared<ReactiveMessageFetchOp>(2, 0);
    m.spawn(1, [=] {
        ReactiveMessageFetchOp::Node n;
        for (int i = 0; i < 100; ++i) {
            f->fetch_add(n, 1);
            sim::delay(40);
        }
    });
    m.run();
    EXPECT_EQ(f->protocol_changes(), 0u);
    EXPECT_EQ(f->read_quiescent(), 100);
}

}  // namespace
}  // namespace reactive::msg
