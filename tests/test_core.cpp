// Tests for the paper's core contribution: the protocol-selection
// framework, switching policies, the reactive spin lock, and the
// reactive fetch-and-op.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "core/policy.hpp"
#include "core/protocol_object.hpp"
#include "core/reactive_fetch_op.hpp"
#include "core/reactive_lock.hpp"
#include "core/reactive_mutex.hpp"
#include "core/reactive_queue.hpp"
#include "platform/native_platform.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"

namespace reactive {
namespace {

using sim::SimPlatform;

// ---- policies ---------------------------------------------------------

TEST(PolicyTest, AlwaysSwitchTtsIsImmediate)
{
    AlwaysSwitchPolicy p;
    EXPECT_FALSE(p.on_tts_acquire(false));
    EXPECT_TRUE(p.on_tts_acquire(true));
}

TEST(PolicyTest, AlwaysSwitchQueueNeedsStreak)
{
    AlwaysSwitchPolicy p(4);
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_TRUE(p.on_queue_acquire(true));  // 4th consecutive empty
    p.on_switch();
    EXPECT_FALSE(p.on_queue_acquire(true));  // streak reset
}

TEST(PolicyTest, AlwaysSwitchStreakBreaks)
{
    AlwaysSwitchPolicy p(3);
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(false));  // break
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_TRUE(p.on_queue_acquire(true));
}

TEST(PolicyTest, Competitive3AccumulatesAcrossBreaks)
{
    Competitive3Policy::Params params;
    params.residual_tts_contended = 150;
    params.residual_queue_empty = 15;
    params.switch_round_trip = 8800;
    Competitive3Policy p(params);
    // ceil(8800 / 150) = 59 contended acquisitions trigger the switch,
    // even interleaved with uncontended ones (no reset on breaks).
    int triggered_at = -1;
    int contended_count = 0;
    for (int i = 0; i < 200 && triggered_at < 0; ++i) {
        const bool contended = (i % 2 == 0);  // every other one breaks
        if (contended)
            ++contended_count;
        if (p.on_tts_acquire(contended))
            triggered_at = contended_count;
    }
    EXPECT_EQ(triggered_at, 59);
}

TEST(PolicyTest, Competitive3QueueResidualIsSmaller)
{
    Competitive3Policy p;
    int count = 0;
    while (!p.on_queue_acquire(true))
        ++count;
    // 8800 / 15 = 586.67 -> 587 observations
    EXPECT_EQ(count + 1, 587);
}

TEST(PolicyTest, Competitive3ResetsOnSwitch)
{
    Competitive3Policy p;
    for (int i = 0; i < 30; ++i)
        p.on_tts_acquire(true);
    EXPECT_GT(p.cumulative_residual(), 0u);
    p.on_switch();
    EXPECT_EQ(p.cumulative_residual(), 0u);
}

TEST(PolicyTest, HysteresisResetsOnBreak)
{
    HysteresisPolicy p(3, 2);
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_FALSE(p.on_tts_acquire(false));  // break resets
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_FALSE(p.on_tts_acquire(true));
    EXPECT_TRUE(p.on_tts_acquire(true));

    EXPECT_FALSE(p.on_queue_acquire(true));
    EXPECT_TRUE(p.on_queue_acquire(true));
}

// ---- ReactiveQueue ----------------------------------------------------

TEST(ReactiveQueueTest, InitiallyInvalid)
{
    ReactiveQueue<NativePlatform> q;
    EXPECT_TRUE(q.is_invalid());
    typename ReactiveQueue<NativePlatform>::Node n;
    EXPECT_EQ(q.acquire(n), ReactiveQueue<NativePlatform>::Outcome::kInvalid);
    EXPECT_TRUE(q.is_invalid());  // acquire re-invalidated the bogus chain
}

TEST(ReactiveQueueTest, ValidateAcquireRelease)
{
    ReactiveQueue<NativePlatform> q;
    typename ReactiveQueue<NativePlatform>::Node switcher, n1;
    q.acquire_invalid(switcher);
    q.release(switcher);  // queue now valid and free
    EXPECT_FALSE(q.is_invalid());
    EXPECT_EQ(q.acquire(n1),
              ReactiveQueue<NativePlatform>::Outcome::kAcquiredEmpty);
    q.release(n1);
}

TEST(ReactiveQueueTest, HolderInvalidateWakesWaitersInvalid)
{
    using Q = ReactiveQueue<SimPlatform>;
    sim::Machine m(4);
    auto q = std::make_shared<Q>(/*initially_valid=*/true);
    auto invalid_seen = std::make_shared<int>(0);
    m.spawn(0, [=] {
        typename Q::Node n;
        EXPECT_EQ(q->acquire(n), Q::Outcome::kAcquiredEmpty);
        sim::delay(2000);  // let the others queue up
        q->invalidate(&n);
    });
    for (std::uint32_t p = 1; p < 4; ++p) {
        m.spawn(p, [=] {
            sim::delay(200 * p);
            typename Q::Node n;
            if (q->acquire(n) == Q::Outcome::kInvalid)
                ++*invalid_seen;
        });
    }
    m.run();
    EXPECT_EQ(*invalid_seen, 3);
    EXPECT_TRUE(q->is_invalid());
}

// ---- generic protocol-selection framework -----------------------------

/// Toy protocol for the framework tests: a counter that tags results
/// with its own identity so tests can see which protocol serviced a
/// request.
struct TaggedCounterProtocol {
    using Op = int;
    struct Result {
        long value;
        int tag;
    };
    int tag = 0;
    long state = 0;
    long runs = 0;

    Result run(Op delta)
    {
        state += delta;
        ++runs;
        return {state, tag};
    }
    void update() { state = 0; }
};

TEST(ProtocolFrameworkTest, ManagerReturnsOnlyValidExecutions)
{
    using PO = LockedProtocolObject<NativePlatform, TaggedCounterProtocol>;
    PO a(/*initially_valid=*/true, TaggedCounterProtocol{1, 0, 0});
    PO b(/*initially_valid=*/false, TaggedCounterProtocol{2, 0, 0});
    ProtocolManager<PO, PO> mgr(a, b);

    auto r = mgr.do_synch_op(5);
    EXPECT_EQ(r.tag, 1);
    mgr.do_change();
    EXPECT_FALSE(a.is_valid());
    EXPECT_TRUE(b.is_valid());
    r = mgr.do_synch_op(7);
    EXPECT_EQ(r.tag, 2);
    mgr.do_change();
    r = mgr.do_synch_op(1);
    EXPECT_EQ(r.tag, 1);
}

TEST(ProtocolFrameworkTest, AtMostOneValidUnderConcurrentChanges)
{
    using PO = LockedProtocolObject<SimPlatform, TaggedCounterProtocol>;
    sim::Machine m(8);
    auto a = std::make_shared<PO>(true, TaggedCounterProtocol{1, 0, 0});
    auto b = std::make_shared<PO>(false, TaggedCounterProtocol{2, 0, 0});
    auto completed = std::make_shared<long>(0);
    auto both_valid_seen = std::make_shared<int>(0);
    for (std::uint32_t p = 0; p < 6; ++p) {
        m.spawn(p, [=] {
            ProtocolManager<PO, PO> mgr(*a, *b);
            for (int i = 0; i < 40; ++i) {
                mgr.do_synch_op(1);
                ++*completed;
                if (a->is_valid() && b->is_valid())
                    ++*both_valid_seen;
                sim::delay(sim::random_below(50));
            }
        });
    }
    for (std::uint32_t p = 6; p < 8; ++p) {
        m.spawn(p, [=] {
            ProtocolManager<PO, PO> mgr(*a, *b);
            for (int i = 0; i < 15; ++i) {
                mgr.do_change();
                sim::delay(sim::random_below(400));
            }
        });
    }
    m.run();
    EXPECT_EQ(*completed, 240);
    EXPECT_EQ(*both_valid_seen, 0);
    // Every request was serviced by exactly one protocol execution.
    EXPECT_EQ(a->protocol().runs + b->protocol().runs, 240);
}

// ---- reactive lock ----------------------------------------------------

template <typename Policy>
std::shared_ptr<ReactiveLock<SimPlatform, Policy>> make_sim_reactive_lock()
{
    return std::make_shared<ReactiveLock<SimPlatform, Policy>>();
}

TEST(ReactiveLockTest, StartsInTtsMode)
{
    ReactiveLock<NativePlatform> lock;
    EXPECT_EQ(lock.mode(), ReactiveLock<NativePlatform>::Mode::kTts);
    EXPECT_EQ(lock.protocol_changes(), 0u);
}

TEST(ReactiveLockTest, SingleThreadAcquireRelease)
{
    ReactiveLock<NativePlatform> lock;
    for (int i = 0; i < 1000; ++i) {
        typename ReactiveLock<NativePlatform>::Node n;
        auto mode = lock.acquire(n);
        lock.release(n, mode);
    }
    EXPECT_EQ(lock.mode(), ReactiveLock<NativePlatform>::Mode::kTts);
    EXPECT_EQ(lock.protocol_changes(), 0u);  // no contention, no switches
}

template <typename Policy>
struct SimReactiveTortureResult {
    long count = 0;
    int violations = 0;
    std::uint64_t protocol_changes = 0;
    typename ReactiveLock<SimPlatform, Policy>::Mode final_mode;
};

template <typename Policy>
SimReactiveTortureResult<Policy> sim_reactive_torture(std::uint32_t procs,
                                                      std::uint32_t iters,
                                                      std::uint64_t seed,
                                                      std::uint32_t think = 100)
{
    using L = ReactiveLock<SimPlatform, Policy>;
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto lock = make_sim_reactive_lock<Policy>();
    auto inside = std::make_shared<int>(0);
    auto res = std::make_shared<SimReactiveTortureResult<Policy>>();
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                typename L::Node node;
                auto rm = lock->acquire(node);
                if (++*inside != 1)
                    ++res->violations;
                sim::delay(10 + sim::random_below(40));
                if (*inside != 1)
                    ++res->violations;
                --*inside;
                ++res->count;
                lock->release(node, rm);
                sim::delay(sim::random_below(think));
            }
        });
    }
    m.run();
    res->protocol_changes = lock->protocol_changes();
    res->final_mode = lock->mode();
    return *res;
}

template <typename Policy>
class ReactiveLockPolicyTest : public ::testing::Test {};

using PolicyTypes = ::testing::Types<AlwaysSwitchPolicy, Competitive3Policy,
                                     HysteresisPolicy>;

TYPED_TEST_SUITE(ReactiveLockPolicyTest, PolicyTypes);

TYPED_TEST(ReactiveLockPolicyTest, MutualExclusionHighContention)
{
    auto r = sim_reactive_torture<TypeParam>(16, 30, 1);
    EXPECT_EQ(r.violations, 0);
    EXPECT_EQ(r.count, 16 * 30);
}

TYPED_TEST(ReactiveLockPolicyTest, MutualExclusionLowContention)
{
    auto r = sim_reactive_torture<TypeParam>(2, 200, 2);
    EXPECT_EQ(r.violations, 0);
    EXPECT_EQ(r.count, 2 * 200);
}

TYPED_TEST(ReactiveLockPolicyTest, SeedSweep)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        auto r = sim_reactive_torture<TypeParam>(8, 30, seed);
        EXPECT_EQ(r.violations, 0);
        EXPECT_EQ(r.count, 8 * 30);
    }
}

TEST(ReactiveLockTest, SwitchesToQueueUnderContention)
{
    using Mode = ReactiveLock<SimPlatform, AlwaysSwitchPolicy>::Mode;
    auto r = sim_reactive_torture<AlwaysSwitchPolicy>(32, 40, 1);
    EXPECT_EQ(r.violations, 0);
    EXPECT_GT(r.protocol_changes, 0u);
    EXPECT_EQ(r.final_mode, Mode::kQueue);
}

TEST(ReactiveLockTest, StaysInTtsWithoutContention)
{
    using Mode = ReactiveLock<SimPlatform, AlwaysSwitchPolicy>::Mode;
    auto r = sim_reactive_torture<AlwaysSwitchPolicy>(1, 300, 1);
    EXPECT_EQ(r.protocol_changes, 0u);
    EXPECT_EQ(r.final_mode, Mode::kTts);
}

TEST(ReactiveLockTest, ReturnsToTtsWhenContentionFades)
{
    using L = ReactiveLock<SimPlatform, AlwaysSwitchPolicy>;
    sim::Machine m(16);
    auto lock = std::make_shared<L>();
    // Phase 1: 16 processors contend -> queue mode.
    for (std::uint32_t p = 0; p < 16; ++p) {
        m.spawn(p, [=] {
            for (int i = 0; i < 25; ++i) {
                typename L::Node n;
                auto rm = lock->acquire(n);
                sim::delay(100);
                lock->release(n, rm);
                sim::delay(sim::random_below(100));
            }
        });
    }
    m.run();
    EXPECT_EQ(lock->mode(), L::Mode::kQueue);

    // Phase 2: a single processor -> empty queue streak -> TTS mode.
    sim::Machine m2(1);
    m2.spawn(0, [=] {
        for (int i = 0; i < 50; ++i) {
            typename L::Node n;
            auto rm = lock->acquire(n);
            sim::delay(10);
            lock->release(n, rm);
        }
    });
    m2.run();
    EXPECT_EQ(lock->mode(), L::Mode::kTts);
}

TEST(ReactiveLockTest, NativeThreadsMutualExclusion)
{
    using L = ReactiveLock<NativePlatform, AlwaysSwitchPolicy>;
    const std::uint32_t threads =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    L lock;
    long counter = 0;
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < 400; ++i) {
                typename L::Node n;
                auto rm = lock.acquire(n);
                counter += 1;
                lock.release(n, rm);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(counter, static_cast<long>(threads) * 400);
}

TEST(ReactiveMutexTest, GuardProtects)
{
    ReactiveMutex<NativePlatform> mu;
    int x = 0;
    {
        ReactiveMutex<NativePlatform>::Guard g(mu);
        x = 1;
    }
    {
        ReactiveMutex<NativePlatform>::Guard g(mu);
        x = 2;
    }
    EXPECT_EQ(x, 2);
}

TEST(ReactiveMutexTest, GuardUnderSimContention)
{
    using M = ReactiveMutex<SimPlatform>;
    sim::Machine machine(8);
    auto mu = std::make_shared<M>();
    auto counter = std::make_shared<long>(0);
    for (std::uint32_t p = 0; p < 8; ++p) {
        machine.spawn(p, [=] {
            for (int i = 0; i < 50; ++i) {
                typename M::Guard g(*mu);
                ++*counter;
                sim::delay(20);
            }
        });
    }
    machine.run();
    EXPECT_EQ(*counter, 400);
}

// ---- reactive fetch-and-op --------------------------------------------

void expect_dense_priors(std::vector<FetchOpValue> priors)
{
    std::sort(priors.begin(), priors.end());
    for (std::size_t i = 0; i < priors.size(); ++i)
        ASSERT_EQ(priors[i], static_cast<FetchOpValue>(i));
}

TEST(ReactiveFetchOpTest, StartsInTtsLockMode)
{
    ReactiveFetchOp<NativePlatform> f(8);
    EXPECT_EQ(f.mode(), ReactiveFetchOp<NativePlatform>::Mode::kTtsLock);
    typename ReactiveFetchOp<NativePlatform>::Node n;
    for (FetchOpValue i = 0; i < 100; ++i)
        EXPECT_EQ(f.fetch_add(n, 1), i);
    EXPECT_EQ(f.read(), 100);
}

TEST(ReactiveFetchOpTest, InitialValue)
{
    ReactiveFetchOp<NativePlatform> f(4, 500);
    typename ReactiveFetchOp<NativePlatform>::Node n;
    EXPECT_EQ(f.fetch_add(n, 3), 500);
    EXPECT_EQ(f.read(), 503);
}

struct SimFetchOpOutcome {
    std::uint64_t protocol_changes;
    std::uint32_t final_mode;
};

SimFetchOpOutcome sim_reactive_fetchop_torture(std::uint32_t procs,
                                               std::uint32_t iters,
                                               std::uint64_t seed,
                                               ReactiveFetchOpParams params = {})
{
    using F = ReactiveFetchOp<SimPlatform>;
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto f = std::make_shared<F>(procs, 0, params);
    auto priors = std::make_shared<std::vector<FetchOpValue>>();
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename F::Node node;
            for (std::uint32_t i = 0; i < iters; ++i) {
                priors->push_back(f->fetch_add(node, 1));
                sim::delay(sim::random_below(150));
            }
        });
    }
    m.run();
    EXPECT_EQ(priors->size(), static_cast<std::size_t>(procs) * iters);
    expect_dense_priors(std::move(*priors));
    EXPECT_EQ(f->read(), static_cast<FetchOpValue>(procs) * iters);
    return {f->protocol_changes(), static_cast<std::uint32_t>(f->mode())};
}

TEST(ReactiveFetchOpTest, LinearizableLowContention)
{
    sim_reactive_fetchop_torture(2, 150, 1);
}

TEST(ReactiveFetchOpTest, LinearizableHighContention)
{
    sim_reactive_fetchop_torture(32, 20, 1);
}

TEST(ReactiveFetchOpTest, LinearizableSeedSweep)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        sim_reactive_fetchop_torture(12, 25, seed);
}

TEST(ReactiveFetchOpTest, EscalatesToCombiningUnderHeavyContention)
{
    // Force an eager queue->tree switch so the test exercises all three
    // protocols within a modest run.
    ReactiveFetchOpParams params;
    params.queue_wait_limit = 400;
    params.combine_min_batch = 2;  // pin the demotion threshold
    auto out = sim_reactive_fetchop_torture(48, 25, 3, params);
    EXPECT_GE(out.protocol_changes, 2u);  // TTS -> queue -> tree at least
    EXPECT_EQ(out.final_mode,
              static_cast<std::uint32_t>(
                  ReactiveFetchOp<SimPlatform>::Mode::kCombine));
}

TEST(ReactiveFetchOpTest, ReturnsFromCombiningWhenContentionFades)
{
    using F = ReactiveFetchOp<SimPlatform>;
    ReactiveFetchOpParams params;
    params.queue_wait_limit = 400;
    params.combine_min_batch = 2;  // pin the demotion threshold
    auto f = std::make_shared<F>(32, 0, params);

    sim::Machine m(32);
    for (std::uint32_t p = 0; p < 32; ++p) {
        m.spawn(p, [=] {
            typename F::Node node;
            for (int i = 0; i < 20; ++i)
                f->fetch_add(node, 1);
        });
    }
    m.run();
    EXPECT_EQ(f->mode(), F::Mode::kCombine);
    const FetchOpValue after_phase1 = f->read();
    EXPECT_EQ(after_phase1, 32 * 20);

    // Solo phase: low combining rate pulls it back off the tree.
    sim::Machine m2(1);
    m2.spawn(0, [=] {
        typename F::Node node;
        for (int i = 0; i < 60; ++i) {
            f->fetch_add(node, 1);
            sim::delay(50);
        }
    });
    m2.run();
    EXPECT_NE(f->mode(), F::Mode::kCombine);
    EXPECT_EQ(f->read(), 32 * 20 + 60);
}

TEST(ReactiveFetchOpTest, NativeThreadsLinearizable)
{
    using F = ReactiveFetchOp<NativePlatform>;
    const std::uint32_t threads =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    F f(threads);
    std::vector<std::vector<FetchOpValue>> priors(threads);
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            typename F::Node node;
            for (int i = 0; i < 300; ++i)
                priors[t].push_back(f.fetch_add(node, 1));
        });
    }
    for (auto& th : pool)
        th.join();
    std::vector<FetchOpValue> all;
    for (auto& v : priors)
        all.insert(all.end(), v.begin(), v.end());
    expect_dense_priors(std::move(all));
}

}  // namespace
}  // namespace reactive
