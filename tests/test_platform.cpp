// Unit tests for the native platform substrate.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "platform/backoff.hpp"
#include "platform/cache_line.hpp"
#include "platform/cpu.hpp"
#include "platform/native_platform.hpp"
#include "platform/parker.hpp"
#include "platform/prng.hpp"

namespace reactive {
namespace {

TEST(CacheLine, AlignmentIsEnforced)
{
    struct Pair {
        CacheAligned<int> a;
        CacheAligned<int> b;
    };
    Pair p;
    auto pa = reinterpret_cast<std::uintptr_t>(&p.a);
    auto pb = reinterpret_cast<std::uintptr_t>(&p.b);
    EXPECT_EQ(pa % kCacheLineSize, 0u);
    EXPECT_EQ(pb % kCacheLineSize, 0u);
    EXPECT_GE(pb - pa, kCacheLineSize);
}

TEST(Prng, DeterministicForSeed)
{
    XorShift64Star a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Prng, ZeroSeedRemapped)
{
    XorShift64Star z(0);
    EXPECT_NE(z(), 0u);
}

TEST(Prng, BelowStaysInRange)
{
    XorShift64Star rng(7);
    for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 30}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Prng, BelowCoversRange)
{
    XorShift64Star rng(99);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);  // all residues hit
}

TEST(Prng, Uniform01Bounds)
{
    XorShift64Star rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform01();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, SplitMixDistinctSeeds)
{
    std::uint64_t state = 1;
    std::set<std::uint64_t> seeds;
    for (int i = 0; i < 100; ++i)
        seeds.insert(splitmix64(state));
    EXPECT_EQ(seeds.size(), 100u);
}

TEST(Backoff, MeanDoublesAndCaps)
{
    BackoffParams params;
    params.initial = 8;
    params.maximum = 64;
    ExpBackoff<NativePlatform> b(params);
    EXPECT_EQ(b.mean(), 8u);
    b.pause();
    EXPECT_EQ(b.mean(), 16u);
    b.pause();
    b.pause();
    EXPECT_EQ(b.mean(), 64u);
    b.pause();
    EXPECT_EQ(b.mean(), 64u);  // capped
    b.succeed();
    EXPECT_EQ(b.mean(), 32u);
    b.reset();
    EXPECT_EQ(b.mean(), 8u);
}

TEST(Backoff, ForContendersScalesCap)
{
    auto small = BackoffParams::for_contenders(2);
    auto large = BackoffParams::for_contenders(64);
    EXPECT_LT(small.maximum, large.maximum);
}

TEST(Cpu, TscMonotonicEnough)
{
    const std::uint64_t a = tsc_now();
    spin_for_cycles(1000);
    const std::uint64_t b = tsc_now();
    EXPECT_GE(b - a, 1000u);
}

TEST(NativePlatformTest, RandomBelowInRange)
{
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(NativePlatform::random_below(17), 17u);
}

TEST(WaitQueue, NotifyWakesBlockedThread)
{
    NativeWaitQueue q;
    std::atomic<int> stage{0};
    std::thread waiter([&] {
        for (;;) {
            std::uint32_t e = q.prepare_wait();
            if (stage.load() != 0) {
                q.cancel_wait();
                break;
            }
            q.commit_wait(e);
        }
        stage.store(2);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stage.store(1);
    q.notify_all();
    waiter.join();
    EXPECT_EQ(stage.load(), 2);
}

TEST(WaitQueue, CancelDoesNotBlock)
{
    NativeWaitQueue q;
    std::uint32_t e = q.prepare_wait();
    (void)e;
    q.cancel_wait();  // must not deadlock or consume a wakeup
    SUCCEED();
}

TEST(WaitQueue, NotifyBeforeCommitIsNotLost)
{
    // The epoch protocol must not lose a wakeup that lands between
    // prepare_wait and commit_wait.
    NativeWaitQueue q;
    std::uint32_t e = q.prepare_wait();
    q.notify_all();     // epoch moves
    q.commit_wait(e);   // must return immediately
    SUCCEED();
}

TEST(WaitQueue, ManyWaitersAllWake)
{
    NativeWaitQueue q;
    std::atomic<bool> go{false};
    std::atomic<int> woke{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i) {
        threads.emplace_back([&] {
            for (;;) {
                std::uint32_t e = q.prepare_wait();
                if (go.load()) {
                    q.cancel_wait();
                    break;
                }
                q.commit_wait(e);
            }
            woke.fetch_add(1);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    go.store(true);
    q.notify_all();
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(woke.load(), 8);
}

}  // namespace
}  // namespace reactive
