// Tests for Chapter 4's waiting algorithms and the synchronization
// constructs built on them: wait_until semantics, futures,
// J-structures, barriers, and the waiting mutex, on both platforms —
// plus the reactive waiting axis: the eventcount contract of both
// native wait queues, the sim park/wake integration of the reactive
// primitives, and native oversubscribed park/wake storms.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "apps/workloads.hpp"
#include "barrier/reactive_barrier.hpp"
#include "core/cohort_queue.hpp"
#include "core/reactive_mutex.hpp"
#include "platform/native_platform.hpp"
#include "platform/parker.hpp"
#include "rw/reactive_rw_lock.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"
#include "stats/summary.hpp"
#include "waiting/reactive/wait_select.hpp"
#include "waiting/reactive/wait_site.hpp"
#include "waiting/sync/barrier.hpp"
#include "waiting/sync/future.hpp"
#include "waiting/sync/jstructure.hpp"
#include "waiting/sync/waiting_mutex.hpp"
#include "waiting/wait.hpp"

namespace reactive {
namespace {

using sim::SimPlatform;

const WaitingAlgorithm kAlgos[] = {
    WaitingAlgorithm::always_spin(),
    WaitingAlgorithm::always_block(),
    WaitingAlgorithm::two_phase(270),
    WaitingAlgorithm::two_phase(500),
};

// ---- wait_until semantics ----------------------------------------------

TEST(WaitUntilTest, ImmediateConditionCostsNothing)
{
    sim::Machine m(1);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    auto out = std::make_shared<WaitOutcome>();
    m.spawn(0, [=] {
        *out = wait_until<SimPlatform>(*q, [] { return true; },
                                       WaitingAlgorithm::two_phase(270));
    });
    m.run();
    EXPECT_EQ(out->wait_cycles, 0u);
    EXPECT_FALSE(out->blocked);
}

TEST(WaitUntilTest, TwoPhaseShortWaitPollsOnly)
{
    // Condition satisfied well inside Lpoll: the waiter must not block.
    sim::Machine m(2);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    auto flag = std::make_shared<sim::Atomic<int>>(0);
    auto out = std::make_shared<WaitOutcome>();
    m.spawn(0, [=] {
        *out = wait_until<SimPlatform>(*q, [&] { return flag->load() != 0; },
                                       WaitingAlgorithm::two_phase(500));
    });
    m.spawn(1, [=] {
        sim::delay(100);
        flag->store(1);
        q->notify_all();
    });
    m.run();
    EXPECT_FALSE(out->blocked);
    EXPECT_GT(out->wait_cycles, 0u);
    EXPECT_LT(out->wait_cycles, 700u);
    EXPECT_EQ(m.stats().blocks, 0u);
}

TEST(WaitUntilTest, TwoPhaseLongWaitBlocks)
{
    sim::Machine m(2);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    auto flag = std::make_shared<sim::Atomic<int>>(0);
    auto out = std::make_shared<WaitOutcome>();
    m.spawn(0, [=] {
        *out = wait_until<SimPlatform>(*q, [&] { return flag->load() != 0; },
                                       WaitingAlgorithm::two_phase(270));
    });
    m.spawn(1, [=] {
        sim::delay(20000);  // far beyond Lpoll
        flag->store(1);
        q->notify_all();
    });
    m.run();
    EXPECT_TRUE(out->blocked);
    EXPECT_GE(out->wait_cycles, 20000u - 500u);
    EXPECT_EQ(m.stats().blocks, 1u);
}

TEST(WaitUntilTest, AlwaysSpinNeverBlocks)
{
    sim::Machine m(2);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    auto flag = std::make_shared<sim::Atomic<int>>(0);
    m.spawn(0, [=] {
        wait_until<SimPlatform>(*q, [&] { return flag->load() != 0; },
                                WaitingAlgorithm::always_spin());
    });
    m.spawn(1, [=] {
        sim::delay(5000);
        flag->store(1);
    });
    m.run();
    EXPECT_EQ(m.stats().blocks, 0u);
}

TEST(WaitUntilTest, AlwaysBlockBlocksImmediately)
{
    sim::Machine m(2);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    auto flag = std::make_shared<sim::Atomic<int>>(0);
    auto waiter_cycles = std::make_shared<std::uint64_t>(0);
    m.spawn(0, [=] {
        wait_until<SimPlatform>(*q, [&] { return flag->load() != 0; },
                                WaitingAlgorithm::always_block());
        *waiter_cycles = sim::now();
    });
    m.spawn(1, [=] {
        sim::delay(10000);
        flag->store(1);
        q->notify_all();
    });
    m.run();
    EXPECT_EQ(m.stats().blocks, 1u);
    // The blocked waiter burned ~B cycles of processor time, not 10000:
    // its processor was free while blocked (clock restarted at wake).
    EXPECT_GE(*waiter_cycles, 10000u);
}

TEST(WaitUntilTest, SwitchSpinningOverlapsWaitWithOtherContexts)
{
    // Two threads on one 4-context processor: one switch-spins waiting
    // for the other's result; the other computes 20000 cycles. With
    // spinning the wait would cost ~20000 wasted cycles on top of the
    // compute; switch-spinning hands the processor over (Section 4.1),
    // so total elapsed stays close to the compute time. Scheduling is
    // non-preemptive (Section 2.2.4), so the computing thread runs to
    // completion once switched to.
    sim::CostModel cm = sim::CostModel::multithreaded(4);
    sim::Machine m(1, cm);
    auto flag = std::make_shared<sim::Atomic<int>>(0);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    m.spawn(0, [=] {
        wait_until<SimPlatform>(
            *q, [&] { return flag->load() != 0; },
            WaitingAlgorithm::always_spin(PollMechanism::kSwitchSpin));
    });
    m.spawn(0, [=] {
        sim::delay(20000);
        flag->store(1);
    });
    m.run();
    EXPECT_GE(m.stats().context_switches, 1u);
    EXPECT_LT(m.elapsed(), 30000u);  // wait overlapped with compute
}

// ---- futures ------------------------------------------------------------

TEST(FutureTest, SimSetThenGet)
{
    for (const auto& alg : kAlgos) {
        sim::Machine m(2);
        auto f = std::make_shared<FutureValue<int, SimPlatform>>(alg);
        auto got = std::make_shared<int>(0);
        m.spawn(0, [=] { *got = f->get(); });
        m.spawn(1, [=] {
            sim::delay(3000);
            f->set_value(42);
        });
        m.run();
        EXPECT_EQ(*got, 42);
    }
}

TEST(FutureTest, ManyReadersOneWriter)
{
    sim::Machine m(8);
    auto f = std::make_shared<FutureValue<int, SimPlatform>>(
        WaitingAlgorithm::two_phase(270));
    auto sum = std::make_shared<long>(0);
    for (std::uint32_t p = 1; p < 8; ++p)
        m.spawn(p, [=] { *sum += f->get(); });
    m.spawn(0, [=] {
        sim::delay(5000);
        f->set_value(10);
    });
    m.run();
    EXPECT_EQ(*sum, 70);
}

TEST(FutureTest, NativeThreads)
{
    FutureValue<int, NativePlatform> f(WaitingAlgorithm::two_phase(2000));
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        f.set_value(7);
    });
    EXPECT_EQ(f.get(), 7);
    producer.join();
    EXPECT_TRUE(f.ready());
    EXPECT_EQ(f.get(), 7);  // repeated reads fine
}

TEST(FutureTest, ProfileRecordsWaits)
{
    sim::Machine m(2);
    auto f = std::make_shared<FutureValue<int, SimPlatform>>(
        WaitingAlgorithm::always_spin());
    auto profile = std::make_shared<stats::Samples>();
    m.spawn(0, [=] { f->get(profile.get()); });
    m.spawn(1, [=] {
        sim::delay(4000);
        f->set_value(1);
    });
    m.run();
    ASSERT_EQ(profile->size(), 1u);
    EXPECT_GT(profile->values()[0], 3000.0);
}

// ---- J-structures --------------------------------------------------------

TEST(JStructureTest, PipelinedReadersAndWriter)
{
    for (const auto& alg : kAlgos) {
        sim::Machine m(4);
        auto js = std::make_shared<JStructure<int, SimPlatform>>(64, alg);
        auto sums = std::make_shared<std::vector<long>>(3, 0);
        // Producer fills slots with variable grain.
        m.spawn(0, [=] {
            for (int i = 0; i < 64; ++i) {
                sim::delay(100 + sim::random_below(300));
                js->write(static_cast<std::size_t>(i), i);
            }
        });
        for (std::uint32_t p = 1; p < 4; ++p) {
            m.spawn(p, [=] {
                long s = 0;
                for (int i = 0; i < 64; ++i)
                    s += js->read(static_cast<std::size_t>(i));
                (*sums)[p - 1] = s;
            });
        }
        m.run();
        for (long s : *sums)
            EXPECT_EQ(s, 64 * 63 / 2);
    }
}

TEST(JStructureTest, ResetAllowsReuse)
{
    JStructure<int, NativePlatform> js(4);
    js.write(0, 5);
    EXPECT_TRUE(js.full(0));
    EXPECT_EQ(js.read(0), 5);
    js.reset();
    EXPECT_FALSE(js.full(0));
    js.write(0, 6);
    EXPECT_EQ(js.read(0), 6);
}

// ---- barrier --------------------------------------------------------------

TEST(BarrierTest, EpisodesStayInLockstep)
{
    for (const auto& alg : kAlgos) {
        const std::uint32_t procs = 8;
        sim::Machine m(procs);
        auto bar = std::make_shared<WaitingBarrier<SimPlatform>>(procs, alg);
        auto phase_counts = std::make_shared<std::vector<int>>(10, 0);
        auto violations = std::make_shared<int>(0);
        for (std::uint32_t p = 0; p < procs; ++p) {
            m.spawn(p, [=] {
                WaitingBarrier<SimPlatform>::Node node;
                for (int e = 0; e < 10; ++e) {
                    sim::delay(sim::random_below(2000));  // skewed arrivals
                    ++(*phase_counts)[e];
                    bar->arrive(node);
                    // After the barrier, everyone must have arrived.
                    if ((*phase_counts)[e] != static_cast<int>(procs))
                        ++*violations;
                }
            });
        }
        m.run();
        EXPECT_EQ(*violations, 0);
    }
}

TEST(BarrierTest, NativeThreads)
{
    const std::uint32_t threads = 4;
    WaitingBarrier<NativePlatform> bar(threads,
                                       WaitingAlgorithm::two_phase(5000));
    std::atomic<int> arrived{0};
    std::atomic<int> violations{0};
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            WaitingBarrier<NativePlatform>::Node node;
            for (int e = 0; e < 50; ++e) {
                arrived.fetch_add(1);
                bar.arrive(node);
                if (arrived.load() < (e + 1) * static_cast<int>(threads))
                    violations.fetch_add(1);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(violations.load(), 0);
}

// ---- waiting mutex ---------------------------------------------------------

TEST(WaitingMutexTest, MutualExclusionAllAlgorithms)
{
    for (const auto& alg : kAlgos) {
        sim::Machine m(8);
        auto mu = std::make_shared<WaitingMutex<SimPlatform>>(alg);
        auto inside = std::make_shared<int>(0);
        auto violations = std::make_shared<int>(0);
        auto count = std::make_shared<long>(0);
        for (std::uint32_t p = 0; p < 8; ++p) {
            m.spawn(p, [=] {
                for (int i = 0; i < 40; ++i) {
                    mu->lock();
                    if (++*inside != 1)
                        ++*violations;
                    sim::delay(30 + sim::random_below(50));
                    --*inside;
                    ++*count;
                    mu->unlock();
                    sim::delay(sim::random_below(200));
                }
            });
        }
        m.run();
        EXPECT_EQ(*violations, 0);
        EXPECT_EQ(*count, 8 * 40);
    }
}

TEST(WaitingMutexTest, BlockingFreesTheProcessor)
{
    // The waiter blocks (always-block) while the holder computes on
    // another processor; the blocked waiter's processor must not burn
    // the wait spinning: the wake resumes it near the unlock time.
    sim::Machine m(2);
    auto mu = std::make_shared<WaitingMutex<SimPlatform>>(
        WaitingAlgorithm::always_block());
    auto order = std::make_shared<std::vector<int>>();
    m.spawn(0, [=] {
        mu->lock();
        sim::delay(20000);
        order->push_back(1);
        mu->unlock();
    });
    m.spawn(1, [=] {
        sim::delay(500);  // ensure the first thread owns the mutex
        mu->lock();
        order->push_back(2);
        mu->unlock();
    });
    m.run();
    EXPECT_EQ(*order, (std::vector<int>{1, 2}));
    EXPECT_GE(m.stats().blocks, 1u);
    EXPECT_EQ(m.stats().wakes, m.stats().blocks);
}

TEST(WaitingMutexTest, ProfileSeparatesContendedWaits)
{
    sim::Machine m(4);
    auto mu = std::make_shared<WaitingMutex<SimPlatform>>(
        WaitingAlgorithm::two_phase(270));
    auto profile = std::make_shared<stats::Samples>();
    for (std::uint32_t p = 0; p < 4; ++p) {
        m.spawn(p, [=] {
            for (int i = 0; i < 20; ++i) {
                mu->lock(profile.get());
                sim::delay(200);
                mu->unlock();
                sim::delay(sim::random_below(100));
            }
        });
    }
    m.run();
    EXPECT_EQ(profile->size(), 80u);
    EXPECT_GT(profile->stats().max(), 0.0);  // some waits were real
}

// ---- eventcount contract (futex + condvar fallback) ---------------------
//
// The condvar fallback must obey the futex eventcount's exact
// epoch/waiters discipline (platform/parker.hpp file header). Both
// classes compile on Linux, so these race-window tests exercise the
// fallback on the platform the CI actually runs.

template <typename Q>
class EventCountContractTest : public ::testing::Test {};

#if defined(__linux__)
using EventCountTypes = ::testing::Types<FutexWaitQueue, CondVarWaitQueue>;
#else
using EventCountTypes = ::testing::Types<CondVarWaitQueue>;
#endif
TYPED_TEST_SUITE(EventCountContractTest, EventCountTypes);

TYPED_TEST(EventCountContractTest, NotifyInsidePrepareCommitWindowIsSeen)
{
    // The race window itself: a notify that lands after prepare_wait's
    // epoch snapshot must make commit_wait return without sleeping
    // (FUTEX_WAIT's compare-and-sleep; the condvar path's epoch
    // predicate under the mutex).
    TypeParam q;
    const std::uint32_t e = q.prepare_wait();
    q.notify_one();
    q.commit_wait(e);  // a lost wakeup would hang here
    EXPECT_EQ(q.waiters(), 0u);
}

TYPED_TEST(EventCountContractTest, CancelRetractsTheAdvertisement)
{
    TypeParam q;
    (void)q.prepare_wait();
    EXPECT_EQ(q.waiters(), 1u);
    q.cancel_wait();
    EXPECT_EQ(q.waiters(), 0u);
}

TYPED_TEST(EventCountContractTest, ElidedNotifyStillAdvancesTheEpoch)
{
    // A notify with no advertised waiters skips the expensive wake but
    // must still bump the epoch, or a waiter preparing concurrently
    // could snapshot the stale value and sleep through its wakeup.
    TypeParam q;
    const std::uint32_t e1 = q.prepare_wait();
    q.cancel_wait();
    q.notify_all();  // waiters == 0: wake elided
    const std::uint32_t e2 = q.prepare_wait();
    q.cancel_wait();
    EXPECT_NE(e1, e2);
}

TYPED_TEST(EventCountContractTest, PrepareNotifyRaceHammerLosesNoWakeup)
{
    // Two threads hammer the prepare/cancel/commit vs. notify window.
    // A lost wakeup wedges the waiter on a stale epoch and hangs the
    // test (the canary); wakes for already-satisfied rounds are
    // absorbed by the re-arm loop (spurious-wake tolerance).
    TypeParam q;
    std::atomic<std::uint32_t> published{0};
    constexpr std::uint32_t kRounds = 10000;
    std::thread waiter([&] {
        for (std::uint32_t r = 1; r <= kRounds; ++r) {
            for (;;) {
                const std::uint32_t e = q.prepare_wait();
                if (published.load(std::memory_order_seq_cst) >= r) {
                    q.cancel_wait();
                    break;
                }
                q.commit_wait(e);  // woken (or spurious): re-test
            }
        }
    });
    for (std::uint32_t r = 1; r <= kRounds; ++r) {
        published.store(r, std::memory_order_seq_cst);
        q.notify_one();
    }
    waiter.join();
    EXPECT_EQ(q.waiters(), 0u);
}

TYPED_TEST(EventCountContractTest, NotifyForAnotherPredicateReArmsCleanly)
{
    // Two waiters with distinct predicates share one queue. A
    // notify_all satisfying only the first must leave the second
    // re-armed and waiting (every wake is spurious from its point of
    // view) until its own predicate flips.
    TypeParam q;
    std::atomic<int> a{0};
    std::atomic<int> b{0};
    std::atomic<int> a_done{0};
    auto wait_for = [&](std::atomic<int>& flag) {
        for (;;) {
            const std::uint32_t e = q.prepare_wait();
            if (flag.load(std::memory_order_seq_cst) != 0) {
                q.cancel_wait();
                return;
            }
            q.commit_wait(e);
        }
    };
    std::thread ta([&] {
        wait_for(a);
        a_done.store(1, std::memory_order_seq_cst);
    });
    std::thread tb([&] { wait_for(b); });
    a.store(1, std::memory_order_seq_cst);
    q.notify_all();
    while (a_done.load(std::memory_order_seq_cst) == 0)
        std::this_thread::yield();
    EXPECT_EQ(b.load(), 0);  // tb's predicate untouched: still waiting
    b.store(1, std::memory_order_seq_cst);
    q.notify_all();
    ta.join();
    tb.join();
    EXPECT_EQ(q.waiters(), 0u);
}

// ---- reactive waiting axis: sim integration ------------------------------

using SpinLockSim = ReactiveNodeLock<SimPlatform, AlwaysSwitchPolicy>;
using ParkLockSim = ReactiveNodeLock<SimPlatform, AlwaysSwitchPolicy,
                                     ReactiveQueue<SimPlatform>, ParkWaiting,
                                     FixedWaitPolicy>;
using ReactiveWaitSim = ReactiveNodeLock<SimPlatform, AlwaysSwitchPolicy,
                                         ReactiveQueue<SimPlatform>,
                                         ParkWaiting, CalibratedWaitPolicy>;

sim::CostModel preemptive_costs()
{
    sim::CostModel c = sim::CostModel::alewife();
    c.preempt_quantum = 10000;
    return c;
}

TEST(WaitAxisSimTest, FixedParkHintParksWaiters)
{
    auto lock = std::make_shared<ParkLockSim>();
    lock->inner().wait_policy() =
        FixedWaitPolicy(WaitingAlgorithm::always_block());
    sim::MachineStats st;
    const std::uint64_t elapsed =
        apps::run_lock_cycle_oversubscribed<ParkLockSim>(
            2, /*factor=*/1, /*iters=*/60, /*cs=*/2000, /*think=*/0,
            /*seed=*/1, lock, sim::CostModel::alewife(), &st);
    EXPECT_GT(elapsed, 0u);
    // The park hint reaches the site at the first release; from then
    // on contended waiters block instead of spinning. The hold must
    // comfortably exceed the thread-unload cost (the commit_wait
    // window), or every park is aborted by the next release's epoch
    // bump before it can take effect.
    EXPECT_GT(st.blocks, 0u);
    EXPECT_EQ(st.wakes, st.blocks);
}

TEST(WaitAxisSimTest, SpinInstantiationNeverBlocksEvenOversubscribed)
{
    // The SpinWaiting lock has no parking machinery: oversubscribed it
    // survives on the preemption quantum alone (and must never touch
    // the machine's block/wake paths — the park-free identity).
    sim::MachineStats st;
    apps::run_lock_cycle_oversubscribed<SpinLockSim>(
        2, /*factor=*/2, /*iters=*/40, /*cs=*/100, /*think=*/0, /*seed=*/1,
        nullptr, preemptive_costs(), &st);
    EXPECT_EQ(st.blocks, 0u);
    EXPECT_EQ(st.wakes, 0u);
    EXPECT_GT(st.preemptions, 0u);
}

TEST(WaitAxisSimTest, ReactiveParksUnderOversubscription)
{
    // 4 threads per single-context processor with think time between
    // sections: spinners burn whole preemption quanta that runnable
    // thinkers need, the lock sits idle while the next acquirer waits
    // for a context, and the calibrated policy's idle lane drives it
    // out of spin — waiters must actually park. (A zero-think hot loop
    // is deliberately *not* used here: there the handoff is instant and
    // staying spin is the correct decision.)
    auto lock = std::make_shared<ReactiveWaitSim>();
    sim::MachineStats st;
    apps::run_lock_cycle_oversubscribed<ReactiveWaitSim>(
        2, /*factor=*/4, /*iters=*/60, /*cs=*/200, /*think=*/3000,
        /*seed=*/1, lock, preemptive_costs(), &st);
    EXPECT_GT(st.blocks, 0u);
    EXPECT_EQ(st.wakes, st.blocks);
    // The policy left spin at least once mid-run. (The *final* hint is
    // deliberately not asserted: as the run drains, contention drops
    // and a correct calibrated policy decays back toward spin.)
    EXPECT_GT(lock->inner().wait_mode_changes(), 0u);
}

TEST(WaitAxisSimTest, FactorOneQuantumOffMatchesFlatKernelExactly)
{
    // The park-free identity argument as a determinism check: the
    // oversubscribed kernel at factor 1 with the quantum off builds the
    // same machine and schedule as the flat kernel, so the elapsed
    // cycle counts must be *identical*, not merely close.
    const std::uint64_t flat = apps::run_lock_cycle<SpinLockSim>(
        4, /*iters=*/100, /*cs=*/100, /*think=*/300, /*seed=*/7);
    const std::uint64_t over =
        apps::run_lock_cycle_oversubscribed<SpinLockSim>(
            4, /*factor=*/1, /*iters=*/100, /*cs=*/100, /*think=*/300,
            /*seed=*/7);
    EXPECT_EQ(flat, over);
}

TEST(WaitAxisSimTest, CohortQueueParkingKeepsExclusionAndParks)
{
    // The NUMA lock's parking config: local waiters park under their
    // socket's site, leaders under the global site. Forced park hint,
    // socketed machine, exclusion + completion + parks.
    using CohortPark = ReactiveNodeLock<SimPlatform, AlwaysSwitchPolicy,
                                        CohortQueue<SimPlatform, ParkWaiting>,
                                        ParkWaiting, FixedWaitPolicy>;
    sim::Machine m(8, sim::Topology{2, 4}, sim::CostModel::alewife(), 5);
    CohortQueue<SimPlatform, ParkWaiting>::Params cp;
    cp.sockets = 2;
    auto lock = std::make_shared<CohortPark>(ReactiveLockParams{},
                                             AlwaysSwitchPolicy{}, cp);
    lock->inner().wait_policy() =
        FixedWaitPolicy(WaitingAlgorithm::always_block());
    auto inside = std::make_shared<int>(0);
    auto violations = std::make_shared<int>(0);
    auto count = std::make_shared<long>(0);
    for (std::uint32_t p = 0; p < 8; ++p) {
        m.spawn(p, [=] {
            for (int i = 0; i < 30; ++i) {
                typename CohortPark::Node node;
                lock->lock(node);
                if (++*inside != 1)
                    ++*violations;
                sim::delay(80);
                --*inside;
                ++*count;
                lock->unlock(node);
                sim::delay(sim::random_below(100));
            }
        });
    }
    m.run();
    EXPECT_EQ(*violations, 0);
    EXPECT_EQ(*count, 240);
    EXPECT_GT(m.stats().blocks, 0u);
}

TEST(WaitAxisSimTest, RwLockParkingMaintainsExclusionAndParks)
{
    using RW = ReactiveRwLock<SimPlatform, AlwaysSwitchPolicy, ParkWaiting,
                              FixedWaitPolicy>;
    sim::Machine m(4);
    auto rw = std::make_shared<RW>();
    rw->wait_policy() = FixedWaitPolicy(WaitingAlgorithm::always_block());
    auto writers_in = std::make_shared<int>(0);
    auto readers_in = std::make_shared<int>(0);
    auto violations = std::make_shared<int>(0);
    auto ops = std::make_shared<long>(0);
    for (std::uint32_t p = 0; p < 4; ++p) {
        m.spawn(p, [=] {
            for (int i = 0; i < 40; ++i) {
                typename RW::Node n;
                if ((i + static_cast<int>(p)) % 3 == 0) {
                    rw->lock_write(n);
                    if (++*writers_in != 1 || *readers_in != 0)
                        ++*violations;
                    sim::delay(150);
                    --*writers_in;
                    rw->unlock_write(n);
                } else {
                    rw->lock_read(n);
                    ++*readers_in;
                    if (*writers_in != 0)
                        ++*violations;
                    sim::delay(60);
                    --*readers_in;
                    rw->unlock_read(n);
                }
                ++*ops;
                sim::delay(sim::random_below(120));
            }
        });
    }
    m.run();
    EXPECT_EQ(*violations, 0);
    EXPECT_EQ(*ops, 160);
    EXPECT_GT(m.stats().blocks, 0u);
}

TEST(WaitAxisSimTest, BarrierParkingStaysInLockstepAndParks)
{
    // Pin the protocol to central (the only slot that exposes the
    // site-aware episode wait; tree/dissemination keep local spins) and
    // force the park hint: early arrivals must park and the completer's
    // broadcast must wake every one, or the episode wedges.
    struct NeverPolicy {
        bool on_tts_acquire(bool) { return false; }
        bool on_queue_acquire(bool) { return false; }
        void on_switch() {}
    };
    using Bar = ReactiveBarrier<SimPlatform, NeverPolicy,
                                CentralTreeBarrierSet<SimPlatform>,
                                ParkWaiting, FixedWaitPolicy>;
    const std::uint32_t procs = 4;
    sim::Machine m(procs);
    auto bar = std::make_shared<Bar>(procs);
    bar->wait_policy() = FixedWaitPolicy(WaitingAlgorithm::always_block());
    auto phase_counts = std::make_shared<std::vector<int>>(20, 0);
    auto violations = std::make_shared<int>(0);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename Bar::Node node;
            for (int e = 0; e < 20; ++e) {
                sim::delay(sim::random_below(3000));  // skewed arrivals
                ++(*phase_counts)[e];
                bar->arrive(node);
                if ((*phase_counts)[e] != static_cast<int>(procs))
                    ++*violations;
            }
        });
    }
    m.run();
    EXPECT_EQ(*violations, 0);
    EXPECT_EQ(bar->mode(), Bar::Mode::kCentral);
    EXPECT_GT(m.stats().blocks, 0u);
    EXPECT_EQ(m.stats().wakes, m.stats().blocks);
}

// ---- native oversubscribed park/wake storms ------------------------------
//
// Run with TSan in CI (repeated): `factor` threads per CPU all hammer
// one object whose wait mode is forced to rotate every release, so
// parked waiters keep being woken into a different mode (spurious
// wakes), hints keep going stale, and any lost wakeup hangs the test.

/// Rotates the published hint spin -> two-phase -> park on every
/// release. In-consensus only (no atomics needed, like any policy).
class CyclingWaitPolicy {
  public:
    std::uint32_t on_release(const WaitSignal&)
    {
        WaitHint h;
        switch (n_++ % 3) {
        case 0:
            h.mode = WaitMode::kSpin;
            break;
        case 1:
            h.mode = WaitMode::kTwoPhase;
            h.poll_limit = 500;
            break;
        default:
            h.mode = WaitMode::kPark;
            break;
        }
        hint_ = pack_wait_hint(h);
        return hint_;
    }
    void note_wake_latency(std::uint64_t) {}
    std::uint32_t hint() const { return hint_; }

  private:
    std::uint32_t n_ = 0;
    std::uint32_t hint_ = pack_wait_hint(WaitHint{});
};

static_assert(WaitSelectPolicy<CyclingWaitPolicy>);

/// Threads = factor x online CPUs; iteration counts sized so the storm
/// finishes quickly under TSan's ~10x slowdown.
std::uint32_t storm_threads(std::uint32_t factor)
{
    const unsigned hw = std::thread::hardware_concurrency();
    return (hw != 0 ? hw : 1u) * factor;
}

TEST(ParkWakeStormTest, OversubscribedLockStormUnderModeSwitches)
{
    using L = ReactiveNodeLock<NativePlatform, AlwaysSwitchPolicy,
                               ReactiveQueue<NativePlatform>, ParkWaiting,
                               CyclingWaitPolicy>;
    L lock;
    const std::uint32_t threads = storm_threads(4);
    constexpr int kIters = 400;
    std::atomic<int> inside{0};
    std::atomic<int> violations{0};
    std::atomic<long> count{0};
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                typename L::Node n;
                lock.lock(n);
                if (inside.fetch_add(1, std::memory_order_relaxed) != 0)
                    violations.fetch_add(1, std::memory_order_relaxed);
                inside.fetch_sub(1, std::memory_order_relaxed);
                count.fetch_add(1, std::memory_order_relaxed);
                lock.unlock(n);
            }
        });
    }
    for (auto& th : pool)
        th.join();  // a lost wakeup hangs the join (the canary)
    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(count.load(), static_cast<long>(threads) * kIters);
}

TEST(ParkWakeStormTest, OversubscribedRwLockStormUnderModeSwitches)
{
    using RW = ReactiveRwLock<NativePlatform, AlwaysSwitchPolicy,
                              ParkWaiting, CyclingWaitPolicy>;
    RW rw;
    const std::uint32_t threads = storm_threads(4);
    constexpr int kIters = 250;
    std::atomic<int> writers_in{0};
    std::atomic<int> violations{0};
    std::atomic<long> ops{0};
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                typename RW::Node n;
                if ((i + static_cast<int>(t)) % 4 == 0) {
                    rw.lock_write(n);
                    if (writers_in.fetch_add(1,
                                             std::memory_order_relaxed) != 0)
                        violations.fetch_add(1, std::memory_order_relaxed);
                    writers_in.fetch_sub(1, std::memory_order_relaxed);
                    rw.unlock_write(n);
                } else {
                    rw.lock_read(n);
                    if (writers_in.load(std::memory_order_relaxed) != 0)
                        violations.fetch_add(1, std::memory_order_relaxed);
                    rw.unlock_read(n);
                }
                ops.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(ops.load(), static_cast<long>(threads) * kIters);
}

TEST(ParkWakeStormTest, OversubscribedBarrierStormUnderModeSwitches)
{
    // Small participant count (episodes serialize on the slowest
    // thread) but heavily timeshared: every episode mixes parked and
    // spinning waiters as the hint rotates underneath them.
    struct NeverPolicy {
        bool on_tts_acquire(bool) { return false; }
        bool on_queue_acquire(bool) { return false; }
        void on_switch() {}
    };
    using Bar = ReactiveBarrier<NativePlatform, NeverPolicy,
                                CentralTreeBarrierSet<NativePlatform>,
                                ParkWaiting, CyclingWaitPolicy>;
    const std::uint32_t threads = 4;
    Bar bar(threads);
    constexpr int kEpisodes = 150;
    std::atomic<int> arrived{0};
    std::atomic<int> violations{0};
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            typename Bar::Node node;
            for (int e = 0; e < kEpisodes; ++e) {
                arrived.fetch_add(1);
                bar.arrive(node);
                if (arrived.load() < (e + 1) * static_cast<int>(threads))
                    violations.fetch_add(1);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace reactive
