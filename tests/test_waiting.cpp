// Tests for Chapter 4's waiting algorithms and the synchronization
// constructs built on them: wait_until semantics, futures,
// J-structures, barriers, and the waiting mutex, on both platforms.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "platform/native_platform.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"
#include "stats/summary.hpp"
#include "waiting/sync/barrier.hpp"
#include "waiting/sync/future.hpp"
#include "waiting/sync/jstructure.hpp"
#include "waiting/sync/waiting_mutex.hpp"
#include "waiting/wait.hpp"

namespace reactive {
namespace {

using sim::SimPlatform;

const WaitingAlgorithm kAlgos[] = {
    WaitingAlgorithm::always_spin(),
    WaitingAlgorithm::always_block(),
    WaitingAlgorithm::two_phase(270),
    WaitingAlgorithm::two_phase(500),
};

// ---- wait_until semantics ----------------------------------------------

TEST(WaitUntilTest, ImmediateConditionCostsNothing)
{
    sim::Machine m(1);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    auto out = std::make_shared<WaitOutcome>();
    m.spawn(0, [=] {
        *out = wait_until<SimPlatform>(*q, [] { return true; },
                                       WaitingAlgorithm::two_phase(270));
    });
    m.run();
    EXPECT_EQ(out->wait_cycles, 0u);
    EXPECT_FALSE(out->blocked);
}

TEST(WaitUntilTest, TwoPhaseShortWaitPollsOnly)
{
    // Condition satisfied well inside Lpoll: the waiter must not block.
    sim::Machine m(2);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    auto flag = std::make_shared<sim::Atomic<int>>(0);
    auto out = std::make_shared<WaitOutcome>();
    m.spawn(0, [=] {
        *out = wait_until<SimPlatform>(*q, [&] { return flag->load() != 0; },
                                       WaitingAlgorithm::two_phase(500));
    });
    m.spawn(1, [=] {
        sim::delay(100);
        flag->store(1);
        q->notify_all();
    });
    m.run();
    EXPECT_FALSE(out->blocked);
    EXPECT_GT(out->wait_cycles, 0u);
    EXPECT_LT(out->wait_cycles, 700u);
    EXPECT_EQ(m.stats().blocks, 0u);
}

TEST(WaitUntilTest, TwoPhaseLongWaitBlocks)
{
    sim::Machine m(2);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    auto flag = std::make_shared<sim::Atomic<int>>(0);
    auto out = std::make_shared<WaitOutcome>();
    m.spawn(0, [=] {
        *out = wait_until<SimPlatform>(*q, [&] { return flag->load() != 0; },
                                       WaitingAlgorithm::two_phase(270));
    });
    m.spawn(1, [=] {
        sim::delay(20000);  // far beyond Lpoll
        flag->store(1);
        q->notify_all();
    });
    m.run();
    EXPECT_TRUE(out->blocked);
    EXPECT_GE(out->wait_cycles, 20000u - 500u);
    EXPECT_EQ(m.stats().blocks, 1u);
}

TEST(WaitUntilTest, AlwaysSpinNeverBlocks)
{
    sim::Machine m(2);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    auto flag = std::make_shared<sim::Atomic<int>>(0);
    m.spawn(0, [=] {
        wait_until<SimPlatform>(*q, [&] { return flag->load() != 0; },
                                WaitingAlgorithm::always_spin());
    });
    m.spawn(1, [=] {
        sim::delay(5000);
        flag->store(1);
    });
    m.run();
    EXPECT_EQ(m.stats().blocks, 0u);
}

TEST(WaitUntilTest, AlwaysBlockBlocksImmediately)
{
    sim::Machine m(2);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    auto flag = std::make_shared<sim::Atomic<int>>(0);
    auto waiter_cycles = std::make_shared<std::uint64_t>(0);
    m.spawn(0, [=] {
        wait_until<SimPlatform>(*q, [&] { return flag->load() != 0; },
                                WaitingAlgorithm::always_block());
        *waiter_cycles = sim::now();
    });
    m.spawn(1, [=] {
        sim::delay(10000);
        flag->store(1);
        q->notify_all();
    });
    m.run();
    EXPECT_EQ(m.stats().blocks, 1u);
    // The blocked waiter burned ~B cycles of processor time, not 10000:
    // its processor was free while blocked (clock restarted at wake).
    EXPECT_GE(*waiter_cycles, 10000u);
}

TEST(WaitUntilTest, SwitchSpinningOverlapsWaitWithOtherContexts)
{
    // Two threads on one 4-context processor: one switch-spins waiting
    // for the other's result; the other computes 20000 cycles. With
    // spinning the wait would cost ~20000 wasted cycles on top of the
    // compute; switch-spinning hands the processor over (Section 4.1),
    // so total elapsed stays close to the compute time. Scheduling is
    // non-preemptive (Section 2.2.4), so the computing thread runs to
    // completion once switched to.
    sim::CostModel cm = sim::CostModel::multithreaded(4);
    sim::Machine m(1, cm);
    auto flag = std::make_shared<sim::Atomic<int>>(0);
    auto q = std::make_shared<SimPlatform::WaitQueue>();
    m.spawn(0, [=] {
        wait_until<SimPlatform>(
            *q, [&] { return flag->load() != 0; },
            WaitingAlgorithm::always_spin(PollMechanism::kSwitchSpin));
    });
    m.spawn(0, [=] {
        sim::delay(20000);
        flag->store(1);
    });
    m.run();
    EXPECT_GE(m.stats().context_switches, 1u);
    EXPECT_LT(m.elapsed(), 30000u);  // wait overlapped with compute
}

// ---- futures ------------------------------------------------------------

TEST(FutureTest, SimSetThenGet)
{
    for (const auto& alg : kAlgos) {
        sim::Machine m(2);
        auto f = std::make_shared<FutureValue<int, SimPlatform>>(alg);
        auto got = std::make_shared<int>(0);
        m.spawn(0, [=] { *got = f->get(); });
        m.spawn(1, [=] {
            sim::delay(3000);
            f->set_value(42);
        });
        m.run();
        EXPECT_EQ(*got, 42);
    }
}

TEST(FutureTest, ManyReadersOneWriter)
{
    sim::Machine m(8);
    auto f = std::make_shared<FutureValue<int, SimPlatform>>(
        WaitingAlgorithm::two_phase(270));
    auto sum = std::make_shared<long>(0);
    for (std::uint32_t p = 1; p < 8; ++p)
        m.spawn(p, [=] { *sum += f->get(); });
    m.spawn(0, [=] {
        sim::delay(5000);
        f->set_value(10);
    });
    m.run();
    EXPECT_EQ(*sum, 70);
}

TEST(FutureTest, NativeThreads)
{
    FutureValue<int, NativePlatform> f(WaitingAlgorithm::two_phase(2000));
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        f.set_value(7);
    });
    EXPECT_EQ(f.get(), 7);
    producer.join();
    EXPECT_TRUE(f.ready());
    EXPECT_EQ(f.get(), 7);  // repeated reads fine
}

TEST(FutureTest, ProfileRecordsWaits)
{
    sim::Machine m(2);
    auto f = std::make_shared<FutureValue<int, SimPlatform>>(
        WaitingAlgorithm::always_spin());
    auto profile = std::make_shared<stats::Samples>();
    m.spawn(0, [=] { f->get(profile.get()); });
    m.spawn(1, [=] {
        sim::delay(4000);
        f->set_value(1);
    });
    m.run();
    ASSERT_EQ(profile->size(), 1u);
    EXPECT_GT(profile->values()[0], 3000.0);
}

// ---- J-structures --------------------------------------------------------

TEST(JStructureTest, PipelinedReadersAndWriter)
{
    for (const auto& alg : kAlgos) {
        sim::Machine m(4);
        auto js = std::make_shared<JStructure<int, SimPlatform>>(64, alg);
        auto sums = std::make_shared<std::vector<long>>(3, 0);
        // Producer fills slots with variable grain.
        m.spawn(0, [=] {
            for (int i = 0; i < 64; ++i) {
                sim::delay(100 + sim::random_below(300));
                js->write(static_cast<std::size_t>(i), i);
            }
        });
        for (std::uint32_t p = 1; p < 4; ++p) {
            m.spawn(p, [=] {
                long s = 0;
                for (int i = 0; i < 64; ++i)
                    s += js->read(static_cast<std::size_t>(i));
                (*sums)[p - 1] = s;
            });
        }
        m.run();
        for (long s : *sums)
            EXPECT_EQ(s, 64 * 63 / 2);
    }
}

TEST(JStructureTest, ResetAllowsReuse)
{
    JStructure<int, NativePlatform> js(4);
    js.write(0, 5);
    EXPECT_TRUE(js.full(0));
    EXPECT_EQ(js.read(0), 5);
    js.reset();
    EXPECT_FALSE(js.full(0));
    js.write(0, 6);
    EXPECT_EQ(js.read(0), 6);
}

// ---- barrier --------------------------------------------------------------

TEST(BarrierTest, EpisodesStayInLockstep)
{
    for (const auto& alg : kAlgos) {
        const std::uint32_t procs = 8;
        sim::Machine m(procs);
        auto bar = std::make_shared<WaitingBarrier<SimPlatform>>(procs, alg);
        auto phase_counts = std::make_shared<std::vector<int>>(10, 0);
        auto violations = std::make_shared<int>(0);
        for (std::uint32_t p = 0; p < procs; ++p) {
            m.spawn(p, [=] {
                WaitingBarrier<SimPlatform>::Node node;
                for (int e = 0; e < 10; ++e) {
                    sim::delay(sim::random_below(2000));  // skewed arrivals
                    ++(*phase_counts)[e];
                    bar->arrive(node);
                    // After the barrier, everyone must have arrived.
                    if ((*phase_counts)[e] != static_cast<int>(procs))
                        ++*violations;
                }
            });
        }
        m.run();
        EXPECT_EQ(*violations, 0);
    }
}

TEST(BarrierTest, NativeThreads)
{
    const std::uint32_t threads = 4;
    WaitingBarrier<NativePlatform> bar(threads,
                                       WaitingAlgorithm::two_phase(5000));
    std::atomic<int> arrived{0};
    std::atomic<int> violations{0};
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            WaitingBarrier<NativePlatform>::Node node;
            for (int e = 0; e < 50; ++e) {
                arrived.fetch_add(1);
                bar.arrive(node);
                if (arrived.load() < (e + 1) * static_cast<int>(threads))
                    violations.fetch_add(1);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(violations.load(), 0);
}

// ---- waiting mutex ---------------------------------------------------------

TEST(WaitingMutexTest, MutualExclusionAllAlgorithms)
{
    for (const auto& alg : kAlgos) {
        sim::Machine m(8);
        auto mu = std::make_shared<WaitingMutex<SimPlatform>>(alg);
        auto inside = std::make_shared<int>(0);
        auto violations = std::make_shared<int>(0);
        auto count = std::make_shared<long>(0);
        for (std::uint32_t p = 0; p < 8; ++p) {
            m.spawn(p, [=] {
                for (int i = 0; i < 40; ++i) {
                    mu->lock();
                    if (++*inside != 1)
                        ++*violations;
                    sim::delay(30 + sim::random_below(50));
                    --*inside;
                    ++*count;
                    mu->unlock();
                    sim::delay(sim::random_below(200));
                }
            });
        }
        m.run();
        EXPECT_EQ(*violations, 0);
        EXPECT_EQ(*count, 8 * 40);
    }
}

TEST(WaitingMutexTest, BlockingFreesTheProcessor)
{
    // The waiter blocks (always-block) while the holder computes on
    // another processor; the blocked waiter's processor must not burn
    // the wait spinning: the wake resumes it near the unlock time.
    sim::Machine m(2);
    auto mu = std::make_shared<WaitingMutex<SimPlatform>>(
        WaitingAlgorithm::always_block());
    auto order = std::make_shared<std::vector<int>>();
    m.spawn(0, [=] {
        mu->lock();
        sim::delay(20000);
        order->push_back(1);
        mu->unlock();
    });
    m.spawn(1, [=] {
        sim::delay(500);  // ensure the first thread owns the mutex
        mu->lock();
        order->push_back(2);
        mu->unlock();
    });
    m.run();
    EXPECT_EQ(*order, (std::vector<int>{1, 2}));
    EXPECT_GE(m.stats().blocks, 1u);
    EXPECT_EQ(m.stats().wakes, m.stats().blocks);
}

TEST(WaitingMutexTest, ProfileSeparatesContendedWaits)
{
    sim::Machine m(4);
    auto mu = std::make_shared<WaitingMutex<SimPlatform>>(
        WaitingAlgorithm::two_phase(270));
    auto profile = std::make_shared<stats::Samples>();
    for (std::uint32_t p = 0; p < 4; ++p) {
        m.spawn(p, [=] {
            for (int i = 0; i < 20; ++i) {
                mu->lock(profile.get());
                sim::delay(200);
                mu->unlock();
                sim::delay(sim::random_below(100));
            }
        });
    }
    m.run();
    EXPECT_EQ(profile->size(), 80u);
    EXPECT_GT(profile->stats().max(), 0.0);  // some waits were real
}

}  // namespace
}  // namespace reactive
