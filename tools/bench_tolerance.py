#!/usr/bin/env python3
"""Compare two BENCH_*.json crossover dumps cell-by-cell.

The bench binaries (fig_calibration, fig_barrier) write every crossover
cell as a flat record {bench, protocol, procs, regime, cycles_per_op}.
This script diffs a baseline dump (a previous run on the same runner
class) against the current one with a relative tolerance, so CI can
flag drifting crossovers without a human eyeballing tables. Blocking
policy lives in the CI steps, not here: all three dumps (calibration,
barrier, numa) run as *blocking* steps — an out-of-tolerance diff
means a real behavior change the PR must own up to. Newly added dumps
stay advisory for one PR before promotion.

When GITHUB_STEP_SUMMARY is set (GitHub Actions), a per-cell delta
table — worst regressions first — is appended to the job summary, so
a reviewer sees where the drift is without scrolling raw logs.

Usage:
  bench_tolerance.py BASELINE.json CURRENT.json [--tolerance 0.15]

Exit codes: 0 all matched cells within tolerance (missing baseline
cells and brand-new cells are reported but do not fail), 1 violations,
2 usage/IO error.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_tolerance: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    cells = {}
    for r in records:
        key = (r["bench"], r["protocol"], r["procs"], r["regime"])
        cells[key] = float(r["cycles_per_op"])
    return cells


def write_step_summary(current_name, deltas, violations, tolerance,
                       top=15):
    """Appends a worst-first per-cell delta table to the GitHub
    Actions step summary (no-op outside Actions)."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    # Worst regressions first: signed delta descending (slowdowns top),
    # then magnitude.
    ranked = sorted(deltas, key=lambda d: -d[3])
    verdict = (f"**{len(violations)} cell(s) outside "
               f"{tolerance * 100:.0f}%**" if violations
               else f"all {len(deltas)} cells within "
                    f"{tolerance * 100:.0f}%")
    lines = [
        f"### Bench tolerance: `{current_name}`",
        "",
        verdict,
        "",
        "| cell | baseline | current | delta |",
        "| --- | ---: | ---: | ---: |",
    ]
    for key, b, c, signed in ranked[:top]:
        bench, protocol, procs, regime = key
        mark = " ⚠️" if abs(signed) > tolerance else ""
        lines.append(f"| {bench}/{regime} P={procs} {protocol} | "
                     f"{b:.1f} | {c:.1f} | {signed * 100:+.1f}%{mark} |")
    if len(ranked) > top:
        lines.append("")
        lines.append(f"_{len(ranked) - top} more cells within tolerance "
                     "omitted._")
    lines.append("")
    try:
        with open(path, "a") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as e:
        print(f"bench_tolerance: cannot append step summary: {e}",
              file=sys.stderr)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative deviation (default 0.15)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    violations = []
    deltas = []  # (key, baseline, current, signed relative delta)
    compared = 0
    for key, b in sorted(base.items()):
        if key not in cur:
            print(f"  MISSING in current: {key}")
            continue
        c = cur[key]
        compared += 1
        # Relative to the baseline cell; a zero baseline compares only
        # against zero.
        if b == 0:
            ok = c == 0
            rel = float("inf") if not ok else 0.0
            signed = rel
        else:
            rel = abs(c - b) / abs(b)
            signed = (c - b) / abs(b)
            ok = rel <= args.tolerance
        deltas.append((key, b, c, signed))
        if not ok:
            violations.append((key, b, c, rel))
    for key in sorted(set(cur) - set(base)):
        print(f"  NEW cell (no baseline): {key}")

    for key, b, c, rel in violations:
        bench, protocol, procs, regime = key
        print(f"  TOLERANCE FAIL [{bench}/{regime} P={procs}] {protocol}: "
              f"baseline={b:.1f} current={c:.1f} ({rel * 100:.1f}% > "
              f"{args.tolerance * 100:.0f}%)")

    print(f"bench_tolerance: {compared} cells compared, "
          f"{len(violations)} outside {args.tolerance * 100:.0f}%")
    write_step_summary(args.current, deltas, violations, args.tolerance)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
