#!/usr/bin/env python3
"""Compare two BENCH_*.json crossover dumps cell-by-cell.

The bench binaries (fig_calibration, fig_barrier) write every crossover
cell as a flat record {bench, protocol, procs, regime, cycles_per_op}.
This script diffs a baseline dump (a previous run on the same runner
class) against the current one with a relative tolerance, so CI can
flag drifting crossovers without a human eyeballing tables. Blocking
policy lives in the CI steps, not here: the calibration and barrier
dumps have been stable across runs and now run as a *blocking* step
(an out-of-tolerance diff means a real behavior change the PR must own
up to), while newly added dumps (currently BENCH_numa.json) stay
advisory for one PR before promotion.

Usage:
  bench_tolerance.py BASELINE.json CURRENT.json [--tolerance 0.15]

Exit codes: 0 all matched cells within tolerance (missing baseline
cells and brand-new cells are reported but do not fail), 1 violations,
2 usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_tolerance: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    cells = {}
    for r in records:
        key = (r["bench"], r["protocol"], r["procs"], r["regime"])
        cells[key] = float(r["cycles_per_op"])
    return cells


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative deviation (default 0.15)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    violations = []
    compared = 0
    for key, b in sorted(base.items()):
        if key not in cur:
            print(f"  MISSING in current: {key}")
            continue
        c = cur[key]
        compared += 1
        # Relative to the baseline cell; a zero baseline compares only
        # against zero.
        if b == 0:
            ok = c == 0
            rel = float("inf") if not ok else 0.0
        else:
            rel = abs(c - b) / abs(b)
            ok = rel <= args.tolerance
        if not ok:
            violations.append((key, b, c, rel))
    for key in sorted(set(cur) - set(base)):
        print(f"  NEW cell (no baseline): {key}")

    for key, b, c, rel in violations:
        bench, protocol, procs, regime = key
        print(f"  TOLERANCE FAIL [{bench}/{regime} P={procs}] {protocol}: "
              f"baseline={b:.1f} current={c:.1f} ({rel * 100:.1f}% > "
              f"{args.tolerance * 100:.0f}%)")

    print(f"bench_tolerance: {compared} cells compared, "
          f"{len(violations)} outside {args.tolerance * 100:.0f}%")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
