#!/usr/bin/env python3
"""Reconstruct protocol-decision timelines from a reactive trace.

Reads the Chrome trace-event JSON written by `--trace <file>` (see
src/trace/export.hpp for the event schema) and replays it into a
per-object decision narrative: which protocol each object started on,
every switch with its triggering signal / drift / estimator snapshot,
probe episodes and their outcomes, every *waiting-mode* switch with
the estimator snapshot that drove it (hold/block EWMAs, expected
wait), a park/wake rollup per object, and the per-class metric rollup
the binary embedded under "reactiveMetrics".

`--regret` switches to the decision-audit view: switch, probe and
regret events are merged into per-object *decision intervals* (the
span an object spends on one protocol), each annotated with the
counterfactual regret paid while that decision was in force — "who
paid what for which decision" — and the top mis-protocol intervals
are flagged. CI round-trips the traced fig_regret smoke run through
this mode.

Exits nonzero on a malformed trace — unparseable JSON, missing keys,
unknown event types, timestamps out of order in the drained stream, or
a broken switch chain (an object switching *from* a protocol it was
never *on*). CI runs this over the traced fig_calibration smoke run
as the round-trip validation of the whole tracing pipeline.

If the binary dropped events (ring overflow), a warning is printed
with the per-class breakdown — the timeline is incomplete, the metric
rollup is not. `--strict` turns that warning into a nonzero exit.

Usage:
  tools/trace_explain.py TRACE.json [--min-events N] [--min-switches N]
                         [--regret] [--top N] [--strict] [--quiet]
"""

import argparse
import json
import sys
from collections import defaultdict

KNOWN_TYPES = {
    "switch",
    "probe_begin",
    "probe_end",
    "acq_sample",
    "fast_acquire",
    "episode",
    "cohort_grant",
    "cohort_handoff",
    "cohort_abort",
    "regret",
    "park",
    "wake",
    "wait_mode_switch",
}

# WaitMode encoding (src/waiting/reactive/wait_select.hpp).
WAIT_MODES = {0: "spin", 1: "two_phase", 2: "park"}


def wait_mode(v):
    return WAIT_MODES.get(v, f"mode{v}")

REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "tid", "args")
REQUIRED_ARG_KEYS = ("object", "from", "to")


class MalformedTrace(Exception):
    pass


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise MalformedTrace(f"cannot parse {path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise MalformedTrace("missing top-level traceEvents array")
    if not isinstance(doc["traceEvents"], list):
        raise MalformedTrace("traceEvents is not an array")
    return doc


def validate(doc):
    """Structural checks; returns the event list (may be empty)."""
    events = doc["traceEvents"]
    last_ts_per_ring = {}
    for i, e in enumerate(events):
        for k in REQUIRED_EVENT_KEYS:
            if k not in e:
                raise MalformedTrace(f"event {i}: missing key '{k}'")
        if e["name"] not in KNOWN_TYPES:
            raise MalformedTrace(f"event {i}: unknown type '{e['name']}'")
        if e["ph"] != "i":
            raise MalformedTrace(f"event {i}: expected instant ph, got "
                                 f"'{e['ph']}'")
        args = e["args"]
        for k in REQUIRED_ARG_KEYS:
            if k not in args:
                raise MalformedTrace(f"event {i}: args missing '{k}'")
        ts, tid = e["ts"], e["tid"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise MalformedTrace(f"event {i}: bad ts {ts!r}")
        # capture() sorts globally by ts (stable within a ring), so the
        # stream must be monotone overall, not just per ring.
        prev = last_ts_per_ring.get("global")
        if prev is not None and ts < prev:
            raise MalformedTrace(
                f"event {i}: ts {ts} precedes previous {prev} "
                f"(drain ordering broken)")
        last_ts_per_ring["global"] = ts
        _ = tid
    return events


def explain(events, quiet):
    """Replays events into per-object timelines; returns switch count."""
    # object id -> list of narrative lines; current protocol per object.
    timeline = defaultdict(list)
    current = {}
    cls_of = {}
    switches = 0
    # object id -> park/wake rollup (parks are per-wait samples, wakes
    # per-broadcast; too many for narrative lines, so they aggregate).
    waits = defaultdict(lambda: {"parks": 0, "wait_cycles": 0,
                                 "wakes": 0, "woken": 0,
                                 "wake_latency_sum": 0,
                                 "wake_latency_n": 0})
    for i, e in enumerate(events):
        a = e["args"]
        obj, frm, to = a["object"], a["from"], a["to"]
        cls_of[obj] = e["cat"]
        t = e["ts"]
        name = e["name"]
        if name == "switch":
            if obj in current and current[obj] != frm:
                raise MalformedTrace(
                    f"event {i}: object {obj} switches from protocol "
                    f"{frm} but its last known protocol is "
                    f"{current[obj]} (audit chain broken)")
            current[obj] = to
            switches += 1
            timeline[obj].append(
                f"  t={t}: switch {frm}->{to} "
                f"(signal protocol={a.get('signal_protocol', '?')} "
                f"drift={a.get('drift', '?')} "
                f"est={a.get('est_a', 0)}/{a.get('est_b', 0)} "
                f"dur={a.get('duration', 0)} cycles)")
        elif name == "probe_begin":
            timeline[obj].append(
                f"  t={t}: probe begin on protocol {frm} "
                f"(#{a.get('probes', '?')})")
        elif name == "probe_end":
            outcome = {0: "rejected", 1: "adopted", 2: "unknown"}.get(
                a.get("outcome"), "unknown")
            timeline[obj].append(f"  t={t}: probe end -> {outcome}")
        elif name == "episode":
            timeline[obj].append(
                f"  t={t}: episode on protocol {frm} "
                f"cost={a.get('cost', '?')} "
                f"arrivals={a.get('arrivals', '?')}")
        elif name == "cohort_handoff":
            timeline[obj].append(
                f"  t={t}: cohort budget exhausted after "
                f"{a.get('a0', '?')} passes, global handoff")
        elif name == "cohort_abort":
            timeline[obj].append(f"  t={t}: cohort queue invalidated")
        elif name == "wait_mode_switch":
            # The waiting-axis decision record: the holder's estimator
            # snapshot (hold/block EWMAs, expected wait) and the mode
            # it chose for the waiters it is about to signal.
            timeline[obj].append(
                f"  t={t}: wait mode {wait_mode(frm)}->{wait_mode(to)} "
                f"(hold_est={a.get('hold_est', '?')} "
                f"block_est={a.get('block_est', '?')} "
                f"expected_wait={a.get('expected_wait', '?')} "
                f"hint={a.get('hint', '?')})")
        elif name == "park":
            w = waits[obj]
            w["parks"] += 1
            w["wait_cycles"] += a.get("wait_cycles", 0)
            lat = a.get("wake_latency", 0)
            if lat > 0:
                w["wake_latency_sum"] += lat
                w["wake_latency_n"] += 1
        elif name == "wake":
            w = waits[obj]
            w["wakes"] += 1
            w["woken"] += a.get("woken", 0)
        # acq_sample / fast_acquire / cohort_grant / regret are
        # high-volume samples; they feed the stats (and the --regret
        # view), not the narrative.
    for obj, w in waits.items():
        if w["parks"] == 0 and w["wakes"] == 0:
            continue
        line = (f"  waiting: {w['parks']} waited acquisition(s) "
                f"({w['wait_cycles']} cycles), {w['wakes']} broadcast(s) "
                f"waking {w['woken']}")
        if w["wake_latency_n"] > 0:
            line += (f", mean wake latency "
                     f"{w['wake_latency_sum'] // w['wake_latency_n']} "
                     f"cycles ({w['wake_latency_n']} measured)")
        timeline[obj].append(line)
    if not quiet:
        for obj in sorted(timeline):
            print(f"{cls_of.get(obj, 'object')} #{obj}:")
            for line in timeline[obj]:
                print(line)
    return switches


def regret_report(events, quiet, top):
    """Decision-interval attribution: who paid what for which decision.

    A *decision interval* is the span an object spends on one protocol
    — opened by a switch (or by the first event seen for the object),
    closed by the next switch.  Every regret sample emitted inside the
    interval is charged to the decision that opened it, so each
    interval reads as "the policy kept object O on protocol P from t0
    to t1, and that choice cost R cycles over the estimator's best
    alternative".  The highest-regret intervals are the mis-protocol
    spans worth investigating first.

    Returns (total regret samples, total regret cycles).
    """
    closed = []            # finished interval dicts, all objects
    open_iv = {}           # object id -> interval in progress
    cls_of = {}

    def fresh(obj, proto, start):
        return {"object": obj, "proto": proto, "start": start,
                "end": start, "samples": 0, "realized": 0, "best": 0,
                "regret": 0, "probes": 0, "opened_by_switch": False}

    for e in events:
        a = e["args"]
        obj, t, name = a["object"], e["ts"], e["name"]
        cls_of[obj] = e["cat"]
        if name == "switch":
            if obj in open_iv:
                open_iv[obj]["end"] = t
                closed.append(open_iv.pop(obj))
            iv = fresh(obj, a["to"], t)
            iv["opened_by_switch"] = True
            open_iv[obj] = iv
        elif name == "regret":
            # from = the protocol that paid (the decision in force).
            iv = open_iv.setdefault(obj, fresh(obj, a["from"], t))
            iv["end"] = max(iv["end"], t)
            iv["samples"] += 1
            iv["realized"] += a.get("realized", 0)
            iv["best"] += a.get("best", 0)
            iv["regret"] += a.get("regret", 0)
        elif name == "probe_begin":
            iv = open_iv.setdefault(obj, fresh(obj, a["from"], t))
            iv["end"] = max(iv["end"], t)
            iv["probes"] += 1
        elif name in ("probe_end", "episode"):
            if obj in open_iv:
                open_iv[obj]["end"] = max(open_iv[obj]["end"], t)
    closed.extend(open_iv.values())

    total_samples = sum(iv["samples"] for iv in closed)
    total_regret = sum(iv["regret"] for iv in closed)

    if not quiet:
        print("regret timeline (who paid what for which decision):")
        by_obj = defaultdict(list)
        for iv in closed:
            by_obj[iv["object"]].append(iv)
        for obj in sorted(by_obj):
            print(f"{cls_of.get(obj, 'object')} #{obj}:")
            for iv in sorted(by_obj[obj], key=lambda v: v["start"]):
                how = ("switched to" if iv["opened_by_switch"]
                       else "started on")
                line = (f"  [t={iv['start']}..{iv['end']}] {how} "
                        f"protocol {iv['proto']}: ")
                if iv["samples"] > 0:
                    line += (f"{iv['samples']} samples, paid "
                             f"{iv['regret']} cycles over best-alt "
                             f"(realized {iv['realized']}, "
                             f"best {iv['best']})")
                else:
                    line += "no regret samples"
                if iv["probes"] > 0:
                    line += f", {iv['probes']} probe(s)"
                print(line)
        worst = sorted((iv for iv in closed if iv["regret"] > 0),
                       key=lambda v: v["regret"], reverse=True)[:top]
        if worst:
            print(f"top {len(worst)} mis-protocol interval(s):")
            for rank, iv in enumerate(worst, 1):
                print(f"  {rank}. {cls_of.get(iv['object'], 'object')} "
                      f"#{iv['object']} on protocol {iv['proto']} "
                      f"[t={iv['start']}..{iv['end']}]: "
                      f"{iv['regret']} cycles regret "
                      f"({iv['samples']} samples)")
        else:
            print("no interval accumulated regret (every realized cost "
                  "was at or under the estimator's best alternative)")
    return total_samples, total_regret


def drop_warning(doc):
    """Prints the incomplete-timeline warning; returns dropped count."""
    other = doc.get("otherData", {})
    # Exporter writes counters as quoted strings (JSON-safe uint64).
    try:
        dropped = int(other.get("dropped_total", "0"))
    except (TypeError, ValueError):
        dropped = 0
    if dropped > 0:
        by_class = other.get("dropped_by_class", {})
        detail = " ".join(f"{c}={n}" for c, n in sorted(by_class.items())
                          if str(n) not in ("0", ""))
        print(f"WARNING: {dropped} events dropped at the rings "
              f"({detail or 'no per-class breakdown'}) — the timeline "
              f"is incomplete; metric rollups are not affected",
              file=sys.stderr)
    return dropped


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace JSON from --trace")
    ap.add_argument("--min-events", type=int, default=0,
                    help="fail unless the trace has at least N events")
    ap.add_argument("--min-switches", type=int, default=0,
                    help="fail unless at least N protocol switches")
    ap.add_argument("--regret", action="store_true",
                    help="decision-audit view: regret per decision "
                         "interval, top mis-protocol spans flagged")
    ap.add_argument("--top", type=int, default=5,
                    help="mis-protocol intervals to flag in --regret "
                         "mode (default 5)")
    ap.add_argument("--strict", action="store_true",
                    help="exit nonzero if the binary dropped events")
    ap.add_argument("--quiet", action="store_true",
                    help="validate only; no timeline dump")
    args = ap.parse_args()

    try:
        doc = load(args.trace)
        events = validate(doc)
        switches = explain(events, args.quiet or args.regret)
        regret_samples = regret_cycles = 0
        if args.regret:
            regret_samples, regret_cycles = regret_report(
                events, args.quiet, args.top)
    except MalformedTrace as e:
        print(f"MALFORMED TRACE: {e}", file=sys.stderr)
        return 2

    metrics = doc.get("reactiveMetrics", {})
    total = len(events)
    dropped = drop_warning(doc)
    print(f"{args.trace}: {total} events, {switches} switches, "
          f"{dropped} dropped")
    if args.regret:
        print(f"  regret: {regret_samples} samples, "
              f"{regret_cycles} cycles paid over best-alternative")
    for cls, row in sorted(metrics.items()):
        print(f"  {cls}: " + " ".join(f"{k}={v}" for k, v in row.items()))

    if total < args.min_events:
        print(f"FAIL: {total} events < required {args.min_events}",
              file=sys.stderr)
        return 1
    if switches < args.min_switches:
        print(f"FAIL: {switches} switches < required {args.min_switches}",
              file=sys.stderr)
        return 1
    if args.strict and dropped > 0:
        print(f"FAIL: --strict and {dropped} events dropped",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
