#!/usr/bin/env python3
"""Reconstruct protocol-decision timelines from a reactive trace.

Reads the Chrome trace-event JSON written by `--trace <file>` (see
src/trace/export.hpp for the event schema) and replays it into a
per-object decision narrative: which protocol each object started on,
every switch with its triggering signal / drift / estimator snapshot,
probe episodes and their outcomes, and the per-class metric rollup the
binary embedded under "reactiveMetrics".

Exits nonzero on a malformed trace — unparseable JSON, missing keys,
unknown event types, timestamps out of order in the drained stream, or
a broken switch chain (an object switching *from* a protocol it was
never *on*). CI runs this over the traced fig_calibration smoke run
as the round-trip validation of the whole tracing pipeline.

Usage:
  tools/trace_explain.py TRACE.json [--min-events N] [--min-switches N]
                         [--quiet]
"""

import argparse
import json
import sys
from collections import defaultdict

KNOWN_TYPES = {
    "switch",
    "probe_begin",
    "probe_end",
    "acq_sample",
    "fast_acquire",
    "episode",
    "cohort_grant",
    "cohort_handoff",
    "cohort_abort",
}

REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "tid", "args")
REQUIRED_ARG_KEYS = ("object", "from", "to")


class MalformedTrace(Exception):
    pass


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise MalformedTrace(f"cannot parse {path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise MalformedTrace("missing top-level traceEvents array")
    if not isinstance(doc["traceEvents"], list):
        raise MalformedTrace("traceEvents is not an array")
    return doc


def validate(doc):
    """Structural checks; returns the event list (may be empty)."""
    events = doc["traceEvents"]
    last_ts_per_ring = {}
    for i, e in enumerate(events):
        for k in REQUIRED_EVENT_KEYS:
            if k not in e:
                raise MalformedTrace(f"event {i}: missing key '{k}'")
        if e["name"] not in KNOWN_TYPES:
            raise MalformedTrace(f"event {i}: unknown type '{e['name']}'")
        if e["ph"] != "i":
            raise MalformedTrace(f"event {i}: expected instant ph, got "
                                 f"'{e['ph']}'")
        args = e["args"]
        for k in REQUIRED_ARG_KEYS:
            if k not in args:
                raise MalformedTrace(f"event {i}: args missing '{k}'")
        ts, tid = e["ts"], e["tid"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise MalformedTrace(f"event {i}: bad ts {ts!r}")
        # capture() sorts globally by ts (stable within a ring), so the
        # stream must be monotone overall, not just per ring.
        prev = last_ts_per_ring.get("global")
        if prev is not None and ts < prev:
            raise MalformedTrace(
                f"event {i}: ts {ts} precedes previous {prev} "
                f"(drain ordering broken)")
        last_ts_per_ring["global"] = ts
        _ = tid
    return events


def explain(events, quiet):
    """Replays events into per-object timelines; returns switch count."""
    # object id -> list of narrative lines; current protocol per object.
    timeline = defaultdict(list)
    current = {}
    cls_of = {}
    switches = 0
    for i, e in enumerate(events):
        a = e["args"]
        obj, frm, to = a["object"], a["from"], a["to"]
        cls_of[obj] = e["cat"]
        t = e["ts"]
        name = e["name"]
        if name == "switch":
            if obj in current and current[obj] != frm:
                raise MalformedTrace(
                    f"event {i}: object {obj} switches from protocol "
                    f"{frm} but its last known protocol is "
                    f"{current[obj]} (audit chain broken)")
            current[obj] = to
            switches += 1
            timeline[obj].append(
                f"  t={t}: switch {frm}->{to} "
                f"(signal protocol={a.get('signal_protocol', '?')} "
                f"drift={a.get('drift', '?')} "
                f"est={a.get('est_a', 0)}/{a.get('est_b', 0)} "
                f"dur={a.get('duration', 0)} cycles)")
        elif name == "probe_begin":
            timeline[obj].append(
                f"  t={t}: probe begin on protocol {frm} "
                f"(#{a.get('probes', '?')})")
        elif name == "probe_end":
            outcome = {0: "rejected", 1: "adopted", 2: "unknown"}.get(
                a.get("outcome"), "unknown")
            timeline[obj].append(f"  t={t}: probe end -> {outcome}")
        elif name == "episode":
            timeline[obj].append(
                f"  t={t}: episode on protocol {frm} "
                f"cost={a.get('cost', '?')} "
                f"arrivals={a.get('arrivals', '?')}")
        elif name == "cohort_handoff":
            timeline[obj].append(
                f"  t={t}: cohort budget exhausted after "
                f"{a.get('a0', '?')} passes, global handoff")
        elif name == "cohort_abort":
            timeline[obj].append(f"  t={t}: cohort queue invalidated")
        # acq_sample / fast_acquire / cohort_grant are high-volume
        # samples; they feed the stats, not the narrative.
    if not quiet:
        for obj in sorted(timeline):
            print(f"{cls_of.get(obj, 'object')} #{obj}:")
            for line in timeline[obj]:
                print(line)
    return switches


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace JSON from --trace")
    ap.add_argument("--min-events", type=int, default=0,
                    help="fail unless the trace has at least N events")
    ap.add_argument("--min-switches", type=int, default=0,
                    help="fail unless at least N protocol switches")
    ap.add_argument("--quiet", action="store_true",
                    help="validate only; no timeline dump")
    args = ap.parse_args()

    try:
        doc = load(args.trace)
        events = validate(doc)
        switches = explain(events, args.quiet)
    except MalformedTrace as e:
        print(f"MALFORMED TRACE: {e}", file=sys.stderr)
        return 2

    metrics = doc.get("reactiveMetrics", {})
    total = len(events)
    dropped = doc.get("otherData", {}).get("dropped_total", "0")
    print(f"{args.trace}: {total} events, {switches} switches, "
          f"{dropped} dropped")
    for cls, row in sorted(metrics.items()):
        print(f"  {cls}: " + " ".join(f"{k}={v}" for k, v in row.items()))

    if total < args.min_events:
        print(f"FAIL: {total} events < required {args.min_events}",
              file=sys.stderr)
        return 1
    if switches < args.min_switches:
        print(f"FAIL: {switches} switches < required {args.min_switches}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
