/**
 * @file
 * Reproduces Figures 4.12-4.14 and Tables 4.3-4.5: execution times of
 * the producer-consumer, barrier, and mutual-exclusion benchmarks under
 * the waiting algorithms — always-spin, always-block, two-phase with
 * Lpoll = 0.54B (the exponential-optimal static setting) and
 * Lpoll = B (the classic 2-competitive setting) — normalized per row to
 * the best algorithm.
 */
#include <iostream>

#include "apps/waiting_workloads.hpp"
#include "bench_common.hpp"

using namespace reactive;
using namespace reactive::bench;

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const std::uint32_t procs = 16;
    const std::uint32_t scale = args.full ? 3 : 1;
    const double b_cost = sim::CostModel::alewife().blocking_cost();

    const std::pair<const char*, WaitingAlgorithm> algos[] = {
        {"spin", WaitingAlgorithm::always_spin()},
        {"block", WaitingAlgorithm::always_block()},
        {"2ph 0.54B",
         WaitingAlgorithm::two_phase(
             static_cast<std::uint64_t>(0.5413 * b_cost))},
        {"2ph B",
         WaitingAlgorithm::two_phase(static_cast<std::uint64_t>(b_cost))},
    };

    stats::Table t(
        "Figs 4.12-4.14 / Tables 4.3-4.5: execution time by waiting "
        "algorithm (normalized to the best per row)");
    t.header({"benchmark", "spin", "block", "2ph 0.54B", "2ph B"});

    auto row = [&](const char* name, auto runner) {
        double v[4];
        for (int i = 0; i < 4; ++i)
            v[i] = static_cast<double>(runner(algos[i].second));
        const double best = std::min({v[0], v[1], v[2], v[3]});
        t.row({name, stats::fmt(v[0] / best, 2), stats::fmt(v[1] / best, 2),
               stats::fmt(v[2] / best, 2), stats::fmt(v[3] / best, 2)});
        std::cerr << "." << std::flush;
    };

    row("jstructure (prod-cons)", [&](WaitingAlgorithm a) {
        return apps::run_jstructure_pipeline(procs, a, 96 * scale, nullptr,
                                             args.seed);
    });
    row("futures (prod-cons)", [&](WaitingAlgorithm a) {
        return apps::run_future_net(procs, a, 12 * scale, nullptr, args.seed);
    });
    row("jacobi-bar (barrier)", [&](WaitingAlgorithm a) {
        return apps::run_barrier_sweeps(procs, a, 20 * scale, 3000, nullptr,
                                        args.seed);
    });
    row("cgrad-like (barrier)", [&](WaitingAlgorithm a) {
        return apps::run_barrier_sweeps(procs, a, 40 * scale, 1200, nullptr,
                                        args.seed);
    });
    row("fibheap (mutex)", [&](WaitingAlgorithm a) {
        return apps::run_fibheap(procs, a, 30 * scale, nullptr, args.seed);
    });
    row("mutex stress (mutex)", [&](WaitingAlgorithm a) {
        return apps::run_mutex_stress(procs, a, 40 * scale, nullptr,
                                      args.seed);
    });
    row("countnet (mutex)", [&](WaitingAlgorithm a) {
        return apps::run_countnet(procs, a, 30 * scale, 16, nullptr,
                                  args.seed);
    });
    std::cerr << "\n";
    t.note("paper shape: neither pure mechanism wins everywhere (bad");
    t.note("choice costs up to ~2.4x); two-phase stays within a few %");
    t.note("of the best static choice on every benchmark");
    t.print();
    return 0;
}
