/**
 * @file
 * Fixed-thread-pool contended benchmark harness for the native
 * platform.
 *
 * google-benchmark's threaded mode re-creates its worker threads every
 * timing interval and leaves their placement to the scheduler, which
 * makes contended crossover measurements drift run to run (the ROADMAP
 * pinning item). This harness does the opposite, on purpose:
 *
 *  - one **fixed pool** of worker threads per measurement, created
 *    once, optionally **pinned** round-robin to CPUs
 *    (`pin_current_thread`, feature-checked), all released by a single
 *    start gate so the measured window contains only the contended
 *    steady state;
 *  - cycles measured with `tsc_now()` from gate-open to the *last*
 *    worker's completion stamp (the TSC is constant-rate and
 *    socket-synchronized on every machine this targets; off x86 the
 *    coarse timebase in platform/cpu.hpp keeps the ratios sound);
 *  - per-thread worker state built *before* the gate via a maker
 *    functor, so protocols whose per-participant nodes carry state
 *    across operations (sense-reversing barriers, queue nodes) measure
 *    their steady state rather than their setup.
 *
 * The harness is deliberately small: a measurement is
 * `contended_run(opts, make_worker)` where `make_worker(t)` returns the
 * callable executed `iters_per_thread` times by thread `t`.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "platform/cache_line.hpp"
#include "platform/cpu.hpp"

namespace reactive::bench {

/// Knobs for one fixed-pool contended measurement.
struct ContendedOptions {
    std::uint32_t threads = 2;
    std::uint64_t iters_per_thread = 10000;
    bool pin = true;  ///< round-robin pin workers to CPUs
    /// Incremented per worker whose pin attempt failed (restricted
    /// cpusets, no affinity API) so callers can annotate results that
    /// are actually scheduler-placed instead of silently reporting
    /// them as pinned.
    std::atomic<std::uint32_t>* pin_failures = nullptr;

    /// Pool sized to `factor` workers per online CPU, pinned modulo the
    /// CPU count (pin_current_thread wraps the index), so each CPU
    /// timeshares `factor` workers — the native oversubscription regime
    /// of the reactive-waiting figures and the TSan park/wake storms.
    /// factor = 1 degrades to a fully subscribed pinned pool.
    static ContendedOptions oversubscribed(std::uint32_t factor,
                                           std::uint64_t iters_per_thread)
    {
        ContendedOptions o;
        const unsigned hw = std::thread::hardware_concurrency();
        o.threads = (hw != 0 ? hw : 1) * (factor != 0 ? factor : 1);
        o.iters_per_thread = iters_per_thread;
        return o;
    }
};

/**
 * Runs `make_worker(t)()` for `iters_per_thread` iterations on each of
 * `threads` pinned pool threads and returns the elapsed TSC cycles from
 * gate-open to the last worker's finish.
 */
template <typename MakeWorker>
std::uint64_t contended_run(const ContendedOptions& opt,
                            MakeWorker&& make_worker)
{
    std::atomic<std::uint32_t> ready{0};
    std::atomic<std::uint32_t> go{0};
    std::vector<CacheAligned<std::uint64_t>> finish(opt.threads);
    std::vector<std::thread> pool;
    pool.reserve(opt.threads);
    for (std::uint32_t t = 0; t < opt.threads; ++t) {
        pool.emplace_back([&, t] {
            if (opt.pin && !pin_current_thread(t) &&
                opt.pin_failures != nullptr)
                opt.pin_failures->fetch_add(1, std::memory_order_relaxed);
            auto worker = make_worker(t);
            ready.fetch_add(1, std::memory_order_release);
            while (go.load(std::memory_order_acquire) == 0)
                cpu_relax();
            for (std::uint64_t i = 0; i < opt.iters_per_thread; ++i)
                worker();
            finish[t].value = tsc_now();
        });
    }
    while (ready.load(std::memory_order_acquire) < opt.threads)
        std::this_thread::yield();
    const std::uint64_t start = tsc_now();
    go.store(1, std::memory_order_release);
    for (auto& th : pool)
        th.join();
    std::uint64_t last = start;
    for (const auto& f : finish)
        if (f.value > last)
            last = f.value;
    return last - start;
}

/**
 * Contended lock measurement: every thread loops
 * {acquire; tiny critical section; release} on one shared lock.
 * Returns cycles per critical section (total cycles / total ops).
 */
template <typename L>
double contended_lock_cycles_per_op(L& lock, const ContendedOptions& opt)
{
    std::atomic<std::uint64_t> sink{0};
    const std::uint64_t elapsed = contended_run(opt, [&](std::uint32_t) {
        return [&] {
            typename L::Node node;
            lock.lock(node);
            sink.store(sink.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);  // the critical section
            lock.unlock(node);
        };
    });
    return static_cast<double>(elapsed) /
           (static_cast<double>(opt.threads) * opt.iters_per_thread);
}

/**
 * Contended barrier measurement: `opt.threads` participants run
 * `iters_per_thread` episodes; thread 0 optionally burns
 * `straggle_cycles` before each arrival (the fixed-imbalance straggler
 * regime of fig_barrier). Returns cycles per episode.
 */
template <typename B>
double contended_barrier_cycles_per_episode(B& bar,
                                            const ContendedOptions& opt,
                                            std::uint64_t straggle_cycles = 0)
{
    // Nodes must outlive the episode loop and carry per-participant
    // sense state across episodes; build them in the maker (pre-gate).
    std::vector<std::unique_ptr<typename B::Node>> nodes(opt.threads);
    const std::uint64_t elapsed =
        contended_run(opt, [&](std::uint32_t t) {
            nodes[t] = std::make_unique<typename B::Node>();
            typename B::Node* n = nodes[t].get();
            return [&bar, n, t, straggle_cycles] {
                if (straggle_cycles > 0 && t == 0)
                    spin_for_cycles(straggle_cycles);
                bar.arrive(*n);
            };
        });
    return static_cast<double>(elapsed) /
           static_cast<double>(opt.iters_per_thread);
}

}  // namespace reactive::bench
