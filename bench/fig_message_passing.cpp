/**
 * @file
 * Reproduces Figure 3.26: baseline comparison of shared-memory vs
 * message-passing protocols for spin locks and fetch-and-op, plus the
 * reactive algorithms that select between them (Section 3.6).
 */
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "msg/message_fetch_op.hpp"
#include "msg/message_lock.hpp"
#include "msg/reactive_msg.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

/// Baseline loop: @p iteration performs one lock/critical/unlock round
/// against the shared object.
template <typename MakeFn, typename IterFn>
double msg_lock_overhead(std::uint32_t procs, bool full, std::uint64_t seed,
                         MakeFn make, IterFn iteration)
{
    const std::uint32_t iters = baseline_iters(procs, full);
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto obj = make(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                iteration(*obj);
                sim::delay(sim::random_below(500));
            }
        });
    }
    m.run();
    return static_cast<double>(m.elapsed()) /
               (static_cast<double>(procs) * iters) -
           spinlock_loop_latency(procs);
}

template <typename MakeFn, typename OpFn>
double msg_fetchop_overhead(std::uint32_t procs, bool full, std::uint64_t seed,
                            MakeFn make, OpFn op_fn)
{
    const std::uint32_t iters = baseline_iters(procs, full);
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto obj = make(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                op_fn(*obj);
                sim::delay(sim::random_below(500));
            }
        });
    }
    m.run();
    return static_cast<double>(m.elapsed()) /
               (static_cast<double>(procs) * iters) -
           250.0 / procs;
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const auto procs = baseline_procs(args.full);

    {
        stats::Table t(
            "Fig 3.26 (locks): shared-memory vs message-passing overhead "
            "cycles per critical section");
        std::vector<std::string> header{"algorithm"};
        for (std::uint32_t p : procs)
            header.push_back("P=" + std::to_string(p));
        t.header(header);

        std::vector<std::string> tts_row{"tts (shared memory)"},
            mcs_row{"mcs (shared memory)"}, msg_row{"msg queue lock"},
            rea_row{"reactive shm<->msg"};
        for (std::uint32_t p : procs) {
            tts_row.push_back(stats::fmt(
                spinlock_overhead<TtsSim>(p, args.full,
                                          sim::CostModel::alewife(),
                                          args.seed),
                0));
            mcs_row.push_back(stats::fmt(
                spinlock_overhead<McsSim>(p, args.full,
                                          sim::CostModel::alewife(),
                                          args.seed),
                0));
            msg_row.push_back(stats::fmt(
                msg_lock_overhead(
                    p, args.full, args.seed,
                    [](std::uint32_t) {
                        return std::make_shared<msg::MessageQueueLock>(0);
                    },
                    [](msg::MessageQueueLock& l) {
                        msg::MessageQueueLock::Node n;
                        l.lock(n);
                        sim::delay(100);
                        l.unlock();
                    }),
                0));
            rea_row.push_back(stats::fmt(
                msg_lock_overhead(
                    p, args.full, args.seed,
                    [](std::uint32_t) {
                        return std::make_shared<msg::ReactiveMessageNodeLock>(
                            0);
                    },
                    [](msg::ReactiveMessageNodeLock& l) {
                        msg::ReactiveMessageNodeLock::Node n;
                        l.lock(n);
                        sim::delay(100);
                        l.unlock(n);
                    }),
                0));
            std::cerr << "." << std::flush;
        }
        std::cerr << "\n";
        t.row(tts_row);
        t.row(mcs_row);
        t.row(msg_row);
        t.row(rea_row);
        t.note("paper finding: on Alewife the msg queue lock trails the");
        t.note("shared-memory MCS lock at every contention level");
        t.print();
    }

    {
        stats::Table t(
            "Fig 3.26 (fetch-and-op): shared-memory vs message-passing "
            "overhead cycles per operation");
        std::vector<std::string> header{"algorithm"};
        for (std::uint32_t p : procs)
            header.push_back("P=" + std::to_string(p));
        t.header(header);

        std::vector<std::string> shm{"tts-lock counter (shm)"},
            srv{"msg centralized"}, tree{"msg combining tree"},
            rea{"reactive shm<->msg"};
        for (std::uint32_t p : procs) {
            shm.push_back(stats::fmt(
                fetchop_overhead<TtsFetchOpSim>(p, args.full,
                                                sim::CostModel::alewife(),
                                                args.seed),
                0));
            srv.push_back(stats::fmt(
                msg_fetchop_overhead(
                    p, args.full, args.seed,
                    [](std::uint32_t) {
                        return std::make_shared<msg::MessageFetchOp>(0);
                    },
                    [](msg::MessageFetchOp& f) {
                        msg::MessageFetchOp::Node n;
                        f.fetch_add(n, 1);
                    }),
                0));
            tree.push_back(stats::fmt(
                msg_fetchop_overhead(
                    p, args.full, args.seed,
                    [](std::uint32_t nprocs) {
                        return std::make_shared<msg::MessageCombiningTree>(
                            nprocs);
                    },
                    [](msg::MessageCombiningTree& f) {
                        msg::MessageCombiningTree::Node n;
                        f.fetch_add(n, 1);
                    }),
                0));
            rea.push_back(stats::fmt(
                msg_fetchop_overhead(
                    p, args.full, args.seed,
                    [](std::uint32_t nprocs) {
                        return std::make_shared<msg::ReactiveMessageFetchOp>(
                            nprocs, 0);
                    },
                    [](msg::ReactiveMessageFetchOp& f) {
                        msg::ReactiveMessageFetchOp::Node n;
                        f.fetch_add(n, 1);
                    }),
                0));
            std::cerr << "." << std::flush;
        }
        std::cerr << "\n";
        t.row(shm);
        t.row(srv);
        t.row(tree);
        t.row(rea);
        t.note("paper finding: message fetch-and-op beats shared memory");
        t.note("under high contention (2 messages/op; atomic handlers)");
        t.print();
    }
    return 0;
}
