/**
 * @file
 * Reproduces Figures 4.6-4.11: measured waiting-time distributions for
 * producer-consumer (J-structure readers, futures), barrier, and
 * mutual-exclusion (FibHeap, Mutex, CountNet) synchronization, with the
 * distribution statistics the thesis uses to justify the exponential /
 * uniform models of Section 4.4.3.
 */
#include <iostream>

#include "apps/waiting_workloads.hpp"
#include "bench_common.hpp"
#include "stats/histogram.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

void profile_block(const char* title, stats::Samples& s,
                   double bucket_width = 250.0)
{
    std::cout << "\n-- " << title << " --\n";
    stats::LinearHistogram h(bucket_width, 40);
    std::size_t zero = 0;
    for (double v : s.values()) {
        if (v <= 0)
            ++zero;
        else
            h.add(v);
    }
    std::cout << "  waits: " << s.size() << " (" << zero
              << " zero) mean " << stats::fmt(s.stats().mean(), 0)
              << " median " << stats::fmt(s.median(), 0) << " p90 "
              << stats::fmt(s.quantile(0.9), 0) << " max "
              << stats::fmt(s.stats().max(), 0) << " cycles\n";
    stats::render_histogram(std::cout, h, [&](std::size_t i) {
        return stats::fmt(h.bucket_low(i), 0);
    });
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const std::uint32_t procs = 16;
    const std::uint32_t scale = args.full ? 4 : 1;
    // Profiles are gathered with pure spinning so the measured waiting
    // time is the raw synchronization wait (the thesis does the same).
    const WaitingAlgorithm spin = WaitingAlgorithm::always_spin();

    std::cout << "== Figs 4.6-4.11: waiting-time profiles (cycles) ==\n";

    {
        stats::Samples s;
        apps::run_jstructure_pipeline(procs, spin, 96 * scale, &s, args.seed);
        profile_block("Fig 4.6  J-structure reader waits "
                      "(exponential-like tail)",
                      s);
    }
    {
        stats::Samples s;
        apps::run_future_net(procs, spin, 12 * scale, &s, args.seed);
        profile_block("Fig 4.7  future-touch waits (exponential-like tail)",
                      s);
    }
    {
        stats::Samples s;
        apps::run_barrier_sweeps(procs, spin, 20 * scale, 3000, &s,
                                 args.seed);
        profile_block("Fig 4.8/4.9  barrier waits (uniform-like spread)", s);
    }
    {
        stats::Samples s;
        apps::run_fibheap(procs, spin, 30 * scale, &s, args.seed);
        profile_block("Fig 4.10  FibHeap mutex waits (heavy tail)", s, 400.0);
    }
    {
        stats::Samples s;
        apps::run_mutex_stress(procs, spin, 40 * scale, &s, args.seed);
        profile_block("Fig 4.10  Mutex stress waits", s, 400.0);
    }
    {
        stats::Samples s;
        apps::run_countnet(procs, spin, 30 * scale, 16, &s, args.seed);
        profile_block("Fig 4.11  CountNet balancer waits (thin tail)", s,
                      100.0);
    }
    std::cout << "\nnote: paper shape: producer-consumer and mutex waits\n"
                 "decay roughly exponentially; barrier waits spread nearly\n"
                 "uniformly up to the arrival skew; CountNet waits are\n"
                 "short and thin-tailed\n";
    return 0;
}
