/**
 * @file
 * Reproduces Figures 3.20/3.21: the time-varying contention test with
 * the default (always-switch) policy, against the static test&set and
 * MCS locks, across period lengths and contention mixes.
 */
#include <iostream>

#include "time_varying.hpp"

using namespace reactive;
using namespace reactive::bench;

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    std::vector<std::pair<std::string, TvRunFn>> algos{
        {"test&set (backoff)", &run_time_varying<TasSim>},
        {"mcs queue", &run_time_varying<McsSim>},
        {"reactive (always-switch)", &run_time_varying<ReactiveSim>},
    };
    print_time_varying_tables(
        "Fig 3.21 time-varying contention", algos, args);
    std::cout << "\nnote: paper shape: reactive approaches the better static"
                 "\nchoice at long periods, degrades (but stays above the"
                 "\nworst static) when forced to switch every few hundred"
                 "\nacquisitions\n";
    return 0;
}
