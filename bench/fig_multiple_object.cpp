/**
 * @file
 * Reproduces Figures 3.17-3.19 (multiple-lock test): 64 processors
 * partitioned over a set of locks according to 12 contention patterns;
 * elapsed times normalized to a simulated-optimal algorithm that picks
 * the best static protocol per lock (TTS under 4 contenders, MCS at 4+,
 * matching the thesis' baseline observation).
 */
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

/// (number of locks, contenders per lock) groups; sums to 64 procs.
using Pattern = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

std::vector<std::pair<std::string, Pattern>> patterns()
{
    return {
        {"1: 1x32 + 32x1", {{1, 32}, {32, 1}}},
        {"2: 2x16 + 32x1", {{2, 16}, {32, 1}}},
        {"3: 4x8  + 32x1", {{4, 8}, {32, 1}}},
        {"4: 8x4  + 32x1", {{8, 4}, {32, 1}}},
        {"5: 1x32 + 16x2", {{1, 32}, {16, 2}}},
        {"6: 2x16 + 16x2", {{2, 16}, {16, 2}}},
        {"7: 4x8  + 16x2", {{4, 8}, {16, 2}}},
        {"8: 8x4  + 16x2", {{8, 4}, {16, 2}}},
        {"9: 64x1", {{64, 1}}},
        {"10: 32x2", {{32, 2}}},
        {"11: 16x4", {{16, 4}}},
        {"12: 1x64", {{1, 64}}},
    };
}

/// The "simulated optimal" of Section 3.5.3: a static per-lock protocol
/// choice made with oracle knowledge of that lock's contention.
class SimulatedOptimalLock {
  public:
    struct Node {
        TtsSim::Node tts;
        McsSim::Node mcs;
    };

    explicit SimulatedOptimalLock(std::uint32_t contenders)
        : use_queue_(contenders >= 4)
    {
    }

    void lock(Node& n)
    {
        if (use_queue_)
            mcs_.lock(n.mcs);
        else
            tts_.lock(n.tts);
    }
    void unlock(Node& n)
    {
        if (use_queue_)
            mcs_.unlock(n.mcs);
        else
            tts_.unlock(n.tts);
    }

  private:
    bool use_queue_;
    TtsSim tts_;
    McsSim mcs_;
};

template <typename L>
std::uint64_t run_pattern(const Pattern& pat, std::uint32_t total_acquires,
                          std::uint64_t seed)
{
    sim::Machine m(64, sim::CostModel::alewife(), seed);
    std::vector<std::shared_ptr<L>> locks;
    std::vector<std::uint32_t> assignment;  // proc -> lock index
    for (const auto& [nlocks, contenders] : pat) {
        for (std::uint32_t l = 0; l < nlocks; ++l) {
            locks.push_back(make_lock<L>(contenders));
            for (std::uint32_t c = 0; c < contenders; ++c)
                assignment.push_back(
                    static_cast<std::uint32_t>(locks.size() - 1));
        }
    }
    const std::uint32_t iters = total_acquires / 64;
    auto locks_shared =
        std::make_shared<std::vector<std::shared_ptr<L>>>(std::move(locks));
    for (std::uint32_t p = 0; p < 64 && p < assignment.size(); ++p) {
        auto lock = (*locks_shared)[assignment[p]];
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                typename L::Node node;
                lock->lock(node);
                sim::delay(100);  // double-precision increment
                lock->unlock(node);
                sim::delay(sim::random_below(500));
            }
        });
    }
    m.run();
    return m.elapsed();
}

// SimulatedOptimalLock's constructor needs the *per-lock* contender
// count, which make_lock supplies.

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const std::uint32_t total = args.full ? 16384 : 6400;

    stats::Table t(
        "Figs 3.17-3.19 (multiple-lock test): elapsed time normalized to "
        "simulated optimal, 64 processors");
    t.header({"pattern", "optimal", "test&set", "mcs", "reactive"});

    for (const auto& [name, pat] : patterns()) {
        const std::uint64_t opt =
            run_pattern<SimulatedOptimalLock>(pat, total, args.seed);
        const std::uint64_t tas = run_pattern<TasSim>(pat, total, args.seed);
        const std::uint64_t mcs = run_pattern<McsSim>(pat, total, args.seed);
        const std::uint64_t rea =
            run_pattern<ReactiveSim>(pat, total, args.seed);
        t.row({name, "1.00",
               stats::fmt(static_cast<double>(tas) / opt, 2),
               stats::fmt(static_cast<double>(mcs) / opt, 2),
               stats::fmt(static_cast<double>(rea) / opt, 2)});
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    t.note("paper shape: with mixed contention neither static protocol");
    t.note("wins everywhere; reactive stays within ~8% of optimal");
    t.print();
    return 0;
}
