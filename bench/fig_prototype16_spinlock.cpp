/**
 * @file
 * Reproduces Figure 3.16: spin-lock baseline on the 16-processor
 * Alewife hardware prototype — reproduced as the same baseline sweep on
 * the prototype cost preset (20 MHz clock makes the asynchronous
 * network relatively faster; Section 3.5.2).
 */
#include <iostream>

#include "bench_common.hpp"

using namespace reactive;
using namespace reactive::bench;

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const sim::CostModel cm = sim::CostModel::prototype16();
    const std::vector<std::uint32_t> procs{1, 2, 4, 8, 16};

    stats::Table t(
        "Fig 3.16 (16-processor prototype): spin-lock overhead cycles per "
        "critical section");
    std::vector<std::string> header{"algorithm"};
    for (std::uint32_t p : procs)
        header.push_back("P=" + std::to_string(p));
    t.header(header);

    auto sweep = [&]<typename L>(std::type_identity<L>, const char* name) {
        std::vector<std::string> cells{name};
        for (std::uint32_t p : procs)
            cells.push_back(stats::fmt(
                spinlock_overhead<L>(p, args.full, cm, args.seed), 0));
        t.row(cells);
        std::cerr << "." << std::flush;
    };
    sweep(std::type_identity<TasSim>{}, "test&set (backoff)");
    sweep(std::type_identity<TtsSim>{}, "test&test&set");
    sweep(std::type_identity<McsSim>{}, "mcs queue");
    sweep(std::type_identity<ReactiveSim>{}, "reactive");
    std::cerr << "\n";

    t.note("validates the simulation shape at 16 nodes: same crossover,");
    t.note("lower absolute handoff cost (faster relative network)");
    t.print();
    return 0;
}
