/**
 * @file
 * Reproduces Figure 3.22: the time-varying contention test comparing
 * the default always-switch policy with the 3-competitive
 * cumulative-residual-cost policy of Section 3.4.1.
 */
#include <iostream>

#include "time_varying.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

struct ReactiveCompetitive
    : ReactiveNodeLock<sim::SimPlatform, Competitive3Policy> {
    ReactiveCompetitive()
        : ReactiveNodeLock(ReactiveLockParams{}, Competitive3Policy{})
    {
    }
};

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    std::vector<std::pair<std::string, TvRunFn>> algos{
        {"test&set (backoff)", &run_time_varying<TasSim>},
        {"mcs queue", &run_time_varying<McsSim>},
        {"reactive, always", &run_time_varying<ReactiveSim>},
        {"reactive, 3-competitive", &run_time_varying<ReactiveCompetitive>},
    };
    print_time_varying_tables(
        "Fig 3.22 time-varying contention, 3-competitive policy", algos,
        args);
    std::cout << "\nnote: paper shape: the competitive policy helps at high"
                 "\nswitching frequency / high contention, costs a little at"
                 "\nintermediate frequencies, indistinguishable at long"
                 "\nperiods\n";
    return 0;
}
