/**
 * @file
 * Shared machinery for the figure/table reproduction harnesses.
 *
 * Every binary in bench/ regenerates one table or figure of the thesis
 * (see DESIGN.md's per-experiment index) on the simulated Alewife
 * machine and prints the same rows/series the thesis plots. Absolute
 * cycle counts differ from NWO's (see EXPERIMENTS.md); the shapes are
 * the reproduction target.
 *
 * Baseline methodology (thesis Section 3.5.1): each processor loops
 * {acquire; 100-cycle critical section; release; random think time in
 * [0,500)}, and the reported "overhead" is the average elapsed time per
 * critical section minus the test-loop latency (350/P cycles, floored
 * at the 100-cycle critical section), i.e. the cycles the
 * synchronization algorithm adds to each critical section.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#if defined(REACTIVE_HAVE_PTHREAD_AFFINITY)
#include <pthread.h>
#include <sched.h>
#endif

#include "core/policy.hpp"
#include "core/reactive_fetch_op.hpp"
#include "core/reactive_lock.hpp"
#include "core/reactive_mutex.hpp"
#include "fetchop/combining_tree.hpp"
#include "fetchop/locked_fetch_op.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/tas_lock.hpp"
#include "locks/tts_lock.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"
#include "stats/table.hpp"
#include "audit/audit.hpp"
#include "audit/prometheus.hpp"
#include "trace/export.hpp"

namespace reactive::bench {

using sim::SimPlatform;

/// Command-line knobs common to all harnesses.
struct BenchArgs {
    bool full = false;       ///< larger, slower, smoother runs
    bool smoke = false;      ///< tiny CI-sized runs (fig_calibration)
    bool native = false;     ///< include native pinned-thread sections
    std::uint64_t seed = 1;
    std::string trace;       ///< Chrome-trace output path ("" = no trace)
    std::string metrics;     ///< Prometheus text output path ("" = none)

    static BenchArgs parse(int argc, char** argv)
    {
        BenchArgs a;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--full") == 0)
                a.full = true;
            else if (std::strcmp(argv[i], "--smoke") == 0)
                a.smoke = true;
            else if (std::strcmp(argv[i], "--native") == 0)
                a.native = true;
            else if (std::strncmp(argv[i], "--seed=", 7) == 0)
                a.seed = std::strtoull(argv[i] + 7, nullptr, 10);
            else if (std::strncmp(argv[i], "--trace=", 8) == 0)
                a.trace = argv[i] + 8;
            else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
                a.trace = argv[++i];
            else if (std::strncmp(argv[i], "--metrics=", 10) == 0)
                a.metrics = argv[i] + 10;
            else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc)
                a.metrics = argv[++i];
        }
        return a;
    }
};

/**
 * Arms the tracing layer when the harness was invoked with
 * `--trace <file>` or `--metrics <file>` (the regret audit rides the
 * trace gate). A no-op (beyond a stderr note) when the binary was
 * built without REACTIVE_TRACE — the run still completes and the drain
 * writes a valid empty trace, so CI scripts need no build-mode switch.
 */
inline void start_trace(const BenchArgs& a)
{
    if (a.trace.empty() && a.metrics.empty())
        return;
    if constexpr (!trace::kCompiled)
        std::cerr << "note: --trace/--metrics given but REACTIVE_TRACE is "
                     "compiled out; outputs will be empty\n";
    trace::set_enabled(true);
}

/**
 * Drains every trace ring to `--trace <file>` (Chrome trace-event JSON
 * plus `<file>.audit` switch-audit text) and writes the decision-audit
 * snapshot to `--metrics <file>` (Prometheus text). Returns the number
 * of failures (0 or 1) so mains can fold it into their exit code.
 */
inline int finish_trace(const BenchArgs& a)
{
    if (a.trace.empty() && a.metrics.empty())
        return 0;
    trace::set_enabled(false);
    const trace::Capture cap = trace::capture();
    bool ok = true;
    if (!a.trace.empty()) {
        {
            std::ofstream out(a.trace);
            if (out)
                trace::write_chrome_json(out, cap);
            ok = static_cast<bool>(out);
        }
        if (ok) {
            std::ofstream audit(a.trace + ".audit");
            if (audit)
                trace::write_switch_audit(audit, cap);
            ok = static_cast<bool>(audit);
        }
        if (!ok) {
            std::cerr << "TRACE FAIL: could not write " << a.trace << "\n";
            return 1;
        }
        cap.metrics.print(std::cout);
        std::cout << "wrote trace " << a.trace << " (" << cap.events.size()
                  << " events, " << cap.total_dropped << " dropped; + "
                  << a.trace << ".audit)\n";
    }
    if (!a.metrics.empty()) {
        std::ofstream prom(a.metrics);
        if (prom)
            audit::write_prometheus(prom, reactive::audit_snapshot(),
                                    &cap.metrics);
        if (!prom) {
            std::cerr << "METRICS FAIL: could not write " << a.metrics
                      << "\n";
            return 1;
        }
        std::cout << "wrote metrics " << a.metrics << "\n";
    }
    return 0;
}

// ---- CPU pinning (contended native tables) ----------------------------

/**
 * Pins the calling thread to CPU @p cpu (modulo the online CPU count),
 * so contended native measurements see a fixed thread placement instead
 * of whatever the scheduler migrates to mid-run. Returns false — and
 * leaves placement to the scheduler — when the platform exposes no
 * affinity interface (feature-checked at configure time).
 */
inline bool pin_current_thread(std::uint32_t cpu)
{
#if defined(REACTIVE_HAVE_PTHREAD_AFFINITY)
    const unsigned hw = std::thread::hardware_concurrency();
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(hw ? cpu % hw : cpu, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

/**
 * RAII pin for threads that outlive the measurement — saves the
 * calling thread's affinity mask, pins, and restores on destruction.
 * Needed wherever the pinned thread is borrowed (google-benchmark runs
 * thread 0 on the process main thread; leaving it pinned would confine
 * every subsequently registered benchmark to one CPU). Dedicated pool
 * threads (contended_harness.hpp) die after their run and use the
 * plain helper instead.
 */
class ScopedPin {
  public:
#if defined(REACTIVE_HAVE_PTHREAD_AFFINITY)
    explicit ScopedPin(std::uint32_t cpu)
    {
        saved_ok_ = pthread_getaffinity_np(pthread_self(), sizeof(saved_),
                                           &saved_) == 0;
        pinned_ = pin_current_thread(cpu);
    }
    ~ScopedPin()
    {
        if (saved_ok_)
            pthread_setaffinity_np(pthread_self(), sizeof(saved_), &saved_);
    }
#else
    explicit ScopedPin(std::uint32_t) {}
    ~ScopedPin() = default;
#endif
    ScopedPin(const ScopedPin&) = delete;
    ScopedPin& operator=(const ScopedPin&) = delete;

    bool pinned() const { return pinned_; }

  private:
#if defined(REACTIVE_HAVE_PTHREAD_AFFINITY)
    cpu_set_t saved_{};
    bool saved_ok_ = false;
#endif
    bool pinned_ = false;
};

// ---- machine-readable results -----------------------------------------

/**
 * Collects (bench, protocol, P, regime, cycles/op) records and writes
 * them as a JSON array, so successive PRs can diff crossover tables
 * mechanically instead of eyeballing stdout. One record per table cell;
 * the schema is deliberately flat.
 */
class JsonRecords {
  public:
    void add(const std::string& bench, const std::string& protocol,
             std::uint32_t procs, const std::string& regime,
             double cycles_per_op)
    {
        Record r;
        r.bench = bench;
        r.protocol = protocol;
        r.procs = procs;
        r.regime = regime;
        r.cycles_per_op = cycles_per_op;
        records_.push_back(std::move(r));
    }

    /**
     * Attaches the simulator's cross-socket traffic counters to the
     * most recent record (fig_numa cells). Extra keys only — the
     * tolerance differ keys cells by (bench, protocol, procs, regime)
     * and ignores fields it does not know, so cached baselines without
     * them still diff cleanly.
     */
    void annotate_traffic(const sim::MachineStats& s)
    {
        if (records_.empty())
            return;
        Record& r = records_.back();
        r.has_traffic = true;
        r.cross_socket_transfers = s.cross_socket_transfers;
        r.cross_socket_invalidations = s.cross_socket_invalidations;
    }

    /// Writes the array to @p path; returns false on I/O failure.
    bool write(const std::string& path) const
    {
        std::ofstream out(path);
        if (!out)
            return false;
        out << "[\n";
        for (std::size_t i = 0; i < records_.size(); ++i) {
            const Record& r = records_[i];
            out << "  {\"bench\": \"" << r.bench << "\", \"protocol\": \""
                << r.protocol << "\", \"procs\": " << r.procs
                << ", \"regime\": \"" << r.regime
                << "\", \"cycles_per_op\": " << r.cycles_per_op;
            if (r.has_traffic)
                out << ", \"cross_socket_transfers\": "
                    << r.cross_socket_transfers
                    << ", \"cross_socket_invalidations\": "
                    << r.cross_socket_invalidations;
            out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
        }
        out << "]\n";
        return static_cast<bool>(out);
    }

    std::size_t size() const { return records_.size(); }

  private:
    struct Record {
        std::string bench;
        std::string protocol;
        std::uint32_t procs = 0;
        std::string regime;
        double cycles_per_op = 0;
        bool has_traffic = false;
        std::uint64_t cross_socket_transfers = 0;
        std::uint64_t cross_socket_invalidations = 0;
    };
    std::vector<Record> records_;
};

// ---- crossover tables --------------------------------------------------

/**
 * Crossover-table builder shared by the calibration and barrier
 * figures (it replaces the emit/check logic those binaries used to
 * copy-paste): collects named rows over a processor axis, derives the
 * per-column "ideal (best static)" row from the rows flagged static,
 * prints the aligned table, optionally appends every cell (and the
 * ideal) to a JsonRecords in column-major order — the layout
 * BENCH_*.json diffing relies on — and hosts the envelope checks that
 * assert one row tracks a reference within a factor.
 */
class CrossoverTable {
  public:
    CrossoverTable(std::string title, std::string bench, std::string regime,
                   std::vector<std::uint32_t> procs,
                   std::string axis_prefix = "P=",
                   std::string row_label = "policy")
        : title_(std::move(title)),
          bench_(std::move(bench)),
          regime_(std::move(regime)),
          procs_(std::move(procs)),
          axis_prefix_(std::move(axis_prefix)),
          row_label_(std::move(row_label))
    {
    }

    /// Adds a row; rows flagged static join the per-column ideal. When
    /// @p stats carries one MachineStats per column, emit() annotates
    /// the row's JSON records with the cross-socket traffic counters.
    void row(std::string name, std::vector<double> cells,
             bool is_static = false,
             std::vector<sim::MachineStats> stats = {})
    {
        rows_.push_back(Row{std::move(name), std::move(cells), is_static,
                            std::move(stats)});
    }

    const std::vector<double>& cells(std::size_t i) const
    {
        return rows_[i].cells;
    }

    const std::vector<std::uint32_t>& procs() const { return procs_; }

    /// Per-column minimum over the static rows.
    std::vector<double> ideal() const
    {
        std::vector<double> best(procs_.size(), 0.0);
        for (std::size_t c = 0; c < procs_.size(); ++c) {
            bool first = true;
            for (const Row& r : rows_) {
                if (!r.is_static)
                    continue;
                if (first || r.cells[c] < best[c])
                    best[c] = r.cells[c];
                first = false;
            }
        }
        return best;
    }

    /**
     * Envelope check: row @p candidate must stay within @p factor of
     * @p reference in every column. Prints one CHECK FAIL line per
     * violating column and returns the violation count.
     */
    int check_tracks(std::size_t candidate,
                     const std::vector<double>& reference, double factor,
                     const std::string& reference_name) const
    {
        int failures = 0;
        const Row& r = rows_[candidate];
        for (std::size_t c = 0; c < procs_.size(); ++c) {
            if (r.cells[c] <= factor * reference[c])
                continue;
            ++failures;
            std::cout << "  CHECK FAIL [" << bench_ << "/" << regime_
                      << " " << axis_prefix_ << procs_[c]
                      << "]: " << r.name << "="
                      << stats::fmt(r.cells[c], 1) << " > "
                      << factor << " * " << reference_name << "="
                      << stats::fmt(reference[c], 1) << "\n";
        }
        return failures;
    }

    /**
     * Prints the table (ideal row appended) with @p notes; when
     * @p records is non-null, appends every cell plus the ideal,
     * column-major.
     */
    void emit(JsonRecords* records,
              const std::vector<std::string>& notes) const
    {
        stats::Table t(title_);
        std::vector<std::string> header{row_label_};
        for (std::uint32_t p : procs_)
            header.push_back(axis_prefix_ + std::to_string(p));
        t.header(header);
        for (const Row& r : rows_) {
            std::vector<std::string> cells{r.name};
            for (double v : r.cells)
                cells.push_back(stats::fmt(v, 0));
            t.row(cells);
        }
        const std::vector<double> best = ideal();
        std::vector<std::string> ideal_row{"ideal (best static)"};
        for (std::size_t c = 0; c < procs_.size(); ++c) {
            ideal_row.push_back(stats::fmt(best[c], 0));
            if (records != nullptr) {
                for (const Row& r : rows_) {
                    records->add(bench_, r.name, procs_[c], regime_,
                                 r.cells[c]);
                    if (r.stats.size() == procs_.size())
                        records->annotate_traffic(r.stats[c]);
                }
                records->add(bench_, "ideal", procs_[c], regime_, best[c]);
            }
        }
        t.row(ideal_row);
        for (const std::string& n : notes)
            t.note(n);
        t.print();
    }

  private:
    struct Row {
        std::string name;
        std::vector<double> cells;
        bool is_static;
        std::vector<sim::MachineStats> stats;  ///< per-cell, or empty
    };

    std::string title_;
    std::string bench_;
    std::string regime_;
    std::vector<std::uint32_t> procs_;
    std::string axis_prefix_;
    std::string row_label_;
    std::vector<Row> rows_;
};

/// Contention sweep used by the baseline figures.
inline std::vector<std::uint32_t> baseline_procs(bool full)
{
    if (full)
        return {1, 2, 4, 8, 16, 32, 64, 128};
    return {1, 2, 4, 8, 16, 32, 64};
}

/// Iterations per processor, sized down as contention rises.
inline std::uint32_t baseline_iters(std::uint32_t procs, bool full)
{
    const std::uint32_t scale = full ? 4 : 1;
    if (procs <= 4)
        return 600 * scale;
    if (procs <= 16)
        return 300 * scale;
    return 120 * scale;
}

/// Test-loop latency per critical section (Section 3.5.1).
inline double spinlock_loop_latency(std::uint32_t procs)
{
    const double serial = 350.0 / procs;
    return serial > 100.0 ? serial : 100.0;
}

/// Constructs lock L, forwarding a contender bound if it wants one.
template <typename L>
std::shared_ptr<L> make_lock(std::uint32_t max_contenders)
{
    if constexpr (std::is_constructible_v<L, std::uint32_t>)
        return std::make_shared<L>(max_contenders);
    else
        return std::make_shared<L>();
}

/**
 * Baseline spin-lock experiment: average algorithm overhead per
 * critical section at @p procs contenders (cycles).
 */
template <typename L>
double spinlock_overhead(std::uint32_t procs, bool full,
                         sim::CostModel cm = sim::CostModel::alewife(),
                         std::uint64_t seed = 1)
{
    const std::uint32_t iters = baseline_iters(procs, full);
    sim::Machine m(procs, cm, seed);
    auto lock = make_lock<L>(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                typename L::Node node;
                lock->lock(node);
                sim::delay(100);  // critical section
                lock->unlock(node);
                sim::delay(sim::random_below(500));  // think time
            }
        });
    }
    m.run();
    const double per_crit = static_cast<double>(m.elapsed()) /
                            (static_cast<double>(procs) * iters);
    return per_crit - spinlock_loop_latency(procs);
}

/// Constructs fetch-op F, forwarding a width if it wants one.
template <typename F>
std::shared_ptr<F> make_fetch_op(std::uint32_t procs)
{
    if constexpr (std::is_constructible_v<F, std::uint32_t>)
        return std::make_shared<F>(procs);
    else
        return std::make_shared<F>();
}

/**
 * Baseline fetch-and-op experiment: average algorithm overhead per
 * fetch-and-increment at @p procs contenders (cycles).
 */
template <typename F>
double fetchop_overhead(std::uint32_t procs, bool full,
                        sim::CostModel cm = sim::CostModel::alewife(),
                        std::uint64_t seed = 1)
{
    const std::uint32_t iters = baseline_iters(procs, full);
    sim::Machine m(procs, cm, seed);
    auto f = make_fetch_op<F>(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename F::Node node;
            for (std::uint32_t i = 0; i < iters; ++i) {
                f->fetch_add(node, 1);
                sim::delay(sim::random_below(500));
            }
        });
    }
    m.run();
    const double per_op = static_cast<double>(m.elapsed()) /
                          (static_cast<double>(procs) * iters);
    return per_op - 250.0 / procs;
}

// Convenient aliases for the protocols under study.
using TasSim = TasLock<SimPlatform>;
using TtsSim = TtsLock<SimPlatform>;
using McsSim = McsLock<SimPlatform, McsVariant::kFetchStore>;
using ReactiveSim = ReactiveNodeLock<SimPlatform, AlwaysSwitchPolicy>;

struct TtsFetchOpSim : LockedFetchOp<SimPlatform, TtsSim> {
    explicit TtsFetchOpSim(std::uint32_t) {}
};
struct QueueFetchOpSim : LockedFetchOp<SimPlatform, McsSim> {
    explicit QueueFetchOpSim(std::uint32_t) {}
};
using TreeFetchOpSim = CombiningFetchOp<SimPlatform>;
using ReactiveFetchOpSim = ReactiveFetchOp<SimPlatform>;

}  // namespace reactive::bench
