/**
 * @file
 * Reproduces Figure 3.24: execution times of the fetch-and-op
 * applications (Gamteb, TSP, AQ kernels) under the queue-lock counter,
 * the combining tree, and the reactive fetch-and-op, normalized to the
 * best algorithm per configuration.
 */
#include <iostream>

#include "apps/workloads.hpp"
#include "bench_common.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

struct TreeFetchOpApps : CombiningFetchOp<sim::SimPlatform> {
    explicit TreeFetchOpApps(std::uint32_t procs)
        : CombiningFetchOp<sim::SimPlatform>(procs)
    {
    }
};
struct ReactiveFetchOpApps : ReactiveFetchOp<sim::SimPlatform> {
    explicit ReactiveFetchOpApps(std::uint32_t procs)
        : ReactiveFetchOp<sim::SimPlatform>(procs)
    {
    }
};
struct QueueFetchOpApps : QueueFetchOpSim {
    explicit QueueFetchOpApps(std::uint32_t n) : QueueFetchOpSim(n) {}
};

template <typename Runner>
void app_rows(stats::Table& t, const char* app, Runner run,
              const std::vector<std::uint32_t>& procs)
{
    for (std::uint32_t p : procs) {
        const auto queue = static_cast<double>(
            run(std::type_identity<QueueFetchOpApps>{}, p));
        const auto tree = static_cast<double>(
            run(std::type_identity<TreeFetchOpApps>{}, p));
        const auto reactive = static_cast<double>(
            run(std::type_identity<ReactiveFetchOpApps>{}, p));
        const double best = std::min({queue, tree, reactive});
        t.row({std::string(app) + " P=" + std::to_string(p),
               stats::fmt(queue / best, 2), stats::fmt(tree / best, 2),
               stats::fmt(reactive / best, 2)});
        std::cerr << "." << std::flush;
    }
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const std::vector<std::uint32_t> procs =
        args.full ? std::vector<std::uint32_t>{16, 32, 64, 128}
                  : std::vector<std::uint32_t>{16, 32, 64};
    const std::uint32_t scale = args.full ? 2 : 1;

    stats::Table t(
        "Fig 3.24 (fetch-and-op applications): execution time normalized "
        "to the best algorithm");
    t.header({"app", "queue-lock", "combining", "reactive"});

    app_rows(t, "gamteb",
             [&]<typename F>(std::type_identity<F>, std::uint32_t p) {
                 return apps::run_gamteb<F>(p, 60 * scale, args.seed);
             },
             procs);
    app_rows(t, "tsp",
             [&]<typename F>(std::type_identity<F>, std::uint32_t p) {
                 return apps::run_tsp<F>(p, 400 * p / 8 * scale, args.seed);
             },
             procs);
    app_rows(t, "aq",
             [&]<typename F>(std::type_identity<F>, std::uint32_t p) {
                 return apps::run_aq<F>(p, 150 * p / 8 * scale, args.seed);
             },
             procs);
    std::cerr << "\n";
    t.note("paper shape: queue-lock wins at small P, combining tree at");
    t.note("large P (TSP crossover), reactive tracks the winner");
    t.print();
    return 0;
}
