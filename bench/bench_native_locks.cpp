/**
 * @file
 * Native-hardware microbenchmarks (google-benchmark): uncontended
 * latencies of every lock and fetch-and-op implementation on real
 * std::atomic hardware — the native analogue of the P=1 column of the
 * baseline figures, and the numbers a downstream adopter of the library
 * cares about first.
 */
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/reactive_fetch_op.hpp"
#include "core/reactive_lock.hpp"
#include "core/reactive_mutex.hpp"
#include "fetchop/combining_tree.hpp"
#include "fetchop/locked_fetch_op.hpp"
#include "locks/anderson_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/tas_lock.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/tts_lock.hpp"
#include "barrier/central_barrier.hpp"
#include "barrier/combining_tree_barrier.hpp"
#include "barrier/reactive_barrier.hpp"
#include "platform/native_platform.hpp"
#include "rw/queue_rw_lock.hpp"
#include "rw/reactive_rw_lock.hpp"
#include "rw/simple_rw_lock.hpp"
#include "waiting/sync/barrier.hpp"
#include "waiting/sync/future.hpp"
#include "waiting/sync/waiting_mutex.hpp"

namespace {

using reactive::NativePlatform;

template <typename L>
void BM_LockUncontended(benchmark::State& state)
{
    L lock;
    for (auto _ : state) {
        typename L::Node node;
        lock.lock(node);
        benchmark::DoNotOptimize(&lock);
        lock.unlock(node);
    }
}

template <>
void BM_LockUncontended<reactive::AndersonLock<NativePlatform>>(
    benchmark::State& state)
{
    reactive::AndersonLock<NativePlatform> lock(8);
    for (auto _ : state) {
        typename reactive::AndersonLock<NativePlatform>::Node node;
        lock.lock(node);
        benchmark::DoNotOptimize(&lock);
        lock.unlock(node);
    }
}

BENCHMARK(BM_LockUncontended<reactive::TasLock<NativePlatform>>)
    ->Name("lock/tas");
BENCHMARK(BM_LockUncontended<reactive::TtsLock<NativePlatform>>)
    ->Name("lock/tts");
BENCHMARK(BM_LockUncontended<
              reactive::McsLock<NativePlatform, reactive::McsVariant::kFetchStore>>)
    ->Name("lock/mcs_fetchstore");
BENCHMARK(BM_LockUncontended<
              reactive::McsLock<NativePlatform, reactive::McsVariant::kCompareSwap>>)
    ->Name("lock/mcs_cas");
BENCHMARK(BM_LockUncontended<reactive::TicketLock<NativePlatform>>)
    ->Name("lock/ticket");
BENCHMARK(BM_LockUncontended<reactive::AndersonLock<NativePlatform>>)
    ->Name("lock/anderson");
BENCHMARK(BM_LockUncontended<reactive::ReactiveNodeLock<NativePlatform>>)
    ->Name("lock/reactive");

void BM_ReactiveMutexGuard(benchmark::State& state)
{
    reactive::ReactiveMutex<NativePlatform> mu;
    for (auto _ : state) {
        reactive::ReactiveMutex<NativePlatform>::Guard g(mu);
        benchmark::DoNotOptimize(&mu);
    }
}
BENCHMARK(BM_ReactiveMutexGuard)->Name("lock/reactive_mutex_guard");

template <typename F>
void BM_FetchOp(benchmark::State& state)
{
    F f;
    typename F::Node node;
    for (auto _ : state)
        benchmark::DoNotOptimize(f.fetch_add(node, 1));
}

template <>
void BM_FetchOp<reactive::CombiningFetchOp<NativePlatform>>(
    benchmark::State& state)
{
    reactive::CombiningFetchOp<NativePlatform> f(8);
    typename reactive::CombiningFetchOp<NativePlatform>::Node node;
    for (auto _ : state)
        benchmark::DoNotOptimize(f.fetch_add(node, 1));
}

template <>
void BM_FetchOp<reactive::ReactiveFetchOp<NativePlatform>>(
    benchmark::State& state)
{
    reactive::ReactiveFetchOp<NativePlatform> f(8);
    typename reactive::ReactiveFetchOp<NativePlatform>::Node node;
    for (auto _ : state)
        benchmark::DoNotOptimize(f.fetch_add(node, 1));
}

BENCHMARK(
    BM_FetchOp<reactive::LockedFetchOp<NativePlatform,
                                       reactive::TtsLock<NativePlatform>>>)
    ->Name("fetchop/tts_lock");
BENCHMARK(BM_FetchOp<reactive::LockedFetchOp<
              NativePlatform,
              reactive::McsLock<NativePlatform,
                                reactive::McsVariant::kFetchStore>>>)
    ->Name("fetchop/mcs_lock");
BENCHMARK(BM_FetchOp<reactive::CombiningFetchOp<NativePlatform>>)
    ->Name("fetchop/combining_tree");
BENCHMARK(BM_FetchOp<reactive::ReactiveFetchOp<NativePlatform>>)
    ->Name("fetchop/reactive");

// ---- reader-writer locks ----------------------------------------------
//
// The rwlock analogue of the sim's reader-fraction sweep (fig_rwlock),
// on real std::atomic hardware: uncontended acquisition latencies for
// both sides, plus a threaded mixed workload at a read-mostly and a
// write-heavy fraction. The sim predicts the centralized protocol wins
// read-mostly traffic and the queue protocol wins write-heavy traffic
// at higher thread counts; these benchmarks are the hardware check of
// that crossover (run with --benchmark_filter=rw/).

template <typename RW>
void BM_RwReadUncontended(benchmark::State& state)
{
    RW lock;
    for (auto _ : state) {
        typename RW::Node node;
        lock.lock_read(node);
        benchmark::DoNotOptimize(&lock);
        lock.unlock_read(node);
    }
}

template <typename RW>
void BM_RwWriteUncontended(benchmark::State& state)
{
    RW lock;
    for (auto _ : state) {
        typename RW::Node node;
        lock.lock_write(node);
        benchmark::DoNotOptimize(&lock);
        lock.unlock_write(node);
    }
}

/**
 * Threaded mixed workload: each benchmark thread performs lookups
 * (shared acquisition) with probability range(0)/1000, updates
 * (exclusive acquisition) otherwise, on one shared lock. The lock is a
 * function-local static so all benchmark threads (and repetitions)
 * share it; the reactive variant re-converges at each fraction, which
 * is exactly the behaviour under test.
 */
template <typename RW>
void BM_RwMixed(benchmark::State& state)
{
    static RW lock;
    // Pin each benchmark thread so the contended numbers measure the
    // protocols, not the scheduler's migrations (no-op where the
    // platform has no affinity API). Scoped: thread 0 is the borrowed
    // process main thread and must get its mask back, or every later
    // benchmark in this binary would run confined to CPU 0. The
    // fixed-pool contended tables live in fig_calibration --native.
    reactive::bench::ScopedPin pin(
        static_cast<std::uint32_t>(state.thread_index()));
    const std::uint64_t read_permille =
        static_cast<std::uint64_t>(state.range(0));
    // Per-thread deterministic LCG: threads must not share PRNG state
    // (that would serialize the very paths under test).
    std::uint64_t x =
        0x9e3779b97f4a7c15ull * (state.thread_index() + 1) + 1;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        typename RW::Node node;
        if ((x >> 33) % 1000 < read_permille) {
            lock.lock_read(node);
            benchmark::DoNotOptimize(&lock);
            lock.unlock_read(node);
        } else {
            lock.lock_write(node);
            benchmark::DoNotOptimize(&lock);
            lock.unlock_write(node);
        }
    }
}

using SimpleRwNative = reactive::SimpleRwLock<NativePlatform>;
using QueueRwNative = reactive::QueueRwLock<NativePlatform>;
using ReactiveRwNative = reactive::ReactiveRwLock<NativePlatform>;

BENCHMARK(BM_RwReadUncontended<SimpleRwNative>)->Name("rw/simple_read");
BENCHMARK(BM_RwReadUncontended<QueueRwNative>)->Name("rw/queue_read");
BENCHMARK(BM_RwReadUncontended<ReactiveRwNative>)->Name("rw/reactive_read");
BENCHMARK(BM_RwWriteUncontended<SimpleRwNative>)->Name("rw/simple_write");
BENCHMARK(BM_RwWriteUncontended<QueueRwNative>)->Name("rw/queue_write");
BENCHMARK(BM_RwWriteUncontended<ReactiveRwNative>)->Name("rw/reactive_write");

BENCHMARK(BM_RwMixed<SimpleRwNative>)
    ->Name("rw/simple_mixed")
    ->ArgName("read_permille")
    ->Arg(950)
    ->Arg(250)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();
BENCHMARK(BM_RwMixed<QueueRwNative>)
    ->Name("rw/queue_mixed")
    ->ArgName("read_permille")
    ->Arg(950)
    ->Arg(250)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();
BENCHMARK(BM_RwMixed<ReactiveRwNative>)
    ->Name("rw/reactive_mixed")
    ->ArgName("read_permille")
    ->Arg(950)
    ->Arg(250)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

// ---- barriers ---------------------------------------------------------

template <typename B>
void BM_BarrierSoloEpisode(benchmark::State& state)
{
    B bar(1);
    typename B::Node node;
    for (auto _ : state)
        bar.arrive(node);
}
BENCHMARK(BM_BarrierSoloEpisode<reactive::CentralBarrier<NativePlatform>>)
    ->Name("barrier/central_single_participant");
BENCHMARK(
    BM_BarrierSoloEpisode<reactive::CombiningTreeBarrier<NativePlatform>>)
    ->Name("barrier/tree_single_participant");
BENCHMARK(BM_BarrierSoloEpisode<reactive::ReactiveBarrier<NativePlatform>>)
    ->Name("barrier/reactive_single_participant");

void BM_FutureResolvedGet(benchmark::State& state)
{
    reactive::FutureValue<int, NativePlatform> f;
    f.set_value(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.get());
}
BENCHMARK(BM_FutureResolvedGet)->Name("waiting/future_resolved_get");

void BM_WaitingMutexUncontended(benchmark::State& state)
{
    reactive::WaitingMutex<NativePlatform> mu(
        reactive::WaitingAlgorithm::two_phase(2000));
    for (auto _ : state) {
        mu.lock();
        benchmark::DoNotOptimize(&mu);
        mu.unlock();
    }
}
BENCHMARK(BM_WaitingMutexUncontended)->Name("waiting/mutex_uncontended");

void BM_BarrierSolo(benchmark::State& state)
{
    reactive::WaitingBarrier<NativePlatform> bar(1);
    reactive::WaitingBarrier<NativePlatform>::Node node;
    for (auto _ : state)
        bar.arrive(node);
}
BENCHMARK(BM_BarrierSolo)->Name("waiting/barrier_single_participant");

}  // namespace

BENCHMARK_MAIN();
