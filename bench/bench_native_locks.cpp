/**
 * @file
 * Native-hardware microbenchmarks (google-benchmark): uncontended
 * latencies of every lock and fetch-and-op implementation on real
 * std::atomic hardware — the native analogue of the P=1 column of the
 * baseline figures, and the numbers a downstream adopter of the library
 * cares about first.
 */
#include <benchmark/benchmark.h>

#include "core/reactive_fetch_op.hpp"
#include "core/reactive_lock.hpp"
#include "core/reactive_mutex.hpp"
#include "fetchop/combining_tree.hpp"
#include "fetchop/locked_fetch_op.hpp"
#include "locks/anderson_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/tas_lock.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/tts_lock.hpp"
#include "platform/native_platform.hpp"
#include "waiting/sync/barrier.hpp"
#include "waiting/sync/future.hpp"
#include "waiting/sync/waiting_mutex.hpp"

namespace {

using reactive::NativePlatform;

template <typename L>
void BM_LockUncontended(benchmark::State& state)
{
    L lock;
    for (auto _ : state) {
        typename L::Node node;
        lock.lock(node);
        benchmark::DoNotOptimize(&lock);
        lock.unlock(node);
    }
}

template <>
void BM_LockUncontended<reactive::AndersonLock<NativePlatform>>(
    benchmark::State& state)
{
    reactive::AndersonLock<NativePlatform> lock(8);
    for (auto _ : state) {
        typename reactive::AndersonLock<NativePlatform>::Node node;
        lock.lock(node);
        benchmark::DoNotOptimize(&lock);
        lock.unlock(node);
    }
}

BENCHMARK(BM_LockUncontended<reactive::TasLock<NativePlatform>>)
    ->Name("lock/tas");
BENCHMARK(BM_LockUncontended<reactive::TtsLock<NativePlatform>>)
    ->Name("lock/tts");
BENCHMARK(BM_LockUncontended<
              reactive::McsLock<NativePlatform, reactive::McsVariant::kFetchStore>>)
    ->Name("lock/mcs_fetchstore");
BENCHMARK(BM_LockUncontended<
              reactive::McsLock<NativePlatform, reactive::McsVariant::kCompareSwap>>)
    ->Name("lock/mcs_cas");
BENCHMARK(BM_LockUncontended<reactive::TicketLock<NativePlatform>>)
    ->Name("lock/ticket");
BENCHMARK(BM_LockUncontended<reactive::AndersonLock<NativePlatform>>)
    ->Name("lock/anderson");
BENCHMARK(BM_LockUncontended<reactive::ReactiveNodeLock<NativePlatform>>)
    ->Name("lock/reactive");

void BM_ReactiveMutexGuard(benchmark::State& state)
{
    reactive::ReactiveMutex<NativePlatform> mu;
    for (auto _ : state) {
        reactive::ReactiveMutex<NativePlatform>::Guard g(mu);
        benchmark::DoNotOptimize(&mu);
    }
}
BENCHMARK(BM_ReactiveMutexGuard)->Name("lock/reactive_mutex_guard");

template <typename F>
void BM_FetchOp(benchmark::State& state)
{
    F f;
    typename F::Node node;
    for (auto _ : state)
        benchmark::DoNotOptimize(f.fetch_add(node, 1));
}

template <>
void BM_FetchOp<reactive::CombiningFetchOp<NativePlatform>>(
    benchmark::State& state)
{
    reactive::CombiningFetchOp<NativePlatform> f(8);
    typename reactive::CombiningFetchOp<NativePlatform>::Node node;
    for (auto _ : state)
        benchmark::DoNotOptimize(f.fetch_add(node, 1));
}

template <>
void BM_FetchOp<reactive::ReactiveFetchOp<NativePlatform>>(
    benchmark::State& state)
{
    reactive::ReactiveFetchOp<NativePlatform> f(8);
    typename reactive::ReactiveFetchOp<NativePlatform>::Node node;
    for (auto _ : state)
        benchmark::DoNotOptimize(f.fetch_add(node, 1));
}

BENCHMARK(
    BM_FetchOp<reactive::LockedFetchOp<NativePlatform,
                                       reactive::TtsLock<NativePlatform>>>)
    ->Name("fetchop/tts_lock");
BENCHMARK(BM_FetchOp<reactive::LockedFetchOp<
              NativePlatform,
              reactive::McsLock<NativePlatform,
                                reactive::McsVariant::kFetchStore>>>)
    ->Name("fetchop/mcs_lock");
BENCHMARK(BM_FetchOp<reactive::CombiningFetchOp<NativePlatform>>)
    ->Name("fetchop/combining_tree");
BENCHMARK(BM_FetchOp<reactive::ReactiveFetchOp<NativePlatform>>)
    ->Name("fetchop/reactive");

void BM_FutureResolvedGet(benchmark::State& state)
{
    reactive::FutureValue<int, NativePlatform> f;
    f.set_value(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.get());
}
BENCHMARK(BM_FutureResolvedGet)->Name("waiting/future_resolved_get");

void BM_WaitingMutexUncontended(benchmark::State& state)
{
    reactive::WaitingMutex<NativePlatform> mu(
        reactive::WaitingAlgorithm::two_phase(2000));
    for (auto _ : state) {
        mu.lock();
        benchmark::DoNotOptimize(&mu);
        mu.unlock();
    }
}
BENCHMARK(BM_WaitingMutexUncontended)->Name("waiting/mutex_uncontended");

void BM_BarrierSolo(benchmark::State& state)
{
    reactive::WaitingBarrier<NativePlatform> bar(1);
    reactive::WaitingBarrier<NativePlatform>::Node node;
    for (auto _ : state)
        bar.arrive(node);
}
BENCHMARK(BM_BarrierSolo)->Name("waiting/barrier_single_participant");

}  // namespace

BENCHMARK_MAIN();
