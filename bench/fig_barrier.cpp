/**
 * @file
 * Barrier figure (new in this reproduction; the barrier analogue of
 * Figure 1.1): cycles per episode for the centralized sense-reversing
 * barrier, the fan-in-4 combining-tree barrier, and the reactive
 * barrier, swept over participant counts under two arrival regimes,
 * plus the per-column best static choice ("ideal").
 *
 * Expected shape: under bunched arrivals the central counter serializes
 * P decrements at its home directory and the release pays an O(P)
 * invalidation + refill storm on the sense line, so the tree wins
 * decisively from P~8 up while the central barrier's lower constant
 * wins at low P (below the fan-in the tree *is* a central barrier plus
 * bookkeeping). Under straggler-dominated arrivals everyone else's
 * arrival cost is absorbed into the straggle window and the episode's
 * critical path is the straggler's solo pass — one RMW + one flip for
 * the central barrier vs. a full climb — so the central barrier wins
 * at small and mid P and the regime gap nearly closes; only the O(P)
 * sequential invalidations its release charges the straggler keep the
 * tree marginally ahead at the largest P. The reactive barrier should
 * track the lower envelope on both sides of the crossover, as the
 * reactive spin lock does for mutexes.
 *
 * The **three-protocol section** is the stress test of the ProtocolSet
 * generalization (core/protocol_set.hpp): central vs. combining tree
 * vs. dissemination (designated-completer variant,
 * dissemination_barrier.hpp) as statics, against a reactive barrier
 * over ProtocolSet<central, tree, dissemination> driven by the
 * measured CalibratedLadderPolicy. Two of the three rungs (tree and
 * dissemination) cannot be ranked by the drift signal alone — which
 * one wins bunched arrivals depends on P — so this table only comes
 * out right if the per-protocol-index measurement and bounded probing
 * actually work. The binary asserts the reactive row stays within 10%
 * of the per-column best static protocol in every (P, regime) cell and
 * exits nonzero otherwise; all cells land in BENCH_barrier.json for
 * the CI-side run-over-run tolerance diff.
 *
 * A phase-shifting table (bunched and straggler regimes alternating)
 * shows re-convergence, and a final section repeats the two-regime
 * comparison with real threads on the native platform. `--smoke` runs
 * a tiny sim subset for CI (below the policies' convergence horizon,
 * so the envelope checks are disabled, as in fig_calibration).
 */
#include <chrono>
#include <iostream>
#include <thread>

#include "apps/workloads.hpp"
#include "barrier/central_barrier.hpp"
#include "barrier/combining_tree_barrier.hpp"
#include "barrier/dissemination_barrier.hpp"
#include "barrier/reactive_barrier.hpp"
#include "bench_common.hpp"
#include "core/protocol_set.hpp"
#include "platform/native_platform.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

JsonRecords g_records;
int g_failures = 0;

using CentralSim = CentralBarrier<SimPlatform>;
using TreeSim = CombiningTreeBarrier<SimPlatform>;
using DissemSim = DisseminationBarrier<SimPlatform>;
using ReactiveBarrierSim = ReactiveBarrier<SimPlatform, AlwaysSwitchPolicy>;
using Barrier3SetSim = ProtocolSet<CentralSim, TreeSim, DissemSim>;
using Reactive3Sim =
    ReactiveBarrier<SimPlatform, CalibratedLadderPolicy, Barrier3SetSim>;

std::vector<std::uint32_t> barrier_procs(bool full)
{
    if (full)
        return {2, 4, 8, 16, 32, 64, 128};
    return {2, 4, 8, 16, 32, 64};
}

std::uint32_t barrier_episodes(std::uint32_t procs, bool full)
{
    const std::uint32_t scale = full ? 4 : 1;
    if (procs <= 8)
        return 120 * scale;
    if (procs <= 32)
        return 60 * scale;
    return 30 * scale;
}

/// The two-protocol tables measure the thesis-style spread-signal
/// configuration (their notes price its stamp/min-combine machinery
/// against ideal); free_monitoring — default-on since the NUMA PR —
/// would null that comparison, so these rows opt back into the spread
/// path and stay comparable with their historical numbers.
ReactiveBarrierParams spread_signal_params()
{
    ReactiveBarrierParams p;
    p.free_monitoring = false;
    return p;
}

/// Simulated cycles per episode for one pre-built barrier at one
/// (regime, procs) point.
template <typename B>
double sim_cycles_per_episode(std::shared_ptr<B> bar, std::uint32_t procs,
                              std::uint32_t episodes, bool skewed,
                              std::uint64_t seed)
{
    const std::uint64_t elapsed =
        skewed ? apps::run_barrier_straggler<B>(procs, episodes,
                                                /*straggle=*/30000,
                                                /*compute=*/200, seed, bar)
               : apps::run_barrier_uniform<B>(procs, episodes,
                                              /*compute=*/200, seed, bar);
    return static_cast<double>(elapsed) / episodes;
}

template <typename B>
double sim_cycles_fresh(std::uint32_t procs, bool skewed, bool full,
                        std::uint64_t seed)
{
    std::shared_ptr<B> bar;
    if constexpr (std::is_constructible_v<B, std::uint32_t,
                                          ReactiveBarrierParams>)
        bar = std::make_shared<B>(procs, spread_signal_params());
    else
        bar = std::make_shared<B>(procs);
    return sim_cycles_per_episode(std::move(bar), procs,
                                  barrier_episodes(procs, full), skewed,
                                  seed);
}

void sim_regime_table(const char* title, const char* regime, bool skewed,
                      const BenchArgs& args)
{
    const auto procs = barrier_procs(args.full);
    CrossoverTable table(title, "barrier_sweep", regime, procs, "P=",
                         "algorithm");
    std::vector<std::vector<double>> rows(3);
    for (std::uint32_t p : procs) {
        rows[0].push_back(
            sim_cycles_fresh<CentralSim>(p, skewed, args.full, args.seed));
        rows[1].push_back(
            sim_cycles_fresh<TreeSim>(p, skewed, args.full, args.seed));
        rows[2].push_back(sim_cycles_fresh<ReactiveBarrierSim>(
            p, skewed, args.full, args.seed));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.row("central (counter)", std::move(rows[0]), /*is_static=*/true);
    table.row("tree (fan-in 4)", std::move(rows[1]), /*is_static=*/true);
    table.row("reactive", std::move(rows[2]));

    std::vector<std::string> notes;
    if (skewed) {
        notes = {"a straggler dominates each episode: the tree's climb is",
                 "pure overhead and central wins until its release's O(P)",
                 "sequential invalidations outgrow the climb (largest P)"};
    } else {
        notes = {"bunched arrivals serialize at the central counter: the tree",
                 "should win at high P, the central constant at low P"};
    }
    notes.push_back("reactive should track the better protocol on both "
                    "sides; its");
    notes.push_back("gap to ideal is the arrival-spread monitoring (stamp "
                    "store +");
    notes.push_back("min-combine CAS), the barrier's price of adaptivity");
    table.emit(&g_records, notes);
}

// ---- three-protocol section -------------------------------------------

CalibratedLadderPolicy::Params ladder3_params()
{
    CalibratedLadderPolicy::Params p;
    p.protocols = 3;
    // Fast early exploration (the rung map is built within ~20
    // episodes), long steady-state cadence (8 << 7 = 1024 episodes
    // between confirming probes).
    p.probe_period = 8;
    p.probe_backoff_cap = 7;
    p.probe_len = 2;
    return p;
}

/// Traffic-free monitoring (episode periods + completer streaks): the
/// reactive barrier then executes the identical shared-memory
/// operations as the protocol it is parked in, which is what lets it
/// track the untracked statics within the 10% envelope.
ReactiveBarrierParams barrier3_barrier_params()
{
    ReactiveBarrierParams p;
    p.free_monitoring = true;
    return p;
}

std::vector<std::uint32_t> barrier3_procs(const BenchArgs& args)
{
    if (args.smoke)
        return {4, 8};
    if (args.full)
        return {2, 4, 8, 16, 32, 64};
    return {2, 4, 8, 16, 32};
}

std::uint32_t barrier3_episodes(const BenchArgs& args, bool skewed)
{
    // Long enough that the measured policy's exploration transient
    // (~20 episodes of rung mapping plus a handful of probe cycles)
    // amortizes. Bunched episodes are ~1k cycles, so the bunched
    // tables run long; straggler episodes cost a full 30k-cycle
    // straggle window each, and the regime's cells tie to within a
    // percent anyway.
    if (args.smoke)
        return 40;
    if (skewed)
        return args.full ? 960 : 480;
    return args.full ? 4800 : 2400;
}

void barrier3_table(const char* title, const char* regime, bool skewed,
                    const BenchArgs& args)
{
    const auto procs = barrier3_procs(args);
    const std::uint32_t episodes = barrier3_episodes(args, skewed);
    CrossoverTable table(title, "barrier3", regime, procs, "P=",
                         "algorithm");
    std::vector<std::vector<double>> rows(4);
    for (std::uint32_t p : procs) {
        rows[0].push_back(sim_cycles_per_episode(
            std::make_shared<CentralSim>(p), p, episodes, skewed,
            args.seed));
        rows[1].push_back(sim_cycles_per_episode(
            std::make_shared<TreeSim>(p, 4), p, episodes, skewed,
            args.seed));
        rows[2].push_back(sim_cycles_per_episode(
            std::make_shared<DissemSim>(p), p, episodes, skewed,
            args.seed));
        rows[3].push_back(sim_cycles_per_episode(
            std::make_shared<Reactive3Sim>(p, barrier3_barrier_params(),
                                           CalibratedLadderPolicy(
                                               ladder3_params())),
            p, episodes, skewed, args.seed));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.row("central (counter)", std::move(rows[0]), /*is_static=*/true);
    table.row("tree (fan-in 4)", std::move(rows[1]), /*is_static=*/true);
    table.row("dissemination", std::move(rows[2]), /*is_static=*/true);
    table.row("reactive 3-protocol", std::move(rows[3]));
    table.emit(&g_records,
               {"ProtocolSet<central, tree, dissemination> driven by the",
                "measured ladder policy; tree vs dissemination is ranked",
                "by per-rung episode-period measurement, not drift signals",
                "(drift alone cannot order the two scalable rungs), and",
                "monitoring is traffic-free (periods + completer streaks),",
                "so the parked barrier runs the static protocol's exact",
                "memory operations"});
    if (!args.smoke) {
        // The acceptance envelope: the reactive barrier must track the
        // best of its three slot protocols within 10% at every cell.
        g_failures += table.check_tracks(3, table.ideal(), 1.10, "ideal");
    }
}

// ---- native-thread section --------------------------------------------

/// Wall-clock nanoseconds per episode with real threads. The straggler
/// regime burns `straggle_cycles` on thread 0 every episode — the same
/// fixed-imbalance schedule as the sim tables (a rotating straggler is
/// a different regime; see run_barrier_straggler's comment).
template <typename B>
double native_ns_per_episode(std::uint32_t threads, std::uint32_t episodes,
                             std::uint64_t straggle_cycles)
{
    auto make = [&] {
        if constexpr (std::is_constructible_v<B, std::uint32_t,
                                              ReactiveBarrierParams>)
            return std::make_shared<B>(threads, spread_signal_params());
        else
            return std::make_shared<B>(threads);
    };
    auto bar_ptr = make();
    B& bar = *bar_ptr;
    std::vector<std::thread> pool;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            typename B::Node n;
            for (std::uint32_t e = 0; e < episodes; ++e) {
                if (straggle_cycles > 0 && t == 0)
                    NativePlatform::delay(straggle_cycles);
                bar.arrive(n);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    const auto dt = std::chrono::steady_clock::now() - t0;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                   .count()) /
           episodes;
}

void native_table(bool full)
{
    const std::uint32_t hw = std::thread::hardware_concurrency();
    if (hw < 2) {
        std::cout << "(native section skipped: single-core host)\n";
        return;
    }
    std::vector<std::uint32_t> counts;
    for (std::uint32_t c : {2u, 4u, 8u, hw}) {
        if (c <= hw && (counts.empty() || counts.back() != c))
            counts.push_back(c);
    }
    const std::uint32_t episodes = full ? 20000 : 5000;
    const std::uint32_t straggler_episodes = full ? 2000 : 500;

    for (const bool skewed : {false, true}) {
        stats::Table t(skewed
                           ? std::string("barrier (native threads): ns per "
                                         "episode, straggler arrivals")
                           : std::string("barrier (native threads): ns per "
                                         "episode, bunched arrivals"));
        std::vector<std::string> header{"algorithm"};
        for (std::uint32_t c : counts)
            header.push_back("T=" + std::to_string(c));
        t.header(header);
        const std::uint64_t straggle = skewed ? 200000 : 0;
        const std::uint32_t eps = skewed ? straggler_episodes : episodes;
        std::vector<std::string> central{"central (counter)"};
        std::vector<std::string> tree{"tree (fan-in 4)"};
        std::vector<std::string> dissem{"dissemination"};
        std::vector<std::string> reactive{"reactive"};
        for (std::uint32_t c : counts) {
            central.push_back(stats::fmt(
                native_ns_per_episode<CentralBarrier<NativePlatform>>(
                    c, eps, straggle),
                0));
            tree.push_back(stats::fmt(
                native_ns_per_episode<CombiningTreeBarrier<NativePlatform>>(
                    c, eps, straggle),
                0));
            dissem.push_back(stats::fmt(
                native_ns_per_episode<DisseminationBarrier<NativePlatform>>(
                    c, eps, straggle),
                0));
            reactive.push_back(stats::fmt(
                native_ns_per_episode<ReactiveBarrier<NativePlatform>>(
                    c, eps, straggle),
                0));
            std::cerr << "." << std::flush;
        }
        std::cerr << "\n";
        t.row(central);
        t.row(tree);
        t.row(dissem);
        t.row(reactive);
        t.note("wall-clock; absolute numbers depend on the host, the");
        t.note("ordering between protocols is the reproduction target");
        t.print();
    }
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    start_trace(args);

    if (!args.smoke) {
        sim_regime_table(
            "barrier: cycles per episode, bunched arrivals (compute ~200)",
            "bunched", /*skewed=*/false, args);
        sim_regime_table(
            "barrier: cycles per episode, straggler arrivals (straggle 30k)",
            "straggler", /*skewed=*/true, args);
    }

    barrier3_table("barrier 3-protocol: cycles per episode, bunched "
                   "arrivals (compute ~200)",
                   "bunched", /*skewed=*/false, args);
    barrier3_table("barrier 3-protocol: cycles per episode, straggler "
                   "arrivals (straggle 30k)",
                   "straggler", /*skewed=*/true, args);

    if (!args.smoke) {
        stats::Table t("barrier: phase-shifting workload (bunched <-> "
                       "straggler), elapsed kcycles at P=32");
        t.header({"algorithm", "elapsed", "switches"});
        const std::uint32_t phases = args.full ? 8 : 4;
        const std::uint32_t eps = args.full ? 60 : 30;
        t.row({"central (counter)",
               stats::fmt(apps::run_barrier_phases<CentralSim>(
                              32, phases, eps, 30000, 200, args.seed) /
                              1000.0,
                          0),
               "-"});
        t.row({"tree (fan-in 4)",
               stats::fmt(apps::run_barrier_phases<TreeSim>(
                              32, phases, eps, 30000, 200, args.seed) /
                              1000.0,
                          0),
               "-"});
        auto reactive =
            std::make_shared<ReactiveBarrierSim>(32, spread_signal_params());
        t.row({"reactive",
               stats::fmt(apps::run_barrier_phases<ReactiveBarrierSim>(
                              32, phases, eps, 30000, 200, args.seed,
                              reactive) /
                              1000.0,
                          0),
               std::to_string(reactive->protocol_changes())});
        auto reactive3 = std::make_shared<Reactive3Sim>(
            32, barrier3_barrier_params(),
            CalibratedLadderPolicy(ladder3_params()));
        t.row({"reactive 3-protocol",
               stats::fmt(apps::run_barrier_phases<Reactive3Sim>(
                              32, phases, eps, 30000, 200, args.seed,
                              reactive3) /
                              1000.0,
                          0),
               std::to_string(reactive3->protocol_changes())});
        t.note("the reactive barriers re-converge each phase; neither");
        t.note("static protocol is right for both regimes");
        t.print();

        native_table(args.full);
    }

    if (!g_records.write("BENCH_barrier.json")) {
        std::cerr << "failed to write BENCH_barrier.json\n";
        return 1;
    }
    std::cout << "\nwrote BENCH_barrier.json (" << g_records.size()
              << " records)\n";
    g_failures += finish_trace(args);
    if (g_failures > 0) {
        std::cout << g_failures
                  << " barrier 3-protocol envelope check(s) FAILED\n";
        return 1;
    }
    if (!args.smoke)
        std::cout << "barrier 3-protocol envelope passed (reactive within "
                     "10% of best static at every cell)\n";
    return 0;
}
