/**
 * @file
 * Barrier figure (new in this reproduction; the barrier analogue of
 * Figure 1.1): cycles per episode for the centralized sense-reversing
 * barrier, the fan-in-4 combining-tree barrier, and the reactive
 * barrier, swept over participant counts under two arrival regimes,
 * plus the per-column best static choice ("ideal").
 *
 * Expected shape: under bunched arrivals the central counter serializes
 * P decrements at its home directory and the release pays an O(P)
 * invalidation + refill storm on the sense line, so the tree wins
 * decisively from P~8 up while the central barrier's lower constant
 * wins at low P (below the fan-in the tree *is* a central barrier plus
 * bookkeeping). Under straggler-dominated arrivals everyone else's
 * arrival cost is absorbed into the straggle window and the episode's
 * critical path is the straggler's solo pass — one RMW + one flip for
 * the central barrier vs. a full climb — so the central barrier wins
 * at small and mid P and the regime gap nearly closes; only the O(P)
 * sequential invalidations its release charges the straggler keep the
 * tree marginally ahead at the largest P. The reactive barrier should
 * track the lower envelope on both sides of the crossover, as the
 * reactive spin lock does for mutexes.
 *
 * A third table runs the phase-shifting workload (bunched and straggler
 * regimes alternating), where neither static protocol can win both
 * phases, and a final section repeats the two-regime comparison with
 * real threads on the native platform.
 */
#include <chrono>
#include <iostream>
#include <thread>

#include "apps/workloads.hpp"
#include "barrier/central_barrier.hpp"
#include "barrier/combining_tree_barrier.hpp"
#include "barrier/reactive_barrier.hpp"
#include "bench_common.hpp"
#include "platform/native_platform.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

using CentralSim = CentralBarrier<SimPlatform>;
using TreeSim = CombiningTreeBarrier<SimPlatform>;
using ReactiveBarrierSim = ReactiveBarrier<SimPlatform, AlwaysSwitchPolicy>;

std::vector<std::uint32_t> barrier_procs(bool full)
{
    if (full)
        return {2, 4, 8, 16, 32, 64, 128};
    return {2, 4, 8, 16, 32, 64};
}

std::uint32_t barrier_episodes(std::uint32_t procs, bool full)
{
    const std::uint32_t scale = full ? 4 : 1;
    if (procs <= 8)
        return 120 * scale;
    if (procs <= 32)
        return 60 * scale;
    return 30 * scale;
}

/// Simulated cycles per episode for barrier B at one (regime, procs).
template <typename B>
double sim_cycles_per_episode(std::uint32_t procs, bool skewed, bool full,
                              std::uint64_t seed)
{
    const std::uint32_t episodes = barrier_episodes(procs, full);
    const std::uint64_t elapsed =
        skewed ? apps::run_barrier_straggler<B>(procs, episodes,
                                                /*straggle=*/30000,
                                                /*compute=*/200, seed)
               : apps::run_barrier_uniform<B>(procs, episodes,
                                              /*compute=*/200, seed);
    return static_cast<double>(elapsed) / episodes;
}

void sim_regime_table(const char* title, bool skewed, const BenchArgs& args)
{
    stats::Table t(title);
    std::vector<std::string> header{"algorithm"};
    for (std::uint32_t p : barrier_procs(args.full))
        header.push_back("P=" + std::to_string(p));
    t.header(header);

    std::vector<std::string> names{"central (counter)", "tree (fan-in 4)",
                                   "reactive"};
    std::vector<std::vector<double>> rows(names.size());
    for (std::uint32_t p : barrier_procs(args.full)) {
        rows[0].push_back(
            sim_cycles_per_episode<CentralSim>(p, skewed, args.full, args.seed));
        rows[1].push_back(
            sim_cycles_per_episode<TreeSim>(p, skewed, args.full, args.seed));
        rows[2].push_back(sim_cycles_per_episode<ReactiveBarrierSim>(
            p, skewed, args.full, args.seed));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";

    for (std::size_t i = 0; i < names.size(); ++i) {
        std::vector<std::string> cells{names[i]};
        for (double v : rows[i])
            cells.push_back(stats::fmt(v, 0));
        t.row(cells);
    }
    std::vector<std::string> ideal{"ideal (best static)"};
    for (std::size_t c = 0; c < rows[0].size(); ++c)
        ideal.push_back(stats::fmt(std::min(rows[0][c], rows[1][c]), 0));
    t.row(ideal);
    if (skewed) {
        t.note("a straggler dominates each episode: the tree's climb is");
        t.note("pure overhead and central wins until its release's O(P)");
        t.note("sequential invalidations outgrow the climb (largest P)");
    } else {
        t.note("bunched arrivals serialize at the central counter: the tree");
        t.note("should win at high P, the central constant at low P");
    }
    t.note("reactive should track the better protocol on both sides; its");
    t.note("gap to ideal is the arrival-spread monitoring (stamp store +");
    t.note("min-combine CAS), the barrier's price of adaptivity");
    t.print();
}

// ---- native-thread section --------------------------------------------

/// Wall-clock nanoseconds per episode with real threads. The straggler
/// regime burns `straggle_cycles` on thread 0 every episode — the same
/// fixed-imbalance schedule as the sim tables (a rotating straggler is
/// a different regime; see run_barrier_straggler's comment).
template <typename B>
double native_ns_per_episode(std::uint32_t threads, std::uint32_t episodes,
                             std::uint64_t straggle_cycles)
{
    B bar(threads);
    std::vector<std::thread> pool;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            typename B::Node n;
            for (std::uint32_t e = 0; e < episodes; ++e) {
                if (straggle_cycles > 0 && t == 0)
                    NativePlatform::delay(straggle_cycles);
                bar.arrive(n);
            }
        });
    }
    for (auto& th : pool)
        th.join();
    const auto dt = std::chrono::steady_clock::now() - t0;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                   .count()) /
           episodes;
}

void native_table(bool full)
{
    const std::uint32_t hw = std::thread::hardware_concurrency();
    if (hw < 2) {
        std::cout << "(native section skipped: single-core host)\n";
        return;
    }
    std::vector<std::uint32_t> counts;
    for (std::uint32_t c : {2u, 4u, 8u, hw}) {
        if (c <= hw && (counts.empty() || counts.back() != c))
            counts.push_back(c);
    }
    const std::uint32_t episodes = full ? 20000 : 5000;
    const std::uint32_t straggler_episodes = full ? 2000 : 500;

    for (const bool skewed : {false, true}) {
        stats::Table t(skewed
                           ? std::string("barrier (native threads): ns per "
                                         "episode, straggler arrivals")
                           : std::string("barrier (native threads): ns per "
                                         "episode, bunched arrivals"));
        std::vector<std::string> header{"algorithm"};
        for (std::uint32_t c : counts)
            header.push_back("T=" + std::to_string(c));
        t.header(header);
        const std::uint64_t straggle = skewed ? 200000 : 0;
        const std::uint32_t eps = skewed ? straggler_episodes : episodes;
        std::vector<std::string> central{"central (counter)"};
        std::vector<std::string> tree{"tree (fan-in 4)"};
        std::vector<std::string> reactive{"reactive"};
        for (std::uint32_t c : counts) {
            central.push_back(stats::fmt(
                native_ns_per_episode<CentralBarrier<NativePlatform>>(
                    c, eps, straggle),
                0));
            tree.push_back(stats::fmt(
                native_ns_per_episode<CombiningTreeBarrier<NativePlatform>>(
                    c, eps, straggle),
                0));
            reactive.push_back(stats::fmt(
                native_ns_per_episode<ReactiveBarrier<NativePlatform>>(
                    c, eps, straggle),
                0));
            std::cerr << "." << std::flush;
        }
        std::cerr << "\n";
        t.row(central);
        t.row(tree);
        t.row(reactive);
        t.note("wall-clock; absolute numbers depend on the host, the");
        t.note("ordering between protocols is the reproduction target");
        t.print();
    }
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);

    sim_regime_table(
        "barrier: cycles per episode, bunched arrivals (compute ~200)",
        /*skewed=*/false, args);
    sim_regime_table(
        "barrier: cycles per episode, straggler arrivals (straggle 30k)",
        /*skewed=*/true, args);

    {
        stats::Table t("barrier: phase-shifting workload (bunched <-> "
                       "straggler), elapsed kcycles at P=32");
        t.header({"algorithm", "elapsed", "switches"});
        const std::uint32_t phases = args.full ? 8 : 4;
        const std::uint32_t eps = args.full ? 60 : 30;
        t.row({"central (counter)",
               stats::fmt(apps::run_barrier_phases<CentralSim>(
                              32, phases, eps, 30000, 200, args.seed) /
                              1000.0,
                          0),
               "-"});
        t.row({"tree (fan-in 4)",
               stats::fmt(apps::run_barrier_phases<TreeSim>(
                              32, phases, eps, 30000, 200, args.seed) /
                              1000.0,
                          0),
               "-"});
        auto reactive = std::make_shared<ReactiveBarrierSim>(32);
        t.row({"reactive",
               stats::fmt(apps::run_barrier_phases<ReactiveBarrierSim>(
                              32, phases, eps, 30000, 200, args.seed,
                              reactive) /
                              1000.0,
                          0),
               std::to_string(reactive->protocol_changes())});
        t.note("the reactive barrier re-converges each phase; neither");
        t.note("static protocol is right for both regimes");
        t.print();
    }

    native_table(args.full);
    return 0;
}
