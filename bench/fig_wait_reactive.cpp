/**
 * @file
 * Reactive-waiting figure (Chapter 4 x the selection layer): crossover
 * tables for static waiting modes vs. the calibrated waiting-mode
 * policy, swept over *oversubscription* instead of processor count.
 *
 * The question under test: waiting mode is the second per-object
 * selection axis — always-spin wins when waits are short and every
 * waiter owns a processor, immediate-park wins when spinning steals
 * cycles the holder needs (multiprogramming), and two-phase waiting
 * with the calibrated Lpoll = alpha x B is the competitive fallback in
 * between. Each table fixes a contention regime (critical-section and
 * think-time mix) and sweeps the oversubscription factor: `factor`
 * threads per simulated processor, single hardware context, preemptive
 * quantum (sim/machine.hpp) so always-spin *can* run — slowly — instead
 * of livelocking when a spinner holds the only context.
 *
 * Rows:
 *   - **always-spin (static)**: the pre-subsystem spin-only
 *     instantiation (SpinWaiting — no parking machinery compiled in);
 *   - **two-phase (static)**: ParkWaiting pinned to the fixed
 *     spin-then-park algorithm, Lpoll = alpha x B from the cost model;
 *   - **always-park (static)**: ParkWaiting pinned to immediate block;
 *   - **reactive**: ParkWaiting driven by CalibratedWaitPolicy — the
 *     holder's estimator lanes pick the mode per release.
 *
 * Expected shape: spin wins the 1x column, park wins the deep columns,
 * and the reactive row tracks the per-column best within the usual 10%
 * envelope while *strictly* beating always-spin once oversubscription
 * reaches 2x (the in-binary checks; smoke runs are sized for CI and
 * skip them). All cells land in BENCH_wait.json for the mechanical
 * tolerance diff; `--native` adds an advisory oversubscribed
 * fixed-pool table on real hardware (ContendedOptions::oversubscribed).
 */
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/workloads.hpp"
#include "bench_common.hpp"
#include "contended_harness.hpp"
#include "core/reactive_mutex.hpp"
#include "platform/native_platform.hpp"
#include "waiting/reactive/wait_select.hpp"
#include "waiting/reactive/wait_site.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

JsonRecords g_records;
int g_failures = 0;
bool g_check_enabled = true;
/// Cells where the beats-always-spin assertion was actually exercised
/// (factor >= 2 *and* the static rows show spin losing). The run fails
/// if no regime produced such a cell — the claim must be tested, not
/// vacuously skipped.
int g_spin_crossover_cells = 0;

/// Absolute allowance on the tracking envelope, cycles. The parking
/// machinery a ParkWaiting lock carries even in spin mode — the
/// eventcount epoch bump per release, the hint maintenance, the
/// estimator stamps — is a constant ~2 cache-op-scale cost per
/// operation, which at sim magnitudes (a 122-cycle hot handoff) is
/// far above 10% relative. The envelope is therefore
/// 1.10 x ideal + kMachinerySlack: relative in the regimes the claim
/// is about, additive only at scales where "10%" is 12 cycles.
constexpr double kMachinerySlack = 64.0;

// ---- instantiations under test ----------------------------------------

// The spin row is the genuine pre-subsystem lock: SpinWaiting, zero
// parking machinery (the byte-identity configuration). ReactiveSim is
// the bench_common alias for exactly that.
using SpinRow = ReactiveSim;

using ParkQueue = ReactiveQueue<sim::SimPlatform>;
using FixedRow = ReactiveNodeLock<sim::SimPlatform, AlwaysSwitchPolicy,
                                  ParkQueue, ParkWaiting, FixedWaitPolicy>;
using ReactiveRow = ReactiveNodeLock<sim::SimPlatform, AlwaysSwitchPolicy,
                                     ParkQueue, ParkWaiting,
                                     CalibratedWaitPolicy>;

/// FixedRow pinned to one waiting algorithm. The hint reaches the wait
/// site at the first release (update_wait_policy publishes it), so only
/// the very first contended waits run under the default spin hint.
std::shared_ptr<FixedRow> make_fixed(const WaitingAlgorithm& alg)
{
    auto l = std::make_shared<FixedRow>();
    l->inner().wait_policy() = FixedWaitPolicy(alg);
    return l;
}

/// Shared cost model of every row: single-context Alewife processors
/// with a preemption quantum, the regime where the waiting mode
/// matters. At factor = 1 no runnable thread ever waits unloaded, so
/// the quantum never fires and the column degrades to the classic
/// fully-subscribed machine.
sim::CostModel oversub_costs()
{
    sim::CostModel c = sim::CostModel::alewife();
    c.preempt_quantum = 10000;
    return c;
}

// ---- simulated sweep --------------------------------------------------

struct Cell {
    double cycles_per_op = 0.0;
    sim::MachineStats stats;
};

template <typename L>
Cell run_cell(std::uint32_t procs, std::uint32_t factor, std::uint32_t iters,
              std::uint32_t cs, std::uint32_t think, std::uint64_t seed,
              std::shared_ptr<L> lock)
{
    Cell cell;
    const std::uint64_t elapsed = apps::run_lock_cycle_oversubscribed<L>(
        procs, factor, iters, cs, think, seed, std::move(lock),
        oversub_costs(), &cell.stats);
    cell.cycles_per_op =
        static_cast<double>(elapsed) /
        (static_cast<double>(procs) * factor * iters);
    return cell;
}

void wait_regime_table(const char* title, const char* regime,
                       std::uint32_t cs, std::uint32_t think,
                       const BenchArgs& args, bool checks = true)
{
    const std::uint32_t procs = args.smoke ? 2 : 4;
    const std::vector<std::uint32_t> factors =
        args.smoke ? std::vector<std::uint32_t>{1, 4}
                   : std::vector<std::uint32_t>{1, 2, 4, 8};
    const std::uint32_t iters = args.smoke ? 40 : (args.full ? 400 : 200);

    // The static two-phase row polls for the calibrated budget
    // Lpoll = alpha x B with B read straight off the cost model — the
    // best a static configuration can do with perfect constants.
    const std::uint64_t lpoll =
        oversub_costs().blocking_cost() * kWaitAlphaPermille / 1000;

    const std::vector<std::string> names{
        "always-spin (static)", "two-phase (static)", "always-park (static)",
        "reactive"};
    std::vector<std::vector<double>> rows(names.size());
    std::vector<sim::MachineStats> reactive_stats;
    for (std::uint32_t f : factors) {
        rows[0].push_back(run_cell<SpinRow>(procs, f, iters, cs, think,
                                            args.seed,
                                            std::make_shared<SpinRow>())
                              .cycles_per_op);
        rows[1].push_back(
            run_cell<FixedRow>(
                procs, f, iters, cs, think, args.seed,
                make_fixed(WaitingAlgorithm::two_phase(lpoll)))
                .cycles_per_op);
        rows[2].push_back(
            run_cell<FixedRow>(procs, f, iters, cs, think, args.seed,
                               make_fixed(WaitingAlgorithm::always_block()))
                .cycles_per_op);
        Cell r = run_cell<ReactiveRow>(procs, f, iters, cs, think, args.seed,
                                       std::make_shared<ReactiveRow>());
        rows[3].push_back(r.cycles_per_op);
        reactive_stats.push_back(r.stats);
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";

    CrossoverTable table(title, "wait_lock", regime, factors,
                         /*axis_prefix=*/"x", /*row_label=*/"wait mode");
    for (std::size_t i = 0; i < names.size(); ++i)
        table.row(names[i], std::move(rows[i]), /*is_static=*/i < 3,
                  i == 3 ? reactive_stats : std::vector<sim::MachineStats>{});
    const sim::MachineStats& deep = reactive_stats.back();
    table.emit(
        &g_records,
        {"cycles per critical section, " + std::to_string(procs) +
             " single-context processors, factor threads each, preempt "
             "quantum 10k;",
         "reactive row at deepest factor: " + std::to_string(deep.blocks) +
             " parks, " + std::to_string(deep.wakes) + " wakes, " +
             std::to_string(deep.preemptions) + " preemptions"});
    if (g_check_enabled && checks) {
        // The acceptance envelope: reactive within 10% (plus the
        // constant machinery allowance) of the best static waiting
        // mode at every oversubscription level.
        const std::vector<double>& best = table.ideal();
        const std::vector<double>& reactive = table.cells(3);
        const std::vector<double>& spin = table.cells(0);
        for (std::size_t c = 0; c < factors.size(); ++c) {
            if (reactive[c] > 1.10 * best[c] + kMachinerySlack) {
                ++g_failures;
                std::cout << "  CHECK FAIL [wait_lock/" << regime << " x"
                          << factors[c] << "]: reactive="
                          << stats::fmt(reactive[c], 1)
                          << " > 1.1 * ideal + " << kMachinerySlack
                          << " = " << stats::fmt(
                                 1.10 * best[c] + kMachinerySlack, 1)
                          << "\n";
            }
            // Strictly cheaper than always-spin wherever spinning has
            // genuinely stopped being the best static answer at >= 2x
            // oversubscription. Cells where always-spin *is* the ideal
            // (zero-think hot handoffs) are not crossover cells — no
            // waiting mode can beat spin there, reactive's job is the
            // envelope above — but at least one crossover cell must
            // exist across the run or the claim was never tested.
            if (factors[c] < 2 || spin[c] <= best[c])
                continue;
            ++g_spin_crossover_cells;
            if (reactive[c] < spin[c])
                continue;
            ++g_failures;
            std::cout << "  CHECK FAIL [wait_lock/" << regime << " x"
                      << factors[c] << "]: reactive="
                      << stats::fmt(reactive[c], 1)
                      << " !< always-spin=" << stats::fmt(spin[c], 1)
                      << "\n";
        }
    }
}

// ---- native oversubscribed section ------------------------------------

using NativeParkQueue = ReactiveQueue<NativePlatform>;
using NativeSpin = ReactiveNodeLock<NativePlatform, AlwaysSwitchPolicy>;
using NativeFixed = ReactiveNodeLock<NativePlatform, AlwaysSwitchPolicy,
                                     NativeParkQueue, ParkWaiting,
                                     FixedWaitPolicy>;
using NativeReactive = ReactiveNodeLock<NativePlatform, AlwaysSwitchPolicy,
                                        NativeParkQueue, ParkWaiting,
                                        CalibratedWaitPolicy>;

/// Advisory (no checks): host scheduling noise under oversubscription
/// dwarfs the sim's determinism, so this table is evidence of *shape*,
/// not an envelope. Threads = factor x online CPUs, pinned modulo the
/// CPU count (ContendedOptions::oversubscribed).
void native_table(const BenchArgs& args)
{
    const std::vector<std::uint32_t> factors{1, 2, 4};
    // A guess at the native block cost class; the reactive row measures
    // its own from wake latencies, this is only the fixed row's budget.
    const std::uint64_t lpoll = 2000;

    const std::vector<std::string> names{"always-spin", "two-phase fixed",
                                         "always-park", "reactive"};
    std::vector<std::vector<double>> rows(names.size());
    for (std::uint32_t f : factors) {
        ContendedOptions opt = ContendedOptions::oversubscribed(
            f, args.full ? 20000 : 5000);
        NativeSpin spin;
        rows[0].push_back(contended_lock_cycles_per_op(spin, opt));
        NativeFixed two_phase;
        two_phase.inner().wait_policy() =
            FixedWaitPolicy(WaitingAlgorithm::two_phase(lpoll));
        rows[1].push_back(contended_lock_cycles_per_op(two_phase, opt));
        NativeFixed park;
        park.inner().wait_policy() =
            FixedWaitPolicy(WaitingAlgorithm::always_block());
        rows[2].push_back(contended_lock_cycles_per_op(park, opt));
        NativeReactive rea;
        rows[3].push_back(contended_lock_cycles_per_op(rea, opt));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";

    CrossoverTable table(
        "locks (native, oversubscribed fixed pool): cycles per critical "
        "section, hot loop",
        "native_wait_lock", "hot", factors, /*axis_prefix=*/"x",
        /*row_label=*/"wait mode");
    for (std::size_t i = 0; i < names.size(); ++i)
        table.row(names[i], std::move(rows[i]), /*is_static=*/i < 3);
    table.emit(&g_records,
               {"threads = factor x online CPUs, pinned modulo CPU count;",
                "advisory: host timeshare noise, no envelope checks"});
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    start_trace(args);
    // Smoke cells are sized for CI wall-clock, far below the estimator
    // convergence horizon; their tables are exercise, not evidence.
    g_check_enabled = !args.smoke;

    wait_regime_table(
        "waiting mode: cycles per critical section, hot loop (cs 100)",
        "hot", /*cs=*/100, /*think=*/0, args);
    wait_regime_table(
        "waiting mode: cycles per critical section, think U[0,2000)",
        "think2k", /*cs=*/100, /*think=*/2000, args);
    // Advisory: long sections under preemption are dominated by the
    // holder losing its quantum mid-hold, which no *waiting* mode can
    // repair (that cost belongs to protocol selection / cohort
    // handoff); the table documents the shape without an envelope.
    if (args.full)
        wait_regime_table(
            "waiting mode: cycles per critical section, long sections "
            "(cs 1000, think U[0,500)) [advisory]",
            "longcs", /*cs=*/1000, /*think=*/500, args, /*checks=*/false);

    if (args.native)
        native_table(args);

    if (!g_records.write("BENCH_wait.json")) {
        std::cerr << "failed to write BENCH_wait.json\n";
        return 1;
    }
    std::cout << "\nwrote BENCH_wait.json (" << g_records.size()
              << " records)\n";
    g_failures += finish_trace(args);
    if (g_check_enabled && g_spin_crossover_cells == 0) {
        ++g_failures;
        std::cout << "  CHECK FAIL: no regime produced a >= 2x cell where "
                     "always-spin loses to a static alternative — the "
                     "beats-spin claim was never exercised\n";
    }
    if (g_failures > 0) {
        std::cout << g_failures << " waiting-mode check(s) FAILED\n";
        return 1;
    }
    std::cout << "all waiting-mode checks passed (reactive within the "
                 "envelope of the best static mode per cell, beats "
                 "always-spin in every >= 2x crossover cell; "
              << g_spin_crossover_cells << " crossover cell(s))\n";
    return 0;
}
