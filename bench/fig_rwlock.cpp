/**
 * @file
 * Reader-writer lock figure (new in this reproduction; the rwlock
 * analogue of Figure 1.1): cycles per operation for the centralized
 * counter rwlock, the fair queue rwlock, and the reactive rwlock,
 * swept over reader fraction and contending processors, plus the
 * per-column best static choice ("ideal").
 *
 * Expected shape: at high reader fractions the simple protocol wins
 * (one fetch&add admits a reader; readers overlap); at low reader
 * fractions and high processor counts the lock degenerates to a
 * contended mutex and the queue protocol wins (local spinning, O(1)
 * remote references). The reactive rwlock should track the lower
 * envelope at both ends, as the reactive spin lock does for mutexes.
 *
 * A second table runs the phase-shifting workload (read-mostly and
 * write-heavy regimes alternating), where neither static protocol can
 * win both phases.
 */
#include <iostream>

#include "apps/workloads.hpp"
#include "bench_common.hpp"
#include "rw/queue_rw_lock.hpp"
#include "rw/reactive_rw_lock.hpp"
#include "rw/simple_rw_lock.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

using SimpleRwSim = SimpleRwLock<SimPlatform>;
using QueueRwSim = QueueRwLock<SimPlatform>;
using ReactiveRwSim = ReactiveRwLock<SimPlatform, AlwaysSwitchPolicy>;

std::vector<std::uint32_t> rw_procs(bool full)
{
    if (full)
        return {1, 2, 4, 8, 16, 32, 64};
    return {1, 2, 4, 8, 16, 32};
}

std::uint32_t rw_iters(std::uint32_t procs, bool full)
{
    const std::uint32_t scale = full ? 4 : 1;
    if (procs <= 4)
        return 400 * scale;
    if (procs <= 16)
        return 200 * scale;
    return 100 * scale;
}

/// Cycles per operation for lock RW at one (reader fraction, procs).
template <typename RW>
double rw_cycles_per_op(std::uint32_t procs, std::uint32_t read_permille,
                        bool full, std::uint64_t seed)
{
    const std::uint32_t iters = rw_iters(procs, full);
    const std::uint64_t elapsed =
        apps::run_rw_mix<RW>(procs, iters, read_permille, seed);
    return static_cast<double>(elapsed) /
           (static_cast<double>(procs) * iters);
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);

    for (std::uint32_t permille : {0u, 500u, 900u, 990u}) {
        stats::Table t("rwlock: cycles per operation, reader fraction " +
                       stats::fmt(permille / 10.0, 1) + "%");
        std::vector<std::string> header{"algorithm"};
        for (std::uint32_t p : rw_procs(args.full))
            header.push_back("P=" + std::to_string(p));
        t.header(header);

        std::vector<std::string> names{"simple (centralized)", "queue (fair)",
                                       "reactive"};
        std::vector<std::vector<double>> rows(names.size());
        for (std::uint32_t p : rw_procs(args.full)) {
            rows[0].push_back(rw_cycles_per_op<SimpleRwSim>(
                p, permille, args.full, args.seed));
            rows[1].push_back(rw_cycles_per_op<QueueRwSim>(
                p, permille, args.full, args.seed));
            rows[2].push_back(rw_cycles_per_op<ReactiveRwSim>(
                p, permille, args.full, args.seed));
            std::cerr << "." << std::flush;
        }
        std::cerr << "\n";

        for (std::size_t i = 0; i < names.size(); ++i) {
            std::vector<std::string> cells{names[i]};
            for (double v : rows[i])
                cells.push_back(stats::fmt(v, 0));
            t.row(cells);
        }
        std::vector<std::string> ideal{"ideal (best static)"};
        for (std::size_t c = 0; c < rows[0].size(); ++c)
            ideal.push_back(
                stats::fmt(std::min(rows[0][c], rows[1][c]), 0));
        t.row(ideal);
        t.note("reactive should track the lower envelope at both ends of");
        t.note("the reader-fraction sweep (within ~10% of best static)");
        t.print();
    }

    {
        stats::Table t("rwlock: phase-shifting workload (read-mostly <-> "
                       "write-heavy), elapsed kcycles at P=16");
        t.header({"algorithm", "elapsed"});
        const std::uint32_t phases = args.full ? 8 : 4;
        const std::uint32_t ops = args.full ? 300 : 150;
        t.row({"simple (centralized)",
               stats::fmt(apps::run_rw_phases<SimpleRwSim>(16, phases, ops,
                                                           args.seed) /
                              1000.0,
                          0)});
        t.row({"queue (fair)",
               stats::fmt(apps::run_rw_phases<QueueRwSim>(16, phases, ops,
                                                          args.seed) /
                              1000.0,
                          0)});
        t.row({"reactive",
               stats::fmt(apps::run_rw_phases<ReactiveRwSim>(16, phases, ops,
                                                             args.seed) /
                              1000.0,
                          0)});
        t.note("the reactive lock re-converges each phase; neither static");
        t.note("protocol is right for both regimes");
        t.print();
    }
    return 0;
}
