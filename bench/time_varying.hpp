/**
 * @file
 * Shared harness for the time-varying contention test
 * (thesis Figures 3.20-3.23).
 *
 * The level of contention alternates between a low phase (one processor
 * acquiring the lock with a 10-cycle critical section and 20-cycle
 * think time) and a high phase (16 processors, 100-cycle critical
 * sections, 250-cycle think times). One period = `period_locks` total
 * acquisitions, of which a fraction happens under high contention. The
 * lock object persists across phases, so a reactive lock must switch
 * protocols (twice per period, ideally); elapsed times are normalized
 * to the MCS queue lock.
 */
#pragma once

#include "bench_common.hpp"

namespace reactive::bench {

template <typename L>
std::uint64_t run_time_varying(std::uint32_t period_locks,
                               double contention_fraction,
                               std::uint32_t periods, std::uint64_t seed)
{
    auto lock = make_lock<L>(16);
    const auto high_total = static_cast<std::uint32_t>(
        static_cast<double>(period_locks) * contention_fraction);
    const std::uint32_t low_total = period_locks - high_total;
    std::uint64_t elapsed = 0;

    for (std::uint32_t period = 0; period < periods; ++period) {
        {  // low-contention phase: one processor
            sim::Machine m(1, sim::CostModel::alewife(), seed + 2 * period);
            m.spawn(0, [=] {
                for (std::uint32_t i = 0; i < low_total; ++i) {
                    typename L::Node node;
                    lock->lock(node);
                    sim::delay(10);
                    lock->unlock(node);
                    sim::delay(20);
                }
            });
            m.run();
            elapsed += m.elapsed();
        }
        {  // high-contention phase: 16 processors
            sim::Machine m(16, sim::CostModel::alewife(),
                           seed + 2 * period + 1);
            const std::uint32_t iters = high_total / 16;
            for (std::uint32_t p = 0; p < 16; ++p) {
                m.spawn(p, [=] {
                    for (std::uint32_t i = 0; i < iters; ++i) {
                        typename L::Node node;
                        lock->lock(node);
                        sim::delay(100);
                        lock->unlock(node);
                        sim::delay(250);
                    }
                });
            }
            m.run();
            elapsed += m.elapsed();
        }
    }
    return elapsed;
}

inline std::vector<std::uint32_t> period_lengths(bool full)
{
    if (full)
        return {256, 512, 1024, 2048, 4096, 8192};
    return {256, 1024, 4096};
}

inline std::vector<double> contention_fractions(bool full)
{
    if (full)
        return {0.1, 0.3, 0.5, 0.7, 0.9};
    return {0.1, 0.5, 0.9};
}

/**
 * Prints one Figure 3.21/3.22/3.23-style block: rows = algorithms,
 * columns = period lengths, values normalized to the MCS queue lock,
 * one table per contention fraction.
 */
template <typename RunFn>
void print_time_varying_tables(
    const char* title, const std::vector<std::pair<std::string, RunFn>>& algos,
    const BenchArgs& args)
{
    const std::uint32_t periods = args.full ? 10 : 6;
    for (double frac : contention_fractions(args.full)) {
        stats::Table t(std::string(title) + " — " +
                       stats::fmt(frac * 100.0, 0) + "% contention "
                       "(normalized to MCS queue lock)");
        std::vector<std::string> header{"algorithm"};
        for (std::uint32_t len : period_lengths(args.full))
            header.push_back(std::to_string(len) + "/period");
        t.header(header);

        std::vector<std::uint64_t> mcs_elapsed;
        for (std::uint32_t len : period_lengths(args.full))
            mcs_elapsed.push_back(run_time_varying<McsSim>(
                len, frac, periods, args.seed));

        for (const auto& [name, fn] : algos) {
            std::vector<std::string> cells{name};
            std::size_t c = 0;
            for (std::uint32_t len : period_lengths(args.full)) {
                const std::uint64_t e = fn(len, frac, periods, args.seed);
                cells.push_back(stats::fmt(
                    static_cast<double>(e) /
                        static_cast<double>(mcs_elapsed[c++]),
                    2));
            }
            t.row(cells);
            std::cerr << "." << std::flush;
        }
        std::cerr << "\n";
        t.print();
    }
}

using TvRunFn = std::uint64_t (*)(std::uint32_t, double, std::uint32_t,
                                  std::uint64_t);

}  // namespace reactive::bench
