/**
 * @file
 * Reproduces Table 4.6: two-phase waiting with Lpoll = 0.5B compared
 * against Lpoll = 0.54B (exponential-optimal), Lpoll = B, and the pure
 * mechanisms, on the Chapter 4 kernels — the thesis' point being that
 * performance is insensitive to small deviations from the analytic
 * optimum (robustness of static two-phase waiting).
 */
#include <iostream>

#include "apps/waiting_workloads.hpp"
#include "bench_common.hpp"

using namespace reactive;
using namespace reactive::bench;

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const std::uint32_t procs = 16;
    const double b_cost = sim::CostModel::alewife().blocking_cost();

    const std::pair<const char*, WaitingAlgorithm> algos[] = {
        {"2ph 0.5B", WaitingAlgorithm::two_phase(
                         static_cast<std::uint64_t>(0.5 * b_cost))},
        {"2ph 0.54B", WaitingAlgorithm::two_phase(
                          static_cast<std::uint64_t>(0.5413 * b_cost))},
        {"2ph B", WaitingAlgorithm::two_phase(
                      static_cast<std::uint64_t>(b_cost))},
        {"spin", WaitingAlgorithm::always_spin()},
        {"block", WaitingAlgorithm::always_block()},
    };

    stats::Table t("Table 4.6: Lpoll sensitivity (execution time, "
                   "normalized to the best per row)");
    t.header({"benchmark", "2ph 0.5B", "2ph 0.54B", "2ph B", "spin",
              "block"});

    auto row = [&](const char* name, auto runner) {
        double v[5];
        for (int i = 0; i < 5; ++i)
            v[i] = static_cast<double>(runner(algos[i].second));
        double best = v[0];
        for (double x : v)
            best = std::min(best, x);
        std::vector<std::string> cells{name};
        for (double x : v)
            cells.push_back(stats::fmt(x / best, 2));
        t.row(cells);
        std::cerr << "." << std::flush;
    };

    row("jstructure", [&](WaitingAlgorithm a) {
        return apps::run_jstructure_pipeline(procs, a, 96, nullptr,
                                             args.seed);
    });
    row("jacobi-bar", [&](WaitingAlgorithm a) {
        return apps::run_barrier_sweeps(procs, a, 20, 3000, nullptr,
                                        args.seed);
    });
    row("fibheap", [&](WaitingAlgorithm a) {
        return apps::run_fibheap(procs, a, 30, nullptr, args.seed);
    });
    std::cerr << "\n";
    t.note("paper finding: 0.5B is indistinguishable from 0.54B —");
    t.note("static two-phase waiting is robust to the exact Lpoll");
    t.print();
    return 0;
}
