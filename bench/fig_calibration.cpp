/**
 * @file
 * Calibration figure (new in this reproduction): crossover tables for
 * static-constant vs. runtime-calibrated switch policies.
 *
 * The question under test: the 3-competitive policy is only as good as
 * its cost constants, so what happens when they are wrong — and does
 * the runtime cost-calibration layer (core/cost_model.hpp) recover?
 * Each table sweeps processor count under a fixed contention regime and
 * compares
 *
 *   - the two static protocols (the per-column best is "ideal"),
 *   - the reactive lock with the thesis' hand-measured constants,
 *   - the reactive lock with *mis-tuned* static constants (switch
 *     round trip 10x over / 10x under — the reluctant and
 *     trigger-happy failure modes),
 *   - the calibrated policy seeded with the same wrong constants in
 *     both directions (plus harsher residual mis-seeds).
 *
 * Expected shape: the mis-tuned static rows pay for their constants
 * (the reluctant one sticks with the losing protocol; the eager one
 * oscillates), while every calibrated row converges to the measured
 * costs and lands within a few percent of ideal at every point — the
 * "self-tuning beats re-measuring constants by hand" claim. A PASS/
 * FAIL summary checks the 10%-of-ideal and never-worse-than-mis-tuned
 * envelopes; all cells are also appended to BENCH_calibration.json so
 * future PRs can diff crossovers mechanically.
 *
 * A second pair of tables repeats the experiment for the reactive
 * barrier (bunched vs. straggler arrivals, calibrated episode-spread
 * thresholds), a third for the reactive rwlock's write-heavy mix, and
 * `--native` adds pinned fixed-thread-pool tables on real hardware
 * (bench/contended_harness.hpp). `--smoke` runs a tiny sim subset for
 * CI.
 */
#include <cmath>
#include <iostream>
#include <memory>
#include <type_traits>

#include "apps/workloads.hpp"
#include "barrier/central_barrier.hpp"
#include "barrier/combining_tree_barrier.hpp"
#include "barrier/reactive_barrier.hpp"
#include "bench_common.hpp"
#include "contended_harness.hpp"
#include "core/cost_model.hpp"
#include "platform/native_platform.hpp"
#include "rw/reactive_rw_lock.hpp"
#include "stats/table.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

JsonRecords g_records;
int g_failures = 0;

// ---- policy seeds under test ------------------------------------------

// Mis-tuning presets shared with tests/test_cost_model.cpp via
// CostEstimator::Params, so the test envelope validates exactly the
// configurations these tables measure.
CostEstimator::Params reluctant_seeds()
{
    return CostEstimator::Params::mis_tuned_reluctant();
}

CostEstimator::Params eager_seeds()
{
    return CostEstimator::Params::mis_tuned_eager();
}

CalibratedCompetitive3Policy::Params calibrated_params(
    CostEstimator::Params seeds)
{
    CalibratedCompetitive3Policy::Params p;
    p.costs = seeds;
    return p;
}

Competitive3Policy::Params static_params(std::uint32_t round_trip)
{
    Competitive3Policy::Params p;
    p.switch_round_trip = round_trip;
    return p;
}

// ---- spin-lock section ------------------------------------------------

using ReactiveC3 = ReactiveNodeLock<sim::SimPlatform, Competitive3Policy>;
using ReactiveCal =
    ReactiveNodeLock<sim::SimPlatform, CalibratedCompetitive3Policy>;

/// Simulated cycles per critical section for the lock built by @p mk;
/// the kernel itself is apps::run_lock_cycle (shared with the test
/// envelope so both measure the same experiment).
template <typename MakeLock>
double lock_cycles_per_op(std::uint32_t procs, std::uint32_t iters,
                          std::uint32_t think, std::uint64_t seed,
                          MakeLock&& mk)
{
    auto lock = mk();
    using L = typename std::decay_t<decltype(*lock)>;
    const std::uint64_t elapsed = apps::run_lock_cycle<L>(
        procs, iters, /*cs=*/100, think, seed, std::move(lock));
    return static_cast<double>(elapsed) /
           (static_cast<double>(procs) * iters);
}

std::vector<std::uint32_t> calib_procs(const BenchArgs& a)
{
    if (a.smoke)
        return {2, 8};
    if (a.full)
        return {2, 4, 8, 16, 32, 64};
    return {2, 4, 8, 16, 32};
}

std::uint32_t calib_iters(std::uint32_t procs, const BenchArgs& a)
{
    if (a.smoke)
        return 200;
    const std::uint32_t scale = a.full ? 2 : 1;
    if (procs <= 4)
        return 3000 * scale;
    if (procs <= 16)
        return 1500 * scale;
    return 800 * scale;
}

/// Envelope checks are hosted by CrossoverTable (bench_common.hpp);
/// the never-worse comparison carries a 5% epsilon: where the
/// mis-tuned constants *happen* to encode the optimal behaviour (the
/// reluctant policy at a hot convoy, say), a bounded-regret adaptive
/// policy necessarily trails it by its probing/convergence budget —
/// the epsilon is that budget, and the 10%-of-ideal bound still binds
/// unconditionally.
bool g_check_enabled = true;

void lock_regime_table(const char* title, const char* regime,
                       std::uint32_t think, const BenchArgs& args)
{
    const auto procs = calib_procs(args);
    const std::vector<std::string> names{
        "tts (static)",         "mcs (static)",       "reactive tuned",
        "reactive 10x-over",    "reactive 10x-under", "calibrated over-seed",
        "calibrated under-seed"};
    std::vector<std::vector<double>> rows(names.size());
    for (std::uint32_t p : procs) {
        const std::uint32_t iters = calib_iters(p, args);
        const std::uint64_t seed = args.seed;
        rows[0].push_back(lock_cycles_per_op(
            p, iters, think, seed, [] { return std::make_shared<TtsSim>(); }));
        rows[1].push_back(lock_cycles_per_op(
            p, iters, think, seed, [] { return std::make_shared<McsSim>(); }));
        rows[2].push_back(lock_cycles_per_op(p, iters, think, seed, [] {
            return std::make_shared<ReactiveC3>(ReactiveLockParams{},
                                                Competitive3Policy{});
        }));
        rows[3].push_back(lock_cycles_per_op(p, iters, think, seed, [] {
            return std::make_shared<ReactiveC3>(
                ReactiveLockParams{},
                Competitive3Policy(static_params(88000)));
        }));
        rows[4].push_back(lock_cycles_per_op(p, iters, think, seed, [] {
            return std::make_shared<ReactiveC3>(
                ReactiveLockParams{}, Competitive3Policy(static_params(880)));
        }));
        rows[5].push_back(lock_cycles_per_op(p, iters, think, seed, [] {
            return std::make_shared<ReactiveCal>(
                ReactiveLockParams{},
                CalibratedCompetitive3Policy(
                    calibrated_params(reluctant_seeds())));
        }));
        rows[6].push_back(lock_cycles_per_op(p, iters, think, seed, [] {
            return std::make_shared<ReactiveCal>(
                ReactiveLockParams{},
                CalibratedCompetitive3Policy(calibrated_params(eager_seeds())));
        }));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";

    CrossoverTable table(title, "spinlock", regime, procs);
    for (std::size_t i = 0; i < names.size(); ++i)
        table.row(names[i], std::move(rows[i]), /*is_static=*/i < 2);
    table.emit(&g_records,
               {"cycles per critical section (100-cycle section included);",
                "mis-tuned rows pay for wrong constants, calibrated rows",
                "measure their way back from the same wrong seeds"});
    if (g_check_enabled) {
        // Calibrated-over recovers from the reluctant mis-tuning (row
        // 3), calibrated-under from the trigger-happy one (row 4);
        // both must land within 10% of the best static protocol and
        // never trail their mis-tuned twin by more than the probing
        // budget.
        const std::vector<double> ideal = table.ideal();
        g_failures += table.check_tracks(5, ideal, 1.10, "ideal");
        g_failures += table.check_tracks(6, ideal, 1.10, "ideal");
        g_failures += table.check_tracks(5, table.cells(3), 1.05, names[3]);
        g_failures += table.check_tracks(6, table.cells(4), 1.05, names[4]);
    }
}

// ---- barrier section --------------------------------------------------

using CentralSim = CentralBarrier<sim::SimPlatform>;
using TreeSim = CombiningTreeBarrier<sim::SimPlatform>;
using ReactiveBarSim = ReactiveBarrier<sim::SimPlatform, AlwaysSwitchPolicy>;
using ReactiveBarCal =
    ReactiveBarrier<sim::SimPlatform, CalibratedCompetitive3Policy>;

/// Calibrated-barrier policy params: probe on an episode cadence (a
/// barrier sees far fewer consensus events than a lock sees
/// acquisitions).
CalibratedCompetitive3Policy::Params barrier_policy_params(
    CostEstimator::Params seeds)
{
    CalibratedCompetitive3Policy::Params p;
    p.costs = seeds;
    p.probe_period = 32;
    // Two dormant episodes per probe: the first pays the switch
    // disruption and is discarded by the policy, the second is the
    // steady-state sample.
    p.probe_len = 2;
    return p;
}

/// This figure measures the thesis-style spread-signal configuration
/// (its calibrated rows re-derive thresholds from measured episode
/// *spreads*), which free_monitoring — default-on since the NUMA PR —
/// replaces; every barrier row opts back into the spread path so the
/// table keeps measuring what its notes describe.
ReactiveBarrierParams barrier_params_spread()
{
    ReactiveBarrierParams p;
    p.free_monitoring = false;
    return p;
}

ReactiveBarrierParams barrier_params_calibrated(std::uint32_t seed_scale_num,
                                                std::uint32_t seed_scale_den)
{
    ReactiveBarrierParams p = barrier_params_spread();
    p.calibrate = true;
    p.bunched_cycles_per_arrival =
        p.bunched_cycles_per_arrival * seed_scale_num / seed_scale_den;
    p.contended_rmw_cycles =
        p.contended_rmw_cycles * seed_scale_num / seed_scale_den;
    return p;
}

template <typename B>
double barrier_cycles_per_episode(std::shared_ptr<B> bar, std::uint32_t procs,
                                  std::uint32_t episodes, bool skewed,
                                  std::uint64_t seed)
{
    const std::uint64_t elapsed =
        skewed ? apps::run_barrier_straggler<B>(procs, episodes,
                                                /*straggle=*/30000,
                                                /*compute=*/200, seed, bar)
               : apps::run_barrier_uniform<B>(procs, episodes, /*compute=*/200,
                                              seed, bar);
    return static_cast<double>(elapsed) / episodes;
}

void barrier_regime_table(const char* title, const char* regime, bool skewed,
                          const BenchArgs& args)
{
    std::vector<std::uint32_t> procs =
        args.smoke ? std::vector<std::uint32_t>{4, 8}
                   : std::vector<std::uint32_t>{4, 8, 16, 32};
    if (args.full)
        procs.push_back(64);
    const std::vector<std::string> names{
        "central (static)", "tree (static)", "reactive static-thresholds",
        "calibrated over-seed", "calibrated under-seed"};
    std::vector<std::vector<double>> rows(names.size());
    for (std::uint32_t p : procs) {
        // Long enough that a 10x-wrong-seed convergence transient
        // (tens of episodes) amortizes the way the lock cells'
        // transients do over their thousands of acquisitions.
        const std::uint32_t episodes =
            args.smoke ? 40 : (args.full ? 1920 : 960);
        rows[0].push_back(barrier_cycles_per_episode(
            std::make_shared<CentralSim>(p), p, episodes, skewed, args.seed));
        rows[1].push_back(barrier_cycles_per_episode(
            std::make_shared<TreeSim>(p, 4), p, episodes, skewed, args.seed));
        rows[2].push_back(barrier_cycles_per_episode(
            std::make_shared<ReactiveBarSim>(p, barrier_params_spread()),
            p, episodes, skewed, args.seed));
        rows[3].push_back(barrier_cycles_per_episode(
            std::make_shared<ReactiveBarCal>(
                p, barrier_params_calibrated(10, 1),
                CalibratedCompetitive3Policy(
                    barrier_policy_params(reluctant_seeds()))),
            p, episodes, skewed, args.seed));
        rows[4].push_back(barrier_cycles_per_episode(
            std::make_shared<ReactiveBarCal>(
                p, barrier_params_calibrated(1, 10),
                CalibratedCompetitive3Policy(
                    barrier_policy_params(eager_seeds()))),
            p, episodes, skewed, args.seed));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";

    CrossoverTable table(title, "barrier", regime, procs);
    for (std::size_t i = 0; i < names.size(); ++i)
        table.row(names[i], std::move(rows[i]), /*is_static=*/i < 2);
    table.emit(&g_records,
               {"cycles per episode; calibrated rows start from 10x wrong",
                "threshold and cost seeds and re-derive both from measured",
                "episode spreads and counter-RMW latencies"});
    if (g_check_enabled) {
        // The adaptive baseline is the reactive barrier itself: its gap
        // to ideal is the monitoring cost (the price of adaptivity,
        // see fig_barrier); calibration from 10x-wrong seeds must stay
        // within 10% of the static-threshold reactive barrier.
        g_failures += table.check_tracks(3, table.cells(2), 1.10, names[2]);
        g_failures += table.check_tracks(4, table.cells(2), 1.10, names[2]);
    }
}

// ---- rwlock section ---------------------------------------------------

struct CalRwOver : ReactiveRwLock<sim::SimPlatform, CalibratedCompetitive3Policy> {
    CalRwOver()
        : ReactiveRwLock(ReactiveRwLockParams{},
                         CalibratedCompetitive3Policy(
                             calibrated_params(reluctant_seeds())))
    {
    }
};

struct CalRwUnder
    : ReactiveRwLock<sim::SimPlatform, CalibratedCompetitive3Policy> {
    CalRwUnder()
        : ReactiveRwLock(ReactiveRwLockParams{},
                         CalibratedCompetitive3Policy(
                             calibrated_params(eager_seeds())))
    {
    }
};

void rw_table(const BenchArgs& args)
{
    using SimpleRw = SimpleRwLock<sim::SimPlatform>;
    using QueueRw = QueueRwLock<sim::SimPlatform>;
    using ReactiveRw = ReactiveRwLock<sim::SimPlatform, Competitive3Policy>;

    std::vector<std::uint32_t> procs =
        args.smoke ? std::vector<std::uint32_t>{8}
                   : std::vector<std::uint32_t>{4, 8, 16, 32};
    const std::uint32_t ops = args.smoke ? 200 : (args.full ? 2400 : 1200);

    const std::vector<std::string> names{"simple (static)", "queue (static)",
                                         "reactive tuned",
                                         "calibrated over-seed",
                                         "calibrated under-seed"};
    std::vector<std::vector<double>> rows(names.size());
    for (std::uint32_t p : procs) {
        const auto run = [&](auto tag) {
            using RW = typename decltype(tag)::type;
            return static_cast<double>(
                       apps::run_write_heavy<RW>(p, ops, args.seed)) /
                   (static_cast<double>(p) * ops);
        };
        rows[0].push_back(run(std::type_identity<SimpleRw>{}));
        rows[1].push_back(run(std::type_identity<QueueRw>{}));
        rows[2].push_back(run(std::type_identity<ReactiveRw>{}));
        rows[3].push_back(run(std::type_identity<CalRwOver>{}));
        rows[4].push_back(run(std::type_identity<CalRwUnder>{}));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";

    CrossoverTable table(
        "rwlock: cycles per op, write-heavy mix (25% reads, think 400)",
        "rwlock", "write_heavy", procs);
    for (std::size_t i = 0; i < names.size(); ++i)
        table.row(names[i], std::move(rows[i]), /*is_static=*/i < 2);
    table.emit(&g_records,
               {"writer-side calibration only; readers never touch policy"});
}

// ---- native pinned section --------------------------------------------

void native_tables(const BenchArgs& args)
{
    const std::uint32_t hw = std::thread::hardware_concurrency();
    if (hw < 2) {
        std::cout << "(native section skipped: single-core host)\n";
        return;
    }
    std::atomic<std::uint32_t> pin_failures{0};
    std::vector<std::uint32_t> counts;
    for (std::uint32_t c : {2u, 4u, 8u, hw})
        if (c <= hw && (counts.empty() || counts.back() != c))
            counts.push_back(c);

    using TtsNative = TtsLock<NativePlatform>;
    using McsNative = McsLock<NativePlatform, McsVariant::kFetchStore>;
    using ReactiveNative = ReactiveNodeLock<NativePlatform, Competitive3Policy>;
    using CalibratedNative =
        ReactiveNodeLock<NativePlatform, CalibratedCompetitive3Policy>;

    {
        stats::Table t("locks (native, pinned fixed pool): cycles per "
                       "critical section, hot loop");
        std::vector<std::string> header{"policy"};
        for (std::uint32_t c : counts)
            header.push_back("T=" + std::to_string(c));
        t.header(header);
        std::vector<std::string> names{"tts", "mcs", "reactive tuned",
                                       "calibrated under-seed"};
        std::vector<std::vector<double>> rows(names.size());
        for (std::uint32_t c : counts) {
            ContendedOptions opt;
            opt.threads = c;
            opt.iters_per_thread = args.full ? 200000 : 50000;
            opt.pin_failures = &pin_failures;
            TtsNative tts;
            McsNative mcs;
            ReactiveNative rea;
            CalibratedNative cal(ReactiveLockParams{},
                                 CalibratedCompetitive3Policy(
                                     calibrated_params(eager_seeds())));
            rows[0].push_back(contended_lock_cycles_per_op(tts, opt));
            rows[1].push_back(contended_lock_cycles_per_op(mcs, opt));
            rows[2].push_back(contended_lock_cycles_per_op(rea, opt));
            rows[3].push_back(contended_lock_cycles_per_op(cal, opt));
            std::cerr << "." << std::flush;
        }
        std::cerr << "\n";
        for (std::size_t i = 0; i < names.size(); ++i) {
            std::vector<std::string> cells{names[i]};
            for (std::size_t c = 0; c < counts.size(); ++c) {
                cells.push_back(stats::fmt(rows[i][c], 0));
                g_records.add("native_spinlock", names[i], counts[c], "hot",
                              rows[i][c]);
            }
            t.row(cells);
        }
        t.note("TSC cycles; threads pinned round-robin "
               "(pin_current_thread), one fixed pool per cell");
        t.print();
    }

    for (const bool skewed : {false, true}) {
        stats::Table t(skewed ? std::string("barrier (native, pinned fixed "
                                            "pool): cycles per episode, "
                                            "straggler")
                              : std::string("barrier (native, pinned fixed "
                                            "pool): cycles per episode, "
                                            "bunched"));
        std::vector<std::string> header{"policy"};
        for (std::uint32_t c : counts)
            header.push_back("T=" + std::to_string(c));
        t.header(header);
        const std::uint64_t straggle = skewed ? 200000 : 0;
        std::vector<std::string> names{"central", "tree", "reactive",
                                       "calibrated"};
        std::vector<std::vector<double>> rows(names.size());
        for (std::uint32_t c : counts) {
            ContendedOptions opt;
            opt.threads = c;
            opt.iters_per_thread =
                skewed ? (args.full ? 2000 : 500) : (args.full ? 20000 : 5000);
            opt.pin_failures = &pin_failures;
            CentralBarrier<NativePlatform> central(c);
            CombiningTreeBarrier<NativePlatform> tree(c, 4);
            ReactiveBarrier<NativePlatform> rea(c, barrier_params_spread());
            ReactiveBarrierParams cal_params = barrier_params_spread();
            cal_params.calibrate = true;
            ReactiveBarrier<NativePlatform, CalibratedCompetitive3Policy> cal(
                c, cal_params,
                CalibratedCompetitive3Policy(
                    barrier_policy_params(CostEstimator::Params{})));
            rows[0].push_back(
                contended_barrier_cycles_per_episode(central, opt, straggle));
            rows[1].push_back(
                contended_barrier_cycles_per_episode(tree, opt, straggle));
            rows[2].push_back(
                contended_barrier_cycles_per_episode(rea, opt, straggle));
            rows[3].push_back(
                contended_barrier_cycles_per_episode(cal, opt, straggle));
            std::cerr << "." << std::flush;
        }
        std::cerr << "\n";
        for (std::size_t i = 0; i < names.size(); ++i) {
            std::vector<std::string> cells{names[i]};
            for (std::size_t c = 0; c < counts.size(); ++c) {
                cells.push_back(stats::fmt(rows[i][c], 0));
                g_records.add("native_barrier", names[i], counts[c],
                              skewed ? "straggler" : "bunched", rows[i][c]);
            }
            t.row(cells);
        }
        t.note("TSC cycles; fixed pool + pinning replaces the");
        t.note("scheduler-placed google-benchmark threads (ROADMAP item)");
        t.print();
    }
    if (pin_failures.load() > 0)
        std::cout << "WARNING: " << pin_failures.load()
                  << " pin attempt(s) failed (restricted cpuset or no "
                     "affinity API) — the native tables above are "
                     "partially scheduler-placed, not pinned\n";
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    start_trace(args);
    // Smoke runs are sized for CI wall-clock, far below the policies'
    // convergence horizon; their tables are exercise, not evidence.
    g_check_enabled = !args.smoke;

    lock_regime_table(
        "spinlock: cycles per critical section, hot loop (no think time)",
        "hot", /*think=*/0, args);
    lock_regime_table(
        "spinlock: cycles per critical section, think U[0,500)", "think500",
        /*think=*/500, args);
    if (!args.smoke)
        lock_regime_table(
            "spinlock: cycles per critical section, light load U[0,5000)",
            "light", /*think=*/5000, args);

    barrier_regime_table(
        "barrier: cycles per episode, bunched arrivals (compute ~200)",
        "bunched", /*skewed=*/false, args);
    if (!args.smoke)
        barrier_regime_table(
            "barrier: cycles per episode, straggler arrivals (straggle 30k)",
            "straggler", /*skewed=*/true, args);

    rw_table(args);

    if (args.native)
        native_tables(args);

    if (!g_records.write("BENCH_calibration.json")) {
        std::cerr << "failed to write BENCH_calibration.json\n";
        return 1;
    }
    std::cout << "\nwrote BENCH_calibration.json (" << g_records.size()
              << " records)\n";
    g_failures += finish_trace(args);
    if (g_failures > 0) {
        std::cout << g_failures << " envelope check(s) FAILED\n";
        return 1;
    }
    std::cout << "all calibration envelope checks passed (calibrated within "
                 "10% of best static, never worse than mis-tuned)\n";
    return 0;
}
