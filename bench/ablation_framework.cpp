/**
 * @file
 * Ablation: the consensus-object design vs the naive lock-guarded
 * protocol-object framework (Figure 3.7), and the optimistic test&set
 * fast path (Section 3.7.3) on vs off.
 *
 * The thesis argues the naive framework is impractical because it adds
 * a lock acquisition to every operation and serializes protocol
 * executions; this harness quantifies both effects on the simulated
 * machine, plus the latency the fast path saves at zero contention.
 */
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/protocol_object.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

/// Counter protocol for the naive framework (state = the counter). The
/// guard lock's coherence traffic dominates; the variable update is
/// modelled as a fixed local cost.
struct CounterProtocol {
    using Op = FetchOpValue;
    using Result = FetchOpValue;
    FetchOpValue value = 0;
    Result run(Op delta)
    {
        const FetchOpValue prior = value;
        value = prior + delta;
        sim::delay(4);  // read-modify-write of the (owned) variable
        return prior;
    }
    void update() {}
};

using NaivePO = LockedProtocolObject<sim::SimPlatform, CounterProtocol>;

double naive_framework_overhead(std::uint32_t procs, bool full,
                                std::uint64_t seed)
{
    const std::uint32_t iters = baseline_iters(procs, full);
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto a = std::make_shared<NaivePO>(true);
    auto b = std::make_shared<NaivePO>(false);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            ProtocolManager<NaivePO, NaivePO> mgr(*a, *b);
            for (std::uint32_t i = 0; i < iters; ++i) {
                mgr.do_synch_op(1);
                sim::delay(sim::random_below(500));
            }
        });
    }
    m.run();
    return static_cast<double>(m.elapsed()) /
               (static_cast<double>(procs) * iters) -
           250.0 / procs;
}

struct ReactiveNoFastPath : ReactiveNodeLock<sim::SimPlatform> {
    ReactiveNoFastPath()
        : ReactiveNodeLock([] {
              ReactiveLockParams p;
              p.optimistic_tts = false;
              return p;
          }())
    {
    }
};

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const std::vector<std::uint32_t> procs{1, 2, 8, 32};

    {
        stats::Table t(
            "Ablation A: naive lock-guarded framework (Fig 3.7) vs "
            "consensus-object reactive fetch-and-op — overhead cycles/op");
        std::vector<std::string> header{"implementation"};
        for (std::uint32_t p : procs)
            header.push_back("P=" + std::to_string(p));
        t.header(header);

        std::vector<std::string> naive{"naive framework"},
            reactive_row{"consensus objects"};
        for (std::uint32_t p : procs) {
            naive.push_back(stats::fmt(
                naive_framework_overhead(p, args.full, args.seed), 0));
            reactive_row.push_back(stats::fmt(
                fetchop_overhead<ReactiveFetchOpSim>(
                    p, args.full, sim::CostModel::alewife(), args.seed),
                0));
            std::cerr << "." << std::flush;
        }
        t.row(naive);
        t.row(reactive_row);
        t.note("the naive framework pays a guard-lock acquisition per op");
        t.note("and serializes protocol executions (Section 3.2.4)");
        t.print();
    }
    {
        stats::Table t(
            "Ablation B: optimistic test&set fast path (Section 3.7.3) — "
            "lock overhead cycles per critical section");
        std::vector<std::string> header{"variant"};
        for (std::uint32_t p : procs)
            header.push_back("P=" + std::to_string(p));
        t.header(header);
        std::vector<std::string> on{"fast path on"}, off{"fast path off"};
        for (std::uint32_t p : procs) {
            on.push_back(stats::fmt(
                spinlock_overhead<ReactiveSim>(p, args.full,
                                               sim::CostModel::alewife(),
                                               args.seed),
                0));
            off.push_back(stats::fmt(
                spinlock_overhead<ReactiveNoFastPath>(
                    p, args.full, sim::CostModel::alewife(), args.seed),
                0));
            std::cerr << "." << std::flush;
        }
        std::cerr << "\n";
        t.row(on);
        t.row(off);
        t.note("the fast path saves the mode-variable read at P=1 and");
        t.note("prefetches the lock line; costs little under contention");
        t.print();
    }
    return 0;
}
