/**
 * @file
 * Reproduces Table 4.1: the cost breakdown of blocking a thread. The
 * simulator charges exactly these components (unload at block time,
 * reenable charged to the waker, reload at reschedule); the measurement
 * below recovers the total from a block/wake microbenchmark to confirm
 * the configuration adds up to the ~500-cycle B the analysis uses.
 */
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace reactive;
using namespace reactive::bench;

int main()
{
    const sim::CostModel cm = sim::CostModel::alewife();

    stats::Table t("Table 4.1: cost of blocking (simulated Alewife)");
    t.header({"component", "cycles"});
    t.row({"unload (save registers, enqueue, book-keeping)",
           std::to_string(cm.thread_unload)});
    t.row({"reenable (lock blocked queue, move to ready)",
           std::to_string(cm.thread_reenable)});
    t.row({"reload (restore registers, book-keeping)",
           std::to_string(cm.thread_reload)});
    t.row({"total B", std::to_string(cm.blocking_cost())});

    // Measure: the wakee's processor pays unload before the block and
    // reload at resume; the waker pays reenable.
    sim::Machine m(2, cm);
    auto q = std::make_shared<sim::SimWaitQueue>();
    auto flag = std::make_shared<sim::Atomic<int>>(0);
    auto waiter_busy = std::make_shared<std::uint64_t>(0);
    m.spawn(0, [=] {
        const std::uint64_t t0 = sim::now();
        std::uint32_t e = q->prepare_wait();
        if (flag->load() == 0)
            q->commit_wait(e);
        else
            q->cancel_wait();
        // Processor-time actually spent on the block path: total time
        // minus the time spent suspended (wake happened at ~5000).
        *waiter_busy = (sim::now() - t0) - 5000;
    });
    m.spawn(1, [=] {
        sim::delay(5000);
        flag->store(1);
        q->notify_one();
    });
    m.run();
    t.note("measured block-path processor cycles (unload+reload+queue "
           "ops, excluding suspension): ~" +
           std::to_string(*waiter_busy));
    t.note("thesis: 219 base cycles, ~500 measured with cache misses");
    t.print();
    return 0;
}
