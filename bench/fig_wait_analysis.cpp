/**
 * @file
 * Reproduces Figures 4.4 and 4.5: expected competitive factors of
 * waiting algorithms under exponentially and uniformly distributed
 * waiting times (analytic, from the Section 4.4/4.5 cost model), and
 * the optimal static Lpoll values of Section 4.5.
 */
#include <iostream>

#include "stats/table.hpp"
#include "theory/waiting_cost.hpp"

using namespace reactive;
using namespace reactive::theory;

namespace {

template <typename Dist>
void factor_table(const char* title, const char* xlabel)
{
    WaitCosts costs{500.0, 1.0};
    const double a_star = std::is_same_v<Dist, ExponentialWait>
                              ? exponential_optimal_alpha()
                              : optimal_alpha<UniformWait>(costs);
    stats::Table t(title);
    t.header({xlabel, "always-block", "2phase a=1", "2phase a=0.5",
              std::string("2phase a*=") + stats::fmt(a_star, 3)});
    for (double scale :
         {0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 50.0}) {
        Dist w;
        if constexpr (std::is_same_v<Dist, ExponentialWait>)
            w.mean = scale * costs.block_cost;
        else
            w.upper = scale * costs.block_cost;
        // always-block = two-phase with alpha = 0.
        t.row({stats::fmt(scale, 2),
               stats::fmt(expected_factor(w, 0.0, costs), 3),
               stats::fmt(expected_factor(w, 1.0, costs), 3),
               stats::fmt(expected_factor(w, 0.5, costs), 3),
               stats::fmt(expected_factor(w, a_star, costs), 3)});
    }
    t.note("worst case over the adversary's parameter:");
    t.note("  alpha=1   -> " +
           stats::fmt(worst_case_factor<Dist>(1.0, costs), 3));
    t.note("  alpha=0.5 -> " +
           stats::fmt(worst_case_factor<Dist>(0.5, costs), 3));
    t.note("  alpha*    -> " +
           stats::fmt(worst_case_factor<Dist>(a_star, costs), 3));
    t.print();
}

}  // namespace

int main()
{
    factor_table<ExponentialWait>(
        "Fig 4.4: expected competitive factors, exponential waiting times",
        "mean wait / B");
    factor_table<UniformWait>(
        "Fig 4.5: expected competitive factors, uniform waiting times",
        "max wait / B");

    WaitCosts costs{500.0, 1.0};
    stats::Table t("Section 4.5: optimal static Lpoll");
    t.header({"distribution", "alpha* (analysis)", "alpha* (numeric)",
              "competitive factor"});
    t.row({"exponential", stats::fmt(exponential_optimal_alpha(), 4),
           stats::fmt(optimal_alpha<ExponentialWait>(costs), 4),
           stats::fmt(worst_case_factor<ExponentialWait>(
                          exponential_optimal_alpha(), costs),
                      3)});
    const double ua = optimal_alpha<UniformWait>(costs);
    t.row({"uniform", "~0.62", stats::fmt(ua, 4),
           stats::fmt(worst_case_factor<UniformWait>(ua, costs), 3)});
    t.note("thesis: ln(e-1)=0.5413 -> 1.58-competitive (exp);");
    t.note("0.62 -> 1.62-competitive (uniform); on-line bound is 1.58");
    t.print();
    return 0;
}
