/**
 * @file
 * Reproduces Figure 3.23: the time-varying contention test with
 * hysteresis-based switching policies, Hysteresis(20,55) /
 * Hysteresis(500,4) / Hysteresis(4,500) per Section 3.5.5.
 */
#include <iostream>

#include "time_varying.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

template <std::uint32_t X, std::uint32_t Y>
struct ReactiveHysteresis : ReactiveNodeLock<sim::SimPlatform, HysteresisPolicy> {
    ReactiveHysteresis()
        : ReactiveNodeLock(ReactiveLockParams{}, HysteresisPolicy(X, Y))
    {
    }
};

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    std::vector<std::pair<std::string, TvRunFn>> algos{
        {"test&set (backoff)", &run_time_varying<TasSim>},
        {"mcs queue", &run_time_varying<McsSim>},
        {"hysteresis(20,55)", &run_time_varying<ReactiveHysteresis<20, 55>>},
        {"hysteresis(500,4)", &run_time_varying<ReactiveHysteresis<500, 4>>},
        {"hysteresis(4,500)", &run_time_varying<ReactiveHysteresis<4, 500>>},
    };
    print_time_varying_tables(
        "Fig 3.23 time-varying contention, hysteresis policies", algos,
        args);
    std::cout << "\nnote: paper finding: hysteresis pays constant monitoring"
                 "\noverhead even in the optimal protocol; (4,500), which"
                 "\nfavors MCS, is the best of the three settings\n";
    return 0;
}
