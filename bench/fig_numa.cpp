/**
 * @file
 * NUMA crossover tables (new in this reproduction): the evaluation the
 * two-level simulator cost model exists for. Every cell runs on a
 * socketed `sim::Machine` (`sim::Topology`), where a remote miss whose
 * source copy lives on another socket pays `cross_socket_extra` and
 * cross-socket invalidations pay per-sharer extras — the intra- vs
 * cross-domain distinction RMR-style analyses draw, which a flat cost
 * model cannot express.
 *
 * Two table families, swept over sockets x P:
 *
 *  - **Barrier** (bunched arrivals): centralized counter, topology-
 *    blind fan-in-4 combining tree, topology-aware tree (leaves
 *    assigned by socket, fan-in groups never straddle a socket;
 *    combining_tree_barrier.hpp), dissemination, and the reactive
 *    3-protocol barrier whose tree slot is topology-aware.
 *  - **Lock** (hot handoff regime, plus a light-contention regime for
 *    the reactive row's other side): TTS, topology-blind MCS, the
 *    cohort queue (core/cohort_queue.hpp, default B=4), and the
 *    reactive lock running TTS vs the cohort queue under the
 *    calibrated competitive policy.
 *
 * In-binary acceptance checks (exit nonzero on failure; disabled under
 * --smoke, whose runs sit below the policies' convergence horizon):
 *
 *  - flat (sockets=1) cells: the topology-aware tree is *identical* to
 *    the blind tree (same construction, deterministic sim), and the
 *    cohort queue ties MCS within 2% (its flat degeneration does MCS's
 *    per-grant work plus one predicate);
 *  - cross-socket (sockets>=2) cells: the topology-aware variants never
 *    lose more than 2% anywhere and win by >=3% in at least two thirds
 *    of the cells. The known near-tie this tolerance exists for is the
 *    cohort queue at 16+ waiters per socket (S=2, P=32): the per-batch
 *    global-handoff chain (~3 sequential cross transfers per B+1
 *    grants) costs about what blind MCS's falling per-grant cross rate
 *    still pays — see DESIGN.md;
 *  - the reactive rows track the per-column best static within 10%
 *    everywhere, as in fig_barrier/fig_calibration.
 *
 * All cells land in BENCH_numa.json for the CI tolerance diff
 * (blocking, like the calibration and barrier tables), annotated with
 * the simulator's cross-socket traffic counters per cell.
 */
#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/workloads.hpp"
#include "barrier/central_barrier.hpp"
#include "barrier/combining_tree_barrier.hpp"
#include "barrier/dissemination_barrier.hpp"
#include "barrier/reactive_barrier.hpp"
#include "bench_common.hpp"
#include "core/cohort_queue.hpp"
#include "core/protocol_set.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

JsonRecords g_records;
int g_failures = 0;

using CentralSim = CentralBarrier<SimPlatform>;
using TreeSim = CombiningTreeBarrier<SimPlatform>;
using DissemSim = DisseminationBarrier<SimPlatform>;
using Barrier3SetSim = ProtocolSet<CentralSim, TreeSim, DissemSim>;
using Reactive3Sim =
    ReactiveBarrier<SimPlatform, CalibratedLadderPolicy, Barrier3SetSim>;

using CohortSim = CohortQueue<SimPlatform>;
using TtsNodeSim = TtsLock<SimPlatform>;
using McsNodeSim = McsLock<SimPlatform, McsVariant::kFetchStore>;
using ReactiveCohortSim = ReactiveNodeLock<SimPlatform,
                                           CalibratedCompetitive3Policy,
                                           CohortSim>;

/// NodeLock facade over the standalone (valid) cohort queue, for the
/// shared lock kernel.
class CohortNodeLock {
  public:
    using Node = CohortSim::Node;
    explicit CohortNodeLock(CohortSim::Params p)
        : q_(/*initially_valid=*/true, p)
    {
    }
    void lock(Node& n) { (void)q_.acquire(n); }
    void unlock(Node& n) { q_.release(n); }

  private:
    CohortSim q_;
};

std::vector<std::uint32_t> numa_procs(const BenchArgs& args)
{
    if (args.smoke)
        return {8};
    return {8, 16, 32};
}

std::vector<std::uint32_t> numa_sockets(const BenchArgs& args)
{
    if (args.smoke)
        return {1, 2};
    return {1, 2, 4};
}

/// The "beat the blind variant" acceptance: on cross-socket machines
/// the topology-aware row must never lose more than 2% in any cell
/// and must win by at least 3% in two thirds of them; on the flat
/// machine the two must tie within @p flat_tol (0 = exactly equal).
void check_topo_vs_blind(const char* what, std::uint32_t sockets,
                         const std::vector<std::uint32_t>& procs,
                         const std::vector<double>& blind,
                         const std::vector<double>& topo, double flat_tol)
{
    if (sockets == 1) {
        for (std::size_t c = 0; c < procs.size(); ++c) {
            const double rel = blind[c] != 0.0
                                   ? std::abs(topo[c] - blind[c]) / blind[c]
                                   : 0.0;
            if (rel > flat_tol) {
                ++g_failures;
                std::cout << "  CHECK FAIL [" << what << " S=1 P="
                          << procs[c] << "]: flat topo-aware "
                          << stats::fmt(topo[c], 1) << " vs blind "
                          << stats::fmt(blind[c], 1)
                          << " (must tie within "
                          << stats::fmt(flat_tol * 100, 1) << "%)\n";
            }
        }
        return;
    }
    std::size_t wins = 0;
    for (std::size_t c = 0; c < procs.size(); ++c) {
        if (topo[c] <= blind[c] * 0.97)
            ++wins;
        if (topo[c] > blind[c] * 1.02) {
            ++g_failures;
            std::cout << "  CHECK FAIL [" << what << " S=" << sockets
                      << " P=" << procs[c] << "]: topo-aware "
                      << stats::fmt(topo[c], 1) << " > 1.02 * blind "
                      << stats::fmt(blind[c], 1) << "\n";
        }
    }
    if (3 * wins < 2 * procs.size()) {
        ++g_failures;
        std::cout << "  CHECK FAIL [" << what << " S=" << sockets
                  << "]: topology-aware wins >=3% in only " << wins << "/"
                  << procs.size() << " cells (need two thirds)\n";
    }
}

// ---- barrier tables ----------------------------------------------------

CalibratedLadderPolicy::Params ladder3_params()
{
    CalibratedLadderPolicy::Params p;
    p.protocols = 3;
    p.probe_period = 8;
    p.probe_backoff_cap = 7;
    p.probe_len = 2;
    return p;
}

ReactiveBarrierParams reactive_topo_params(std::uint32_t sockets)
{
    ReactiveBarrierParams p;  // free monitoring (the default)
    p.sockets = sockets;
    return p;
}

template <typename B>
double barrier_cell(std::shared_ptr<B> bar, std::uint32_t procs,
                    std::uint32_t sockets, std::uint32_t episodes,
                    std::uint64_t seed, sim::MachineStats* stats_out)
{
    const std::uint64_t elapsed = apps::run_barrier_uniform<B>(
        procs, episodes, /*compute=*/200, seed, std::move(bar),
        sim::Topology{sockets, 0}, stats_out);
    return static_cast<double>(elapsed) / episodes;
}

void barrier_table(std::uint32_t sockets, const BenchArgs& args)
{
    const auto procs = numa_procs(args);
    const std::uint32_t episodes = args.smoke ? 40 : 900;
    const std::string bench = "numa_barrier_s" + std::to_string(sockets);
    CrossoverTable table("barrier (NUMA sim, " + std::to_string(sockets) +
                             " socket(s)): cycles per episode, bunched "
                             "arrivals",
                         bench, "bunched", procs, "P=", "algorithm");
    std::vector<std::vector<double>> rows(5);
    std::vector<std::vector<sim::MachineStats>> traffic(5);
    const auto cell_stats = [&](std::size_t r) {
        traffic[r].emplace_back();
        return &traffic[r].back();
    };
    for (std::uint32_t p : procs) {
        rows[0].push_back(barrier_cell(std::make_shared<CentralSim>(p), p,
                                       sockets, episodes, args.seed,
                                       cell_stats(0)));
        rows[1].push_back(barrier_cell(std::make_shared<TreeSim>(p, 4u), p,
                                       sockets, episodes, args.seed,
                                       cell_stats(1)));
        rows[2].push_back(barrier_cell(
            std::make_shared<TreeSim>(p, 4u, false, sockets, 0u), p,
            sockets, episodes, args.seed, cell_stats(2)));
        rows[3].push_back(barrier_cell(std::make_shared<DissemSim>(p), p,
                                       sockets, episodes, args.seed,
                                       cell_stats(3)));
        rows[4].push_back(barrier_cell(
            std::make_shared<Reactive3Sim>(
                p, reactive_topo_params(sockets),
                CalibratedLadderPolicy(ladder3_params())),
            p, sockets, episodes, args.seed, cell_stats(4)));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.row("central (counter)", rows[0], /*is_static=*/true, traffic[0]);
    table.row("tree blind (fan-in 4)", rows[1], /*is_static=*/true,
              traffic[1]);
    table.row("tree topology-aware", rows[2], /*is_static=*/true,
              traffic[2]);
    table.row("dissemination", rows[3], /*is_static=*/true, traffic[3]);
    table.row("reactive 3-protocol (topo tree)", rows[4], false, traffic[4]);
    table.emit(&g_records,
               {"two-level cost model: cross-socket fetches pay "
                "cross_socket_extra;",
                "the topology-aware tree keeps every fan-in group inside "
                "one socket,",
                "so only its top levels cross — at sockets=1 the two "
                "trees are the",
                "same object and their cells must be identical"});
    if (!args.smoke) {
        check_topo_vs_blind("numa_barrier/tree", sockets, procs, rows[1],
                            rows[2], /*flat_tol=*/0.0);
        g_failures += table.check_tracks(4, table.ideal(), 1.10, "ideal");
    }
}

// ---- lock tables -------------------------------------------------------

CohortSim::Params cohort_params(std::uint32_t sockets)
{
    CohortSim::Params p;
    p.sockets = sockets;  // cohort_limit stays the default B=4
    return p;
}

template <typename L>
double lock_cell(std::shared_ptr<L> lock, std::uint32_t procs,
                 std::uint32_t sockets, std::uint32_t iters,
                 std::uint32_t think, std::uint64_t seed,
                 sim::MachineStats* stats_out)
{
    const std::uint64_t elapsed = apps::run_lock_cycle<L>(
        procs, iters, /*cs=*/100, think, seed, std::move(lock),
        sim::Topology{sockets, 0}, stats_out);
    return static_cast<double>(elapsed) /
           (static_cast<double>(procs) * iters);
}

void lock_table(std::uint32_t sockets, bool hot, const BenchArgs& args)
{
    const auto procs = numa_procs(args);
    const std::uint32_t iters = args.smoke ? 60 : 400;
    const char* regime = hot ? "hot" : "light";
    const std::string bench = "numa_lock_s" + std::to_string(sockets);
    CrossoverTable table("lock (NUMA sim, " + std::to_string(sockets) +
                             " socket(s)): cycles per acquisition, " +
                             regime + " regime",
                         bench, regime, procs, "P=", "algorithm");
    std::vector<std::vector<double>> rows(4);
    std::vector<std::vector<sim::MachineStats>> traffic(4);
    const auto cell_stats = [&](std::size_t r) {
        traffic[r].emplace_back();
        return &traffic[r].back();
    };
    for (std::uint32_t p : procs) {
        // Hot: every release finds waiters — the handoff-locality
        // regime the cohort protocol targets. Light: think time scales
        // with P so the lock stays mostly free at every column — TTS
        // territory, exercised so the reactive row is checked on both
        // sides of the crossover.
        const std::uint32_t think = hot ? 200 : 2000 * p;
        rows[0].push_back(lock_cell(std::make_shared<TtsNodeSim>(), p,
                                    sockets, iters, think, args.seed,
                                    cell_stats(0)));
        rows[1].push_back(lock_cell(std::make_shared<McsNodeSim>(), p,
                                    sockets, iters, think, args.seed,
                                    cell_stats(1)));
        rows[2].push_back(
            lock_cell(std::make_shared<CohortNodeLock>(cohort_params(sockets)),
                      p, sockets, iters, think, args.seed, cell_stats(2)));
        rows[3].push_back(lock_cell(
            std::make_shared<ReactiveCohortSim>(
                ReactiveLockParams{}, CalibratedCompetitive3Policy{},
                cohort_params(sockets)),
            p, sockets, iters, think, args.seed, cell_stats(3)));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.row("tts", rows[0], /*is_static=*/true, traffic[0]);
    table.row("mcs blind", rows[1], /*is_static=*/true, traffic[1]);
    table.row("cohort queue (B=4)", rows[2], /*is_static=*/true, traffic[2]);
    table.row("reactive (tts <-> cohort)", rows[3], false, traffic[3]);
    table.emit(&g_records,
               {"cohort handoff grants within the holder's socket for at "
                "most B=4",
                "consecutive grants, then releases the global queue "
                "(remote waiters",
                "acquire within B+1 grants of their global enqueue — "
                "property-tested)"});
    if (!args.smoke) {
        if (hot)
            check_topo_vs_blind("numa_lock/cohort", sockets, procs,
                                rows[1], rows[2], /*flat_tol=*/0.02);
        g_failures += table.check_tracks(3, table.ideal(), 1.10, "ideal");
    }
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    start_trace(args);

    for (std::uint32_t s : numa_sockets(args))
        barrier_table(s, args);
    for (std::uint32_t s : numa_sockets(args)) {
        lock_table(s, /*hot=*/true, args);
        lock_table(s, /*hot=*/false, args);
    }

    if (!g_records.write("BENCH_numa.json")) {
        std::cerr << "failed to write BENCH_numa.json\n";
        return 1;
    }
    std::cout << "\nwrote BENCH_numa.json (" << g_records.size()
              << " records)\n";
    g_failures += finish_trace(args);
    if (g_failures > 0) {
        std::cout << g_failures << " NUMA crossover check(s) FAILED\n";
        return 1;
    }
    if (!args.smoke)
        std::cout << "NUMA crossover checks passed (topology-aware beats "
                     "blind cross-socket, ties flat; reactive within 10% "
                     "of best static)\n";
    return 0;
}
