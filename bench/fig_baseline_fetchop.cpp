/**
 * @file
 * Reproduces Figure 3.2 (right) / Figure 3.15 (right): baseline
 * fetch-and-op overhead versus contending processors for the TTS-lock
 * counter, the MCS-lock counter, the software combining tree, and the
 * reactive fetch-and-op, plus the best-static "ideal".
 */
#include <iostream>

#include "bench_common.hpp"

using namespace reactive;
using namespace reactive::bench;

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    stats::Table t(
        "Fig 3.2 / 3.15 (fetch-and-op): overhead cycles per operation vs "
        "contending processors");
    std::vector<std::string> header{"algorithm"};
    for (std::uint32_t p : baseline_procs(args.full))
        header.push_back("P=" + std::to_string(p));
    t.header(header);

    std::vector<std::string> names{"tts-lock counter", "queue-lock counter",
                                   "combining tree", "reactive"};
    std::vector<std::vector<double>> rows(names.size());
    for (std::uint32_t p : baseline_procs(args.full)) {
        rows[0].push_back(
            fetchop_overhead<TtsFetchOpSim>(p, args.full,
                                            sim::CostModel::alewife(),
                                            args.seed));
        rows[1].push_back(
            fetchop_overhead<QueueFetchOpSim>(p, args.full,
                                              sim::CostModel::alewife(),
                                              args.seed));
        rows[2].push_back(
            fetchop_overhead<TreeFetchOpSim>(p, args.full,
                                             sim::CostModel::alewife(),
                                             args.seed));
        rows[3].push_back(
            fetchop_overhead<ReactiveFetchOpSim>(p, args.full,
                                                 sim::CostModel::alewife(),
                                                 args.seed));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";

    for (std::size_t i = 0; i < names.size(); ++i) {
        std::vector<std::string> cells{names[i]};
        for (double v : rows[i])
            cells.push_back(stats::fmt(v, 0));
        t.row(cells);
    }
    std::vector<std::string> ideal{"ideal (best static)"};
    for (std::size_t c = 0; c < rows[0].size(); ++c) {
        double best = rows[0][c];
        for (std::size_t i = 1; i < 3; ++i)
            best = std::min(best, rows[i][c]);
        ideal.push_back(stats::fmt(best, 0));
    }
    t.row(ideal);
    t.note("paper shape: lock-based cheapest at low P, combining tree");
    t.note("amortizes under contention (overhead drops as P grows),");
    t.note("reactive follows the lower envelope");
    t.print();
    return 0;
}
