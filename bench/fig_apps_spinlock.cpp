/**
 * @file
 * Reproduces Figure 3.25: execution times of the spin-lock applications
 * (MP3D at two problem sizes, Cholesky kernel) under test&set, MCS, and
 * the reactive lock, normalized to the best algorithm.
 */
#include <iostream>

#include "apps/workloads.hpp"
#include "bench_common.hpp"

using namespace reactive;
using namespace reactive::bench;

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    const std::vector<std::uint32_t> procs =
        args.full ? std::vector<std::uint32_t>{16, 64}
                  : std::vector<std::uint32_t>{8, 32};

    stats::Table t(
        "Fig 3.25 (spin-lock applications): execution time normalized to "
        "the best algorithm");
    t.header({"app", "test&set", "mcs", "reactive"});

    auto row = [&](const std::string& name, auto runner) {
        const auto tas =
            static_cast<double>(runner(std::type_identity<TasSim>{}));
        const auto mcs =
            static_cast<double>(runner(std::type_identity<McsSim>{}));
        const auto rea =
            static_cast<double>(runner(std::type_identity<ReactiveSim>{}));
        const double best = std::min({tas, mcs, rea});
        t.row({name, stats::fmt(tas / best, 2), stats::fmt(mcs / best, 2),
               stats::fmt(rea / best, 2)});
        std::cerr << "." << std::flush;
    };

    for (std::uint32_t p : procs) {
        row("mp3d small P=" + std::to_string(p),
            [&]<typename L>(std::type_identity<L>) {
                return apps::run_mp3d<L>(p, 12, 3, 256, args.seed);
            });
        row("mp3d large P=" + std::to_string(p),
            [&]<typename L>(std::type_identity<L>) {
                return apps::run_mp3d<L>(p, 40, 3, 256, args.seed);
            });
        row("cholesky P=" + std::to_string(p),
            [&]<typename L>(std::type_identity<L>) {
                return apps::run_cholesky<L>(p, 30, 128, args.seed);
            });
    }
    std::cerr << "\n";
    t.note("paper shape: MCS latency penalty is negligible at these");
    t.note("grains; test&set suffers on the hot collision lock; the");
    t.note("reactive lock matches the best static choice");
    t.print();
    return 0;
}
