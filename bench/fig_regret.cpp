/**
 * @file
 * Regret figure (new in this reproduction): the empirical competitive
 * ratio — the paper's headline claim as a measured observable.
 *
 * The thesis proves the reactive protocol selection is 3-competitive
 * against the best static choice (Section 3.4); six PRs in, nothing
 * measured how close the implementation actually gets. This figure
 * closes the loop with the offline oracle replay (src/audit/
 * oracle.hpp): a deterministic episode stream is run end-to-end under
 * each static protocol and under the calibrated reactive lock, then
 * re-run per episode under the clairvoyant best (fresh machine, fresh
 * lock, perfect per-episode foresight, zero switch cost) — a lower
 * bound no online algorithm can reach. Each cell reports
 *
 *     empirical competitive ratio = reactive cost / clairvoyant cost
 *
 * over three workload regimes (hot, phase-shifting, bursty) × P, and
 * every ratio is asserted in-binary against the documented slack
 * bound below — nonzero exit on violation, so the claim is
 * continuously regression-tested, not just plotted.
 *
 * Documented bound (kRatioBound = 3.0): the thesis' competitive
 * constant. The oracle's generosity (no switch cost, no carried
 * contention, per-episode restarts) and the harness' episode barriers
 * are *adversarial* slack — they deflate the denominator — so holding
 * the measured ratio under the theoretical constant is a strictly
 * harder test than the theorem states. Observed headroom (~1.1-1.6
 * across cells) is recorded in BENCH_regret.json for tolerance
 * diffing. The reactive row must additionally stay within
 * kStaticSlack of the best *static* whole-stream run — the form of
 * the claim PR 1's crossover tables check at aggregate grain, here
 * per regime cell (with a wider budget on the phase-flip streams —
 * see kStaticSlack).
 *
 * `--trace`/`--metrics` additionally exercise the online regret meter
 * (kRegret events + audit_snapshot()), which CI round-trips through
 * tools/trace_explain.py --regret.
 */
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "audit/oracle.hpp"
#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "core/reactive_mutex.hpp"
#include "stats/table.hpp"

using namespace reactive;
using namespace reactive::bench;

namespace {

JsonRecords g_records;
int g_failures = 0;
bool g_check_enabled = true;

/// The thesis' competitive constant, applied to the *measured* ratio
/// against a strictly stronger adversary (see file comment).
constexpr double kRatioBound = 3.0;

/// Reactive vs best static whole-stream run: 25% adaptivity budget.
/// Looser than fig_calibration's 10%-of-ideal envelope on purpose:
/// that bound is measured over steady regimes, while these streams
/// flip regimes every episode (40 acquisitions/processor — near the
/// policy's switch-amortization horizon), so each flip charges the
/// reactive row a probe + switch round the static row never pays.
/// Observed worst cell ~1.19 (phase_shift, P=32); the steady-regime
/// rows stay within the usual 10%.
constexpr double kStaticSlack = 1.25;

using ReactiveCal =
    ReactiveNodeLock<sim::SimPlatform, CalibratedCompetitive3Policy>;

std::vector<std::uint32_t> regret_procs(const BenchArgs& a)
{
    if (a.smoke)
        return {2, 8};
    return {2, 4, 8, 16, 32};
}

std::size_t regret_episodes(const BenchArgs& a)
{
    if (a.smoke)
        return 8;
    return a.full ? 48 : 24;
}

audit::EpisodeStream make_stream(const std::string& regime,
                                 std::size_t episodes, std::uint64_t seed)
{
    if (regime == "hot")
        return audit::hot_stream(episodes);
    if (regime == "phase_shift")
        return audit::phase_shift_stream(episodes);
    return audit::bursty_stream(episodes, seed);
}

void regime_table(const std::string& regime, const BenchArgs& args)
{
    const auto procs = regret_procs(args);
    const std::size_t episodes = regret_episodes(args);

    const std::vector<std::string> names{"tts (static)", "mcs (static)",
                                         "reactive calibrated",
                                         "clairvoyant oracle"};
    std::vector<std::vector<double>> rows(names.size());
    std::vector<double> ratios;       // reactive / clairvoyant
    std::vector<double> static_gaps;  // reactive / best static

    for (std::uint32_t p : procs) {
        const audit::EpisodeStream stream =
            make_stream(regime, episodes, args.seed);
        std::uint64_t total_iters = 0;
        for (const audit::EpisodeSpec& e : stream)
            total_iters += e.iters;
        const double acqs =
            static_cast<double>(p) * static_cast<double>(total_iters);

        const std::uint64_t tts =
            audit::static_stream_cost<TtsSim>(p, stream, args.seed);
        const std::uint64_t mcs =
            audit::static_stream_cost<McsSim>(p, stream, args.seed);
        const std::uint64_t reactive = audit::run_stream<ReactiveCal>(
            p, stream, args.seed, std::make_shared<ReactiveCal>());
        const std::uint64_t clair =
            audit::clairvoyant_cost<TtsSim, McsSim>(p, stream, args.seed);

        rows[0].push_back(static_cast<double>(tts) / acqs);
        rows[1].push_back(static_cast<double>(mcs) / acqs);
        rows[2].push_back(static_cast<double>(reactive) / acqs);
        rows[3].push_back(static_cast<double>(clair) / acqs);
        ratios.push_back(static_cast<double>(reactive) /
                         static_cast<double>(clair));
        static_gaps.push_back(static_cast<double>(reactive) /
                              static_cast<double>(std::min(tts, mcs)));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";

    CrossoverTable table(("regret: cycles per acquisition, " + regime +
                          " episode stream (" + std::to_string(episodes) +
                          " episodes)")
                             .c_str(),
                         "regret", regime.c_str(), procs);
    for (std::size_t i = 0; i < names.size(); ++i)
        table.row(names[i], std::move(rows[i]), /*is_static=*/i < 2);
    table.emit(&g_records,
               {"clairvoyant = per-episode best static protocol on a fresh",
                "machine (zero switch cost) — a lower bound no online",
                "algorithm can reach; ratio row below is the claim"});

    stats::Table rt(("empirical competitive ratio, " + regime +
                     " (bound " + stats::fmt(kRatioBound, 1) + ")")
                        .c_str());
    std::vector<std::string> header{"ratio"};
    for (std::uint32_t p : procs)
        header.push_back("P=" + std::to_string(p));
    rt.header(header);
    std::vector<std::string> clair_cells{"reactive/clairvoyant"};
    std::vector<std::string> static_cells{"reactive/best-static"};
    for (std::size_t i = 0; i < procs.size(); ++i) {
        clair_cells.push_back(stats::fmt(ratios[i], 3));
        static_cells.push_back(stats::fmt(static_gaps[i], 3));
        g_records.add("regret_ratio", "competitive_ratio", procs[i], regime,
                      ratios[i]);
        g_records.add("regret_ratio", "static_gap", procs[i], regime,
                      static_gaps[i]);
    }
    rt.row(clair_cells);
    rt.row(static_cells);
    rt.note("reactive/clairvoyant must stay under the documented bound;");
    rt.note("reactive/best-static under the phase-flip adaptivity budget");
    rt.print();

    if (g_check_enabled) {
        for (std::size_t i = 0; i < procs.size(); ++i) {
            if (ratios[i] > kRatioBound) {
                std::cout << "REGRET CHECK FAIL: " << regime
                          << " P=" << procs[i] << " competitive ratio "
                          << stats::fmt(ratios[i], 3) << " exceeds bound "
                          << stats::fmt(kRatioBound, 1) << "\n";
                ++g_failures;
            }
            if (static_gaps[i] > kStaticSlack) {
                std::cout << "REGRET CHECK FAIL: " << regime
                          << " P=" << procs[i] << " reactive trails best "
                          << "static by "
                          << stats::fmt(static_gaps[i], 3) << " (> "
                          << stats::fmt(kStaticSlack, 2) << ")\n";
                ++g_failures;
            }
        }
    }
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    start_trace(args);
    // Smoke streams are far below the calibrated policy's convergence
    // horizon; their cells are exercise, not evidence.
    g_check_enabled = !args.smoke;

    for (const char* regime : {"hot", "phase_shift", "bursty"})
        regime_table(regime, args);

    if (!g_records.write("BENCH_regret.json")) {
        std::cerr << "failed to write BENCH_regret.json\n";
        return 1;
    }
    std::cout << "\nwrote BENCH_regret.json (" << g_records.size()
              << " records)\n";
    g_failures += finish_trace(args);
    if (g_failures > 0) {
        std::cout << g_failures << " regret check(s) FAILED\n";
        return 1;
    }
    std::cout << "all regret checks passed (reactive within "
              << stats::fmt(kRatioBound, 1)
              << "x of the clairvoyant oracle and within the "
              << stats::fmt(kStaticSlack, 2)
              << "x adaptivity budget of the best static protocol on "
                 "every cell)\n";
    return 0;
}
