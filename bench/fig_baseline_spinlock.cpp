/**
 * @file
 * Reproduces Figure 1.1 / Figure 3.2 (left) / Figure 3.15 (left):
 * baseline spin-lock overhead versus number of contending processors,
 * for test-and-set (with randomized exponential backoff),
 * test-and-test-and-set (with backoff; also on a full-map DirNNB
 * directory), the MCS queue lock, and the reactive spin lock, plus the
 * per-column best static choice ("ideal").
 */
#include <iostream>

#include "bench_common.hpp"

using namespace reactive;
using namespace reactive::bench;

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    stats::Table t(
        "Fig 1.1 / 3.2 / 3.15 (spin locks): overhead cycles per critical "
        "section vs contending processors");
    std::vector<std::string> header{"algorithm"};
    for (std::uint32_t p : baseline_procs(args.full))
        header.push_back("P=" + std::to_string(p));
    t.header(header);

    std::vector<std::vector<double>> rows;
    std::vector<std::string> names{"test&set (backoff)", "test&test&set",
                                   "tts (DirNNB full-map)", "mcs queue",
                                   "reactive"};
    for (std::size_t i = 0; i < names.size(); ++i)
        rows.emplace_back();

    for (std::uint32_t p : baseline_procs(args.full)) {
        rows[0].push_back(spinlock_overhead<TasSim>(p, args.full,
                                                    sim::CostModel::alewife(),
                                                    args.seed));
        rows[1].push_back(spinlock_overhead<TtsSim>(p, args.full,
                                                    sim::CostModel::alewife(),
                                                    args.seed));
        rows[2].push_back(spinlock_overhead<TtsSim>(p, args.full,
                                                    sim::CostModel::dirnnb(),
                                                    args.seed));
        rows[3].push_back(spinlock_overhead<McsSim>(p, args.full,
                                                    sim::CostModel::alewife(),
                                                    args.seed));
        rows[4].push_back(spinlock_overhead<ReactiveSim>(
            p, args.full, sim::CostModel::alewife(), args.seed));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";

    for (std::size_t i = 0; i < names.size(); ++i) {
        std::vector<std::string> cells{names[i]};
        for (double v : rows[i])
            cells.push_back(stats::fmt(v, 0));
        t.row(cells);
    }
    // Ideal = best static protocol per contention level (Figure 1.1's
    // dashed curve); the reactive lock should track it closely.
    std::vector<std::string> ideal{"ideal (best static)"};
    for (std::size_t c = 0; c < rows[0].size(); ++c) {
        double best = rows[0][c];
        for (std::size_t i = 1; i < 4; ++i)
            best = std::min(best, rows[i][c]);
        ideal.push_back(stats::fmt(best, 0));
    }
    t.row(ideal);
    t.note("paper shape: TTS cheapest at P<=2, MCS flat and best at P>=4,");
    t.note("TAS/TTS blow up with P, reactive tracks the lower envelope");
    t.print();
    return 0;
}
