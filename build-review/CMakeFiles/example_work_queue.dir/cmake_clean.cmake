file(REMOVE_RECURSE
  "CMakeFiles/example_work_queue.dir/examples/work_queue.cpp.o"
  "CMakeFiles/example_work_queue.dir/examples/work_queue.cpp.o.d"
  "example_work_queue"
  "example_work_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_work_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
