# Empty compiler generated dependencies file for example_work_queue.
# This may be replaced when dependencies are built.
