# Empty compiler generated dependencies file for fig_baseline_fetchop.
# This may be replaced when dependencies are built.
