file(REMOVE_RECURSE
  "CMakeFiles/fig_baseline_fetchop.dir/bench/fig_baseline_fetchop.cpp.o"
  "CMakeFiles/fig_baseline_fetchop.dir/bench/fig_baseline_fetchop.cpp.o.d"
  "fig_baseline_fetchop"
  "fig_baseline_fetchop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_baseline_fetchop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
