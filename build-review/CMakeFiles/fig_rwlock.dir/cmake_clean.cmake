file(REMOVE_RECURSE
  "CMakeFiles/fig_rwlock.dir/bench/fig_rwlock.cpp.o"
  "CMakeFiles/fig_rwlock.dir/bench/fig_rwlock.cpp.o.d"
  "fig_rwlock"
  "fig_rwlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_rwlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
