# Empty compiler generated dependencies file for fig_rwlock.
# This may be replaced when dependencies are built.
