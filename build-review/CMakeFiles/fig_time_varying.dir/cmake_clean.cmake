file(REMOVE_RECURSE
  "CMakeFiles/fig_time_varying.dir/bench/fig_time_varying.cpp.o"
  "CMakeFiles/fig_time_varying.dir/bench/fig_time_varying.cpp.o.d"
  "fig_time_varying"
  "fig_time_varying.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_time_varying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
