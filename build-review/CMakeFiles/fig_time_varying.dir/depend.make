# Empty dependencies file for fig_time_varying.
# This may be replaced when dependencies are built.
