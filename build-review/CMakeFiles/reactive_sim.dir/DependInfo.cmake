
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fiber.cpp" "CMakeFiles/reactive_sim.dir/src/sim/fiber.cpp.o" "gcc" "CMakeFiles/reactive_sim.dir/src/sim/fiber.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "CMakeFiles/reactive_sim.dir/src/sim/machine.cpp.o" "gcc" "CMakeFiles/reactive_sim.dir/src/sim/machine.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "CMakeFiles/reactive_sim.dir/src/sim/memory.cpp.o" "gcc" "CMakeFiles/reactive_sim.dir/src/sim/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
