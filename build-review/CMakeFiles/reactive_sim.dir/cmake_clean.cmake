file(REMOVE_RECURSE
  "CMakeFiles/reactive_sim.dir/src/sim/fiber.cpp.o"
  "CMakeFiles/reactive_sim.dir/src/sim/fiber.cpp.o.d"
  "CMakeFiles/reactive_sim.dir/src/sim/machine.cpp.o"
  "CMakeFiles/reactive_sim.dir/src/sim/machine.cpp.o.d"
  "CMakeFiles/reactive_sim.dir/src/sim/memory.cpp.o"
  "CMakeFiles/reactive_sim.dir/src/sim/memory.cpp.o.d"
  "libreactive_sim.a"
  "libreactive_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reactive_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
