# Empty compiler generated dependencies file for reactive_sim.
# This may be replaced when dependencies are built.
