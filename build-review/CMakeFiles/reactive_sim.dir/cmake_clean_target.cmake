file(REMOVE_RECURSE
  "libreactive_sim.a"
)
