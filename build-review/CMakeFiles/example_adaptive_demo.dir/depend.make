# Empty dependencies file for example_adaptive_demo.
# This may be replaced when dependencies are built.
