file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_demo.dir/examples/adaptive_demo.cpp.o"
  "CMakeFiles/example_adaptive_demo.dir/examples/adaptive_demo.cpp.o.d"
  "example_adaptive_demo"
  "example_adaptive_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
