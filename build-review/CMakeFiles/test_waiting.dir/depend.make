# Empty dependencies file for test_waiting.
# This may be replaced when dependencies are built.
