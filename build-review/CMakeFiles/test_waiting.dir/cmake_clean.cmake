file(REMOVE_RECURSE
  "CMakeFiles/test_waiting.dir/tests/test_waiting.cpp.o"
  "CMakeFiles/test_waiting.dir/tests/test_waiting.cpp.o.d"
  "test_waiting"
  "test_waiting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waiting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
