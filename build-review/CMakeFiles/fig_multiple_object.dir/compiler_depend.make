# Empty compiler generated dependencies file for fig_multiple_object.
# This may be replaced when dependencies are built.
