file(REMOVE_RECURSE
  "CMakeFiles/fig_multiple_object.dir/bench/fig_multiple_object.cpp.o"
  "CMakeFiles/fig_multiple_object.dir/bench/fig_multiple_object.cpp.o.d"
  "fig_multiple_object"
  "fig_multiple_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_multiple_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
