file(REMOVE_RECURSE
  "CMakeFiles/ablation_framework.dir/bench/ablation_framework.cpp.o"
  "CMakeFiles/ablation_framework.dir/bench/ablation_framework.cpp.o.d"
  "ablation_framework"
  "ablation_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
