# Empty dependencies file for ablation_framework.
# This may be replaced when dependencies are built.
