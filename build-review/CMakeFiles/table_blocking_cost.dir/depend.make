# Empty dependencies file for table_blocking_cost.
# This may be replaced when dependencies are built.
