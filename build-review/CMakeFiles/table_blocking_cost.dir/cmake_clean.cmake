file(REMOVE_RECURSE
  "CMakeFiles/table_blocking_cost.dir/bench/table_blocking_cost.cpp.o"
  "CMakeFiles/table_blocking_cost.dir/bench/table_blocking_cost.cpp.o.d"
  "table_blocking_cost"
  "table_blocking_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_blocking_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
