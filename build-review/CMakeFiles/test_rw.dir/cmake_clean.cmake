file(REMOVE_RECURSE
  "CMakeFiles/test_rw.dir/tests/test_rw.cpp.o"
  "CMakeFiles/test_rw.dir/tests/test_rw.cpp.o.d"
  "test_rw"
  "test_rw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
