# Empty compiler generated dependencies file for test_rw.
# This may be replaced when dependencies are built.
