file(REMOVE_RECURSE
  "CMakeFiles/fig_policy_hysteresis.dir/bench/fig_policy_hysteresis.cpp.o"
  "CMakeFiles/fig_policy_hysteresis.dir/bench/fig_policy_hysteresis.cpp.o.d"
  "fig_policy_hysteresis"
  "fig_policy_hysteresis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_policy_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
