# Empty compiler generated dependencies file for fig_policy_hysteresis.
# This may be replaced when dependencies are built.
