# Empty compiler generated dependencies file for fig_policy_competitive.
# This may be replaced when dependencies are built.
