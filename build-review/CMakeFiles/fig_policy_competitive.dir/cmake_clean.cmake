file(REMOVE_RECURSE
  "CMakeFiles/fig_policy_competitive.dir/bench/fig_policy_competitive.cpp.o"
  "CMakeFiles/fig_policy_competitive.dir/bench/fig_policy_competitive.cpp.o.d"
  "fig_policy_competitive"
  "fig_policy_competitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_policy_competitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
