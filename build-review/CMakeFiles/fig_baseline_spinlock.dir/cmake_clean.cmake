file(REMOVE_RECURSE
  "CMakeFiles/fig_baseline_spinlock.dir/bench/fig_baseline_spinlock.cpp.o"
  "CMakeFiles/fig_baseline_spinlock.dir/bench/fig_baseline_spinlock.cpp.o.d"
  "fig_baseline_spinlock"
  "fig_baseline_spinlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_baseline_spinlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
