# Empty dependencies file for fig_baseline_spinlock.
# This may be replaced when dependencies are built.
