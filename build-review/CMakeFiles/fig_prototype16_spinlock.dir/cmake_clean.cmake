file(REMOVE_RECURSE
  "CMakeFiles/fig_prototype16_spinlock.dir/bench/fig_prototype16_spinlock.cpp.o"
  "CMakeFiles/fig_prototype16_spinlock.dir/bench/fig_prototype16_spinlock.cpp.o.d"
  "fig_prototype16_spinlock"
  "fig_prototype16_spinlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_prototype16_spinlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
