# Empty compiler generated dependencies file for fig_prototype16_spinlock.
# This may be replaced when dependencies are built.
