# Empty dependencies file for test_fetchop.
# This may be replaced when dependencies are built.
