file(REMOVE_RECURSE
  "CMakeFiles/test_fetchop.dir/tests/test_fetchop.cpp.o"
  "CMakeFiles/test_fetchop.dir/tests/test_fetchop.cpp.o.d"
  "test_fetchop"
  "test_fetchop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fetchop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
