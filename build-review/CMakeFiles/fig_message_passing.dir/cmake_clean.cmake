file(REMOVE_RECURSE
  "CMakeFiles/fig_message_passing.dir/bench/fig_message_passing.cpp.o"
  "CMakeFiles/fig_message_passing.dir/bench/fig_message_passing.cpp.o.d"
  "fig_message_passing"
  "fig_message_passing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_message_passing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
