# Empty compiler generated dependencies file for fig_message_passing.
# This may be replaced when dependencies are built.
