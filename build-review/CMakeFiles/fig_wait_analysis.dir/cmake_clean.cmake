file(REMOVE_RECURSE
  "CMakeFiles/fig_wait_analysis.dir/bench/fig_wait_analysis.cpp.o"
  "CMakeFiles/fig_wait_analysis.dir/bench/fig_wait_analysis.cpp.o.d"
  "fig_wait_analysis"
  "fig_wait_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_wait_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
