# Empty dependencies file for fig_wait_analysis.
# This may be replaced when dependencies are built.
