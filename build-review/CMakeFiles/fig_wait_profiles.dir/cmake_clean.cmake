file(REMOVE_RECURSE
  "CMakeFiles/fig_wait_profiles.dir/bench/fig_wait_profiles.cpp.o"
  "CMakeFiles/fig_wait_profiles.dir/bench/fig_wait_profiles.cpp.o.d"
  "fig_wait_profiles"
  "fig_wait_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_wait_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
