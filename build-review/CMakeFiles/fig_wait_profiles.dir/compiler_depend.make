# Empty compiler generated dependencies file for fig_wait_profiles.
# This may be replaced when dependencies are built.
