file(REMOVE_RECURSE
  "CMakeFiles/example_rw_cache.dir/examples/rw_cache.cpp.o"
  "CMakeFiles/example_rw_cache.dir/examples/rw_cache.cpp.o.d"
  "example_rw_cache"
  "example_rw_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rw_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
