# Empty compiler generated dependencies file for example_rw_cache.
# This may be replaced when dependencies are built.
