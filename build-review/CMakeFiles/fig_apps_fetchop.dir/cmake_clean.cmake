file(REMOVE_RECURSE
  "CMakeFiles/fig_apps_fetchop.dir/bench/fig_apps_fetchop.cpp.o"
  "CMakeFiles/fig_apps_fetchop.dir/bench/fig_apps_fetchop.cpp.o.d"
  "fig_apps_fetchop"
  "fig_apps_fetchop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_apps_fetchop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
