# Empty dependencies file for fig_apps_fetchop.
# This may be replaced when dependencies are built.
