file(REMOVE_RECURSE
  "CMakeFiles/test_locks.dir/tests/test_locks.cpp.o"
  "CMakeFiles/test_locks.dir/tests/test_locks.cpp.o.d"
  "test_locks"
  "test_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
