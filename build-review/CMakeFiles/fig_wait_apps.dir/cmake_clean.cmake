file(REMOVE_RECURSE
  "CMakeFiles/fig_wait_apps.dir/bench/fig_wait_apps.cpp.o"
  "CMakeFiles/fig_wait_apps.dir/bench/fig_wait_apps.cpp.o.d"
  "fig_wait_apps"
  "fig_wait_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_wait_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
