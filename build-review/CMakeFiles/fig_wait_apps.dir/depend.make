# Empty dependencies file for fig_wait_apps.
# This may be replaced when dependencies are built.
