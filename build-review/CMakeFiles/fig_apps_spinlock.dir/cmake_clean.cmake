file(REMOVE_RECURSE
  "CMakeFiles/fig_apps_spinlock.dir/bench/fig_apps_spinlock.cpp.o"
  "CMakeFiles/fig_apps_spinlock.dir/bench/fig_apps_spinlock.cpp.o.d"
  "fig_apps_spinlock"
  "fig_apps_spinlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_apps_spinlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
