# Empty compiler generated dependencies file for fig_apps_spinlock.
# This may be replaced when dependencies are built.
