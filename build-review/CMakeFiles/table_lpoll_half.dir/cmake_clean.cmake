file(REMOVE_RECURSE
  "CMakeFiles/table_lpoll_half.dir/bench/table_lpoll_half.cpp.o"
  "CMakeFiles/table_lpoll_half.dir/bench/table_lpoll_half.cpp.o.d"
  "table_lpoll_half"
  "table_lpoll_half.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_lpoll_half.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
