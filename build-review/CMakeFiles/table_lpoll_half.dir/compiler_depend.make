# Empty compiler generated dependencies file for table_lpoll_half.
# This may be replaced when dependencies are built.
