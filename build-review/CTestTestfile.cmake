# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_apps "/root/repo/build-review/test_apps")
set_tests_properties(test_apps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build-review/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_fetchop "/root/repo/build-review/test_fetchop")
set_tests_properties(test_fetchop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_locks "/root/repo/build-review/test_locks")
set_tests_properties(test_locks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_msg "/root/repo/build-review/test_msg")
set_tests_properties(test_msg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_platform "/root/repo/build-review/test_platform")
set_tests_properties(test_platform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_policy "/root/repo/build-review/test_policy")
set_tests_properties(test_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build-review/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_rw "/root/repo/build-review/test_rw")
set_tests_properties(test_rw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build-review/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_stats "/root/repo/build-review/test_stats")
set_tests_properties(test_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_theory "/root/repo/build-review/test_theory")
set_tests_properties(test_theory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_waiting "/root/repo/build-review/test_waiting")
set_tests_properties(test_waiting PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;54;add_test;/root/repo/CMakeLists.txt;0;")
