/**
 * @file
 * Runtime cost calibration for the switching policies (the "measured
 * constants" follow-on to thesis Section 3.4).
 *
 * The 3-competitive and hysteresis policies are parameterized by cost
 * constants — the residual cost of servicing a request with the
 * sub-optimal protocol and the round-trip cost of switching — which the
 * thesis measured once, by hand, on Alewife (~150/~15/~8800 cycles).
 * On any other machine those constants are guesses, and a mis-guessed
 * constant makes the reactive primitives switch too early, too late, or
 * oscillate. This header replaces the guesses with *per-object runtime
 * measurement*:
 *
 *  - `CostEstimator` keeps EWMAs of the observed acquisition latency of
 *    each protocol (split by the contention class the policies already
 *    distinguish) and of the observed switch cost. It is written only
 *    by in-consensus processes — the lock holder, the writing holder of
 *    the rwlock, the barrier's last arriver — exactly the processes
 *    that already mutate policy state race-free. The samples are cycle
 *    counts the holder already has in registers (the protocols time
 *    their own slow paths), so calibration adds **zero shared-memory
 *    traffic**: no new atomic is read or written anywhere, and the
 *    uncontended fast path is untouched (it performs no monitoring at
 *    all, see reactive_lock.hpp).
 *  - `CalibratedCompetitive3Policy` is the 3-competitive policy with
 *    its constants re-derived from the estimator on every decision,
 *    plus epsilon-greedy *re-probing*: a bounded fraction of
 *    acquisitions runs the dormant protocol so its estimate stays
 *    fresh. A probe costs at most one switch round trip plus
 *    `probe_len` residuals per `probe_period` acquisitions, so the
 *    regret it adds is bounded by a constant fraction — the same
 *    structure as the paper's 3-competitive argument, with the probe
 *    fraction playing the role of the competitive constant's slack.
 *  - `CalibratedHysteresisPolicy` derives the streak thresholds x and y
 *    from the same estimator (x ~ switch round trip / TTS residual,
 *    y ~ switch round trip / queue residual — the proportionality the
 *    thesis used to pick Hysteresis(20, 55) in the first place).
 *
 * Both calibrated policies satisfy the `SwitchPolicy` concept unchanged
 * (the bool-only observation methods run the decision logic on current
 * estimates), and additionally satisfy `CalibratingSwitchPolicy`: the
 * reactive primitives detect that refinement with `if constexpr` and
 * pass each slow-path acquisition's measured latency and each switch's
 * measured duration. Plain policies compile to exactly the code they
 * compiled to before — no timestamps are taken for them.
 */
#pragma once

#include <cstdint>

#include "core/policy.hpp"
#include "platform/cache_line.hpp"

namespace reactive {

/**
 * One EWMA'd cost statistic over in-consensus cycle samples — the unit
 * of measurement shared by `CostEstimator` (fixed two-protocol latency
 * classes) and the N-protocol selection policies (one account per
 * protocol index, core/protocol_set.hpp).
 *
 * Gain is 2^-shift with a *fast start*: the first few samples use gain
 * 1/2 so a wildly wrong seed is corrected within a handful of
 * observations instead of lingering for dozens. Updates move
 * monotonically toward the sample and converge to an exact constant
 * input (a +-1 nudge covers the sub-2^shift gap).
 */
struct EwmaStat {
    std::uint64_t value = 0;
    std::uint32_t count = 0;  ///< saturating; drives the fast start

    explicit EwmaStat(std::uint64_t seed) : value(seed) {}

    void update(std::uint64_t sample, std::uint32_t shift)
    {
        // First samples use gain 1/2; settle to 2^-shift. A wrong
        // seed carries weight (1/2)^4 * (1 - 2^-shift)^k after the
        // fast start — negligible after a handful of observations.
        const std::uint32_t s = count < kFastStartSamples ? 1 : shift;
        if (count < kFastStartSamples)
            ++count;
        const std::int64_t diff = static_cast<std::int64_t>(sample) -
                                  static_cast<std::int64_t>(value);
        std::int64_t step = diff >> s;
        if (step == 0 && diff != 0)
            step = diff > 0 ? 1 : -1;  // close the sub-2^shift gap
        value = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(value) + step);
    }

    /// update() for statistics whose seed is a placeholder rather than
    /// a measurement: the first observation *replaces* the seed
    /// outright (observations are rare for these — switch costs, a
    /// probed rung's first visit — and a wrong seed would otherwise
    /// bias decisions for the dozens of samples an EWMA needs to flush
    /// it).
    void observe(std::uint64_t sample, std::uint32_t shift)
    {
        if (count == 0) {
            value = sample;
            count = 1;
            return;
        }
        update(sample, shift);
    }

    static constexpr std::uint32_t kFastStartSamples = 4;
};

/**
 * One latency class split by a socket-of-previous-holder bit (the
 * NUMA two-level estimator terms): on a multi-socket host the same
 * class has two populations — the handoff stayed on the holder's
 * socket, or it crossed — and a single EWMA sits between them,
 * tracking neither. The split keeps one EWMA per population plus an
 * EWMA of the cross fraction, and reports the fraction-weighted blend:
 * the *expected* cost of the next acquisition under the observed
 * traffic mix, which is exactly what the switch-threshold arithmetic
 * wants. The caller provides the bit for free — the holder knows its
 * own socket, and the previous holder's socket is holder-only state.
 *
 * Until a cross-socket sample arrives (always, on flat hosts) the
 * blend *is* the local EWMA, updated with the identical sequence a
 * plain EwmaStat would see — flat behavior is bit-identical.
 */
struct SocketSplitStat {
    EwmaStat local;   ///< previous holder on the caller's socket
    EwmaStat remote;  ///< previous holder on another socket
    /// EWMA of the cross indicator, scaled by 256 (gain 1/8).
    std::uint32_t cross_frac = 0;

    explicit SocketSplitStat(std::uint64_t seed) : local(seed), remote(seed)
    {
    }

    void update(std::uint64_t sample, std::uint32_t shift, bool cross)
    {
        (cross ? remote : local).update(sample, shift);
        update_frac(cross);
    }

    /// Placeholder-seed intake (EwmaStat::observe): the population's
    /// first observation replaces its seed outright.
    void observe(std::uint64_t sample, std::uint32_t shift, bool cross)
    {
        (cross ? remote : local).observe(sample, shift);
        update_frac(cross);
    }

  private:
    void update_frac(bool cross)
    {
        const std::int32_t diff =
            (cross ? 256 : 0) - static_cast<std::int32_t>(cross_frac);
        std::int32_t step = diff >> 3;
        if (step == 0 && diff != 0)
            step = diff > 0 ? 1 : -1;
        cross_frac = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(cross_frac) + step);
    }

  public:
    /// Fraction-weighted blend of the two populations (or whichever
    /// one has been observed).
    std::uint64_t value() const
    {
        if (remote.count == 0)
            return local.value;
        if (local.count == 0)
            return remote.value;
        return (local.value * (256 - cross_frac) +
                remote.value * cross_frac) >>
               8;
    }

    std::uint32_t count() const { return local.count + remote.count; }
};

/**
 * One waiting-axis observation, assembled for free by the departing
 * holder at release (src/waiting/reactive/): the span it held the
 * object and the advisory count of parked/queued waiters it saw.
 * Consumed by WaitSelectPolicy (waiting/reactive/wait_select.hpp) to
 * pick spin / two-phase / park, and optionally by wait-aware
 * N-protocol selection policies (WaitAwareSelect,
 * core/protocol_set.hpp). Single-writer under the same in-consensus
 * serialization as every other estimator lane.
 */
struct WaitSignal {
    std::uint64_t hold_cycles = 0;  ///< acquisition -> release span
    std::uint32_t queue_depth = 0;  ///< waiters observed at release
    /// Release timestamp (P::now() at signal assembly). Lets the policy
    /// measure release-to-release intervals — the object's end-to-end
    /// service rate, the quantity mode probing compares. 0 = caller
    /// does not supply timestamps (interval probing disabled).
    std::uint64_t now_cycles = 0;
};

// clang-format off
/**
 * Refinement of SwitchPolicy for policies that consume runtime cost
 * samples. `on_*_acquire(signal, cycles)` is the observation plus the
 * acquisition's measured latency; `on_switch_cycles` reports the
 * measured duration of the in-consensus part of a protocol change
 * (called after on_switch(), still in consensus).
 */
template <typename P>
concept CalibratingSwitchPolicy =
    SwitchPolicy<P> &&
    requires(P p, bool b, std::uint64_t c) {
        { p.on_tts_acquire(b, c) } -> std::same_as<bool>;
        { p.on_queue_acquire(b, c) } -> std::same_as<bool>;
        { p.on_switch_cycles(c) } -> std::same_as<void>;
    };

/**
 * Optional further refinement: policies that want to know about
 * optimistic fast-path wins (a private counter increment by the new
 * holder — in-consensus, traffic-free; see
 * CalibratedCompetitive3Policy::on_tts_fast_acquire).
 */
template <typename P>
concept FastPathAwarePolicy =
    SwitchPolicy<P> &&
    requires(P p) {
        { p.on_tts_fast_acquire() } -> std::same_as<void>;
    };

/**
 * Further refinement of CalibratingSwitchPolicy: the three-argument
 * observations additionally carry the socket-of-previous-holder bit
 * (true = the handoff crossed a socket boundary), routing the sample
 * into the split latency classes (SocketSplitStat). The decision
 * logic is unchanged — the split only sharpens the estimates the
 * existing thresholds are computed from.
 */
template <typename P>
concept SocketAwareCalibratingPolicy =
    CalibratingSwitchPolicy<P> &&
    requires(P p, bool b, std::uint64_t c, bool x) {
        { p.on_tts_acquire(b, c, x) } -> std::same_as<bool>;
        { p.on_queue_acquire(b, c, x) } -> std::same_as<bool>;
    };
// clang-format on

/**
 * Per-object estimator of the cost quantities the switching policies
 * need, as EWMAs over in-consensus cycle samples.
 *
 * Single-writer by construction (only in-consensus processes call the
 * sample methods — the same serialization that protects policy state),
 * so the fields are plain integers: no atomics, no fences, no shared
 * traffic. The whole estimator is cache-line-aligned so that embedding
 * it in a lock cannot false-share with the lock words.
 *
 * EWMA details: gain is 2^-ewma_shift, with a *fast start* — the first
 * few samples of each statistic use gain 1/2 so a wildly wrong seed is
 * corrected within a handful of observations instead of lingering for
 * dozens. Updates move monotonically toward the sample and converge to
 * an exact constant input (a +-1 nudge covers the sub-2^shift gap).
 */
class alignas(kCacheLineSize) CostEstimator {
  public:
    /**
     * Seed values, in cycles. The defaults encode the same Alewife
     * measurements as `Competitive3Policy::Params`: the derived
     * residuals start at 250-100 = 150 (contended TTS) and 65-50 = 15
     * (empty queue), and the derived round trip at
     * 2 * switch_cost_multiplier * 100 = 8800.
     */
    struct Params {
        std::uint64_t tts_uncontended = 50;  ///< immediate slow-path TTS win
        std::uint64_t tts_contended = 250;   ///< TTS past the retry limit
        std::uint64_t queue_empty = 65;      ///< queue acquisition, queue empty
        std::uint64_t queue_waited = 100;    ///< queue acquisition after a wait
        std::uint64_t switch_one_way = 100;  ///< holder-local span of one change
        /// The holder-measurable span of a protocol change covers only
        /// its local work (validate/retire words, flip the hint,
        /// dismantle the queue); the systemic cost — every waiter
        /// re-routing through the dispatcher, the invalidation storms
        /// their retries cause, the re-steadying of the new protocol —
        /// lands on *other* processes and is well over an order of
        /// magnitude larger: the thesis measured ~8800 cycles for the
        /// round trip where the holder-local span is ~100 (one
        /// validate RMW plus the hint store, or a short queue
        /// dismantle). The ratio is roughly machine-independent (both
        /// sides are a handful of remote operations each, multiplied
        /// by the same coherence costs), which is what makes the span
        /// a usable runtime proxy: round trip = 2 * multiplier *
        /// measured span.
        std::uint32_t switch_cost_multiplier = 44;
        std::uint32_t ewma_shift = 3;  ///< steady-state gain 2^-shift

        /// Seeds scaled by num/den — the "deliberately wrong constants"
        /// hook for tests and the calibration benchmark.
        constexpr Params scaled(std::uint64_t num, std::uint64_t den) const
        {
            Params p = *this;
            p.tts_uncontended = p.tts_uncontended * num / den;
            p.tts_contended = p.tts_contended * num / den;
            p.queue_empty = p.queue_empty * num / den;
            p.queue_waited = p.queue_waited * num / den;
            p.switch_one_way = p.switch_one_way * num / den;
            return p;
        }

        /// Reluctant mis-tuning preset: switch cost seeded 10x high,
        /// residual seeds collapsed to near zero — a policy that
        /// "knows" switching never pays. Shared by the calibration
        /// benchmark and the test envelope so both validate the same
        /// wrong configuration.
        static constexpr Params mis_tuned_reluctant()
        {
            Params p;
            p.switch_one_way *= 10;
            p.tts_contended = p.queue_waited + 2;
            p.queue_empty = p.tts_uncontended + 2;
            return p;
        }

        /// Trigger-happy mis-tuning preset: switch cost seeded 10x
        /// low, residual seeds inflated 10x — a policy that "knows"
        /// switching is nearly free.
        static constexpr Params mis_tuned_eager()
        {
            Params p;
            p.switch_one_way /= 10;
            p.tts_contended = p.queue_waited + 1500;
            p.queue_empty = p.tts_uncontended + 150;
            return p;
        }
    };

    CostEstimator() : CostEstimator(Params{}) {}

    explicit CostEstimator(Params p)
        : params_(p),
          tts_uncontended_(p.tts_uncontended),
          tts_contended_(p.tts_contended),
          queue_empty_(p.queue_empty),
          queue_waited_(p.queue_waited),
          switch_one_way_(p.switch_one_way),
          tts_overall_(p.tts_uncontended),
          queue_overall_(p.queue_waited)
    {
    }

    // ---- sample intake (in-consensus callers only) -------------------
    //
    // The optional @p cross bit names the socket-of-previous-holder
    // population the sample belongs to (SocketSplitStat); callers
    // without topology knowledge omit it and feed the local class —
    // the exact pre-split behavior.

    void sample_tts(bool contended, std::uint64_t cycles, bool cross = false)
    {
        Stat& s = contended ? tts_contended_ : tts_uncontended_;
        s.update(cycles, params_.ewma_shift, cross);
        tts_overall_.update(cycles, params_.ewma_shift);
    }

    void sample_queue(bool empty, std::uint64_t cycles, bool cross = false)
    {
        Stat& s = empty ? queue_empty_ : queue_waited_;
        s.update(cycles, params_.ewma_shift, cross);
        queue_overall_.update(cycles, params_.ewma_shift);
    }

    /// One measured protocol change. The first sample *replaces* the
    /// seed (EwmaStat::observe): switches are rare, a wrong seed would
    /// otherwise bias the threshold for the dozens of changes an EWMA
    /// needs to flush it.
    void sample_switch(std::uint64_t cycles)
    {
        switch_one_way_.observe(cycles, params_.ewma_shift);
    }

    // ---- derived policy constants ------------------------------------

    /// Measured residual of servicing a contended request under TTS
    /// instead of the queue protocol. Floored at 1 so streak/threshold
    /// arithmetic stays well-defined when the estimates cross.
    std::uint64_t residual_tts_contended() const
    {
        return diff_or_one(tts_contended_.value(), queue_waited_.value());
    }

    /// Measured residual of an empty-queue acquisition vs. TTS.
    std::uint64_t residual_queue_empty() const
    {
        return diff_or_one(queue_empty_.value(), tts_uncontended_.value());
    }

    /// Measured residual of a *loaded* queue acquisition vs. a
    /// fast-path TTS win — the counterfactual cost of a request the
    /// fast path absorbed while the queue protocol was the (busy)
    /// home. Used as per-request adoption evidence during probes.
    std::uint64_t residual_queue_waited() const
    {
        return diff_or_one(queue_waited_.value(), tts_uncontended_.value());
    }

    /// Estimated switch round trip (there and back again), scaled from
    /// the holder-local span to the systemic cost (see Params).
    std::uint64_t switch_round_trip() const
    {
        return 2 * params_.switch_cost_multiplier * switch_one_way_.value;
    }

    /// Overall per-protocol latency estimates (probe vote baselines).
    std::uint64_t tts_latency() const { return tts_overall_.value; }
    std::uint64_t queue_latency() const { return queue_overall_.value; }

    // ---- raw estimates (tests, diagnostics) --------------------------

    std::uint64_t tts_uncontended() const { return tts_uncontended_.value(); }
    std::uint64_t tts_contended() const { return tts_contended_.value(); }
    std::uint64_t queue_empty() const { return queue_empty_.value(); }
    std::uint64_t queue_waited() const { return queue_waited_.value(); }
    std::uint64_t switch_one_way() const { return switch_one_way_.value; }
    std::uint64_t samples() const
    {
        return tts_uncontended_.count() + tts_contended_.count() +
               queue_empty_.count() + queue_waited_.count() +
               switch_one_way_.count;
    }

    /// Split-population views (tests, diagnostics).
    const SocketSplitStat& split_tts_contended() const
    {
        return tts_contended_;
    }
    const SocketSplitStat& split_tts_uncontended() const
    {
        return tts_uncontended_;
    }
    const SocketSplitStat& split_queue_empty() const { return queue_empty_; }
    const SocketSplitStat& split_queue_waited() const
    {
        return queue_waited_;
    }

  private:
    /// The four latency classes are socket-split; the switch cost and
    /// the overall probe baselines stay single-population (a switch is
    /// not a handoff, and the baselines average the traffic mix by
    /// construction).
    using Stat = SocketSplitStat;

    static std::uint64_t diff_or_one(std::uint64_t a, std::uint64_t b)
    {
        return a > b ? a - b : 1;
    }

    Params params_;
    Stat tts_uncontended_;
    Stat tts_contended_;
    Stat queue_empty_;
    Stat queue_waited_;
    EwmaStat switch_one_way_;
    EwmaStat tts_overall_;
    EwmaStat queue_overall_;
};

/**
 * The 3-competitive policy with runtime-calibrated constants and
 * epsilon-greedy re-probing of the dormant protocol.
 *
 * Decision rule (identical structure to `Competitive3Policy`): each
 * request serviced by the sub-optimal protocol adds its *measured*
 * residual; switch when the accumulated residual exceeds the *measured*
 * switch round trip. Switching remains purely signal-driven — the
 * estimator sizes the constants, it never overrides the signals (the
 * thesis' signals encode information no latency average captures, e.g.
 * "contended acquisitions are rare" is exactly why TTS wins a
 * convoying hot loop).
 *
 * Re-probing: after `probe_period` *observed* acquisitions in the
 * current protocol, the policy forces a *probe*: it switches to the
 * dormant protocol for `probe_len` observed acquisitions purely to
 * refresh that protocol's latency estimates (and, since both probe
 * switches are measured, the switch-cost estimate), then switches
 * straight back. The cadence deliberately counts observed (slow-path)
 * acquisitions, not wall time: a quiescent object observes nothing and
 * never probes, a fast-path-dominated object observes little and
 * rarely probes, while a busy protocol with stale dormant estimates —
 * precisely the object that can sit in the wrong protocol with no
 * signal ever firing (a convoying hot loop keeps the queue nonempty
 * forever) — probes once per period at a cost bounded by one round
 * trip plus probe_len residuals.
 *
 * The period backs off exponentially while probes keep confirming the
 * status quo (each probe doubles the next period, capped at 64x) and
 * snaps back to the base period whenever the *signals* drive a real
 * switch — a steady regime pays O(log) probes total, a shifting regime
 * keeps fresh estimates at the base cadence.
 *
 * One emergent subtlety worth knowing: a probe *into* the TTS protocol
 * at low contention can park there indefinitely, because uncontended
 * acquisitions ride the optimistic fast path, which performs no
 * monitoring — the probe counter only advances on observed (slow-path)
 * acquisitions. That is adoption by construction: the probe fails to
 * end exactly when the probed protocol is absorbing every acquisition
 * at fast-path cost, i.e. when staying is the right answer. The first
 * burst of contention produces observed acquisitions, finishes the
 * probe, and restores normal signal-driven operation.
 *
 * Regret bound: a probe costs at most one switch round trip plus
 * probe_len residuals per probe_period signalled acquisitions, so
 * calibration inflates the 3-competitive bound by the probe fraction
 * (~1% at the defaults) while removing the unbounded cost of operating
 * on wrong constants. One caveat for primitives with operations that
 * never feed the policy: those operations run the dormant protocol for
 * the probe's *duration*, which only observed acquisitions bound — an
 * rwlock probe parked in the queue protocol makes intervening readers
 * pay the queue read path's constant overhead until probe_len further
 * writes arrive (see reactive_rw_lock.hpp). The per-operation overhead
 * is a small constant (both protocols serve every operation in O(1)
 * remote references); only its duration is workload-dependent.
 */
class CalibratedCompetitive3Policy {
  public:
    struct Params {
        CostEstimator::Params costs{};
        /// Base count of observed acquisitions between probes of the
        /// dormant protocol (0 disables probing); doubles after each
        /// status-quo-confirming probe, up to 64x.
        std::uint32_t probe_period = 128;
        /// Observed acquisitions sampled in the dormant protocol per
        /// probe.
        std::uint32_t probe_len = 2;
    };

    CalibratedCompetitive3Policy() : CalibratedCompetitive3Policy(Params{})
    {
    }

    explicit CalibratedCompetitive3Policy(Params p)
        : params_(p), est_(p.costs)
    {
        // The first dormant observation of every probe is the
        // discarded cold one (see on_switch); a probe must observe at
        // least one more to refresh anything.
        if (params_.probe_len < 2)
            params_.probe_len = 2;
    }

    // ---- SwitchPolicy (estimate-only; no sample available) -----------

    bool on_tts_acquire(bool contended) { return tts_step(contended); }

    bool on_queue_acquire(bool empty) { return queue_step(empty); }

    void on_switch()
    {
        // A probe transition is a measurement break, not evidence: the
        // cumulative residual must survive it (accumulation across
        // breaks is what yields the competitive bound). Only a
        // signal-driven switch starts a fresh account.
        if (probe_ == Probe::kNone && !probe_returning_) {
            cumulative_ = 0;
            fast_home_ = 0;
            observed_home_ = 0;
        }
        probe_returning_ = false;
        acq_since_probe_ = 0;
        probe_acqs_ = 0;
        probe_ = probe_ == Probe::kPending ? Probe::kProbing : Probe::kNone;
        skip_next_sample_ = true;
    }

    /**
     * Optimistic-fast-path win notification (reactive lock / rwlock
     * writer path; the winner holds the lock, so this private counter
     * increment is in-consensus, traffic-free, and timestamp-free).
     *
     * In the TTS home protocol, fast-path requests pay no residual and
     * would pay the queue protocol's full acquisition cost after a
     * switch, so the effective switch round trip scales by the
     * fraction of requests the policy actually observes — without
     * this, a convoying hot loop (whose observed slow-path tail
     * latencies look terrible but whose throughput is excellent) reads
     * as a switch opportunity.
     *
     * During a probe *into* TTS from the queue home, each fast win is
     * adoption evidence instead: a request served at fast-path cost
     * that the loaded queue protocol would have charged its full
     * waited acquisition for (the queue is the home because it is
     * busy), i.e. one waited-queue residual toward switching home to
     * TTS. This self-discriminates — a probe only parks in TTS long
     * enough to accumulate a switch-worth of evidence when the fast
     * path is genuinely absorbing the load (the probe counter, which
     * ends the probe, only advances on slow-path acquisitions).
     */
    void on_tts_fast_acquire()
    {
        if (probe_ == Probe::kProbing && home_is_queue_) {
            cumulative_ += est_.residual_queue_waited();
            return;
        }
        if (!home_is_queue_ && fast_home_ < kFastWinCap)
            ++fast_home_;
    }

    /// Recent fast-wins-per-observed-acquisition ratio. The
    /// denominator is the observed count since the last signal-driven
    /// switch, saturating at the window size: immediately after a
    /// switch the factor tracks the raw ratio (a handful of fast wins
    /// per observed acquisition must count at once, or every
    /// post-switch period would re-enter the queue before the evidence
    /// bar recovers), while at steady state it is the sliding-window
    /// ratio whose staleness effective_round_trip bounds.
    std::uint64_t fast_factor() const
    {
        std::uint64_t denom = observed_home_ < kFastWindow
                                  ? observed_home_
                                  : kFastWindow;
        if (denom == 0)
            denom = 1;
        const std::uint64_t f = 1 + fast_home_ / denom;
        return f > kMaxFastFactor ? kMaxFastFactor : f;
    }

    // ---- CalibratingSwitchPolicy -------------------------------------
    //
    // The two-argument observations carry a latency sample. Callers
    // only pass samples whose class is unambiguous (the reactive lock
    // omits the sample for slow-path wins that spun below the retry
    // limit — their latency is waiting, not protocol cost, and feeding
    // it to the "uncontended" class would poison the residuals); the
    // decision logic is identical with or without a sample. The first
    // sample after any protocol change is discarded: it pays the
    // switch disruption (cold lines, re-routing waiters), which
    // belongs to the switch cost, not to the protocol's steady class.

    bool on_tts_acquire(bool contended, std::uint64_t cycles)
    {
        return on_tts_acquire(contended, cycles, /*cross=*/false);
    }

    bool on_queue_acquire(bool empty, std::uint64_t cycles)
    {
        return on_queue_acquire(empty, cycles, /*cross=*/false);
    }

    // ---- SocketAwareCalibratingPolicy --------------------------------
    //
    // The extra bit routes the sample into the split latency classes;
    // decisions are computed from the blended estimates either way.

    bool on_tts_acquire(bool contended, std::uint64_t cycles, bool cross)
    {
        if (!skip_next_sample_)
            est_.sample_tts(contended, cycles, cross);
        skip_next_sample_ = false;
        return tts_step(contended);
    }

    bool on_queue_acquire(bool empty, std::uint64_t cycles, bool cross)
    {
        if (!skip_next_sample_)
            est_.sample_queue(empty, cycles, cross);
        skip_next_sample_ = false;
        return queue_step(empty);
    }

    void on_switch_cycles(std::uint64_t cycles)
    {
        est_.sample_switch(cycles);
    }

    // ---- monitoring (tests, experiments) -----------------------------

    const CostEstimator& estimator() const { return est_; }
    CostEstimator& estimator() { return est_; }
    std::uint64_t cumulative_residual() const { return cumulative_; }
    std::uint64_t probes_started() const { return probes_started_; }
    bool probing() const { return probe_ != Probe::kNone; }

  private:
    enum class Probe : std::uint8_t {
        kNone,     ///< normal operation in the home protocol
        kPending,  ///< probe switch requested, waiting for on_switch()
        kProbing,  ///< sampling the dormant protocol
    };

    bool tts_step(bool contended)
    {
        if (probe_ == Probe::kProbing && home_is_queue_)
            return probe_step();
        probe_ = Probe::kNone;  // home-mode callback ends any stale probe
        home_is_queue_ = false;
        ++acq_since_probe_;
        ++observed_home_;
        fast_home_ -= fast_home_ >> kFastDecayShift;  // age the window
        if (contended)
            cumulative_ += est_.residual_tts_contended();
        if (cumulative_ >= effective_round_trip()) {
            probe_backoff_ = 0;  // the signals moved: regime shift
            return true;
        }
        if (probe_due()) {
            probe_ = Probe::kPending;
            if (probe_backoff_ < kProbeBackoffCap)
                ++probe_backoff_;
            ++probes_started_;
            return true;
        }
        return false;
    }

    bool queue_step(bool empty)
    {
        if (probe_ == Probe::kProbing && !home_is_queue_)
            return probe_step();
        probe_ = Probe::kNone;
        home_is_queue_ = true;
        ++acq_since_probe_;
        ++observed_home_;
        fast_home_ = 0;  // the fast path cannot win in queue mode
        if (empty)
            cumulative_ += est_.residual_queue_empty();
        if (cumulative_ >= effective_round_trip()) {
            probe_backoff_ = 0;  // the signals moved: regime shift
            return true;
        }
        if (probe_due()) {
            probe_ = Probe::kPending;
            if (probe_backoff_ < kProbeBackoffCap)
                ++probe_backoff_;
            ++probes_started_;
            return true;
        }
        return false;
    }

    /// One observed acquisition executed in the dormant protocol during
    /// a probe. Probes only refresh estimates (the sample was already
    /// taken by the caller): after probe_len observations the policy
    /// switches straight back home. No residual accumulates during a
    /// probe — it is a measurement episode, not evidence.
    bool probe_step()
    {
        if (++probe_acqs_ < params_.probe_len)
            return false;
        probe_ = Probe::kNone;
        probe_returning_ = true;  // preserve the cumulative account
        return true;              // switch back home
    }

    bool probe_due() const
    {
        return params_.probe_period != 0 &&
               acq_since_probe_ >=
                   (static_cast<std::uint64_t>(params_.probe_period)
                    << probe_backoff_);
    }

    /// Switch round trip scaled by the *recent* observed-request
    /// fraction: if F fast-path wins ride along with each observed
    /// acquisition, a switch re-routes F+1 requests' worth of service
    /// into the queue protocol for every observed residual collected,
    /// so the evidence bar rises proportionally. The fast-win counter
    /// ages by 1/2^kFastDecayShift per observed acquisition, so the
    /// factor tracks a sliding ~kFastWindow-observation window — a
    /// long-gone fast-path era cannot inflate the bar after the regime
    /// changes. Factor is 1 whenever the fast path is idle (queue
    /// home, genuinely contended TTS, any rwlock/barrier configuration
    /// without the hook).
    std::uint64_t effective_round_trip() const
    {
        return est_.switch_round_trip() * fast_factor();
    }

    static constexpr std::uint32_t kProbeBackoffCap = 6;
    /// ~1024-observation sliding window: long enough that sparse
    /// observed acquisitions in a convoying hot loop sustain the
    /// factor, short enough that once a regime shift makes every
    /// acquisition observed, a stale fast-path era decays away within
    /// a few thousand observed acquisitions (factor halves every ~710
    /// at the cap below).
    static constexpr std::uint32_t kFastDecayShift = 10;
    static constexpr std::uint64_t kFastWindow = std::uint64_t{1}
                                                << kFastDecayShift;
    static constexpr std::uint64_t kMaxFastFactor = 256;
    static constexpr std::uint64_t kFastWinCap =
        kMaxFastFactor * kFastWindow;

    Params params_;
    CostEstimator est_;
    std::uint64_t cumulative_ = 0;
    std::uint64_t acq_since_probe_ = 0;
    std::uint64_t observed_home_ = 0;
    std::uint64_t fast_home_ = 0;
    std::uint32_t probe_backoff_ = 0;
    std::uint32_t probe_acqs_ = 0;
    std::uint64_t probes_started_ = 0;
    Probe probe_ = Probe::kNone;
    bool home_is_queue_ = false;  ///< inferred from the callbacks
    bool probe_returning_ = false;
    bool skip_next_sample_ = false;
};

/**
 * Hysteresis with runtime-calibrated streak thresholds.
 *
 * The thesis picked Hysteresis(20, 55) "to mirror the 3-competitive
 * policy's thresholds": a streak of x contended TTS acquisitions is
 * evidence worth x * residual cycles, so the mirror of "switch when the
 * residual exceeds the round trip" is x = round_trip / residual (and
 * likewise y). This class recomputes x and y from the estimator on
 * every decision, clamped to [min_streak, max_streak] so a degenerate
 * estimate can neither pin the policy open nor slam it shut.
 *
 * Historically it never probed, on the argument that hysteresis
 * already embodies deliberate switching inertia and its dormant
 * estimates refresh whenever the protocols genuinely alternate. That
 * argument has a hole: a workload that settles permanently into one
 * home never alternates, so the dormant residual — and therefore the
 * streak threshold guarding the switch *toward* that protocol — is
 * frozen at whatever the estimator last saw, arbitrarily stale.
 * `probe_period != 0` (off by default: decisions are then identical
 * to the historical policy) enables the competitive policy's
 * backed-off refresh probes: every probe_period home acquisitions
 * (doubling after each quiet probe, capped), switch into the dormant
 * protocol for probe_len observed acquisitions purely to refresh its
 * latency classes, then switch straight back. Probes are measurement
 * episodes, not evidence — the streaks neither advance nor reset
 * while probing, and a genuine streak-driven switch resets the
 * backoff (the signals moved).
 */
class CalibratedHysteresisPolicy {
  public:
    struct Params {
        CostEstimator::Params costs{};
        std::uint32_t min_streak = 2;
        std::uint32_t max_streak = 4096;
        /// Refresh-probe cadence in home-protocol acquisitions; 0
        /// (default) disables probing — the historical behavior.
        std::uint32_t probe_period = 0;
        /// Observed acquisitions a probe spends in the dormant
        /// protocol before switching back home.
        std::uint32_t probe_len = 8;
    };

    CalibratedHysteresisPolicy() = default;
    explicit CalibratedHysteresisPolicy(Params p) : params_(p), est_(p.costs)
    {
    }

    // ---- SwitchPolicy ------------------------------------------------

    bool on_tts_acquire(bool contended)
    {
        if (probe_ == Probe::kProbing && home_is_queue_)
            return probe_step();
        probe_ = Probe::kNone;  // home-mode callback ends any stale probe
        home_is_queue_ = false;
        ++acq_since_probe_;
        if (!contended) {
            contended_streak_ = 0;
            return probe_due();
        }
        if (++contended_streak_ >= to_queue_streak()) {
            probe_backoff_ = 0;  // the signals moved: regime shift
            return true;
        }
        return probe_due();
    }

    bool on_queue_acquire(bool empty)
    {
        if (probe_ == Probe::kProbing && !home_is_queue_)
            return probe_step();
        probe_ = Probe::kNone;
        home_is_queue_ = true;
        ++acq_since_probe_;
        if (!empty) {
            empty_streak_ = 0;
            return probe_due();
        }
        if (++empty_streak_ >= to_tts_streak()) {
            probe_backoff_ = 0;
            return true;
        }
        return probe_due();
    }

    void on_switch()
    {
        contended_streak_ = 0;
        empty_streak_ = 0;
        acq_since_probe_ = 0;
        probe_acqs_ = 0;
        probe_ = probe_ == Probe::kPending ? Probe::kProbing : Probe::kNone;
        skip_next_sample_ = true;
    }

    // ---- CalibratingSwitchPolicy -------------------------------------
    //
    // As in the competitive policy, the first sample after a protocol
    // change pays the switch disruption and is discarded rather than
    // fed to a steady-state class.

    bool on_tts_acquire(bool contended, std::uint64_t cycles)
    {
        return on_tts_acquire(contended, cycles, /*cross=*/false);
    }

    bool on_queue_acquire(bool empty, std::uint64_t cycles)
    {
        return on_queue_acquire(empty, cycles, /*cross=*/false);
    }

    // ---- SocketAwareCalibratingPolicy --------------------------------

    bool on_tts_acquire(bool contended, std::uint64_t cycles, bool cross)
    {
        if (!skip_next_sample_)
            est_.sample_tts(contended, cycles, cross);
        skip_next_sample_ = false;
        return on_tts_acquire(contended);
    }

    bool on_queue_acquire(bool empty, std::uint64_t cycles, bool cross)
    {
        if (!skip_next_sample_)
            est_.sample_queue(empty, cycles, cross);
        skip_next_sample_ = false;
        return on_queue_acquire(empty);
    }

    void on_switch_cycles(std::uint64_t cycles)
    {
        est_.sample_switch(cycles);
    }

    // ---- derived thresholds (tests, diagnostics) ---------------------

    std::uint32_t to_queue_streak() const
    {
        return derive(est_.residual_tts_contended());
    }

    std::uint32_t to_tts_streak() const
    {
        return derive(est_.residual_queue_empty());
    }

    const CostEstimator& estimator() const { return est_; }
    CostEstimator& estimator() { return est_; }
    std::uint64_t probes_started() const { return probes_started_; }
    bool probing() const { return probe_ != Probe::kNone; }

  private:
    enum class Probe : std::uint8_t {
        kNone,     ///< normal operation in the home protocol
        kPending,  ///< probe switch requested, waiting for on_switch()
        kProbing,  ///< sampling the dormant protocol
    };

    static constexpr std::uint32_t kProbeBackoffCap = 6;

    std::uint32_t derive(std::uint64_t residual) const
    {
        const std::uint64_t x = est_.switch_round_trip() / residual;
        if (x < params_.min_streak)
            return params_.min_streak;
        if (x > params_.max_streak)
            return params_.max_streak;
        return static_cast<std::uint32_t>(x);
    }

    /// One observed acquisition executed in the dormant protocol
    /// during a probe. The probe only refreshes estimates (the
    /// sampling overloads already fed the estimator); the streaks are
    /// untouched — a probe is a measurement episode, not evidence.
    bool probe_step()
    {
        if (++probe_acqs_ < params_.probe_len)
            return false;
        probe_ = Probe::kNone;
        return true;  // switch back home
    }

    /// Requests a refresh probe once the backed-off period elapses.
    /// With probe_period == 0 this is constant-false and every
    /// decision is identical to the historical non-probing policy.
    bool probe_due()
    {
        if (params_.probe_period == 0 ||
            acq_since_probe_ <
                (static_cast<std::uint64_t>(params_.probe_period)
                 << probe_backoff_))
            return false;
        probe_ = Probe::kPending;
        if (probe_backoff_ < kProbeBackoffCap)
            ++probe_backoff_;
        ++probes_started_;
        return true;
    }

    Params params_;
    CostEstimator est_;
    std::uint64_t acq_since_probe_ = 0;
    std::uint64_t probes_started_ = 0;
    std::uint32_t contended_streak_ = 0;
    std::uint32_t empty_streak_ = 0;
    std::uint32_t probe_backoff_ = 0;
    std::uint32_t probe_acqs_ = 0;
    Probe probe_ = Probe::kNone;
    bool home_is_queue_ = false;  ///< inferred from the callbacks
    bool skip_next_sample_ = false;
};

static_assert(SwitchPolicy<CalibratedCompetitive3Policy>);
static_assert(SwitchPolicy<CalibratedHysteresisPolicy>);
static_assert(CalibratingSwitchPolicy<CalibratedCompetitive3Policy>);
static_assert(CalibratingSwitchPolicy<CalibratedHysteresisPolicy>);
static_assert(FastPathAwarePolicy<CalibratedCompetitive3Policy>);
static_assert(!FastPathAwarePolicy<CalibratedHysteresisPolicy>);
static_assert(!CalibratingSwitchPolicy<Competitive3Policy>);
static_assert(!CalibratingSwitchPolicy<HysteresisPolicy>);
static_assert(SocketAwareCalibratingPolicy<CalibratedCompetitive3Policy>);
static_assert(SocketAwareCalibratingPolicy<CalibratedHysteresisPolicy>);

}  // namespace reactive
