/**
 * @file
 * The N-protocol generalization of the reactive framework (the "set of
 * protocols" of thesis Section 1.1, freed from the binary special
 * case).
 *
 * Every reactive primitive in this repo originally baked in exactly two
 * protocols behind a binary Mode enum, and a switching policy could
 * only answer "switch or stay". This header generalizes both halves:
 *
 *  - **`ProtocolSet<Slots...>`** holds N protocol implementations (each
 *    a `ProtocolSlot`: it owns its consensus object, can be retired and
 *    revalidated by an in-consensus process, exposes an acquire/arrive
 *    attempt, and reports a per-acquisition contention signal). The
 *    *mode* of a reactive object becomes a protocol **index** — still
 *    only a hint for locks, still exact for barriers — and the
 *    dispatcher routes each operation to the indexed slot.
 *  - **`SelectPolicy`** replaces the binary `SwitchPolicy`'s
 *    `bool should_switch()` with `next_protocol(signal) -> index`. The
 *    observation is a `ProtocolSignal`: which protocol executed, and
 *    which *direction* along the set's scalability order the
 *    acquisition argues for (`drift`): +1 means the protocol was
 *    under-provisioned for the observed contention (a contended TTS
 *    acquisition, a bunched barrier episode), -1 over-provisioned (an
 *    empty-queue acquisition, a straggler-dominated episode).
 *  - **`SelectAdapter`** embeds every existing binary policy as the
 *    two-protocol specialization: protocol 0 observations map to
 *    `on_tts_acquire(drift > 0)`, protocol 1 to
 *    `on_queue_acquire(drift < 0)`, and "switch" means "the other
 *    index". The call sequence into the wrapped policy is *identical*
 *    to what the primitives made before this generalization, so the
 *    binary policies' decisions — and therefore the deterministic sim
 *    benchmark numbers — are bit-compatible.
 *
 * Two genuinely N-ary policies live here as well:
 *
 *  - `LadderCompetitivePolicy`: the 3-competitive rule with one
 *    cumulative-residual **account per protocol index**. Drift credits
 *    the adjacent rung's account; an account reaching the switch round
 *    trip moves the object there and consumes only *that* account —
 *    evidence about other protocols survives the move (the N-ary
 *    analogue of "the cumulative residual survives breaks in the
 *    streak").
 *  - `CalibratedLadderPolicy`: per-protocol-index latency EWMAs
 *    (`EwmaStat`, shared with core/cost_model.hpp) plus bounded
 *    epsilon-greedy probing. Drift accounts *schedule* measurement
 *    excursions into neighbouring rungs; adoption is decided by the
 *    measured per-episode costs, so a rung that drift alone cannot
 *    rank (is the combining tree or the dissemination barrier better
 *    at this P?) is ranked by observation. Failed excursions back off
 *    exponentially, bounding the probe overhead the way the
 *    calibrated two-protocol policies bound theirs.
 *
 * The concepts here are deliberately layered: `ProtocolSlot` is the
 * structural core (a per-participant Node type), and each primitive
 * family refines it with its operational API — see
 * `BarrierProtocolSlot` (barrier/barrier_concepts.hpp) for the barrier
 * family's consensus/episode refinement.
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/cost_model.hpp"
#include "core/policy.hpp"

namespace reactive {

/**
 * One per-acquisition observation handed to an N-protocol policy:
 * which protocol serviced the request, and which direction along the
 * set's scalability order the request's contention evidence points.
 */
struct ProtocolSignal {
    std::uint32_t protocol = 0;  ///< index of the protocol that executed
    int drift = 0;  ///< +1 under-provisioned, -1 over-provisioned, 0 content
};

// clang-format off
/**
 * N-protocol selection policy: `next_protocol` returns the index the
 * object should run next (== signal.protocol means stay). Methods are
 * invoked only in-consensus, exactly as for the binary SwitchPolicy.
 */
template <typename Pol>
concept SelectPolicy = requires(Pol p, ProtocolSignal s) {
    { p.next_protocol(s) } -> std::same_as<std::uint32_t>;
    { p.on_switch() } -> std::same_as<void>;
};

/**
 * Refinement for policies that consume runtime cost samples: the
 * two-argument observation carries the acquisition's measured latency,
 * and `on_switch_cycles` the measured in-consensus span of a change
 * (the N-ary mirror of CalibratingSwitchPolicy).
 */
template <typename Pol>
concept CalibratingSelectPolicy =
    SelectPolicy<Pol> &&
    requires(Pol p, ProtocolSignal s, std::uint64_t c) {
        { p.next_protocol(s, c) } -> std::same_as<std::uint32_t>;
        { p.on_switch_cycles(c) } -> std::same_as<void>;
    };

/// Select-side mirror of FastPathAwarePolicy (core/cost_model.hpp).
template <typename Pol>
concept FastPathAwareSelect = requires(Pol p) {
    { p.on_tts_fast_acquire() } -> std::same_as<void>;
};

/**
 * Select-side mirror of SocketAwareCalibratingPolicy: the
 * three-argument observation additionally carries the
 * socket-of-previous-holder bit, routing the cycle sample into split
 * latency populations (SocketSplitStat). Decision logic unchanged.
 */
template <typename Pol>
concept SocketAwareSelect =
    CalibratingSelectPolicy<Pol> &&
    requires(Pol p, ProtocolSignal s, std::uint64_t c, bool x) {
        { p.next_protocol(s, c, x) } -> std::same_as<std::uint32_t>;
    };

/**
 * Select-side waiting-axis observation (src/waiting/reactive/): the
 * departing holder's WaitSignal — hold span and observed queue depth —
 * delivered in-consensus at release. Primitives detect the refinement
 * with `if constexpr` exactly like the calibrating ones; policies
 * without it compile to the code they compiled to before the waiting
 * subsystem existed.
 */
template <typename Pol>
concept WaitAwareSelect = requires(Pol p, const WaitSignal& s) {
    { p.on_wait_signal(s) } -> std::same_as<void>;
};
// clang-format on

/**
 * Embeds a binary SwitchPolicy as the two-protocol specialization of
 * SelectPolicy. Protocol 0 plays the TTS role, protocol 1 the queue
 * role; the underlying call sequence is identical to the pre-ProtocolSet
 * primitives', so wrapped policies decide bit-identically. Only valid
 * for two-protocol sets (the primitives static_assert this).
 */
template <SwitchPolicy Policy>
class SelectAdapter {
  public:
    SelectAdapter() = default;
    /*implicit*/ SelectAdapter(Policy p) : policy_(std::move(p)) {}

    std::uint32_t next_protocol(ProtocolSignal s)
    {
        const bool sw = s.protocol == 0
                            ? policy_.on_tts_acquire(s.drift > 0)
                            : policy_.on_queue_acquire(s.drift < 0);
        return sw ? (s.protocol ^ 1u) : s.protocol;
    }

    std::uint32_t next_protocol(ProtocolSignal s, std::uint64_t cycles)
        requires CalibratingSwitchPolicy<Policy>
    {
        const bool sw = s.protocol == 0
                            ? policy_.on_tts_acquire(s.drift > 0, cycles)
                            : policy_.on_queue_acquire(s.drift < 0, cycles);
        return sw ? (s.protocol ^ 1u) : s.protocol;
    }

    std::uint32_t next_protocol(ProtocolSignal s, std::uint64_t cycles,
                                bool cross)
        requires SocketAwareCalibratingPolicy<Policy>
    {
        const bool sw =
            s.protocol == 0
                ? policy_.on_tts_acquire(s.drift > 0, cycles, cross)
                : policy_.on_queue_acquire(s.drift < 0, cycles, cross);
        return sw ? (s.protocol ^ 1u) : s.protocol;
    }

    void on_switch() { policy_.on_switch(); }

    void on_switch_cycles(std::uint64_t cycles)
        requires CalibratingSwitchPolicy<Policy>
    {
        policy_.on_switch_cycles(cycles);
    }

    void on_tts_fast_acquire()
        requires FastPathAwarePolicy<Policy>
    {
        policy_.on_tts_fast_acquire();
    }

    /// Monitoring passthroughs (trace/instrument.hpp estimator_pair
    /// and ProbeWatch, audit::best_alternative): the adapter is
    /// decision-transparent, so it must be observation-transparent
    /// too — without these, a wrapped calibrated policy traced as if
    /// it had no estimator (est=0 switch payloads, no regret samples).
    decltype(auto) estimator() const
        requires requires(const Policy& p) { p.estimator(); }
    {
        return policy_.estimator();
    }

    decltype(auto) probing() const
        requires requires(const Policy& p) { p.probing(); }
    {
        return policy_.probing();
    }

    decltype(auto) probes_started() const
        requires requires(const Policy& p) { p.probes_started(); }
    {
        return policy_.probes_started();
    }

    decltype(auto) adoptions() const
        requires requires(const Policy& p) { p.adoptions(); }
    {
        return policy_.adoptions();
    }

    Policy& underlying() { return policy_; }
    const Policy& underlying() const { return policy_; }

  private:
    Policy policy_{};
};

namespace detail {

template <typename Pol>
struct SelectForImpl {
    // Not a SelectPolicy: must be a binary SwitchPolicy (the adapter's
    // constraint produces the diagnostic otherwise).
    using type = SelectAdapter<Pol>;
};

template <SelectPolicy Pol>
struct SelectForImpl<Pol> {
    using type = Pol;
};

}  // namespace detail

/// The select-interface type a reactive primitive stores for a given
/// policy parameter: the policy itself if it is already a SelectPolicy,
/// else the binary adapter around it.
template <typename Pol>
using SelectFor = typename detail::SelectForImpl<Pol>::type;

// ---- the protocol set --------------------------------------------------

// clang-format off
/**
 * Structural core of a protocol-set member: a per-participant Node
 * type. Each primitive family refines this with its operational API —
 * the slot's consensus object, invalidate/revalidate protocol, acquire
 * attempt, and per-acquisition signal take a different (but uniform
 * within the family) shape per primitive; see BarrierProtocolSlot in
 * barrier/barrier_concepts.hpp for the barrier refinement.
 */
template <typename S>
concept ProtocolSlot =
    std::is_object_v<S> && std::default_initializable<typename S::Node>;
// clang-format on

namespace detail {

/// In-place slot storage (protocol objects hold atomics and are neither
/// movable nor copyable, so std::tuple construction-from-temporaries is
/// not an option): one recursive layer per slot, each constructed
/// directly from the shared constructor arguments.
template <std::size_t I, typename... Ss>
struct SlotStore;

template <std::size_t I>
struct SlotStore<I> {
    template <typename... Args>
    explicit SlotStore(const Args&...)
    {
    }
};

template <std::size_t I, typename S, typename... Rest>
struct SlotStore<I, S, Rest...> : SlotStore<I + 1, Rest...> {
    template <typename... Args>
    explicit SlotStore(const Args&... args)
        : SlotStore<I + 1, Rest...>(args...), slot(args...)
    {
    }

    S slot;
};

template <std::size_t Want, std::size_t At, typename S, typename... Rest>
auto& slot_get(SlotStore<At, S, Rest...>& store)
{
    if constexpr (Want == At)
        return store.slot;
    else
        return slot_get<Want>(
            static_cast<SlotStore<At + 1, Rest...>&>(store));
}

template <typename Fn, std::size_t At, typename S, typename... Rest>
void slot_visit(SlotStore<At, S, Rest...>& store, std::uint32_t index,
                Fn& fn)
{
    if (index == At) {
        fn(store.slot, std::integral_constant<std::size_t, At>{});
        return;
    }
    if constexpr (sizeof...(Rest) > 0) {
        slot_visit(static_cast<SlotStore<At + 1, Rest...>&>(store), index,
                   fn);
    } else {
        // Out-of-range index (a caller bypassing the consensus-side
        // clamp): loud in debug builds; in release, dispatch to the
        // last slot — the same clamp the consensus side applies —
        // rather than silently dropping the operation (a skipped
        // barrier arrival would deadlock the episode, a skipped lock
        // op would corrupt the protocol state).
        assert(false && "protocol index out of range");
        fn(store.slot, std::integral_constant<std::size_t, At>{});
    }
}

}  // namespace detail

/**
 * An ordered set of N protocol implementations behind one reactive
 * object. Order is the set's *scalability order* (index 0 = the
 * low-contention protocol, highest index = the most scalable one):
 * `ProtocolSignal::drift` and the ladder policies are defined against
 * it. Every slot is constructed from the same constructor arguments
 * (each family fixes a uniform (shape, options) constructor — for
 * barriers, `(participants, BarrierSlotOptions)`).
 */
template <ProtocolSlot... Slots>
    requires(sizeof...(Slots) >= 2)
class ProtocolSet {
  public:
    static constexpr std::uint32_t kCount =
        static_cast<std::uint32_t>(sizeof...(Slots));

    /// Aggregate per-participant state: one Node per slot.
    using Nodes = std::tuple<typename Slots::Node...>;

    template <typename... Args>
    explicit ProtocolSet(const Args&... args) : slots_(args...)
    {
    }

    /// Compile-time-indexed slot access.
    template <std::size_t I>
    auto& get()
    {
        static_assert(I < sizeof...(Slots));
        return detail::slot_get<I>(slots_);
    }

    /// Runtime-indexed visit: fn(slot, integral_constant<size_t, I>).
    /// An out-of-range index clamps to the last slot (never a no-op).
    template <typename Fn>
    void dispatch(std::uint32_t index, Fn&& fn)
    {
        detail::slot_visit(slots_, index, fn);
    }

  private:
    detail::SlotStore<0, Slots...> slots_;
};

// ---- N-ary selection policies ------------------------------------------

/**
 * The 3-competitive rule generalized to an N-protocol ladder with one
 * cumulative-residual account **per protocol index**.
 *
 * While protocol i executes, a drift-up observation credits
 * `account[i+1]` with `residual_up` and a drift-down observation
 * credits `account[i-1]` with `residual_down` (the set's scalability
 * order makes the adjacent rung the candidate the evidence argues
 * for). When any account reaches the switch round trip the policy
 * moves there and consumes only that account: evidence concerning
 * *other* protocols survives both breaks in the signal streak and
 * protocol changes that do not involve them — the N-ary extension of
 * the accumulate-across-breaks property that yields the competitive
 * bound (a round trip through a third protocol cannot erase what has
 * been learned about a first).
 *
 * With N = 2 this is the Competitive3Policy decision rule with the
 * cumulative account split per direction.
 */
class LadderCompetitivePolicy {
  public:
    struct Params {
        std::uint32_t protocols = 2;       ///< N (ladder rungs)
        std::uint64_t residual_up = 150;   ///< per drift-up observation
        std::uint64_t residual_down = 15;  ///< per drift-down observation
        std::uint64_t switch_round_trip = 8800;
    };

    LadderCompetitivePolicy() : LadderCompetitivePolicy(Params{}) {}

    explicit LadderCompetitivePolicy(Params p)
        : params_(p),
          accounts_(p.protocols < 2 ? 2 : p.protocols, 0)
    {
    }

    std::uint32_t next_protocol(ProtocolSignal s)
    {
        const auto n = static_cast<std::uint32_t>(accounts_.size());
        const std::uint32_t i = s.protocol < n ? s.protocol : n - 1;
        if (s.drift > 0 && i + 1 < n)
            accounts_[i + 1] += params_.residual_up;
        else if (s.drift < 0 && i > 0)
            accounts_[i - 1] += params_.residual_down;
        // Only the adjacent rungs can have just crossed the bar, but
        // scanning keeps the invariant obvious: first full account wins.
        for (std::uint32_t j = 0; j < n; ++j) {
            if (j != i && accounts_[j] >= params_.switch_round_trip) {
                accounts_[j] = 0;  // evidence consumed by the move
                return j;
            }
        }
        return i;
    }

    void on_switch() {}

    /// Per-protocol cumulative account (tests, diagnostics).
    std::uint64_t account(std::uint32_t j) const { return accounts_[j]; }

    std::uint32_t protocols() const
    {
        return static_cast<std::uint32_t>(accounts_.size());
    }

    /// Re-sizes the ladder to @p n rungs, clearing the accounts (the
    /// reactive primitives call this at construction so a
    /// default-constructed policy matches its ProtocolSet instead of
    /// silently operating on the wrong rung count).
    void resize_protocols(std::uint32_t n)
    {
        if (n == protocols())
            return;
        accounts_.assign(n < 2 ? 2 : n, 0);
    }

  private:
    Params params_;
    std::vector<std::uint64_t> accounts_;
};

static_assert(SelectPolicy<LadderCompetitivePolicy>);
static_assert(!CalibratingSelectPolicy<LadderCompetitivePolicy>);

/**
 * Measured N-protocol selection: per-protocol-index cost EWMAs plus
 * bounded epsilon-greedy probing, for sets whose rungs drift signals
 * alone cannot rank (drift says "more scalable would help", but not
 * whether the combining tree or the dissemination barrier is the
 * better scalable rung at this participant count).
 *
 * Operation (all in-consensus, mirroring CalibratedCompetitive3Policy):
 *
 *  - Every observation's cycle sample updates the executing rung's
 *    EWMA (`EwmaStat`, first sample replaces the empty seed; the first
 *    sample after any protocol change is discarded — it pays the
 *    switch disruption, not the rung's steady cost).
 *  - Drift maintains per-destination accounts exactly like
 *    LadderCompetitivePolicy, but a full account triggers a
 *    measurement **excursion** (probe) into that rung rather than a
 *    committed switch; each consumed account doubles that
 *    destination's bar (capped), so persistent-but-wrong drift
 *    evidence backs off instead of oscillating the object.
 *  - A scheduled probe also fires every `probe_period` observations
 *    (doubling up to `probe_backoff_cap` while probes keep confirming
 *    the status quo), aimed at the candidate with the fullest account,
 *    then the stalest estimate — so every rung's estimate is
 *    periodically refreshed even in a signal-free steady state.
 *  - A probe samples `probe_len` observations at the probed rung, then
 *    decides: a *scheduled* probe **adopts** the rung as the new home
 *    iff its measured cost beats the home rung's by
 *    `adopt_margin_pct`; a *drift-triggered* probe adopts unless the
 *    rung measures worse by that margin — the signals carry
 *    information the latency average cannot (a straggler-dominated
 *    episode costs the same measured spread on every rung, but the
 *    skewed signal knows the scalable structure is pure overhead), so
 *    sustained drift wins measurement ties. Adoption resets all probe
 *    backoff (the regime moved); otherwise the object returns home and
 *    the cadence backs off.
 *
 * Probe cost is bounded (probe_len observations per period, at most
 * one round trip each way), so as with the calibrated binary policies
 * the regret of measuring stays a small constant fraction while the
 * unbounded cost of trusting wrong constants disappears. Without cycle
 * samples (a non-calibrating caller) the policy degenerates to probing
 * with no adoption evidence and stays home; use it with calibrating
 * primitives.
 */
class CalibratedLadderPolicy {
  public:
    struct Params {
        std::uint32_t protocols = 2;  ///< N (ladder rungs)
        std::uint32_t ewma_shift = 2;
        /// Observations between scheduled probes (0 disables them);
        /// doubles per status-quo-confirming probe up to the cap.
        std::uint32_t probe_period = 16;
        std::uint32_t probe_backoff_cap = 5;
        /// Observations sampled at the probed rung per excursion (the
        /// first is the discarded post-switch sample).
        std::uint32_t probe_len = 3;
        /// Required measured advantage (percent) to adopt a probed rung.
        std::uint32_t adopt_margin_pct = 5;
        /// Scheduled probes skip rungs whose last estimate exceeds this
        /// multiple of the home rung's (0 disables the skip): a rung
        /// measured badly out of contention is not worth re-measuring
        /// on a timer — drift evidence still forces an excursion there,
        /// which is how regime changes (which come with signals)
        /// reopen it.
        std::uint32_t probe_skip_factor = 2;
        /// Drift-evidence account: residual per drifting observation
        /// and the bar that triggers an excursion toward the credited
        /// rung; each consumed account doubles its bar (capped).
        std::uint64_t drift_residual = 150;
        std::uint64_t drift_round_trip = 8800;
        std::uint32_t drift_backoff_cap = 6;
    };

    CalibratedLadderPolicy() : CalibratedLadderPolicy(Params{}) {}

    explicit CalibratedLadderPolicy(Params p)
        : params_(p),
          n_(p.protocols < 2 ? 2 : p.protocols),
          ewma_(n_, SocketSplitStat{0}),
          age_(n_, 0),
          accounts_(n_, 0),
          bar_shift_(n_, 0),
          switch_span_(EwmaStat{0}),
          wait_hold_(0),
          wait_depth_x16_(0)
    {
        if (params_.probe_len < 2)
            params_.probe_len = 2;  // first probe sample is discarded
    }

    // ---- SelectPolicy (estimate-only; no sample available) -----------

    std::uint32_t next_protocol(ProtocolSignal s)
    {
        skip_next_sample_ = false;
        return step(s);
    }

    // ---- CalibratingSelectPolicy -------------------------------------

    std::uint32_t next_protocol(ProtocolSignal s, std::uint64_t cycles)
    {
        return next_protocol(s, cycles, /*cross=*/false);
    }

    // ---- SocketAwareSelect -------------------------------------------
    //
    // Per-rung costs are socket-split (SocketSplitStat): on a
    // multi-socket host each rung's episode cost has an intra- and a
    // cross-socket-handoff population, and the rung ranking compares
    // the traffic-mix blends.

    std::uint32_t next_protocol(ProtocolSignal s, std::uint64_t cycles,
                                bool cross)
    {
        const std::uint32_t i = clamp(s.protocol);
        if (skip_next_sample_) {
            skip_next_sample_ = false;
        } else {
            // First observation replaces the empty seed outright.
            ewma_[i].observe(cycles, params_.ewma_shift, cross);
            age_[i] = 0;
        }
        return step(s);
    }

    void on_switch()
    {
        probe_ = probe_ == Probe::kPending ? Probe::kProbing : Probe::kNone;
        probe_acqs_ = 0;
        since_probe_ = 0;
        skip_next_sample_ = true;
    }

    void on_switch_cycles(std::uint64_t cycles)
    {
        // Recorded for diagnostics/tests; the excursion bars are the
        // policy's switch-cost control surface.
        switch_span_.observe(cycles, params_.ewma_shift);
    }

    // ---- WaitAwareSelect ---------------------------------------------
    //
    // The waiting axis shares the holder's release-time observation so
    // rung selection and wait-mode selection see one in-consensus
    // sample stream: hold spans and queue depths are protocol-agnostic
    // load evidence (a deep queue at release is *measured* pressure,
    // where drift is inferred). The lanes are estimator state exposed
    // to traces and tests; the rung decision stays drift+latency
    // driven — the waiting axis must not double-count evidence the
    // drift accounts already carry.

    void on_wait_signal(const WaitSignal& s)
    {
        wait_hold_.observe(s.hold_cycles, params_.ewma_shift);
        wait_depth_x16_.observe(
            static_cast<std::uint64_t>(s.queue_depth) * 16,
            params_.ewma_shift);
    }

    std::uint64_t wait_hold() const { return wait_hold_.value; }
    std::uint64_t wait_depth_x16() const { return wait_depth_x16_.value; }

    /// Re-sizes the ladder to @p n rungs, resetting the measurement
    /// and probe state (called by the reactive primitives at
    /// construction; see LadderCompetitivePolicy::resize_protocols).
    void resize_protocols(std::uint32_t n)
    {
        if (n == n_)
            return;
        n_ = n < 2 ? 2 : n;
        ewma_.assign(n_, SocketSplitStat{0});
        age_.assign(n_, 0);
        accounts_.assign(n_, 0);
        bar_shift_.assign(n_, 0);
        home_ = 0;
        probe_ = Probe::kNone;
        probe_target_ = 0;
        probe_acqs_ = 0;
        probe_backoff_ = 0;
        since_probe_ = 0;
    }

    // ---- monitoring (tests, experiments) -----------------------------

    std::uint32_t protocols() const { return n_; }
    std::uint32_t home() const { return home_; }
    bool probing() const { return probe_ != Probe::kNone; }
    std::uint64_t probes_started() const { return probes_started_; }
    std::uint64_t adoptions() const { return adoptions_; }
    std::uint64_t latency(std::uint32_t j) const { return ewma_[j].value(); }
    bool measured(std::uint32_t j) const { return ewma_[j].count() > 0; }
    std::uint64_t account(std::uint32_t j) const { return accounts_[j]; }
    std::uint64_t switch_span() const { return switch_span_.value; }

  private:
    enum class Probe : std::uint8_t { kNone, kPending, kProbing };

    std::uint32_t clamp(std::uint32_t i) const
    {
        return i < n_ ? i : n_ - 1;
    }

    std::uint32_t step(ProtocolSignal s)
    {
        const std::uint32_t i = clamp(s.protocol);
        for (std::uint32_t j = 0; j < n_; ++j)
            ++age_[j];
        if (probe_ == Probe::kPending) {
            // An observation before on_switch() means the caller either
            // dropped the requested change (e.g. it clamped an
            // out-of-range rung) — forget the probe and resume normal
            // operation, a permanent re-request would wedge the policy
            // — or switched without notifying; tolerate that too.
            if (i == probe_target_)
                probe_ = Probe::kProbing;
            else
                probe_ = Probe::kNone;
        }
        if (probe_ == Probe::kProbing) {
            if (i == probe_target_)
                return probe_step(i);
            probe_ = Probe::kNone;  // stale probe: the mode moved away
        }
        home_ = i;
        if (s.drift > 0 && i + 1 < n_)
            accounts_[i + 1] += params_.drift_residual;
        else if (s.drift < 0 && i > 0)
            accounts_[i - 1] += params_.drift_residual;
        ++since_probe_;
        // A full account forces an excursion toward the credited rung
        // (and raises its bar: wrong evidence must back off).
        for (std::uint32_t j = 0; j < n_; ++j) {
            if (j != i && accounts_[j] >= bar(j)) {
                accounts_[j] = 0;
                if (bar_shift_[j] < params_.drift_backoff_cap)
                    ++bar_shift_[j];
                return start_probe(j, /*drift_triggered=*/true);
            }
        }
        if (probe_due()) {
            const std::uint32_t target = pick_probe_target(i);
            if (target != i) {
                // The cadence backs off only when a probe actually
                // runs (and confirms the status quo); merely being
                // consulted — e.g. while every candidate is
                // skip-filtered — must not ratchet it.
                if (probe_backoff_ < params_.probe_backoff_cap)
                    ++probe_backoff_;
                return start_probe(target, /*drift_triggered=*/false);
            }
        }
        return i;
    }

    /// One observation executed at the probed rung; after probe_len the
    /// measured comparison decides between adoption and returning home.
    std::uint32_t probe_step(std::uint32_t i)
    {
        if (++probe_acqs_ < params_.probe_len)
            return i;
        probe_ = Probe::kNone;
        bool adopt = false;
        if (measured(i) && measured(home_)) {
            const std::uint64_t probed = ewma_[i].value() * 100;
            const std::uint64_t margin = params_.adopt_margin_pct;
            // Scheduled probes need a measured win; drift-triggered
            // probes carry signal evidence and win measurement ties
            // (see file header).
            adopt = probe_from_drift_
                        ? probed <= ewma_[home_].value() * (100 + margin)
                        : probed <= ewma_[home_].value() * (100 - margin);
        }
        if (adopt) {
            // Adoption: the regime moved. Re-arm every exploration
            // cadence so the new neighbourhood is mapped quickly.
            home_ = i;
            probe_backoff_ = 0;
            for (std::uint32_t j = 0; j < n_; ++j) {
                bar_shift_[j] = 0;
                accounts_[j] = 0;
            }
            ++adoptions_;
        }
        return home_;
    }

    std::uint32_t start_probe(std::uint32_t target, bool drift_triggered)
    {
        probe_ = Probe::kPending;
        probe_target_ = target;
        probe_from_drift_ = drift_triggered;
        probe_acqs_ = 0;
        since_probe_ = 0;
        ++probes_started_;
        return target;
    }

    bool probe_due() const
    {
        if (params_.probe_period == 0)
            return false;
        return since_probe_ >=
               (static_cast<std::uint64_t>(params_.probe_period)
                << probe_backoff_);
    }

    /// Candidate with the fullest drift account, then the stalest
    /// estimate (never-measured counts as infinitely stale). Rungs
    /// measured beyond probe_skip_factor of home are not scheduled
    /// (drift evidence can still force them); returns @p i when no
    /// candidate is worth a probe.
    std::uint32_t pick_probe_target(std::uint32_t i) const
    {
        std::uint32_t best = i;
        for (std::uint32_t j = 0; j < n_; ++j) {
            if (j == i)
                continue;
            if (params_.probe_skip_factor != 0 && measured(j) &&
                measured(i) &&
                ewma_[j].value() >
                    static_cast<std::uint64_t>(params_.probe_skip_factor) *
                        ewma_[i].value())
                continue;
            if (best == i ||
                (accounts_[j] != accounts_[best]
                     ? accounts_[j] > accounts_[best]
                     : staleness(j) > staleness(best)))
                best = j;
        }
        return best;
    }

    std::uint64_t staleness(std::uint32_t j) const
    {
        return ewma_[j].count() == 0 ? ~std::uint64_t{0} : age_[j];
    }

    std::uint64_t bar(std::uint32_t j) const
    {
        return params_.drift_round_trip << bar_shift_[j];
    }

    Params params_;
    std::uint32_t n_;
    std::vector<SocketSplitStat> ewma_;
    std::vector<std::uint64_t> age_;
    std::vector<std::uint64_t> accounts_;
    std::vector<std::uint32_t> bar_shift_;
    EwmaStat switch_span_;
    EwmaStat wait_hold_;       ///< WaitAwareSelect lane: hold spans
    EwmaStat wait_depth_x16_;  ///< WaitAwareSelect lane: depth x16
    std::uint32_t home_ = 0;
    std::uint32_t probe_target_ = 0;
    std::uint32_t probe_acqs_ = 0;
    std::uint32_t probe_backoff_ = 0;
    std::uint64_t since_probe_ = 0;
    std::uint64_t probes_started_ = 0;
    std::uint64_t adoptions_ = 0;
    Probe probe_ = Probe::kNone;
    bool probe_from_drift_ = false;
    bool skip_next_sample_ = false;
};

static_assert(SelectPolicy<CalibratedLadderPolicy>);
static_assert(CalibratingSelectPolicy<CalibratedLadderPolicy>);
static_assert(WaitAwareSelect<CalibratedLadderPolicy>);
static_assert(!WaitAwareSelect<LadderCompetitivePolicy>);

// The binary policies embed as two-protocol SelectPolicies.
static_assert(SelectPolicy<SelectAdapter<AlwaysSwitchPolicy>>);
static_assert(SelectPolicy<SelectAdapter<Competitive3Policy>>);
static_assert(CalibratingSelectPolicy<SelectAdapter<CalibratedCompetitive3Policy>>);
static_assert(FastPathAwareSelect<SelectAdapter<CalibratedCompetitive3Policy>>);
static_assert(!FastPathAwareSelect<SelectAdapter<HysteresisPolicy>>);
static_assert(!CalibratingSelectPolicy<SelectAdapter<Competitive3Policy>>);

}  // namespace reactive
