/**
 * @file
 * Protocol-switching policies (thesis Section 3.4).
 *
 * The reactive algorithms monitor run-time contention while executing a
 * protocol (failed test&set attempts in TTS mode; empty-queue
 * acquisitions in queue mode) and feed each acquisition's observation to
 * a *policy*, which decides whether to switch protocols on the upcoming
 * release. The thesis evaluates three policies:
 *
 *  - **always-switch** (the default in Section 3.3): switch as soon as
 *    the monitored signal says the current protocol is sub-optimal; a
 *    small signal-reliability streak (e.g. 4 consecutive empty-queue
 *    acquisitions, Section 3.7.1) guards against one-off noise.
 *  - **3-competitive** (Section 3.4.1): accumulate the residual cost of
 *    servicing requests with the sub-optimal protocol — *across* breaks
 *    in the streak — and switch when the cumulative residual exceeds the
 *    round-trip cost of switching protocols. Derived from Borodin,
 *    Linial & Saks' nearly-oblivious algorithm; worst case 3x optimal.
 *  - **hysteresis(x, y)** (Section 3.5.5): switch only after x
 *    consecutive high-contention TTS acquisitions (TTS->queue) or y
 *    consecutive empty-queue acquisitions (queue->TTS); any break
 *    resets the streak.
 *
 * A policy's methods are invoked only by the process currently holding
 * the lock (in-consensus), so policy state needs no synchronization of
 * its own — that is part of the consensus-object design.
 */
#pragma once

#include <concepts>
#include <cstdint>

namespace reactive {

// clang-format off
/// Policy concept: per-acquisition observations in either protocol.
template <typename P>
concept SwitchPolicy = requires(P p, bool b) {
    /// Observation in TTS mode; `contended` = this acquisition's failed
    /// test&set count exceeded the retry limit. Returns "switch now".
    { p.on_tts_acquire(b) } -> std::same_as<bool>;
    /// Observation in queue mode; `empty` = the queue was empty at this
    /// acquisition. Returns "switch now".
    { p.on_queue_acquire(b) } -> std::same_as<bool>;
    /// Notification that a protocol change was performed.
    { p.on_switch() } -> std::same_as<void>;
};
// clang-format on

/**
 * Default policy: switch immediately on a reliable signal.
 *
 * "Reliable" = one contended TTS acquisition (the retry limit already
 * filters noise within an acquisition), or `empty_streak_limit`
 * consecutive empty-queue acquisitions (thesis Section 3.7.1 uses 4).
 */
class AlwaysSwitchPolicy {
  public:
    explicit AlwaysSwitchPolicy(std::uint32_t empty_streak_limit = 4)
        : empty_limit_(empty_streak_limit)
    {
    }

    bool on_tts_acquire(bool contended) { return contended; }

    bool on_queue_acquire(bool empty)
    {
        if (!empty) {
            empty_streak_ = 0;
            return false;
        }
        return ++empty_streak_ >= empty_limit_;
    }

    void on_switch() { empty_streak_ = 0; }

  private:
    std::uint32_t empty_limit_;
    std::uint32_t empty_streak_ = 0;
};

/**
 * The 3-competitive policy of Section 3.4.1.
 *
 * Each request serviced by the sub-optimal protocol adds its residual
 * cost (the thesis measures ~150 cycles for a high-contention request
 * under TTS and ~15 cycles for a low-contention request under the MCS
 * protocol); the protocol is switched when the accumulated residual
 * exceeds the round-trip switching cost (~8000 + 800 cycles measured on
 * Alewife). The cumulative residual survives breaks in the streak —
 * the property that distinguishes it from hysteresis and yields the
 * competitive bound.
 */
class Competitive3Policy {
  public:
    struct Params {
        std::uint32_t residual_tts_contended = 150;
        std::uint32_t residual_queue_empty = 15;
        std::uint32_t switch_round_trip = 8800;
    };

    Competitive3Policy() = default;
    explicit Competitive3Policy(Params p) : params_(p) {}

    bool on_tts_acquire(bool contended)
    {
        if (contended)
            cumulative_ += params_.residual_tts_contended;
        return cumulative_ >= params_.switch_round_trip;
    }

    bool on_queue_acquire(bool empty)
    {
        if (empty)
            cumulative_ += params_.residual_queue_empty;
        return cumulative_ >= params_.switch_round_trip;
    }

    void on_switch() { cumulative_ = 0; }

    std::uint64_t cumulative_residual() const { return cumulative_; }

  private:
    Params params_;
    std::uint64_t cumulative_ = 0;
};

/**
 * Hysteresis(x, y) policy of Section 3.5.5: x consecutive contended
 * TTS acquisitions switch to the queue protocol; y consecutive
 * empty-queue acquisitions switch back; any break resets the streak.
 */
class HysteresisPolicy {
  public:
    /// Defaults match the thesis' Hysteresis(20, 55) configuration,
    /// chosen there to mirror the 3-competitive policy's thresholds.
    explicit HysteresisPolicy(std::uint32_t to_queue_streak = 20,
                              std::uint32_t to_tts_streak = 55)
        : x_(to_queue_streak), y_(to_tts_streak)
    {
    }

    bool on_tts_acquire(bool contended)
    {
        if (!contended) {
            contended_streak_ = 0;
            return false;
        }
        return ++contended_streak_ >= x_;
    }

    bool on_queue_acquire(bool empty)
    {
        if (!empty) {
            empty_streak_ = 0;
            return false;
        }
        return ++empty_streak_ >= y_;
    }

    void on_switch()
    {
        contended_streak_ = 0;
        empty_streak_ = 0;
    }

  private:
    std::uint32_t x_;
    std::uint32_t y_;
    std::uint32_t contended_streak_ = 0;
    std::uint32_t empty_streak_ = 0;
};

static_assert(SwitchPolicy<AlwaysSwitchPolicy>);
static_assert(SwitchPolicy<Competitive3Policy>);
static_assert(SwitchPolicy<HysteresisPolicy>);

}  // namespace reactive
