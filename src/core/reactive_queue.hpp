/**
 * @file
 * Invalidatable MCS-style queue: the queue-protocol component shared by
 * the reactive spin lock (Section 3.3.1) and the reactive fetch-and-op
 * (Section 3.3.2 / Appendix C).
 *
 * This is the MCS queue lock (fetch&store-only release, as on Alewife)
 * extended with the three mechanisms the reactive framework needs:
 *
 *  - the tail pointer doubles as the protocol's *consensus object*: a
 *    distinguished INVALID sentinel marks the protocol retired;
 *  - waiters can be signalled INVALID (instead of GO) so they abort and
 *    retry the operation with the currently valid protocol;
 *  - a process holding the valid consensus object of another protocol
 *    can capture an INVALID tail (`acquire_invalid`) to become the
 *    queue's holder while validating it, and a holder can retire the
 *    queue (`invalidate`), waking every waiter with INVALID.
 *
 * The usurper-repair path of the MCS release additionally handles the
 * reactive-only race where the usurper retires the protocol while the
 * repair is in flight (it dismantles the victim chain).
 */
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "platform/platform_concept.hpp"

namespace reactive {

/// See file header. All members are lock-free of extra state: the queue
/// *is* its own consensus object.
template <Platform P>
class ReactiveQueue {
  public:
    static constexpr std::uint32_t kWaiting = 0;
    static constexpr std::uint32_t kGo = 1;
    static constexpr std::uint32_t kInvalid = 2;

    struct Node {
        typename P::template Atomic<Node*> next{nullptr};
        typename P::template Atomic<std::uint32_t> status{kWaiting};
    };

    /// How an acquisition attempt concluded.
    enum class Outcome {
        kAcquiredEmpty,   ///< got the lock, queue was empty (low contention)
        kAcquiredWaited,  ///< got the lock after queuing behind a holder
        kInvalid,         ///< protocol retired; retry with the other one
    };

    /// @param initially_valid false leaves the tail INVALID (the state a
    ///        reactive algorithm starts its non-designated protocols in).
    explicit ReactiveQueue(bool initially_valid = false)
    {
        tail_.store(initially_valid ? nullptr : invalid_tail(),
                    std::memory_order_relaxed);
    }

    /// Attempts to acquire the queue lock with @p node.
    Outcome acquire(Node& node)
    {
        node.next.store(nullptr, std::memory_order_relaxed);
        node.status.store(kWaiting, std::memory_order_relaxed);
        Node* pred = tail_.exchange(&node, std::memory_order_acq_rel);
        if (pred == nullptr)
            return Outcome::kAcquiredEmpty;
        if (pred == invalid_tail()) {
            // We appended onto an invalid queue; dismantle the bogus
            // chain we now head so anyone queued behind us retries too.
            invalidate(&node);
            return Outcome::kInvalid;
        }
        pred->next.store(&node, std::memory_order_release);
        std::uint32_t s;
        while ((s = node.status.load(std::memory_order_acquire)) == kWaiting)
            P::pause();
        return s == kGo ? Outcome::kAcquiredWaited : Outcome::kInvalid;
    }

    /**
     * Site-aware acquisition: identical enqueue to acquire(Node&), but
     * the status wait runs through @p site's await (a
     * waiting::WaitSite — duck-typed here so the core layer stays free
     * of a waiting dependency), which may spin, spin-then-park, or park
     * immediately per the holder-published hint. @p wr receives the
     * AwaitResult when the wait actually ran (untouched on the empty /
     * invalid fast paths). Wakes are the *lock's* obligation: whoever
     * stores kGo / kInvalid into a node must follow with
     * site.wake_all() — the queue cannot do it because the release
     * store may grant a node whose owner races ahead and reuses it.
     */
    template <typename Site, typename Result>
    Outcome acquire(Node& node, Site& site, Result& wr)
    {
        node.next.store(nullptr, std::memory_order_relaxed);
        node.status.store(kWaiting, std::memory_order_relaxed);
        Node* pred = tail_.exchange(&node, std::memory_order_acq_rel);
        if (pred == nullptr)
            return Outcome::kAcquiredEmpty;
        if (pred == invalid_tail()) {
            invalidate(&node);
            return Outcome::kInvalid;
        }
        pred->next.store(&node, std::memory_order_release);
        std::uint32_t s = kWaiting;
        wr = site.await([&] {
            return (s = node.status.load(std::memory_order_acquire)) !=
                   kWaiting;
        });
        return s == kGo ? Outcome::kAcquiredWaited : Outcome::kInvalid;
    }

    /**
     * Non-blocking acquisition attempt: wins only an empty *valid*
     * queue (tail == nullptr); a busy or invalid queue fails without
     * enqueuing. Backs the std try_lock facade — a failure may be
     * spurious under contention, which Lockable permits.
     */
    bool try_acquire(Node& node)
    {
        node.next.store(nullptr, std::memory_order_relaxed);
        node.status.store(kWaiting, std::memory_order_relaxed);
        Node* expected = nullptr;
        return tail_.compare_exchange_strong(expected, &node,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed);
    }

    /**
     * Releases the queue lock held with @p node (fetch&store-only MCS
     * release with usurper repair). Handles the reactive race where the
     * usurper retires the protocol during the repair.
     */
    void release(Node& node)
    {
        Node* succ = node.next.load(std::memory_order_acquire);
        if (succ == nullptr) {
            Node* old_tail =
                tail_.exchange(nullptr, std::memory_order_acq_rel);
            if (old_tail == &node)
                return;  // truly no successor
            // Someone enqueued while we were emptying the queue. The
            // instant the tail went nullptr the lock was up for grabs;
            // the usurper (if any) is the legitimate holder now and may
            // even have performed a protocol change already.
            Node* usurper =
                tail_.exchange(old_tail, std::memory_order_acq_rel);
            while ((succ = node.next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
            if (usurper == invalid_tail()) {
                // The usurper retired the protocol: dismantle the victim
                // chain; victims retry with the valid protocol.
                invalidate(succ);
            } else if (usurper != nullptr) {
                usurper->next.store(succ, std::memory_order_release);
            } else {
                succ->status.store(kGo, std::memory_order_release);
            }
            return;
        }
        succ->status.store(kGo, std::memory_order_release);
    }

    /**
     * Captures the INVALID tail, making @p node the holder of a
     * freshly validated queue. Must be called only by a process holding
     * the valid consensus object of another protocol (serialization of
     * protocol changes, Section 3.2.5). Competing bogus chains from
     * late wrong-protocol arrivals are waited out.
     */
    void acquire_invalid(Node& node)
    {
        for (;;) {
            node.next.store(nullptr, std::memory_order_relaxed);
            node.status.store(kWaiting, std::memory_order_relaxed);
            Node* pred = tail_.exchange(&node, std::memory_order_acq_rel);
            if (pred == invalid_tail())
                return;
            assert(pred != nullptr &&
                   "queue must not be valid-free while another protocol "
                   "is valid");
            pred->next.store(&node, std::memory_order_release);
            while (node.status.load(std::memory_order_acquire) == kWaiting)
                P::pause();
        }
    }

    /**
     * Retires the queue protocol: swings the tail to INVALID and walks
     * the chain from @p head signalling INVALID to every node. Callers:
     * the queue holder performing a protocol change (head = its own
     * node), or internal cleanup paths.
     */
    void invalidate(Node* head)
    {
        Node* tail = tail_.exchange(invalid_tail(), std::memory_order_acq_rel);
        while (head != tail) {
            Node* next;
            while ((next = head->next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
            head->status.store(kInvalid, std::memory_order_release);
            head = next;
        }
        head->status.store(kInvalid, std::memory_order_release);
    }

    /// Racy check used by tests.
    bool is_invalid() const
    {
        return tail_.load(std::memory_order_relaxed) == invalid_tail();
    }

  private:
    static Node* invalid_tail()
    {
        return reinterpret_cast<Node*>(static_cast<std::uintptr_t>(1));
    }

    typename P::template Atomic<Node*> tail_{nullptr};
};

}  // namespace reactive
