/**
 * @file
 * RAII and std-compatibility facades over the reactive spin lock.
 *
 * The thesis emphasizes that reactive algorithms are drop-in library
 * replacements: "although the protocol and waiting mechanism in use may
 * change dynamically, the interface to the application program remains
 * constant" (Section 1.1). `ReactiveMutex` provides the conventional
 * scoped-guard interface on top of `ReactiveLock::acquire/release`,
 * plus the std Lockable trio (`lock()/try_lock()/unlock()`) so it works
 * with `std::lock_guard`, `std::unique_lock` and `std::scoped_lock`
 * out of the box — the unpaired node those interfaces cannot carry
 * lives in a thread-local slot keyed by the mutex address
 * (platform/thread_slots.hpp).
 */
#pragma once

#include <cstdint>

#include "core/reactive_lock.hpp"
#include "platform/thread_slots.hpp"

namespace reactive {

/**
 * Mutex-shaped wrapper. Prefer `ReactiveMutex::Guard` (scoped, node on
 * the caller's stack); the std Lockable interface is provided for code
 * written against `std::lock_guard`/`std::unique_lock`, at the cost of
 * a thread-local slot lookup per operation. As with `std::mutex`,
 * lock() is non-reentrant and unlock() must come from the locking
 * thread.
 */
template <Platform P, typename Policy = AlwaysSwitchPolicy,
          typename Queue = ReactiveQueue<P>, typename Waiting = SpinWaiting,
          typename WaitPolicy = CalibratedWaitPolicy>
class ReactiveMutex {
  public:
    using Lock = ReactiveLock<P, Policy, Queue, Waiting, WaitPolicy>;

    ReactiveMutex() = default;
    explicit ReactiveMutex(ReactiveLockParams params, Policy policy = Policy{})
        : lock_(params, std::move(policy))
    {
    }

    /// Scoped ownership; holds the queue node on the caller's stack.
    class Guard {
      public:
        explicit Guard(ReactiveMutex& m) : mutex_(m)
        {
            release_mode_ = mutex_.lock_.acquire(node_);
        }
        ~Guard() { mutex_.lock_.release(node_, release_mode_); }

        Guard(const Guard&) = delete;
        Guard& operator=(const Guard&) = delete;

      private:
        ReactiveMutex& mutex_;
        typename Lock::Node node_;
        typename Lock::ReleaseMode release_mode_;
    };

    // ---- std Lockable interface --------------------------------------

    void lock()
    {
        Held* h = Slots::claim(key());
        h->rm = lock_.acquire(h->node);
    }

    bool try_lock()
    {
        Held* h = Slots::claim(key());
        if (auto rm = lock_.try_acquire(h->node)) {
            h->rm = *rm;
            return true;
        }
        Slots::release(key());
        return false;
    }

    void unlock()
    {
        Held* h = Slots::claim(key());
        lock_.release(h->node, h->rm);
        Slots::release(key());
    }

    /// Underlying reactive lock (monitoring, tests). Replaces the
    /// pre-std-facade `lock()` accessor, whose name the Lockable
    /// interface now owns.
    Lock& lock_object() { return lock_; }

  private:
    /// Unpaired-acquisition state: the queue node plus the release
    /// token, in a thread-local slot while held.
    struct Held {
        typename Lock::Node node;
        typename Lock::ReleaseMode rm{};
    };
    using Slots = ThreadNodeSlots<Held>;

    /// Slots are released at every unlock, so the address is a valid
    /// key (see thread_slots.hpp on key choice).
    std::uint64_t key() const
    {
        return static_cast<std::uint64_t>(
            reinterpret_cast<std::uintptr_t>(this));
    }

    Lock lock_;
};

/**
 * NodeLock-conforming adapter over ReactiveLock, for generic code
 * written against the plain lock interface (benchmark harnesses,
 * application kernels). The release token rides inside the Node.
 */
template <Platform P, typename Policy = AlwaysSwitchPolicy,
          typename Queue = ReactiveQueue<P>, typename Waiting = SpinWaiting,
          typename WaitPolicy = CalibratedWaitPolicy>
class ReactiveNodeLock {
  public:
    using Inner = ReactiveLock<P, Policy, Queue, Waiting, WaitPolicy>;

    struct Node {
        typename Inner::Node qnode;
        typename Inner::ReleaseMode rm{};
    };

    ReactiveNodeLock() = default;
    explicit ReactiveNodeLock(ReactiveLockParams params, Policy policy = Policy{})
        : inner_(params, std::move(policy))
    {
    }

    /// Queue-slot configuration pass-through (e.g. CohortQueue::Params).
    template <typename QueueParams>
        requires std::constructible_from<Inner, ReactiveLockParams, Policy,
                                         QueueParams>
    ReactiveNodeLock(ReactiveLockParams params, Policy policy,
                     const QueueParams& queue_params)
        : inner_(params, std::move(policy), queue_params)
    {
    }

    void lock(Node& n) { n.rm = inner_.acquire(n.qnode); }
    void unlock(Node& n) { inner_.release(n.qnode, n.rm); }

    Inner& inner() { return inner_; }

  private:
    Inner inner_;
};

}  // namespace reactive
