/**
 * @file
 * RAII facade over the reactive spin lock.
 *
 * The thesis emphasizes that reactive algorithms are drop-in library
 * replacements: "although the protocol and waiting mechanism in use may
 * change dynamically, the interface to the application program remains
 * constant" (Section 1.1). `ReactiveMutex` provides the conventional
 * lock()/unlock() and scoped-guard interface on top of
 * `ReactiveLock::acquire/release`, stashing the queue node and release
 * token in the guard.
 */
#pragma once

#include "core/reactive_lock.hpp"

namespace reactive {

/**
 * Mutex-shaped wrapper. Prefer `ReactiveMutex::Guard` (scoped); the
 * lock()/unlock() pair is provided for code that cannot scope, at the
 * cost of one slot of per-mutex state for the unpaired node.
 */
template <Platform P, SwitchPolicy Policy = AlwaysSwitchPolicy>
class ReactiveMutex {
  public:
    using Lock = ReactiveLock<P, Policy>;

    ReactiveMutex() = default;
    explicit ReactiveMutex(ReactiveLockParams params, Policy policy = Policy{})
        : lock_(params, policy)
    {
    }

    /// Scoped ownership; holds the queue node on the caller's stack.
    class Guard {
      public:
        explicit Guard(ReactiveMutex& m) : mutex_(m)
        {
            release_mode_ = mutex_.lock_.acquire(node_);
        }
        ~Guard() { mutex_.lock_.release(node_, release_mode_); }

        Guard(const Guard&) = delete;
        Guard& operator=(const Guard&) = delete;

      private:
        ReactiveMutex& mutex_;
        typename Lock::Node node_;
        typename Lock::ReleaseMode release_mode_;
    };

    /// Underlying reactive lock (monitoring, tests).
    Lock& lock() { return lock_; }

  private:
    Lock lock_;
};

/**
 * NodeLock-conforming adapter over ReactiveLock, for generic code
 * written against the plain lock interface (benchmark harnesses,
 * application kernels). The release token rides inside the Node.
 */
template <Platform P, SwitchPolicy Policy = AlwaysSwitchPolicy>
class ReactiveNodeLock {
  public:
    using Inner = ReactiveLock<P, Policy>;

    struct Node {
        typename Inner::Node qnode;
        typename Inner::ReleaseMode rm{};
    };

    ReactiveNodeLock() = default;
    explicit ReactiveNodeLock(ReactiveLockParams params, Policy policy = Policy{})
        : inner_(params, policy)
    {
    }

    void lock(Node& n) { n.rm = inner_.acquire(n.qnode); }
    void unlock(Node& n) { inner_.release(n.qnode, n.rm); }

    Inner& inner() { return inner_; }

  private:
    Inner inner_;
};

}  // namespace reactive
