/**
 * @file
 * The generic protocol-selection framework (thesis Section 3.2 and
 * Appendix B): protocol objects, the protocol manager, and the naive
 * lock-guarded protocol object used as the correctness baseline.
 *
 * A *protocol object* wraps one protocol and supports:
 *   - DoProtocol : run the protocol; reports `invalid` if the protocol
 *                  was not the designated one,
 *   - Invalidate : retire the protocol (returns true to the single
 *                  winner),
 *   - Validate   : bring the protocol to a consistent state and
 *                  designate it,
 *   - IsValid    : racy hint.
 *
 * The *protocol manager* (Figure 3.6) loops executing whichever object
 * is valid, returning only results of valid executions, and preserves
 * the invariant that at most one protocol object is valid.
 *
 * Production reactive algorithms (reactive_lock.hpp,
 * reactive_fetch_op.hpp) collapse this layering into the protocols
 * themselves using consensus objects (Section 3.2.5/3.2.6). The generic
 * framework here exists because the thesis presents it as the way to
 * *derive* such algorithms: the test suite uses it to check
 * C-serializability properties, and `bench/ablation_framework` measures
 * the overhead the consensus-object optimization removes (the
 * lock-guarded variant of Figure 3.7 vs. the fused implementation).
 */
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <utility>

#include "locks/tts_lock.hpp"
#include "platform/platform_concept.hpp"

namespace reactive {

// clang-format off
/**
 * Protocol-object concept (Figure 3.5). `Op` is the request type;
 * `Result` the response. DoProtocol returns nullopt for invalid
 * executions, which the manager turns into a retry.
 */
template <typename PO>
concept ProtocolObject = requires(PO po, typename PO::Op op) {
    typename PO::Op;
    typename PO::Result;
    { po.do_protocol(op) } -> std::same_as<std::optional<typename PO::Result>>;
    { po.invalidate() } -> std::same_as<bool>;
    { po.validate() } -> std::same_as<void>;
    { po.is_valid() } -> std::same_as<bool>;
};
// clang-format on

/**
 * The naive protocol object of Figure 3.7: every operation runs under a
 * lock. Correct by construction (operations serialize), but it
 * serializes protocol executions and adds a lock acquisition to every
 * synchronization operation — the two defects (Section 3.2.4) that
 * motivate consensus objects. Kept as the reference implementation for
 * differential tests and the framework-overhead ablation.
 *
 * @tparam P        Platform model.
 * @tparam Protocol underlying protocol: provides Op/Result, run(Op),
 *                  and update() (reset to a consistent state).
 */
template <Platform P, typename Protocol>
class LockedProtocolObject {
  public:
    using Op = typename Protocol::Op;
    using Result = typename Protocol::Result;

    explicit LockedProtocolObject(bool initially_valid = false, Protocol proto = {})
        : protocol_(std::move(proto)), valid_(initially_valid ? 1u : 0u)
    {
    }

    std::optional<Result> do_protocol(Op op)
    {
        typename TtsLock<P>::Node n;
        guard_.lock(n);
        std::optional<Result> r;
        if (valid_.load(std::memory_order_relaxed) != 0)
            r = protocol_.run(op);
        guard_.unlock(n);
        return r;
    }

    bool invalidate()
    {
        typename TtsLock<P>::Node n;
        guard_.lock(n);
        const bool won = valid_.load(std::memory_order_relaxed) != 0;
        valid_.store(0, std::memory_order_relaxed);
        guard_.unlock(n);
        return won;
    }

    void validate()
    {
        typename TtsLock<P>::Node n;
        guard_.lock(n);
        if (valid_.load(std::memory_order_relaxed) == 0) {
            protocol_.update();
            valid_.store(1, std::memory_order_relaxed);
        }
        guard_.unlock(n);
    }

    bool is_valid() const
    {
        return valid_.load(std::memory_order_relaxed) != 0;
    }

    /// Direct access for state transfer during protocol changes.
    Protocol& protocol() { return protocol_; }

  private:
    TtsLock<P> guard_;
    Protocol protocol_;
    typename P::template Atomic<std::uint32_t> valid_;
};

/**
 * The protocol manager of Figure 3.6, for two protocol objects sharing
 * Op/Result types. `do_synch_op` returns only results from valid
 * executions; `do_change` preserves the at-most-one-valid invariant by
 * validating only after winning the invalidation of the other object.
 */
template <ProtocolObject A, ProtocolObject B>
    requires std::same_as<typename A::Op, typename B::Op> &&
             std::same_as<typename A::Result, typename B::Result>
class ProtocolManager {
  public:
    ProtocolManager(A& a, B& b) : a_(a), b_(b) {}

    typename A::Result do_synch_op(typename A::Op op)
    {
        for (;;) {
            if (a_.is_valid()) {
                if (auto r = a_.do_protocol(op))
                    return *r;
            } else if (b_.is_valid()) {
                if (auto r = b_.do_protocol(op))
                    return *r;
            }
        }
    }

    /// Requests a protocol change (either direction).
    void do_change()
    {
        if (a_.invalidate())
            b_.validate();
        else if (b_.invalidate())
            a_.validate();
    }

  private:
    A& a_;
    B& b_;
};

}  // namespace reactive
