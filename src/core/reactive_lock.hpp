/**
 * @file
 * The reactive spin lock (thesis Sections 3.3.1 and 3.7.3, Figures
 * 3.27-3.29): dynamically selects between the test-and-test-and-set
 * protocol (best at low contention) and an MCS-style queue protocol
 * (best at high contention).
 *
 * Design highlights, all from the thesis:
 *
 *  - **Consensus objects instead of locks.** The TTS lock word is the
 *    TTS protocol's consensus object; the queue tail pointer is the
 *    queue protocol's. The algorithm maintains the invariant that the
 *    two sub-locks are never free at the same time, so possessing a
 *    freshly-free sub-lock *is* possessing the valid protocol. Invalid
 *    protocols are left busy (TTS) or marked with an INVALID tail
 *    sentinel (queue), so a process executing the wrong protocol simply
 *    finds it busy and retries through the dispatcher. No extra
 *    synchronization sits on the common-case critical path.
 *  - **The mode variable is only a hint** (Section 3.3.1): it speeds up
 *    dispatch and is usually read-cached; the race between reading it
 *    and running a protocol is benign by the invariant above.
 *  - **Optimistic test&set fast path** (Section 3.7.3): acquisition
 *    first tries the TTS lock without even reading the mode variable,
 *    optimizing the no-contention latency; if the lock is in queue mode
 *    the attempt fails harmlessly (and pre-fetches the line).
 *  - **Protocol changes are made only by the lock holder** (a process
 *    with the valid consensus object), which serializes changes against
 *    all protocol executions — the C-serializability argument of
 *    Section 3.2.5.
 *  - **Monitoring rides on waiting** (Section 3.2.6): failed test&set
 *    counts and empty-queue observations are collected in code that was
 *    already spinning, and fed to a pluggable switching policy
 *    (Section 3.4) whose state is only touched in-consensus.
 *
 * Policy interface: decisions flow through the N-protocol selection
 * framework (core/protocol_set.hpp) — the holder builds a
 * `ProtocolSignal` (mode index + contention drift) and asks the policy
 * for `next_protocol`. Binary `SwitchPolicy` policies embed through
 * `SelectAdapter` with the identical historical call sequence
 * (`on_tts_acquire(contended)` / `on_queue_acquire(empty)`), so their
 * decisions are bit-compatible with the pre-ProtocolSet lock; `Mode`
 * values are the protocol indices of the lock's two-slot set.
 */
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "audit/audit.hpp"
#include "core/cost_model.hpp"
#include "core/policy.hpp"
#include "core/protocol_set.hpp"
#include "core/reactive_queue.hpp"
#include "platform/backoff.hpp"
#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"
#include "trace/instrument.hpp"
#include "waiting/reactive/wait_site.hpp"

namespace reactive {

/// Tunables for the reactive lock's contention monitors.
struct ReactiveLockParams {
    /// Failed test&set attempts within one acquisition that mark it
    /// "contended" (the TTS->queue signal).
    std::uint32_t tts_retry_limit = 8;
    /// Backoff while spinning on the TTS protocol.
    BackoffParams backoff = BackoffParams::for_contenders(64);
    /// Optimistic test&set fast path before consulting the mode hint
    /// (Section 3.7.3). Disable only for the ablation benchmark.
    bool optimistic_tts = true;
};

/**
 * Reactive spin lock selecting between TTS and MCS queue protocols.
 *
 * Usage mirrors the thesis code: `acquire` returns a release token that
 * encodes both which protocol the caller holds and whether a protocol
 * change is due on release; the token must be passed to `release`.
 * `ReactiveMutex` wraps this into an RAII interface.
 *
 * @tparam P      Platform model.
 * @tparam Policy switching policy (Section 3.4): a binary SwitchPolicy
 *                or a two-protocol SelectPolicy.
 * @tparam Queue  queue-protocol slot: any type speaking ReactiveQueue's
 *                consensus-object dialect (acquire/Outcome, release,
 *                acquire_invalid, invalidate). The default is the flat
 *                MCS ReactiveQueue; CohortQueue (core/cohort_queue.hpp)
 *                substitutes NUMA cohort handoff.
 * @tparam Waiting  waiting-mode axis (waiting/reactive/wait_site.hpp):
 *                SpinWaiting (default) keeps the historical pure-spin
 *                slow paths byte-for-byte (every parking branch is
 *                `if constexpr`-pruned and the site/state members are
 *                empty); ParkWaiting dispatches the slow-path waits
 *                through the holder-published hint (spin / two-phase /
 *                park) over an object-level WaitSite.
 * @tparam WaitPolicy  waiting-mode selection policy (WaitSelectPolicy;
 *                only instantiated under ParkWaiting). The default
 *                calibrates Lpoll = alpha x B from measured wake
 *                latencies; FixedWaitPolicy forces a static mode.
 */
template <Platform P, typename Policy = AlwaysSwitchPolicy,
          typename Queue = ReactiveQueue<P>,
          typename Waiting = SpinWaiting,
          typename WaitPolicy = CalibratedWaitPolicy>
class ReactiveLock {
  public:
    /// The select-interface view of the policy parameter.
    using Select = SelectFor<Policy>;
    /// The lock's protocol set is fixed: {TTS, MCS queue}.
    static constexpr std::uint32_t kProtocols = 2;

    static_assert(SelectPolicy<Select>);

    /// Protocol index currently servicing requests (the hint
    /// variable), under the set's conventional names.
    enum class Mode : std::uint32_t { kTts = 0, kQueue = 1 };

    /// Release token: protocol held plus any pending protocol change.
    enum class ReleaseMode : std::uint32_t {
        kTts,         ///< release the TTS lock
        kQueue,       ///< release the queue lock
        kTtsToQueue,  ///< release and change TTS -> queue
        kQueueToTts,  ///< release and change queue -> TTS
    };

    /// Queue node; must live from acquire() to release().
    using Node = typename Queue::Node;

    /// The object-level waiting site for this Waiting tag.
    using Site = WaitSite<P, Waiting>;
    /// Whether slow-path waits may park (ParkWaiting instantiations).
    static constexpr bool kParking = Site::kParking;

    static_assert(WaitSelectPolicy<WaitPolicy>);

    ReactiveLock() : ReactiveLock(ReactiveLockParams{}, Policy{}) {}

    explicit ReactiveLock(ReactiveLockParams params, Policy policy = Policy{})
        : queue_(/*initially_valid=*/false),
          params_(params),
          select_(std::move(policy))
    {
        init();
    }

    /// Queue-slot configuration pass-through (e.g. CohortQueue::Params).
    template <typename QueueParams>
        requires std::constructible_from<Queue, bool, QueueParams>
    ReactiveLock(ReactiveLockParams params, Policy policy,
                 const QueueParams& queue_params)
        : queue_(/*initially_valid=*/false, queue_params),
          params_(params),
          select_(std::move(policy))
    {
        init();
    }

    /// Acquires the lock; returns the token to pass to release().
    ReleaseMode acquire(Node& node)
    {
        // Optimistic test&set (Section 3.7.3): correct regardless of
        // mode because a free TTS lock implies the TTS protocol is the
        // valid one. Note that, as in the thesis' Figure 3.27, the fast
        // path performs *no* monitoring: a fast-path win says nothing
        // reliable about contention, and feeding it to a streak-based
        // policy as "uncontended" would break hysteresis streaks that
        // spinning acquirers are legitimately building. Fast-path-aware
        // calibrating policies get a bare won-here notification (the
        // winner holds the lock, so the private counter increment is
        // in-consensus; no timestamp, no shared write).
        if (params_.optimistic_tts &&
            tts_lock_.exchange(kBusy, std::memory_order_acquire) == kFree) {
            if constexpr (FastPathAwareSelect<Select>)
                select_.on_tts_fast_acquire();
            // A fast-path winner is still the new holder: the *next*
            // slow acquisition's handoff-locality bit is measured
            // against this socket (plain store, no timestamp).
            if constexpr (kSocketAware)
                (void)note_holder_socket();
            stamp_hold();
            REACTIVE_TRACE_EVENT(trace::EventType::kFastAcquire,
                                 trace::ObjectClass::kLock, trace_id_,
                                 kTtsIndex, kTtsIndex, P::now());
            return ReleaseMode::kTts;
        }
        // Dispatch loop: each protocol attempt either succeeds or
        // observes that its protocol was retired and retries with the
        // other one (the protocol-manager loop of Figure 3.6, flattened
        // into the lock per Section 3.2.6).
        Mode m = mode();
        for (;;) {
            if (m == Mode::kTts) {
                if (auto r = try_acquire_tts())
                    return *r;
                m = Mode::kQueue;
            } else {
                if (auto r = try_acquire_queue(node))
                    return *r;
                m = Mode::kTts;
            }
        }
    }

    /**
     * Single non-blocking acquisition attempt: the optimistic test&set,
     * then — if the hint says queue mode — a tail CAS that wins only an
     * empty valid queue. Neither path performs monitoring (a try is the
     * fast path's sibling: its outcome says nothing reliable about
     * contention), so like the optimistic fast path it leaves policy
     * streaks untouched; a fast-path-aware policy gets the same
     * won-here notification. Failure may be spurious, as Lockable
     * permits.
     */
    std::optional<ReleaseMode> try_acquire(Node& node)
    {
        if (tts_lock_.load(std::memory_order_relaxed) == kFree &&
            tts_lock_.exchange(kBusy, std::memory_order_acquire) == kFree) {
            if constexpr (FastPathAwareSelect<Select>)
                select_.on_tts_fast_acquire();
            if constexpr (kSocketAware)
                (void)note_holder_socket();
            stamp_hold();
            REACTIVE_TRACE_EVENT(trace::EventType::kFastAcquire,
                                 trace::ObjectClass::kLock, trace_id_,
                                 kTtsIndex, kTtsIndex, P::now());
            return ReleaseMode::kTts;
        }
        if (mode() == Mode::kQueue && queue_.try_acquire(node)) {
            if constexpr (kSocketAware)
                (void)note_holder_socket();
            stamp_hold();
            return ReleaseMode::kQueue;
        }
        return std::nullopt;
    }

    /// Releases the lock, performing any pending protocol change.
    void release(Node& node, ReleaseMode mode)
    {
        // Waiting-mode selection happens first, while still in
        // consensus: fold this hold's span and the free queue-depth
        // signal into the wait policy and publish the new hint, so the
        // waiters this release is about to signal dispatch under it.
        update_wait_policy();
        switch (mode) {
        case ReleaseMode::kTts:
            release_tts();
            break;
        case ReleaseMode::kQueue:
            queue_.release(node);
            break;
        case ReleaseMode::kTtsToQueue:
            release_tts_to_queue(node);
            break;
        case ReleaseMode::kQueueToTts:
            release_queue_to_tts(node);
            break;
        }
        // Parking wake rule: every condition-changing store above (TTS
        // free, queue grant, mode flip, invalidation walk) is followed
        // here, in the same thread, by a site broadcast. Parked waiters
        // re-check their own predicate and re-park if it still fails.
        if constexpr (kParking) {
            if constexpr (trace::kCompiled) {
                if (trace::enabled()) [[unlikely]] {
                    const std::uint32_t w = wsite_.waiters();
                    if (w > 0)
                        trace::emit(trace::EventType::kWake,
                                    trace::ObjectClass::kLock, trace_id_, 0,
                                    0, P::now(), w);
                }
            }
            wsite_.wake_all();
        }
    }

    /// Current protocol-index hint (tests and monitoring).
    std::uint32_t protocol_index() const
    {
        return mode_.value.load(std::memory_order_relaxed);
    }

    /// protocol_index() under the set's conventional names.
    Mode mode() const { return static_cast<Mode>(protocol_index()); }

    /// Number of completed protocol changes (tests and experiments).
    std::uint64_t protocol_changes() const { return protocol_changes_; }

    /// Policy state access (in-consensus callers only). Returns the
    /// policy as passed in (binary policies are unwrapped from their
    /// adapter).
    Policy& policy()
    {
        if constexpr (SelectPolicy<Policy>)
            return select_;
        else
            return select_.underlying();
    }

    /// Wait-policy state access (in-consensus callers only).
    WaitPolicy& wait_policy()
        requires kParking
    {
        return wstate_.policy;
    }

    /// The packed wait hint currently published to waiters (tests).
    std::uint32_t wait_hint() const { return wsite_.hint(); }

    /// Wait-mode transitions published over the lock's lifetime
    /// (tests/benchmarks; 0 for a run the policy never left spin).
    std::uint64_t wait_mode_changes() const
        requires kParking
    {
        return wstate_.mode_changes;
    }

  private:
    static constexpr std::uint32_t kFree = 0;
    static constexpr std::uint32_t kBusy = 1;
    static constexpr std::uint32_t kTtsIndex =
        static_cast<std::uint32_t>(Mode::kTts);
    static constexpr std::uint32_t kQueueIndex =
        static_cast<std::uint32_t>(Mode::kQueue);

    /// Calibrating policies (core/cost_model.hpp) receive each
    /// slow-path acquisition's measured latency and each switch's
    /// measured duration; for plain policies no timestamp is ever
    /// taken. Either way the samples flow only through policy state
    /// (in-consensus, non-shared), never through shared memory.
    static constexpr bool kCalibrating = CalibratingSelectPolicy<Select>;

    /// Socket-aware policies additionally receive each sample's
    /// socket-of-previous-holder bit, splitting the latency classes by
    /// handoff locality (SocketSplitStat). The bit is free: the new
    /// holder knows its own socket, and the previous holder's socket
    /// is holder-only plain state carried across the handoff
    /// (SocketHandoffTracker, platform/platform_concept.hpp).
    static constexpr bool kSocketAware = SocketAwareSelect<Select>;

    bool note_holder_socket() { return holder_socket_.note_handoff(); }

    // ---- waiting-mode selection (ParkWaiting instantiations only) ----

    /// Park-axis holder state; the empty stand-in keeps SpinWaiting
    /// object layout (and code) identical to the pre-subsystem lock.
    struct ParkWaitState {
        WaitPolicy policy{};
        std::uint64_t hold_start = 0;  ///< stamped at every acquisition
        /// Wait-mode transitions published so far. Observability only
        /// (tests, benchmarks): the *final* hint says nothing about a
        /// run — a calibrated policy correctly decays back to spin as
        /// contention drains at the end.
        std::uint64_t mode_changes = 0;
    };
    struct NoWaitState {};
    using WaitState = std::conditional_t<kParking, ParkWaitState, NoWaitState>;

    /// Every successful acquisition stamps the hold start so the
    /// departing holder can report its span for free. The stamp also
    /// closes the release-to-acquire handoff gap — the policy's
    /// saturation discriminator — but no extra call is needed here: the
    /// policy recovers the gap from the release-stamped WaitSignal
    /// (now_cycles - hold_cycles = this stamp).
    void stamp_hold()
    {
        if constexpr (kParking)
            wstate_.hold_start = P::now();
    }

    /// A slow-path winner reports how it waited. Called only once the
    /// caller *is* the holder, so feeding the measured samples to the
    /// (single-writer) wait policy is in-consensus.
    void note_waited(const AwaitResult& wr)
    {
        if constexpr (kParking) {
            if constexpr (requires(std::uint64_t c) {
                              wstate_.policy.note_wait(c);
                          }) {
                if (wr.wait_cycles != 0)
                    wstate_.policy.note_wait(wr.wait_cycles);
            }
            if (!wr.blocked)
                return;
            if (wr.wake_latency != 0)
                wstate_.policy.note_wake_latency(wr.wake_latency);
            if constexpr (trace::kCompiled) {
                if (trace::enabled()) [[unlikely]] {
                    const auto m = static_cast<std::uint8_t>(
                        unpack_wait_hint(wsite_.hint()).mode);
                    trace::emit(trace::EventType::kPark,
                                trace::ObjectClass::kLock, trace_id_, m, m,
                                P::now(), wr.wait_cycles, wr.wake_latency);
                }
            }
        }
    }

    /// Departing holder (still in consensus): fold this hold's span and
    /// the free queue-depth signal into the wait policy, publish the new
    /// hint, and mirror the signal into a wait-aware protocol policy.
    void update_wait_policy()
    {
        if constexpr (kParking) {
            WaitSignal ws;
            const std::uint64_t now = P::now();
            ws.hold_cycles =
                now > wstate_.hold_start ? now - wstate_.hold_start : 0;
            ws.queue_depth = wsite_.waiters();
            ws.now_cycles = now;
            const auto old_mode = static_cast<std::uint8_t>(
                unpack_wait_hint(wstate_.policy.hint()).mode);
            const std::uint32_t h = wstate_.policy.on_release(ws);
            const auto new_mode =
                static_cast<std::uint8_t>(unpack_wait_hint(h).mode);
            if (new_mode != old_mode)
                ++wstate_.mode_changes;
            wsite_.set_hint(h);
            if constexpr (requires(std::uint32_t x) {
                              queue_.set_wait_hint(x);
                          })
                queue_.set_wait_hint(h);
            if constexpr (WaitAwareSelect<Select>)
                select_.on_wait_signal(ws);
            if constexpr (trace::kCompiled) {
                if (new_mode != old_mode && trace::enabled()) [[unlikely]] {
                    std::uint64_t ests = 0;
                    std::uint64_t ew = 0;
                    if constexpr (requires {
                                      wstate_.policy.hold_estimate();
                                      wstate_.policy.block_estimate();
                                      wstate_.policy.expected_wait();
                                  }) {
                        ests = (wstate_.policy.hold_estimate() << 32) |
                               (wstate_.policy.block_estimate() &
                                0xffffffffull);
                        ew = wstate_.policy.expected_wait();
                    }
                    trace::emit(trace::EventType::kWaitModeSwitch,
                                trace::ObjectClass::kLock, trace_id_,
                                old_mode, new_mode, P::now(), h, ests, ew);
                }
            }
        }
    }

    /// Bookkeeping common to every successful TTS acquisition; the
    /// caller holds the lock, so policy state is safe to touch. A
    /// latency sample is passed only when its class is clean: an
    /// immediate win measures the uncontended protocol cost, a
    /// past-the-retry-limit win measures the contended cost. Wins that
    /// merely spun a while measure *waiting*, which would poison the
    /// estimator's residuals (see cost_model.hpp).
    ReleaseMode tts_acquired(bool contended, bool spun, std::uint64_t start)
    {
        stamp_hold();
        const ProtocolSignal sig{kTtsIndex, contended ? +1 : 0};
        const trace::ProbeWatch<Select> probe(select_, trace::enabled());
        [[maybe_unused]] std::uint64_t cycles = 0;
        std::uint32_t next;
        if constexpr (kCalibrating) {
            if (contended || !spun) {
                cycles = P::now() - start;
                if constexpr (kSocketAware)
                    next = select_.next_protocol(sig, cycles,
                                                 note_holder_socket());
                else
                    next = select_.next_protocol(sig, cycles);
            } else {
                if constexpr (kSocketAware)
                    (void)note_holder_socket();  // still a new holder
                next = select_.next_protocol(sig);
            }
        } else {
            (void)spun;
            (void)start;
            next = select_.next_protocol(sig);
        }
        if constexpr (trace::kCompiled) {
            if (trace::enabled()) [[unlikely]] {
                const std::uint64_t ts = P::now();
                trace::emit(trace::EventType::kAcqSample,
                            trace::ObjectClass::kLock, trace_id_,
                            kTtsIndex, static_cast<std::uint8_t>(next), ts,
                            cycles,
                            trace::pack_signal(sig.protocol, sig.drift));
                probe.emit_edges(select_, trace::ObjectClass::kLock,
                                 trace_id_, kTtsIndex,
                                 static_cast<std::uint8_t>(next), ts);
                if constexpr (kCalibrating) {
                    if (cycles > 0) {
                        if (const auto best = audit::best_alternative(
                                select_, kProtocols)) {
                            const std::uint64_t regret = audit::record(
                                trace::ObjectClass::kLock, trace_id_,
                                cycles, *best);
                            trace::emit(trace::EventType::kRegret,
                                        trace::ObjectClass::kLock,
                                        trace_id_, kTtsIndex,
                                        static_cast<std::uint8_t>(next),
                                        ts, cycles, *best, regret);
                        }
                    }
                }
            }
        }
        return next != kTtsIndex ? ReleaseMode::kTtsToQueue
                                 : ReleaseMode::kTts;
    }

    /// Figure 3.28 acquire_tts: spin with backoff, count failed
    /// attempts; returns nullopt if the mode changed (caller retries
    /// with the queue protocol).
    ///
    /// Under ParkWaiting the wait runs through the site instead: the
    /// predicate *acquires* (the same load-then-exchange), counts its
    /// failed attempts for the contention signal, and aborts on a mode
    /// change via a captured flag. The spin build's exponential
    /// backoff is passed through as the site's poll step: spin mode
    /// must reproduce the spin build exactly, and polling the
    /// contended TTS line at pause cadence is an invalidation storm
    /// the spin build does not have. (Two-phase polling is bounded by
    /// Lpoll and park mode does not poll, so the backoff only ever
    /// paces the spin-mode loop.)
    std::optional<ReleaseMode> try_acquire_tts()
    {
        const std::uint64_t start = kCalibrating ? P::now() : 0;
        if constexpr (kParking) {
            ExpBackoff<P> backoff(params_.backoff);
            std::uint32_t retries = 0;
            std::uint32_t polls = 0;
            bool won = false;
            bool aborted = false;
            const AwaitResult wr = wsite_.await([&] {
                ++polls;
                if (tts_lock_.load(std::memory_order_relaxed) == kFree) {
                    if (tts_lock_.exchange(kBusy,
                                           std::memory_order_acquire) ==
                        kFree) {
                        won = true;
                        return true;
                    }
                    ++retries;
                }
                if (mode_.value.load(std::memory_order_relaxed) !=
                    static_cast<std::uint32_t>(Mode::kTts)) {
                    aborted = true;
                    return true;
                }
                return false;
            }, [&] { backoff.pause(); });
            if (!won) {
                (void)aborted;
                return std::nullopt;
            }
            note_waited(wr);
            return tts_acquired(retries > params_.tts_retry_limit,
                                /*spun=*/polls > 1, start);
        } else {
            ExpBackoff<P> backoff(params_.backoff);
            std::uint32_t retries = 0;
            bool contended = false;
            bool spun = false;
            for (;;) {
                if (tts_lock_.load(std::memory_order_relaxed) == kFree) {
                    if (tts_lock_.exchange(kBusy,
                                           std::memory_order_acquire) ==
                        kFree)
                        return tts_acquired(contended, spun, start);
                    if (++retries > params_.tts_retry_limit)
                        contended = true;
                }
                spun = true;
                backoff.pause();
                if (mode_.value.load(std::memory_order_relaxed) !=
                    static_cast<std::uint32_t>(Mode::kTts))
                    return std::nullopt;
            }
        }
    }

    /// Queue-side twin of tts_acquired.
    ReleaseMode queue_acquired(bool empty, std::uint64_t start)
    {
        stamp_hold();
        const ProtocolSignal sig{kQueueIndex, empty ? -1 : 0};
        const trace::ProbeWatch<Select> probe(select_, trace::enabled());
        [[maybe_unused]] std::uint64_t cycles = 0;
        std::uint32_t next;
        if constexpr (kCalibrating) {
            cycles = P::now() - start;
            if constexpr (kSocketAware)
                next = select_.next_protocol(sig, cycles,
                                             note_holder_socket());
            else
                next = select_.next_protocol(sig, cycles);
        } else {
            next = select_.next_protocol(sig);
        }
        if constexpr (trace::kCompiled) {
            if (trace::enabled()) [[unlikely]] {
                const std::uint64_t ts = P::now();
                trace::emit(trace::EventType::kAcqSample,
                            trace::ObjectClass::kLock, trace_id_,
                            kQueueIndex, static_cast<std::uint8_t>(next), ts,
                            cycles,
                            trace::pack_signal(sig.protocol, sig.drift));
                probe.emit_edges(select_, trace::ObjectClass::kLock,
                                 trace_id_, kQueueIndex,
                                 static_cast<std::uint8_t>(next), ts);
                if constexpr (kCalibrating) {
                    if (cycles > 0) {
                        if (const auto best = audit::best_alternative(
                                select_, kProtocols)) {
                            const std::uint64_t regret = audit::record(
                                trace::ObjectClass::kLock, trace_id_,
                                cycles, *best);
                            trace::emit(trace::EventType::kRegret,
                                        trace::ObjectClass::kLock,
                                        trace_id_, kQueueIndex,
                                        static_cast<std::uint8_t>(next),
                                        ts, cycles, *best, regret);
                        }
                    }
                }
            }
        }
        return next != kQueueIndex ? ReleaseMode::kQueueToTts
                                   : ReleaseMode::kQueue;
    }

    /// Shared tail of both constructors: initial state per Figure
    /// 3.27 — TTS valid and free, queue invalid, mode = TTS.
    void init()
    {
        mode_->store(static_cast<std::uint32_t>(Mode::kTts),
                     std::memory_order_relaxed);
        tts_lock_.store(kFree, std::memory_order_relaxed);
    }

    /// Figure 3.28 acquire_queue; nullopt when the queue protocol was
    /// (or became) invalid — retry with TTS.
    std::optional<ReleaseMode> try_acquire_queue(Node& node)
    {
        const std::uint64_t start = kCalibrating ? P::now() : 0;
        typename Queue::Outcome oc;
        if constexpr (kParking && requires(AwaitResult& wr) {
                          queue_.acquire(node, wsite_, wr);
                      }) {
            AwaitResult wr;
            oc = queue_.acquire(node, wsite_, wr);
            if (oc == Queue::Outcome::kAcquiredWaited)
                note_waited(wr);
            else if (oc == Queue::Outcome::kInvalid)
                // Our enqueue landed on an invalid tail: acquire()
                // dismantled the bogus chain we headed, storing kInvalid
                // into nodes whose owners may be parked on this site.
                wsite_.wake_all();
        } else if constexpr (kParking && requires(AwaitResult& wr) {
                                 queue_.acquire(node, wr);
                             }) {
            // Queues with their own internal sites (CohortQueue's
            // per-socket parking) run the waits themselves and report
            // the combined cost back.
            AwaitResult wr;
            oc = queue_.acquire(node, wr);
            if (oc == Queue::Outcome::kAcquiredWaited)
                note_waited(wr);
        } else {
            oc = queue_.acquire(node);
        }
        switch (oc) {
        case Queue::Outcome::kAcquiredEmpty:
            // An empty queue signals low contention.
            return queue_acquired(/*empty=*/true, start);
        case Queue::Outcome::kAcquiredWaited:
            return queue_acquired(/*empty=*/false, start);
        case Queue::Outcome::kInvalid:
        default:
            return std::nullopt;
        }
    }

    void release_tts()
    {
        tts_lock_.store(kFree, std::memory_order_release);
    }

    /// Figure 3.29 release_tts_to_queue: the holder validates the queue
    /// protocol, flips the hint, then releases via the queue. The TTS
    /// lock is left busy (= invalid).
    void release_tts_to_queue(Node& node)
    {
        const std::uint64_t start = kCalibrating ? P::now() : 0;
        queue_.acquire_invalid(node);
        mode_.value.store(static_cast<std::uint32_t>(Mode::kQueue),
                          std::memory_order_release);
        ++protocol_changes_;
        select_.on_switch();
        [[maybe_unused]] std::uint64_t dur = 0;
        if constexpr (kCalibrating) {
            dur = P::now() - start;
            select_.on_switch_cycles(dur);
        }
        if constexpr (trace::kCompiled) {
            if (trace::enabled()) [[unlikely]]
                trace::emit(trace::EventType::kSwitch,
                            trace::ObjectClass::kLock, trace_id_, kTtsIndex,
                            kQueueIndex, P::now(),
                            trace::pack_signal(kTtsIndex, +1),
                            trace::estimator_pair(select_, kTtsIndex,
                                                  kQueueIndex),
                            dur);
        }
        queue_.release(node);
    }

    /// Figure 3.29 release_queue_to_tts: flip the hint, dismantle the
    /// queue (waking waiters with INVALID so they retry via TTS), then
    /// free the TTS lock. The queue is left invalid.
    void release_queue_to_tts(Node& node)
    {
        const std::uint64_t start = kCalibrating ? P::now() : 0;
        mode_.value.store(static_cast<std::uint32_t>(Mode::kTts),
                          std::memory_order_release);
        ++protocol_changes_;
        select_.on_switch();
        queue_.invalidate(&node);
        // Still in consensus until the TTS word is freed below; the
        // measured span covers the queue dismantling (the expensive
        // half of this direction's change).
        [[maybe_unused]] std::uint64_t dur = 0;
        if constexpr (kCalibrating) {
            dur = P::now() - start;
            select_.on_switch_cycles(dur);
        }
        if constexpr (trace::kCompiled) {
            if (trace::enabled()) [[unlikely]]
                trace::emit(trace::EventType::kSwitch,
                            trace::ObjectClass::kLock, trace_id_,
                            kQueueIndex, kTtsIndex, P::now(),
                            trace::pack_signal(kQueueIndex, -1),
                            trace::estimator_pair(select_, kQueueIndex,
                                                  kTtsIndex),
                            dur);
        }
        release_tts();
    }

    // The mode hint lives on its own (mostly-read) cache line, separate
    // from the frequently written lock words (Section 3.2.6).
    CacheAligned<typename P::template Atomic<std::uint32_t>> mode_;
    alignas(kCacheLineSize) typename P::template Atomic<std::uint32_t>
        tts_lock_{kFree};
    Queue queue_;

    ReactiveLockParams params_;
    Select select_;                        // mutated in-consensus only
    std::uint64_t protocol_changes_ = 0;   // mutated in-consensus only
    // Socket of the previous holder (socket-aware policies only;
    // mutated in-consensus by each new holder).
    SocketHandoffTracker<P> holder_socket_;
    // Waiting axis: the object-level parking site and the holder-only
    // wait-policy state. Both are empty under SpinWaiting.
    [[no_unique_address]] Site wsite_;
    [[no_unique_address]] WaitState wstate_;
    // Trace identity (0 when tracing is compiled out). Unconditional
    // member so object layout is identical in both build modes.
    std::uint32_t trace_id_ = trace::new_object(trace::ObjectClass::kLock);
};

}  // namespace reactive
