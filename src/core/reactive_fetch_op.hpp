/**
 * @file
 * The reactive fetch-and-op algorithm (thesis Section 3.3.2 and
 * Appendix C): dynamically selects among three protocols —
 *
 *   1. a centralized variable protected by a test-and-test-and-set lock
 *      (lowest latency at no/low contention),
 *   2. a centralized variable protected by an MCS-style queue lock
 *      (graceful at moderate contention),
 *   3. Goodman et al.'s software combining tree (parallel throughput at
 *      high contention).
 *
 * Consensus objects: the TTS lock word, the queue tail pointer, and the
 * combining tree's root. At most one is valid at a time; a process that
 * runs the wrong protocol finds its consensus object busy/INVALID and
 * retries through the dispatch loop. Unlike the reactive lock there is
 * *no* optimistic TTS fast path: optimistically grabbing the central
 * lock would serialize accesses in combining mode and destroy the
 * tree's parallelism (Section 3.3.2 calls this out explicitly).
 *
 * Run-time monitoring (Section 3.3.2):
 *   - TTS -> queue: failed test&set attempts exceed a retry limit;
 *   - queue -> TTS: the queue was empty for several consecutive
 *     acquisitions;
 *   - queue -> tree: the FIFO queue waiting time exceeds a limit (queue
 *     wait is a faithful contention estimate because the queue is FIFO);
 *   - tree -> queue: the combining rate observed at the root (the batch
 *     size, piggybacked up the tree) stays below a threshold — computed
 *     exactly as the thesis describes, "a fetch-and-increment along with
 *     the fetch-and-op" seeing "how large of an increment reaches the
 *     root".
 *
 * State transfer: protocols 1 and 2 share the fetch-and-op variable in
 * a common location (the optimization noted in Section 3.3.2, "keeps
 * this variable in a common location so updates are not necessary");
 * only tree transitions copy the value, done by the process holding the
 * valid consensus object.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "core/reactive_queue.hpp"
#include "fetchop/combining_tree.hpp"
#include "fetchop/fetchop_concepts.hpp"
#include "platform/backoff.hpp"
#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"

namespace reactive {

/// Tunables for the reactive fetch-and-op monitors.
struct ReactiveFetchOpParams {
    /// Failed test&set attempts that mark an acquisition contended.
    std::uint32_t tts_retry_limit = 8;
    /// Consecutive empty-queue acquisitions before switching to TTS.
    std::uint32_t empty_queue_limit = 4;
    /// Queue waiting time (cycles) beyond which the tree is preferred.
    /// Default calibrated to the measured queue-vs-tree crossover on the
    /// simulated Alewife (~32 contenders; see fig_baseline_fetchop).
    std::uint64_t queue_wait_limit = 5000;
    /// Root batches below this size count as "low combining".
    std::uint32_t combine_min_batch = 3;
    /// Consecutive low-combining root batches before leaving the tree.
    std::uint32_t combine_low_limit = 4;
    /// Backoff while spinning on the TTS lock protocol.
    BackoffParams backoff = BackoffParams::for_contenders(64);
};

/**
 * Reactive fetch-and-add over three protocols. Satisfies the FetchOp
 * concept; `Node` carries the queue node and combining-tree leaf and
 * may be stack-allocated per call or reused.
 */
template <Platform P>
class ReactiveFetchOp {
  public:
    enum class Mode : std::uint32_t { kTtsLock = 0, kQueueLock = 1, kCombine = 2 };

    struct Node {
        typename ReactiveQueue<P>::Node queue_node;
        typename CombiningTree<P>::Node tree_node;
        bool leaf_assigned = false;
    };

    explicit ReactiveFetchOp(std::uint32_t width = 64, FetchOpValue initial = 0,
                             ReactiveFetchOpParams params = {})
        : tree_(width, 0), params_(params)
    {
        mode_->store(static_cast<std::uint32_t>(Mode::kTtsLock),
                     std::memory_order_relaxed);
        tts_lock_.store(kFree, std::memory_order_relaxed);
        value_.store(initial, std::memory_order_relaxed);
        tree_.invalidate();  // TTS protocol is the initially valid one
    }

    /// Linearizable fetch-and-add; returns the value before @p delta.
    FetchOpValue fetch_add(Node& node, FetchOpValue delta)
    {
        if (!node.leaf_assigned) {
            node.tree_node.leaf =
                next_leaf_.fetch_add(1, std::memory_order_relaxed);
            node.leaf_assigned = true;
        }
        for (;;) {
            switch (mode()) {
            case Mode::kTtsLock:
                if (auto r = run_tts(delta))
                    return *r;
                break;
            case Mode::kQueueLock:
                if (auto r = run_queue(node, delta))
                    return *r;
                break;
            case Mode::kCombine:
                if (auto r = run_combine(node, delta))
                    return *r;
                break;
            }
            P::pause();  // protocol retired under us; re-dispatch
        }
    }

    /// Quiescent read of the current value.
    FetchOpValue read()
    {
        if (mode() == Mode::kCombine)
            return tree_.read();
        return value_.load(std::memory_order_acquire);
    }

    /// Current protocol hint (tests and experiments).
    Mode mode() const
    {
        return static_cast<Mode>(mode_.value.load(std::memory_order_relaxed));
    }

    /// Completed protocol changes (tests and experiments).
    std::uint64_t protocol_changes() const { return protocol_changes_; }

    CombiningTree<P>& tree() { return tree_; }

  private:
    static constexpr std::uint32_t kFree = 0;
    static constexpr std::uint32_t kBusy = 1;

    /// Protocol 1: centralized variable under the TTS lock. Returns
    /// nullopt when the protocol is retired (mode moved on).
    std::optional<FetchOpValue> run_tts(FetchOpValue delta)
    {
        ExpBackoff<P> backoff(params_.backoff);
        std::uint32_t retries = 0;
        bool contended = false;
        for (;;) {
            if (tts_lock_.load(std::memory_order_relaxed) == kFree) {
                if (tts_lock_.exchange(kBusy, std::memory_order_acquire) ==
                    kFree) {
                    // In-consensus: apply the operation.
                    const FetchOpValue prior =
                        value_.load(std::memory_order_relaxed);
                    value_.store(prior + delta, std::memory_order_relaxed);
                    if (contended) {
                        switch_tts_to_queue();
                    } else {
                        tts_lock_.store(kFree, std::memory_order_release);
                    }
                    return prior;
                }
                if (++retries > params_.tts_retry_limit)
                    contended = true;
            }
            backoff.pause();
            if (mode() != Mode::kTtsLock)
                return std::nullopt;
        }
    }

    /// Protocol 2: centralized variable under the invalidatable queue.
    std::optional<FetchOpValue> run_queue(Node& node, FetchOpValue delta)
    {
        const std::uint64_t t0 = P::now();
        const auto outcome = queue_.acquire(node.queue_node);
        if (outcome == ReactiveQueue<P>::Outcome::kInvalid)
            return std::nullopt;
        // In-consensus: apply the operation, then run the monitors.
        const FetchOpValue prior = value_.load(std::memory_order_relaxed);
        value_.store(prior + delta, std::memory_order_relaxed);

        if (outcome == ReactiveQueue<P>::Outcome::kAcquiredEmpty) {
            if (++empty_streak_ >= params_.empty_queue_limit) {
                switch_queue_to_tts(node);
                return prior;
            }
        } else {
            empty_streak_ = 0;
            // FIFO queue => waiting time estimates contention directly.
            if (P::now() - t0 > params_.queue_wait_limit) {
                switch_queue_to_combine(node, prior + delta);
                return prior;
            }
        }
        queue_.release(node.queue_node);
        return prior;
    }

    /// Protocol 3: the combining tree, with the combining-rate monitor
    /// installed as the root hook.
    std::optional<FetchOpValue> run_combine(Node& node, FetchOpValue delta)
    {
        TreeResult r = tree_.apply(
            node.tree_node, delta, [this](std::uint32_t batch) {
                // In-consensus at the root: track the combining rate.
                if (batch >= params_.combine_min_batch) {
                    combine_low_streak_ = 0;
                    return false;
                }
                return ++combine_low_streak_ >= params_.combine_low_limit;
            });
        if (!r.ok)
            return std::nullopt;
        if (r.root_retired) {
            // The hook retired the root under us: we carry the state to
            // the queue protocol. (Our own batch completed normally.)
            switch_combine_to_queue(node, r.value_after);
        }
        return r.prior;
    }

    // ---- protocol changes (performed in-consensus only) --------------

    void switch_tts_to_queue()
    {
        // We hold the TTS lock and leave it busy (= invalid). A private
        // node is enough: release() hands the queue over or empties it.
        typename ReactiveQueue<P>::Node helper;
        queue_.acquire_invalid(helper);
        mode_.value.store(static_cast<std::uint32_t>(Mode::kQueueLock),
                          std::memory_order_release);
        ++protocol_changes_;
        empty_streak_ = 0;
        queue_.release(helper);
    }

    void switch_queue_to_tts(Node& node)
    {
        mode_.value.store(static_cast<std::uint32_t>(Mode::kTtsLock),
                          std::memory_order_release);
        ++protocol_changes_;
        queue_.invalidate(&node.queue_node);
        tts_lock_.store(kFree, std::memory_order_release);
    }

    void switch_queue_to_combine(Node& node, FetchOpValue current)
    {
        // Transfer state into the tree and validate its root before
        // announcing the mode, so early arrivals find a valid root.
        tree_.validate(current);
        mode_.value.store(static_cast<std::uint32_t>(Mode::kCombine),
                          std::memory_order_release);
        ++protocol_changes_;
        combine_low_streak_ = 0;
        queue_.invalidate(&node.queue_node);
    }

    void switch_combine_to_queue(Node& node, FetchOpValue current)
    {
        // The root is already invalid (hook). Become the queue's holder,
        // transfer the value, announce, release.
        queue_.acquire_invalid(node.queue_node);
        value_.store(current, std::memory_order_relaxed);
        mode_.value.store(static_cast<std::uint32_t>(Mode::kQueueLock),
                          std::memory_order_release);
        ++protocol_changes_;
        empty_streak_ = 0;
        queue_.release(node.queue_node);
    }

    // Mode hint on its own mostly-read cache line (Section 3.2.6).
    CacheAligned<typename P::template Atomic<std::uint32_t>> mode_;
    alignas(kCacheLineSize) typename P::template Atomic<std::uint32_t>
        tts_lock_{kFree};
    ReactiveQueue<P> queue_{/*initially_valid=*/false};
    alignas(kCacheLineSize) typename P::template Atomic<FetchOpValue> value_{0};
    CombiningTree<P> tree_;
    typename P::template Atomic<std::uint32_t> next_leaf_{0};

    ReactiveFetchOpParams params_;
    // Monitor state, mutated in-consensus only.
    std::uint32_t empty_streak_ = 0;
    std::uint32_t combine_low_streak_ = 0;
    std::uint64_t protocol_changes_ = 0;
};

}  // namespace reactive
