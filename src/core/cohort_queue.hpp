/**
 * @file
 * NUMA cohort queue lock: the topology-aware sibling of
 * core/reactive_queue.hpp, in the lineage of lock cohorting (Dice,
 * Marathe & Shavit, PPoPP '12) built from two levels of MCS queue.
 *
 * Structure: each socket owns a *local* MCS queue; the socket's local
 * head (the "leader") competes on one *global* MCS queue through a
 * per-socket global node embedded in the lock. A releasing holder
 * prefers its local successor — handing over both the lock and,
 * implicitly, the socket's global tenancy — for at most
 * `cohort_limit` (B) consecutive local grants, then releases the
 * global queue so the next socket's leader proceeds. Handoff within a
 * socket touches only lines already resident on that socket (the
 * successor's node, enqueued from the same socket), so under
 * contention the expensive cross-socket transfer happens once per
 * cohort batch instead of once per critical section.
 *
 * Fairness bound (explicit, and property-tested): once a waiter's
 * socket leader is enqueued in the global queue, at most B further
 * critical sections complete under the currently serving socket before
 * the global lock is handed over, and the global queue is FIFO across
 * sockets — so a remote waiter that is its socket's leader acquires
 * within B+1 lock grants of its global enqueue, and in general within
 * (sockets - 1) * (B + 1) grants. No waiter starves: the budget is
 * enforced unconditionally, even against an adversarial all-local
 * arrival stream.
 *
 * Reactive extensions (the ReactiveQueue consensus-object dialect, so
 * this protocol can serve as the queue slot of a reactive lock): the
 * *global* tail is the consensus object with a distinguished INVALID
 * sentinel; waiters can be signalled INVALID and abort to the
 * dispatcher; `acquire_invalid` captures a retired queue while
 * validating it; `invalidate` retires the protocol, waking every
 * waiter — local and global — with INVALID. A leader that finds the
 * global tail INVALID dismantles its own socket's local chain so its
 * followers retry too.
 *
 * With sockets = 1 the structure degenerates to a single local queue
 * whose batches are ended only by queue exhaustion — per-grant work is
 * then one extra predicate against plain MCS, the price fig_numa's
 * flat rows measure as "ties within noise".
 */
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"
#include "trace/trace.hpp"
#include "waiting/reactive/wait_site.hpp"

namespace reactive {

/// See file header. The global tail is the protocol's consensus
/// object; everything else is per-socket or per-waiter state.
///
/// @tparam Waiting  waiting-mode axis: SpinWaiting (default) keeps the
///         historical pure-spin waits; ParkWaiting parks local waiters
///         and queued leaders under their *socket's* WaitSite — wakes
///         stay socket-local exactly like the grants themselves, so
///         parking adds no cross-socket traffic beyond the eventcount
///         broadcast that follows a cross-socket grant.
template <Platform P, typename Waiting = SpinWaiting>
class CohortQueue {
  public:
    static constexpr std::uint32_t kWaiting = 0;
    /// Lock granted together with the socket's global tenancy (a
    /// cohort pass, or a fresh global acquisition completing).
    static constexpr std::uint32_t kGoGlobal = 1;
    /// Local leadership granted: proceed to the global queue.
    static constexpr std::uint32_t kGoAcquire = 2;
    static constexpr std::uint32_t kInvalid = 3;

    struct Params {
        /// Socket count; waiters name theirs via the platform
        /// (TopologyAwarePlatform; flat platforms all report 0).
        std::uint32_t sockets = 1;
        /// B: consecutive local grants per global tenancy (the starting
        /// per-socket budget when auto_budget is on).
        std::uint32_t cohort_limit = 4;
        /// Auto-size the budget from the depth signal the releasing
        /// holder reads for free (its local tail vs. the successor it
        /// just loaded): a deeper-than-one local queue earns the socket
        /// a longer batch (+1 toward budget_max), a drained one gives
        /// budget back (-1 toward budget_min). Bounded so the fairness
        /// proof keeps a small constant: the bound becomes
        /// (sockets - 1) x (budget_max + 1). Off by default — the
        /// static-B behavior is unchanged.
        bool auto_budget = false;
        std::uint32_t budget_min = 2;
        std::uint32_t budget_max = 16;
    };

    /// Per-acquisition local-queue node; must live from acquire() to
    /// release().
    struct Node {
        typename P::template Atomic<Node*> next{nullptr};
        typename P::template Atomic<std::uint32_t> status{kWaiting};
        std::uint32_t socket = 0;  // written by owner before enqueue
        /// Lock grant count observed at this waiter's global enqueue —
        /// the fairness tests' measuring stick. Recorded only on the
        /// deterministic simulator (plain reads there are exact and
        /// free; on native platforms the read would race the holder's
        /// increment).
        std::uint64_t enqueue_grants = 0;
    };

    /// How an acquisition attempt concluded (ReactiveQueue dialect).
    enum class Outcome {
        kAcquiredEmpty,   ///< got the lock, both queues were empty
        kAcquiredWaited,  ///< got the lock after queuing
        kInvalid,         ///< protocol retired; retry with the other one
    };

    /// @param initially_valid false leaves the global tail INVALID (the
    ///        state a reactive algorithm starts its non-designated
    ///        protocols in).
    explicit CohortQueue(bool initially_valid = false, Params params = {})
        : params_(params),
          sockets_(params.sockets < 1 ? 1 : params.sockets),
          socks_(std::make_unique<CacheAligned<SocketState>[]>(sockets_))
    {
        if (params_.auto_budget && params_.budget_min < 1)
            params_.budget_min = 1;
        if (params_.budget_max < params_.budget_min)
            params_.budget_max = params_.budget_min;
        std::uint32_t b = params_.cohort_limit;
        if (params_.auto_budget) {
            if (b < params_.budget_min)
                b = params_.budget_min;
            if (b > params_.budget_max)
                b = params_.budget_max;
        }
        for (std::uint32_t i = 0; i < sockets_; ++i) {
            socks_[i]->gnode.socket = i;
            socks_[i]->budget = b;
        }
        gtail_.store(initially_valid ? nullptr : invalid_gtail(),
                     std::memory_order_relaxed);
    }

    /// Attempts to acquire the lock with @p node.
    Outcome acquire(Node& node)
    {
        AwaitResult wr;
        return acquire(node, wr);
    }

    /// Acquire reporting how the waits ran (ParkWaiting callers; under
    /// SpinWaiting @p wr reports a plain spin). Local waiters and
    /// queued leaders wait under their socket's site, dispatched by the
    /// holder-published hint (set_wait_hint).
    Outcome acquire(Node& node, AwaitResult& wr)
    {
        SocketState& ss = enqueue_local(node);
        Node* pred = ss.tail.exchange(&node, std::memory_order_acq_rel);
        if (pred == nullptr)
            return acquire_global(node, ss, /*waited=*/false, wr);
        pred->next.store(&node, std::memory_order_release);
        std::uint32_t s = kWaiting;
        merge_wait(wr, ss.site.await([&] {
            return (s = node.status.load(std::memory_order_acquire)) !=
                   kWaiting;
        }));
        if (s == kInvalid)
            return Outcome::kInvalid;
        if (s == kGoGlobal) {
            ++grants_;
            return Outcome::kAcquiredWaited;
        }
        return acquire_global(node, ss, /*waited=*/true, wr);  // kGoAcquire
    }

    /**
     * Non-blocking attempt: wins only when both the local and the
     * global queue are empty and the protocol is valid. A failed
     * global race retracts from the local queue — or, if a successor
     * already enqueued, abdicates local leadership to it (the
     * successor made a blocking call; promoting it is exactly the
     * end-of-cohort handoff without the lock). Failure may be
     * spurious, as the std try_lock facade permits.
     */
    bool try_acquire(Node& node)
    {
        SocketState& ss = enqueue_local(node);
        Node* expected = nullptr;
        if (!ss.tail.compare_exchange_strong(expected, &node,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed))
            return false;
        GlobalNode& g = ss.gnode;
        g.next.store(nullptr, std::memory_order_relaxed);
        g.status.store(kWaiting, std::memory_order_relaxed);
        GlobalNode* gexpected = nullptr;
        if (gtail_.compare_exchange_strong(gexpected, &g,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
            ss.passes = 0;
            ++grants_;
            return true;
        }
        expected = &node;
        if (ss.tail.compare_exchange_strong(expected, nullptr,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed))
            return false;  // fully retracted
        Node* succ;
        while ((succ = node.next.load(std::memory_order_acquire)) == nullptr)
            P::pause();
        succ->status.store(kGoAcquire, std::memory_order_release);
        wake_socket(node.socket);
        return false;
    }

    /// Holder-only broadcast of the packed wait hint to every socket's
    /// site (ReactiveLock::update_wait_policy). The hint is advisory;
    /// relaxed stores, no ordering obligations.
    void set_wait_hint(std::uint32_t packed)
    {
        if constexpr (kParking) {
            for (std::uint32_t i = 0; i < sockets_; ++i)
                socks_[i]->site.set_hint(packed);
        } else {
            (void)packed;
        }
    }

    /// Releases the lock held with @p node.
    void release(Node& node)
    {
        SocketState& ss = *socks_[node.socket];
        Node* succ = node.next.load(std::memory_order_acquire);
        if (succ == nullptr) {
            // No local successor yet: release the global tenancy
            // *before* giving up local leadership. The socket's global
            // node is serialized by leadership, and release_global's
            // usurper repair keeps using it after its first tail
            // exchange — clearing the local tail first would let the
            // next local leader reset the node mid-repair (observed as
            // a lost lock). A successor that slips in meanwhile is
            // promoted to a plain leader below.
            release_global(ss);
            Node* expected = &node;
            if (ss.tail.compare_exchange_strong(expected, nullptr,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed))
                return;
            while ((succ = node.next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
            succ->status.store(kGoAcquire, std::memory_order_release);
            wake_socket(node.socket);
            return;
        }
        // With one socket there is nobody to be fair *to*: the budget
        // would only break the batch to hand the global queue straight
        // back to this socket. Passing until the local queue drains
        // makes the flat degeneration's per-grant work identical to
        // plain MCS (one next-load + one status store).
        if (sockets_ == 1 || ss.passes < budget_of(ss)) {
            // Cohort pass: lock and global tenancy stay on this socket.
            ++ss.passes;
            if (params_.auto_budget)
                resize_budget(ss, succ);
            REACTIVE_TRACE_EVENT(trace::EventType::kCohortGrant,
                                 trace::ObjectClass::kCohort, trace_id_,
                                 static_cast<std::uint8_t>(node.socket),
                                 static_cast<std::uint8_t>(node.socket),
                                 P::now(), ss.passes);
            succ->status.store(kGoGlobal, std::memory_order_release);
            wake_socket(node.socket);
            return;
        }
        // Budget exhausted: the global queue moves on *first* (the
        // socket's global node must be out of it before the promoted
        // successor can re-enqueue it), then the successor becomes a
        // plain leader and waits its socket's next global turn.
        REACTIVE_TRACE_EVENT(trace::EventType::kCohortHandoff,
                             trace::ObjectClass::kCohort, trace_id_,
                             static_cast<std::uint8_t>(node.socket),
                             static_cast<std::uint8_t>(node.socket),
                             P::now(), ss.passes);
        release_global(ss);
        succ->status.store(kGoAcquire, std::memory_order_release);
        wake_socket(node.socket);
    }

    // ---- consensus-object entry points (reactive dispatcher only) ----

    /**
     * Captures the INVALID global tail, making @p node the holder of a
     * freshly validated queue. Must be called only by a process
     * holding the valid consensus object of another protocol.
     * Competing bogus chains from late wrong-protocol arrivals — on
     * this socket's local queue and on the global queue — are waited
     * out, exactly as in ReactiveQueue::acquire_invalid.
     */
    void acquire_invalid(Node& node)
    {
        // Become the local leader first (predecessors can only be
        // bailing wrong-protocol arrivals; their dismantle signals us
        // INVALID and we re-enqueue).
        SocketState* ssp;
        for (;;) {
            SocketState& ss = enqueue_local(node);
            Node* pred = ss.tail.exchange(&node, std::memory_order_acq_rel);
            if (pred == nullptr) {
                ssp = &ss;
                break;
            }
            pred->next.store(&node, std::memory_order_release);
            std::uint32_t s;
            while ((s = node.status.load(std::memory_order_acquire)) ==
                   kWaiting)
                P::pause();
            assert(s == kInvalid &&
                   "no cohort holder can exist while another protocol "
                   "is valid");
            (void)s;
        }
        // Leadership held; now capture the global tail.
        SocketState& ss = *ssp;
        for (;;) {
            GlobalNode& g = ss.gnode;
            g.next.store(nullptr, std::memory_order_relaxed);
            g.status.store(kWaiting, std::memory_order_relaxed);
            GlobalNode* gpred =
                gtail_.exchange(&g, std::memory_order_acq_rel);
            if (gpred == invalid_gtail()) {
                ss.passes = 0;
                ++grants_;
                return;
            }
            assert(gpred != nullptr &&
                   "queue must not be valid-free while another protocol "
                   "is valid");
            // Bogus chain of bailing leaders; its head dismantles it
            // and signals us INVALID. Wait it out and retry.
            gpred->next.store(&g, std::memory_order_release);
            while (g.status.load(std::memory_order_acquire) == kWaiting)
                P::pause();
        }
    }

    /**
     * Retires the protocol: swings the global tail to INVALID, walks
     * the global chain signalling every queued socket leader INVALID
     * (each then dismantles its own socket's local chain), and
     * dismantles the holder's own local chain. Caller is the holder
     * performing a protocol change; @p head is its own node.
     */
    void invalidate(Node* head)
    {
        // The caller holds the valid consensus object of another
        // protocol; this is the retire/abort edge of a protocol change.
        REACTIVE_TRACE_EVENT(trace::EventType::kCohortAbort,
                             trace::ObjectClass::kCohort, trace_id_,
                             static_cast<std::uint8_t>(head->socket),
                             static_cast<std::uint8_t>(head->socket),
                             P::now());
        SocketState& ss = *socks_[head->socket];
        // Global first: future leaders on any socket must bail.
        GlobalNode& g = ss.gnode;
        GlobalNode* gtail =
            gtail_.exchange(invalid_gtail(), std::memory_order_acq_rel);
        if (gtail != &g) {
            GlobalNode* h;
            while ((h = g.next.load(std::memory_order_acquire)) == nullptr)
                P::pause();
            signal_global_chain(h, gtail);
        }
        // Then this socket's local chain behind the holder.
        Node* ltail = ss.tail.exchange(nullptr, std::memory_order_acq_rel);
        Node* h = head;
        while (h != ltail) {
            Node* next;
            while ((next = h->next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
            h->status.store(kInvalid, std::memory_order_release);
            h = next;
        }
        h->status.store(kInvalid, std::memory_order_release);
        wake_all_sites();
    }

    // ---- racy inspection (tests, monitoring) -------------------------

    bool is_invalid() const
    {
        return gtail_.load(std::memory_order_relaxed) == invalid_gtail();
    }

    /// Total lock grants so far. Written only by holders (in-consensus,
    /// traffic-free); exact when read from simulated code, racy
    /// diagnostic elsewhere.
    std::uint64_t grants() const { return grants_; }

    std::uint32_t sockets() const { return sockets_; }
    std::uint32_t cohort_limit() const { return params_.cohort_limit; }
    bool auto_budget() const { return params_.auto_budget; }
    std::uint32_t budget_max() const { return params_.budget_max; }

    /// Current per-socket budget (== cohort_limit when auto_budget is
    /// off). In-consensus exact, racy diagnostic elsewhere.
    std::uint32_t socket_budget(std::uint32_t s) const
    {
        return params_.auto_budget ? socks_[s % sockets_]->budget
                                   : params_.cohort_limit;
    }

    /// Whether this instantiation parks waiters (tests).
    static constexpr bool kParking = WaitSite<P, Waiting>::kParking;

  private:
    struct GlobalNode {
        typename P::template Atomic<GlobalNode*> next{nullptr};
        typename P::template Atomic<std::uint32_t> status{kWaiting};
        std::uint32_t socket = 0;  // fixed at construction (owning socket)
    };

    /// Per-socket state, one line per socket: the local tail is that
    /// socket's enqueue point, the global node is touched only by the
    /// socket's leader (local leadership serializes it), the pass
    /// budget only by lock holders, and the waiting site by the
    /// socket's waiters plus whoever grants to them.
    struct SocketState {
        typename P::template Atomic<Node*> tail{nullptr};
        GlobalNode gnode;
        std::uint32_t passes = 0;
        /// Floating cohort budget (auto_budget); holder-only.
        std::uint32_t budget = 0;
        /// Socket-local parking point (empty under SpinWaiting).
        [[no_unique_address]] WaitSite<P, Waiting> site;
    };

    /// A cohort pass is the one point where the holder sees the local
    /// depth for free: it already loaded the successor, and the tail is
    /// the socket's own line. tail != succ means at least one more
    /// waiter queued behind the successor — demand justifies a longer
    /// batch; a drained queue hands budget back. One step per grant,
    /// clamped, so the fairness constant stays budget_max + 1.
    void resize_budget(SocketState& ss, Node* succ)
    {
        if (ss.tail.load(std::memory_order_relaxed) != succ) {
            if (ss.budget < params_.budget_max)
                ++ss.budget;
        } else if (ss.budget > params_.budget_min) {
            --ss.budget;
        }
    }

    std::uint32_t budget_of(const SocketState& ss) const
    {
        return params_.auto_budget ? ss.budget : params_.cohort_limit;
    }

    /// Socket-local wake after a condition-changing store (no-op under
    /// SpinWaiting). The store must precede the call in program order.
    void wake_socket(std::uint32_t s)
    {
        if constexpr (kParking)
            socks_[s]->site.wake_all();
    }

    /// Broadcast wake after a chain walk that signalled nodes on
    /// potentially every socket (invalidation paths; rare).
    void wake_all_sites()
    {
        if constexpr (kParking) {
            for (std::uint32_t i = 0; i < sockets_; ++i)
                socks_[i]->site.wake_all();
        }
    }

    /// Folds a second wait's cost into an acquisition's AwaitResult
    /// (local wait then global wait).
    static void merge_wait(AwaitResult& into, const AwaitResult& r)
    {
        into.wait_cycles += r.wait_cycles;
        into.blocked = into.blocked || r.blocked;
        if (r.wake_latency != 0)
            into.wake_latency = r.wake_latency;
    }

    static GlobalNode* invalid_gtail()
    {
        return reinterpret_cast<GlobalNode*>(static_cast<std::uintptr_t>(1));
    }

    /// Fairness bookkeeping is recorded only on the deterministic
    /// simulator, where a plain read of the holder-owned grant count
    /// is exact and free; on native platforms it would be a data race
    /// for a diagnostic nobody can read exactly anyway.
    static constexpr bool kRecordEnqueueGrants =
        requires { requires P::deterministic_simulation; };

    /// Resets @p node for a fresh attempt and names its socket.
    SocketState& enqueue_local(Node& node)
    {
        std::uint32_t s = platform_socket<P>();
        if (s >= sockets_)
            s = sockets_ - 1;
        node.socket = s;
        node.next.store(nullptr, std::memory_order_relaxed);
        node.status.store(kWaiting, std::memory_order_relaxed);
        return *socks_[s];
    }

    /// Local leader's global acquisition (or bail-out on a retired
    /// protocol).
    Outcome acquire_global(Node& node, SocketState& ss, bool waited,
                           AwaitResult& wr)
    {
        GlobalNode& g = ss.gnode;
        g.next.store(nullptr, std::memory_order_relaxed);
        g.status.store(kWaiting, std::memory_order_relaxed);
        if constexpr (kRecordEnqueueGrants)
            node.enqueue_grants = grants_;
        GlobalNode* gpred = gtail_.exchange(&g, std::memory_order_acq_rel);
        if (gpred == invalid_gtail()) {
            // Retired: restore the sentinel, dismantle whatever queued
            // behind us globally, then our own local followers.
            invalidate_global_from(&g);
            local_bailout(node, ss);
            wake_all_sites();
            return Outcome::kInvalid;
        }
        if (gpred != nullptr) {
            gpred->next.store(&g, std::memory_order_release);
            std::uint32_t s = kWaiting;
            merge_wait(wr, ss.site.await([&] {
                return (s = g.status.load(std::memory_order_acquire)) !=
                       kWaiting;
            }));
            if (s == kInvalid) {
                local_bailout(node, ss);
                wake_socket(node.socket);
                return Outcome::kInvalid;
            }
            waited = true;
        }
        ss.passes = 0;
        ++grants_;
        return waited ? Outcome::kAcquiredWaited : Outcome::kAcquiredEmpty;
    }

    /// MCS release of the socket's global tenancy, with the usurper
    /// repair of ReactiveQueue::release (including the reactive-only
    /// race where the usurper retires the protocol mid-repair).
    void release_global(SocketState& ss)
    {
        ss.passes = 0;
        GlobalNode& g = ss.gnode;
        GlobalNode* succ = g.next.load(std::memory_order_acquire);
        if (succ == nullptr) {
            GlobalNode* old_tail =
                gtail_.exchange(nullptr, std::memory_order_acq_rel);
            if (old_tail == &g)
                return;  // truly no successor
            GlobalNode* usurper =
                gtail_.exchange(old_tail, std::memory_order_acq_rel);
            while ((succ = g.next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
            if (usurper == invalid_gtail()) {
                invalidate_global_from(succ);
                wake_all_sites();
            } else if (usurper != nullptr) {
                usurper->next.store(succ, std::memory_order_release);
            } else {
                succ->status.store(kGoGlobal, std::memory_order_release);
                wake_socket(succ->socket);
            }
            return;
        }
        succ->status.store(kGoGlobal, std::memory_order_release);
        wake_socket(succ->socket);
    }

    /// Swings the global tail (back) to INVALID and signals the chain
    /// from @p head; each signalled leader dismantles its own local
    /// queue from its acquire path.
    void invalidate_global_from(GlobalNode* head)
    {
        GlobalNode* tail =
            gtail_.exchange(invalid_gtail(), std::memory_order_acq_rel);
        signal_global_chain(head, tail);
    }

    void signal_global_chain(GlobalNode* head, GlobalNode* tail)
    {
        while (head != tail) {
            GlobalNode* next;
            while ((next = head->next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
            head->status.store(kInvalid, std::memory_order_release);
            head = next;
        }
        head->status.store(kInvalid, std::memory_order_release);
    }

    /// A bailing local leader dismantles its socket's chain: every
    /// follower joined a retired protocol and must retry through the
    /// dispatcher.
    void local_bailout(Node& node, SocketState& ss)
    {
        Node* ltail = ss.tail.exchange(nullptr, std::memory_order_acq_rel);
        Node* h = &node;
        while (h != ltail) {
            Node* next;
            while ((next = h->next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
            h->status.store(kInvalid, std::memory_order_release);
            h = next;
        }
        h->status.store(kInvalid, std::memory_order_release);
    }

    // The global tail is the hot cross-socket word; keep it alone.
    alignas(kCacheLineSize)
        typename P::template Atomic<GlobalNode*> gtail_{nullptr};
    Params params_;
    std::uint32_t sockets_;
    std::unique_ptr<CacheAligned<SocketState>[]> socks_;
    std::uint64_t grants_ = 0;  // mutated by lock holders only
    // Trace identity (0 when tracing is compiled out). Unconditional
    // member so object layout is identical in both build modes.
    std::uint32_t trace_id_ = trace::new_object(trace::ObjectClass::kCohort);
};

}  // namespace reactive
