/**
 * @file
 * Waiting-mode selection: the second per-object reactive axis.
 *
 * The thesis treats *how to wait* (Chapter 4) as the same competitive
 * choice problem as *which protocol to use* (Chapter 3): spinning costs
 * the waiter's processor, blocking costs a fixed overhead B, and the
 * on-line algorithm that polls for Lpoll = alpha x B before blocking is
 * e/(e-1)-competitive against the offline optimum (Karlin et al.;
 * alpha* = ln(e-1) for exponential waiting times, see
 * theory/waiting_cost.hpp). The static pieces already exist —
 * waiting/wait.hpp implements the algorithms, platform/parker.hpp the
 * signaling mechanism — but until now every primitive hard-coded
 * always-spin. This header adds the *selection* layer: a per-object
 * `WaitSelectPolicy` that the holder consults in consensus, choosing
 *
 *   - **always-spin** when the object's handoffs are saturated (some
 *     waiter is resident and polling — blocking machinery would be
 *     pure overhead),
 *   - **two-phase** (spin-then-park with the *calibrated*
 *     Lpoll = alpha x B_measured, replacing the static Alewife
 *     constant) when handoffs run at scheduling timescales, and
 *   - **immediate-park** when measured waits dwarf the poll budget
 *     (the polling phase itself becomes pure waste — deep queues,
 *     heavy oversubscription).
 *
 * The selection shares the PR 4/6 safety argument with protocol
 * selection: all estimator lanes (hold-time and queue-depth EWMAs, the
 * handoff-gap lane, plus the measured wake-latency class standing in
 * for B) are written only by in-consensus processes using samples the
 * holder already has, so monitoring adds **zero shared-memory
 * traffic**. The chosen mode is published as a packed *hint* word
 * (WaitSite); like the protocol mode variable it is only a hint — a
 * waiter acting on a stale hint parks when it could have spun (or vice
 * versa) but never loses a wakeup, because releases in parking
 * configurations always notify the site.
 *
 * Selection model: the discriminating quantity is the **handoff gap**
 * — the span from one release to the next acquisition, which the
 * holder chain measures for free (every release carries its timestamp
 * in the WaitSignal; the next holder's hold-start closes the gap). A
 * *saturated* object — some waiter resident and polling — hands off in
 * tens of cycles at any oversubscription level, and spinning is right:
 * blocking could only add the signal cost B to every handoff. An
 * *unsaturated* object (waiters descheduled behind spinners, or
 * threads off thinking between sections) hands off at scheduling
 * timescales, and a resident spinner is then burning the exact quantum
 * some runnable thread needs. Indirect proxies (hold x depth queueing
 * estimates) cannot make this call — an oversubscribed zero-think hot
 * loop and an oversubscribed think-loop produce overlapping hold/depth
 * signatures, yet spin is right for one and parking for the other —
 * but the handoff gap separates them directly: tens of cycles in the
 * first, hundreds-to-quanta in the second.
 *
 * Modes form a *patience ladder* (spin < two-phase < park) and the
 * policy steps one rung at a time, because each rung's exit signal has
 * a different observability:
 *
 *   - under **spin**, gaps are measured exactly (poll-grained);
 *   - under **two-phase**, a regime that quickens is caught by the
 *     polling window — waiters start winning inside Lpoll, the gap
 *     collapses back to poll granularity, and the policy returns to
 *     spin;
 *   - **park** is self-sealing: with no polling phase every handoff
 *     goes through a wake, so both the gap (~B always) and the W lane
 *     (queue rotation at wake cost) stop discriminating. Park tenure
 *     is therefore a bounded *lease* (Params::park_tenure): on expiry
 *     the policy steps down to two-phase for a revalidation window,
 *     re-measures, and re-escalates only if the waits still dwarf the
 *     poll budget — the same backed-off refresh-probe discipline the
 *     protocol policies use for dormant rungs. In a regime where park
 *     was right the lease costs ~nothing (two-phase differs from park
 *     by at most one expired Lpoll per wait); in a regime that
 *     quickened it is the escape hatch.
 *
 * A decision streak is the hysteresis: switch_streak consecutive
 * disagreeing verdicts for most edges, the longer leave_spin_streak
 * for spin -> two-phase — a wrong park in a saturated regime costs ~B
 * per handoff, so leaving spin demands the most evidence. One
 * preemption-mangled handoff or one quiet release never flips the
 * mode.
 */
#pragma once

#include <cstdint>

#include "core/cost_model.hpp"
#include "waiting/wait.hpp"

namespace reactive {

/// Waiting mode of a reactive object (the second selection axis).
enum class WaitMode : std::uint8_t {
    kSpin = 0,      ///< poll forever (the pre-subsystem behavior)
    kTwoPhase = 1,  ///< poll up to Lpoll = alpha x B, then park
    kPark = 2,      ///< park immediately (no polling phase)
};

/**
 * alpha* for exponentially distributed waiting times, in permille:
 * ln(e - 1) ~ 0.5413 (theory::exponential_optimal_alpha()). Kept as an
 * integer constant so the hot-path threshold arithmetic — like every
 * policy computation in this repo — stays in integers.
 */
inline constexpr std::uint64_t kWaitAlphaPermille = 541;

/**
 * Unpacked form of the per-object wait hint. The packed form is one
 * uint32_t (written by the holder, read by waiters, both relaxed):
 *
 *   bits [1:0]  WaitMode
 *   bit  [2]    PollMechanism (0 spin, 1 switch-spin)
 *   bits [31:3] poll_limit >> 4 (16-cycle granularity, saturating)
 */
struct WaitHint {
    WaitMode mode = WaitMode::kSpin;
    PollMechanism poll = PollMechanism::kSpin;
    std::uint64_t poll_limit = 0;  ///< cycles (meaningful for kTwoPhase)
};

inline constexpr std::uint32_t pack_wait_hint(const WaitHint& h)
{
    std::uint64_t q = h.poll_limit >> 4;
    if (q > 0x1fffffffu)
        q = 0x1fffffffu;  // saturate: ~8.5e9 cycles is "forever"
    return static_cast<std::uint32_t>(h.mode) |
           (h.poll == PollMechanism::kSwitchSpin ? 4u : 0u) |
           (static_cast<std::uint32_t>(q) << 3);
}

inline constexpr WaitHint unpack_wait_hint(std::uint32_t packed)
{
    WaitHint h;
    h.mode = static_cast<WaitMode>(packed & 3u);
    h.poll = (packed & 4u) != 0 ? PollMechanism::kSwitchSpin
                                : PollMechanism::kSpin;
    h.poll_limit = static_cast<std::uint64_t>(packed >> 3) << 4;
    return h;
}

/// The waiting algorithm a hint tells a waiter to run (wait_until).
inline constexpr WaitingAlgorithm to_algorithm(const WaitHint& h)
{
    switch (h.mode) {
    case WaitMode::kPark:
        return WaitingAlgorithm::always_block();
    case WaitMode::kTwoPhase:
        return WaitingAlgorithm::two_phase(h.poll_limit, h.poll);
    case WaitMode::kSpin:
    default:
        return WaitingAlgorithm::always_spin(h.poll);
    }
}

// clang-format off
/**
 * Waiting-mode selection policy. All methods are called only by
 * in-consensus processes (the same serialization that protects
 * protocol-switch policy state): `on_release` by the departing holder
 * (returns the packed hint for the *next* waiters), `note_wake_latency`
 * by a freshly woken waiter *after* it became the holder (its measured
 * release->running latency is the block-cost class sample).
 */
template <typename Pol>
concept WaitSelectPolicy =
    requires(Pol p, const WaitSignal& s, std::uint64_t c) {
        { p.on_release(s) } -> std::same_as<std::uint32_t>;
        { p.note_wake_latency(c) } -> std::same_as<void>;
        { p.hint() } -> std::same_as<std::uint32_t>;
    };
// clang-format on

/**
 * Measured waiting-mode selection (see file header for the model):
 * threshold decisions on the handoff-gap, wait, and block-cost lanes,
 * with a decision streak as hysteresis.
 *
 * B (the block cost) is seeded and then *observed* from measured wake
 * latencies — the release-to-running span a woken waiter reports when
 * it becomes holder — so Lpoll = alpha x B tracks the machine the
 * object actually runs on instead of the Alewife constant. The first
 * observation replaces the seed outright (EwmaStat::observe): wake
 * latencies arrive only once parking has begun, and a wrong seed would
 * otherwise bias the poll budget for dozens of samples.
 */
class CalibratedWaitPolicy {
  public:
    struct Params {
        std::uint64_t hold_seed = 200;    ///< cycles; mean hold time seed
        std::uint64_t block_seed = 1000;  ///< cycles; B seed until measured
        std::uint32_t ewma_shift = 3;     ///< steady-state gain 2^-shift
        /// Floor on the calibrated Lpoll (clock-read granularity).
        std::uint64_t min_poll = 64;
        /// Outlier clamp: a sample folds in at most clamp_factor x the
        /// lane's current estimate (preemption-spike robustness).
        std::uint64_t clamp_factor = 8;
        /// Saturated-handoff test: a release-to-acquire gap of at most
        /// hold/2 + idle_slack means some waiter was resident and
        /// polling when the lock freed, so spinning hands off at poll
        /// granularity. The additive term absorbs the fixed
        /// release-to-stamp path length (a few cache ops).
        std::uint64_t idle_slack = 32;
        /// The gap lane clamps much harder than the generic
        /// clamp_factor: one sample moves it by at most a factor of
        /// idle_clamp_factor (plus 2 x idle_slack of additive headroom
        /// so a near-zero estimate can still grow). Quantum expiries
        /// synchronize across simulated processors, so context-switch
        /// storms produce *consecutive* gap spikes — under the generic
        /// 8x clamp a four-spike storm multiplies the estimate ~12x
        /// and fakes a regime change; under 2x it takes a dozen
        /// consecutive spikes, which *is* a regime change.
        std::uint64_t idle_clamp_factor = 2;
        /// Park cutoff: once measured waits reach this multiple of the
        /// calibrated Lpoll, the two-phase polling prefix is pure
        /// waste (it expires virtually every time) and the policy
        /// parks immediately. 8 x Lpoll ~ 4.3 x B.
        std::uint64_t park_wait_factor = 8;
        /// Consecutive disagreeing decisions before the mode switches
        /// (hysteresis against boundary flapping and one-off stalls).
        std::uint32_t switch_streak = 3;
        /// Leaving spin is the asymmetric risk: a wrong park in a
        /// saturated regime costs ~B per handoff, a wrong spin in an
        /// unsaturated one costs only the quantum tail. So the
        /// spin -> two-phase transition demands a longer run of
        /// agreeing verdicts than any other edge.
        std::uint32_t leave_spin_streak = 8;
        /// Park self-seals: with no polling phase, neither waiters nor
        /// the holder can observe that handoffs *would* be fast again
        /// (every gap is a wake, ~B cycles). So park tenure is leased:
        /// after park_tenure releases the policy steps back to
        /// two-phase for at least park_revalidate releases, whose poll
        /// window re-exposes the gap and refreshes the W lane — the
        /// same backed-off refresh-probe idea the protocol policies
        /// use for dormant rungs.
        std::uint32_t park_tenure = 64;
        std::uint32_t park_revalidate = 16;
        /// Polling mechanism waiters should use below the park point.
        PollMechanism poll = PollMechanism::kSpin;
    };

    CalibratedWaitPolicy() : CalibratedWaitPolicy(Params{}) {}

    explicit CalibratedWaitPolicy(Params p)
        : params_(p),
          hold_(p.hold_seed),
          depth_x16_(0),
          block_(p.block_seed),
          wait_(0),
          idle_(2 * p.idle_slack)
    {
        // The gap lane opts out of EwmaStat's fast start (gain 1/2 for
        // the first samples): start-of-run gaps are spawn-paced noise,
        // and amplifying them is exactly the spike-compounding the
        // tight idle clamp exists to prevent. idle_seen_ carries the
        // "any contention history?" bit instead of idle_.count.
        idle_.count = EwmaStat::kFastStartSamples;
        hint_ = compute();
    }

    /// Departing holder: fold in this hold's span, the queue depth it
    /// saw for free, and the handoff gap its own acquisition closed;
    /// re-decide the mode; recompute the hint. In-consensus only.
    std::uint32_t on_release(const WaitSignal& s)
    {
        hold_.update(clamped(s.hold_cycles, hold_), params_.ewma_shift);
        depth_x16_.update(static_cast<std::uint64_t>(s.queue_depth) * 16,
                          params_.ewma_shift);
        if (s.now_cycles != 0) {
            // The gap this holder closed: the previous release's stamp
            // to this hold's start (now - hold span). Derived here so
            // every primitive that timestamps its releases feeds the
            // lane — no extra instrumentation at acquisition.
            const std::uint64_t acquired =
                s.now_cycles > s.hold_cycles ? s.now_cycles - s.hold_cycles
                                             : 0;
            if (last_release_ != 0 && acquired > last_release_) {
                std::uint64_t gap = acquired - last_release_;
                const std::uint64_t cap =
                    idle_.value * params_.idle_clamp_factor +
                    2 * params_.idle_slack;
                idle_.update(gap > cap ? cap : gap, params_.ewma_shift);
                idle_seen_ = true;
            }
            last_release_ = s.now_cycles;
        }
        decide();
        hint_ = compute();
        return hint_;
    }

    /// Woken waiter, now holder: one measured block-cost-class sample
    /// (release-timestamp -> running). First sample replaces the seed.
    ///
    /// B approximates the *fixed* cost of blocking — unload, signal,
    /// reload — which is a machine constant, not a workload variable.
    /// Raw release-to-running spans also contain scheduling queueing
    /// delay, which under oversubscription is unbounded (a woken
    /// thread waits out its processor's whole run queue) and would
    /// inflate Lpoll = alpha x B until "two-phase" degenerates into
    /// spinning. So the lane tracks the sample *floor*: it chases
    /// lower samples quickly (a clean wake with a free processor is
    /// the overhead itself) and lets higher ones drag it up only by a
    /// bounded fraction per sample.
    void note_wake_latency(std::uint64_t cycles)
    {
        if (block_.count == 0 || cycles < block_.value) {
            block_.observe(cycles, 1);
            return;
        }
        const std::uint64_t ceil_ = block_.value + block_.value / 8;
        block_.update(cycles > ceil_ ? ceil_ : cycles,
                      params_.ewma_shift);
    }

    /// Slow-path winner, now holder: its own measured wait span (the W
    /// lane). Samples saturate at twice the park cutoff — the lane's
    /// only consumer is the `W >= park_wait_factor x Lpoll` comparison,
    /// and an uncapped pathological span (a waiter stranded across a
    /// transient mode excursion can report millions of cycles) would
    /// otherwise pin the verdict at "park" for the dozens of samples
    /// an EWMA needs to flush it.
    void note_wait(std::uint64_t cycles)
    {
        const std::uint64_t cap = 2 * params_.park_wait_factor * lpoll();
        wait_.observe(cycles > cap ? cap : cycles, params_.ewma_shift);
    }

    std::uint32_t hint() const { return hint_; }
    WaitMode mode() const { return mode_; }

    // ---- estimator lanes (tests, diagnostics, trace snapshots) -------

    std::uint64_t hold_estimate() const { return hold_.value; }
    std::uint64_t depth_estimate_x16() const { return depth_x16_.value; }
    std::uint64_t block_estimate() const { return block_.value; }
    std::uint64_t wait_estimate() const { return wait_.value; }
    std::uint64_t idle_estimate() const { return idle_.value; }
    bool block_measured() const { return block_.count > 0; }

    /// The calibrated poll budget Lpoll = alpha x B_measured.
    std::uint64_t lpoll() const
    {
        const std::uint64_t l = block_.value * kWaitAlphaPermille / 1000;
        return l < params_.min_poll ? params_.min_poll : l;
    }

    /// Expected wait of the next waiter: the measured W lane (falls
    /// back to the hold x (depth + 1/2) queueing proxy until a wait
    /// has been observed).
    std::uint64_t expected_wait() const
    {
        if (wait_.count > 0)
            return wait_.value;
        return hold_.value * (depth_x16_.value + 8) / 16;
    }

  private:
    /// Outlier clamp (see Params::clamp_factor); the first sample of a
    /// lane passes through untouched.
    std::uint64_t clamped(std::uint64_t sample, const EwmaStat& lane) const
    {
        if (lane.count == 0)
            return sample;
        const std::uint64_t cap = lane.value * params_.clamp_factor;
        return sample > cap ? cap : sample;
    }

    /// Saturation verdict: handoffs at poll granularity (or no
    /// contention history at all — an uncontended object never leaves
    /// spin and so never pays a cycle of blocking machinery).
    bool saturated() const
    {
        return !idle_seen_ ||
               idle_.value <= hold_.value / 2 + params_.idle_slack;
    }

    /// Waits so long the two-phase poll prefix virtually always
    /// expires — polling before parking is pure waste.
    bool waits_dwarf_poll() const
    {
        return wait_.count > 0 &&
               wait_.value >= params_.park_wait_factor * lpoll();
    }

    /// The adjacent rung the lanes currently argue for. Modes form a
    /// patience ladder (spin < two-phase < park) and transitions step
    /// one rung at a time: spin never jumps straight to park on a
    /// stale W estimate, and park steps down through two-phase, whose
    /// poll window re-measures the gap before spin is reachable.
    WaitMode desired() const
    {
        switch (mode_) {
        case WaitMode::kSpin:
            return saturated() ? WaitMode::kSpin : WaitMode::kTwoPhase;
        case WaitMode::kTwoPhase:
            if (saturated())
                return WaitMode::kSpin;
            return waits_dwarf_poll() ? WaitMode::kPark
                                      : WaitMode::kTwoPhase;
        case WaitMode::kPark:
        default:
            return waits_dwarf_poll() ? WaitMode::kPark
                                      : WaitMode::kTwoPhase;
        }
    }

    /// Streak hysteresis plus the park lease. A transition lands only
    /// after enough consecutive releases agreed on the same
    /// non-incumbent rung — leave_spin_streak for the risky
    /// spin -> two-phase edge, switch_streak elsewhere. Park tenure is
    /// bounded (Params::park_tenure): on expiry the policy steps back
    /// to two-phase and refuses to re-escalate for park_revalidate
    /// releases, so the W lane is refreshed by measurements the park
    /// mode itself could never produce.
    void decide()
    {
        if (mode_ == WaitMode::kPark && ++park_age_ >= params_.park_tenure) {
            mode_ = WaitMode::kTwoPhase;
            pending_ = WaitMode::kTwoPhase;
            streak_ = 0;
            park_age_ = 0;
            revalidate_left_ = params_.park_revalidate;
            return;
        }
        if (revalidate_left_ > 0)
            --revalidate_left_;
        WaitMode d = desired();
        if (d == WaitMode::kPark && revalidate_left_ > 0)
            d = WaitMode::kTwoPhase;
        if (d == mode_) {
            streak_ = 0;
            return;
        }
        if (d != pending_) {
            pending_ = d;
            streak_ = 1;
            return;
        }
        const std::uint32_t need = mode_ == WaitMode::kSpin
                                       ? params_.leave_spin_streak
                                       : params_.switch_streak;
        if (++streak_ >= need) {
            mode_ = d;
            streak_ = 0;
            park_age_ = 0;
        }
    }

    std::uint32_t compute() const
    {
        WaitHint h;
        h.poll = params_.poll;
        h.mode = mode_;
        if (h.mode == WaitMode::kTwoPhase)
            h.poll_limit = lpoll();
        return pack_wait_hint(h);
    }

    Params params_;
    EwmaStat hold_;      ///< holder's critical-section span
    EwmaStat depth_x16_; ///< parked/queued waiters at release, x16
    EwmaStat block_;     ///< B: measured wake latency class
    EwmaStat wait_;      ///< W: winners' measured wait spans
    EwmaStat idle_;      ///< handoff gap: release -> next acquisition

    WaitMode mode_ = WaitMode::kSpin;     ///< published mode
    WaitMode pending_ = WaitMode::kSpin;  ///< streak candidate
    std::uint32_t streak_ = 0;
    std::uint32_t park_age_ = 0;         ///< releases spent in kPark
    std::uint32_t revalidate_left_ = 0;  ///< park re-entry ban countdown
    bool idle_seen_ = false;             ///< any gap sample folded yet?
    std::uint64_t last_release_ = 0;
    std::uint32_t hint_ = 0;
};

/**
 * Static waiting mode behind the WaitSelectPolicy interface — the
 * always-spin / always-block / fixed-two-phase comparison rows of
 * fig_wait_reactive, and the forced-mode handle for tests.
 */
class FixedWaitPolicy {
  public:
    FixedWaitPolicy() : FixedWaitPolicy(WaitingAlgorithm::always_spin()) {}

    explicit FixedWaitPolicy(const WaitingAlgorithm& alg)
    {
        WaitHint h;
        h.poll = alg.poll;
        switch (alg.kind) {
        case WaitKind::kAlwaysBlock:
            h.mode = WaitMode::kPark;
            break;
        case WaitKind::kTwoPhase:
            h.mode = WaitMode::kTwoPhase;
            h.poll_limit = alg.poll_limit;
            break;
        case WaitKind::kAlwaysSpin:
        default:
            h.mode = WaitMode::kSpin;
            break;
        }
        hint_ = pack_wait_hint(h);
    }

    std::uint32_t on_release(const WaitSignal&) { return hint_; }
    void note_wake_latency(std::uint64_t) {}
    std::uint32_t hint() const { return hint_; }

  private:
    std::uint32_t hint_ = 0;
};

static_assert(WaitSelectPolicy<CalibratedWaitPolicy>);
static_assert(WaitSelectPolicy<FixedWaitPolicy>);

}  // namespace reactive
