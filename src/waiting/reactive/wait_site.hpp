/**
 * @file
 * WaitSite: the per-object (or per-socket) parking point that composes
 * the wait_select.hpp hint with waiting/wait.hpp's algorithms.
 *
 * A reactive primitive is parameterized on a *Waiting* tag:
 *
 *  - `SpinWaiting` (the default) instantiates the empty specialization:
 *    zero storage (`[[no_unique_address]]`), every method a no-op or a
 *    plain spin, so primitives compile to exactly the code they
 *    compiled to before this subsystem existed — the park-free
 *    bit-identity argument reduces to "the type is empty and the
 *    parking branches are `if constexpr`-pruned".
 *  - `ParkWaiting` holds the platform's WaitQueue eventcount
 *    (platform/parker.hpp futex / condvar, sim/machine.hpp SimWaitQueue),
 *    the holder-published hint word, and the wake timestamp used to
 *    measure the block-cost class.
 *
 * Safety (the PR 4/6 argument, restated for parking):
 *
 *  - Sites are **object-level** (or per-socket inside CohortQueue) and
 *    strictly outlive every waiter's queue node, so a waker never
 *    touches releasable memory: it stores the grant into the node
 *    (exactly as before), then notifies the *site*.
 *  - Every condition-changing store in a parking configuration is
 *    followed, in the same thread, by `wake_all()` on the covering
 *    site. `notify_all` bumps the eventcount epoch with a seq_cst RMW
 *    before consulting the waiter count, and `prepare_wait` increments
 *    the waiter count with a seq_cst RMW before re-checking the
 *    predicate — the Dekker store/load pairing that makes a lost
 *    wakeup impossible (parker.hpp documents the futex and condvar
 *    variants, machine.cpp the simulated one).
 *  - Waiters woken by a broadcast re-check *their own* predicate and
 *    re-park if it still fails (wait_until's eventcount loop), so a
 *    thundering herd costs spurious wakeups, never correctness. An
 *    empty notify is one epoch bump plus a waiter-count load — the
 *    syscall is skipped.
 *
 * Hint staleness is bounded in both directions. A waiter that parked
 * under a stale hint is still woken by the next release (which always
 * notifies), re-checks, and — because `await` parks one round at a
 * time (wait_round) — re-reads the hint before re-parking. A waiter
 * *spinning* under a stale hint would never be told to park — no event
 * interrupts a spin loop — so `await` runs spin hints in bounded
 * slices and re-reads the hint between slices. Both directions matter
 * to mode *probing*: a trial park hint reaches spinning waiters within
 * a slice, and retracting it un-parks them within one wakeup. The
 * measured wake latency (release-timestamp -> running) is reported to
 * the caller, which feeds it to the WaitSelectPolicy only once it is
 * the holder — keeping the block-cost estimator single-writer.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/platform_concept.hpp"
#include "waiting/reactive/wait_select.hpp"
#include "waiting/wait.hpp"

namespace reactive {

/// Waiting tag: keep the pre-subsystem pure-spin slow paths (default).
struct SpinWaiting {};

/// Waiting tag: hint-dispatched spin / two-phase / park slow paths.
struct ParkWaiting {};

/// What one dispatched wait cost (returned by WaitSite::await).
struct AwaitResult {
    std::uint64_t wait_cycles = 0;   ///< wait start -> predicate true
    std::uint64_t wake_latency = 0;  ///< release stamp -> running (0 = n/a)
    bool blocked = false;            ///< the wait reached the parked phase
};

template <Platform P, typename Waiting = SpinWaiting>
class WaitSite;

/**
 * Empty spin site: no storage, no hint, a plain pause loop. Primitives
 * instantiated with SpinWaiting keep their historical waiting code
 * byte-for-byte (their `if constexpr (Site::kParking)` branches prune).
 */
template <Platform P>
class WaitSite<P, SpinWaiting> {
  public:
    static constexpr bool kParking = false;

    template <typename Pred>
    AwaitResult await(Pred&& pred)
    {
        return await(static_cast<Pred&&>(pred), [] { P::pause(); });
    }

    template <typename Pred, typename Poll>
    AwaitResult await(Pred&& pred, Poll&& poll)
    {
        while (!pred())
            poll();
        return {};
    }

    void wake_all() {}
    void set_hint(std::uint32_t) {}
    std::uint32_t hint() const { return 0; }
    std::uint32_t waiters() const { return 0; }
};

/**
 * Parking site: the platform eventcount plus the holder-published wait
 * hint. See file header for the safety argument.
 */
template <Platform P>
class WaitSite<P, ParkWaiting> {
  public:
    static constexpr bool kParking = true;

    /// Polls per spin slice before the hint is re-read. Large enough
    /// that the relaxed hint load is noise against the polls, small
    /// enough that a just-published park hint lands promptly.
    static constexpr std::uint32_t kSpinSlice = 64;

    /// Cycle bound on a spin slice. The poll count alone does not
    /// bound a slice in *time*: a pacing poll (the TTS path's
    /// exponential backoff) stretches a single poll up to the backoff
    /// cap, so 64 polls can outlast the entire wait and the hint would
    /// never be re-read — a waiter that entered under a stale spin
    /// hint would sit out a park hint published one release later.
    /// Half the default backoff cap: once backoff saturates the hint
    /// is re-read roughly every pause, and the extra relaxed load is
    /// noise against a multi-thousand-cycle delay.
    static constexpr std::uint64_t kSpinSliceCycles = 4096;

    /**
     * Waits until @p pred() is true, using the waiting algorithm the
     * current hint names. The predicate may acquire (TTS exchange,
     * try_lock_read) and must be abortable via captured flags — it is
     * re-evaluated across spurious wakeups. Standard eventcount
     * contract: wakers make the condition true *before* wake_all().
     *
     * @p poll paces the spin-mode polling loop. Callers whose
     * predicate touches a *contended* line (TTS exchange) must pass
     * their spin build's backoff here — spin mode is supposed to
     * reproduce the spin build, and polling a contended line at pause
     * cadence is an invalidation storm the spin build does not have.
     * Local-flag waits (queue nodes) use the plain-pause default.
     */
    template <typename Pred>
    AwaitResult await(Pred&& pred)
    {
        return await(static_cast<Pred&&>(pred), [] { P::pause(); });
    }

    template <typename Pred, typename Poll>
    AwaitResult await(Pred&& pred, Poll&& poll)
    {
        AwaitResult r;
        const std::uint64_t t0 = P::now();
        for (;;) {
            const WaitHint h =
                unpack_wait_hint(hint_.load(std::memory_order_relaxed));
            const WaitingAlgorithm alg = to_algorithm(h);
            if (alg.kind == WaitKind::kAlwaysSpin) {
                // Spin in a bounded slice, then re-read the hint: a
                // park hint published mid-wait must reach waiters that
                // entered under the old spin hint (nothing else ever
                // interrupts a spin loop). The slice is bounded both
                // in polls and in cycles — see kSpinSliceCycles.
                bool satisfied = false;
                const std::uint64_t slice_end = P::now() + kSpinSliceCycles;
                for (std::uint32_t i = 0; i < kSpinSlice; ++i) {
                    if (pred()) {
                        satisfied = true;
                        break;
                    }
                    poll();
                    if (P::now() >= slice_end)
                        break;
                }
                if (satisfied)
                    break;
                continue;
            }
            // Two-phase and park proceed one round (poll phase + one
            // park episode) at a time, re-reading the hint between
            // rounds: a retracted park hint must reach waiters that a
            // broadcast woke with their predicate still false, or a
            // transient park mode would strand them park-bound until
            // they won.
            const WaitRound round = wait_round<P>(queue_, pred, alg);
            if (round.blocked)
                r.blocked = true;
            if (round.satisfied)
                break;
        }
        r.wait_cycles = P::now() - t0;
        if (r.blocked) {
            // Block-cost-class sample: the span from the waking
            // release's stamp to now. Meaningful only when this wake
            // chains directly off that release; a stale stamp (we woke
            // late, several releases ago) only inflates the sample
            // toward the real scheduling delay, which is the quantity
            // being estimated.
            const std::uint64_t ts =
                release_ts_.load(std::memory_order_relaxed);
            const std::uint64_t now = P::now();
            if (ts != 0 && now > ts)
                r.wake_latency = now - ts;
        }
        return r;
    }

    /// Stamps the wake timestamp and broadcasts to every parked waiter.
    /// Callers: any thread that just made some waiter's predicate true
    /// (release stores, grant handoffs, invalidation walks).
    void wake_all()
    {
        if (queue_.waiters() == 0) {
            // Nobody is advertised (the common spin-mode release).
            // The stamp is consumed only by woken waiters' latency
            // samples, so skip the shared-line write either way.
            //
            // In the simulator the count is an exact sequential read
            // that includes waiters still between prepare_wait and
            // commit_wait (machine.hpp), so skipping the notify —
            // epoch bump and all — cannot strand anyone: a later
            // prepare re-tests the predicate after our condition
            // store. This makes a spin-mode release charge exactly
            // what the SpinWaiting build charges; without it the
            // empty-notify wait_queue_op is a standing cost wedge
            // between the two builds.
            //
            // Natively the count is an advisory relaxed load that
            // cannot carry the Dekker pairing (a releaser's condition
            // store may still sit in the store buffer when it reads
            // the count, while a preparing waiter's predicate check
            // misses the store). Fall through: notify_all's internal
            // seq_cst epoch bump + waiter re-check is the lose-free
            // path, and it already elides the expensive wake.
            if constexpr (requires { requires P::deterministic_simulation; })
                return;
        } else {
            release_ts_.store(P::now(), std::memory_order_relaxed);
        }
        queue_.notify_all();
    }

    /// Holder-only hint publication (relaxed: the hint is advisory).
    /// Publish-on-change: every spinning waiter holds the hint line
    /// shared, and an unconditional store would invalidate all of
    /// them on every release; the holder's re-read is a cache hit.
    void set_hint(std::uint32_t packed)
    {
        if (hint_.load(std::memory_order_relaxed) != packed)
            hint_.store(packed, std::memory_order_relaxed);
    }

    std::uint32_t hint() const
    {
        return hint_.load(std::memory_order_relaxed);
    }

    /// Advisory parked-waiter count — the queue-depth signal the holder
    /// reads for free at release (single racy relaxed load).
    std::uint32_t waiters() const { return queue_.waiters(); }

  private:
    typename P::WaitQueue queue_;
    typename P::template Atomic<std::uint32_t> hint_{0};
    typename P::template Atomic<std::uint64_t> release_ts_{0};
};

}  // namespace reactive

