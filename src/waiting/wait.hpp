/**
 * @file
 * Waiting algorithms (thesis Chapter 4): always-spin, always-block, and
 * two-phase waiting, over any Platform's polling and signaling
 * mechanisms.
 *
 * The polling mechanism is the platform's pause (spinning) or — when the
 * platform provides one — a context switch to another resident thread
 * (switch-spinning on a block-multithreaded processor, Section 4.1).
 * The signaling mechanism is the platform's WaitQueue eventcount
 * (blocking; cost B ~ 500 cycles on Alewife, Table 4.1).
 *
 * Two-phase waiting (Section 4.3): poll until the cost of polling
 * reaches Lpoll, then block. Lpoll is static (Section 4.3.1), expressed
 * here in cycles; the theory module computes the optimal
 * Lpoll = alpha* x B for a given waiting-time distribution
 * (alpha* = ln(e-1) ~ 0.54 exponential, ~0.62 uniform).
 */
#pragma once

#include <cstdint>
#include <utility>

#include "platform/platform_concept.hpp"

namespace reactive {

/// Which waiting algorithm a construct uses.
enum class WaitKind : std::uint8_t {
    kAlwaysSpin,   ///< poll forever (polling mechanism only)
    kAlwaysBlock,  ///< signal immediately (no polling phase)
    kTwoPhase,     ///< poll up to Lpoll cycles, then block
};

/// How the polling phase yields between polls.
enum class PollMechanism : std::uint8_t {
    kSpin,        ///< Platform::pause (spinning)
    kSwitchSpin,  ///< context switch between resident threads, if the
                  ///< platform has one (Sparcle switch-spinning)
};

/// A configured waiting algorithm.
struct WaitingAlgorithm {
    WaitKind kind = WaitKind::kTwoPhase;
    PollMechanism poll = PollMechanism::kSpin;
    /// Lpoll in cycles (meaningful for kTwoPhase). The thesis default
    /// for exponential waits: 0.54 x B ~ 270 cycles on Alewife.
    std::uint64_t poll_limit = 270;

    static WaitingAlgorithm always_spin(PollMechanism p = PollMechanism::kSpin)
    {
        return {WaitKind::kAlwaysSpin, p, 0};
    }
    static WaitingAlgorithm always_block()
    {
        return {WaitKind::kAlwaysBlock, PollMechanism::kSpin, 0};
    }
    static WaitingAlgorithm two_phase(std::uint64_t lpoll,
                                      PollMechanism p = PollMechanism::kSpin)
    {
        return {WaitKind::kTwoPhase, p, lpoll};
    }
};

/// What one wait cost.
struct WaitOutcome {
    std::uint64_t wait_cycles = 0;  ///< start of wait -> condition satisfied
    bool blocked = false;           ///< reached the signaling phase
};

namespace detail {

template <typename P>
concept HasContextSwitch = requires { P::context_switch_poll(); };

/// One polling step: pause or switch-spin.
template <Platform P>
void poll_step(PollMechanism mech)
{
    if constexpr (HasContextSwitch<P>) {
        if (mech == PollMechanism::kSwitchSpin) {
            P::context_switch_poll();
            return;
        }
    }
    (void)mech;
    P::pause();
}

}  // namespace detail

/**
 * Waits until @p pred() is true using @p alg.
 *
 * The predicate must become true before any matching notify on @p q
 * (standard eventcount contract); it may have acquire semantics and may
 * be re-evaluated many times. Wakers: make the condition true, then
 * notify the queue.
 */
template <Platform P, typename Pred>
WaitOutcome wait_until(typename P::WaitQueue& q, Pred&& pred,
                       const WaitingAlgorithm& alg)
{
    WaitOutcome out;
    if (pred())
        return out;  // no waiting at all
    const std::uint64_t t0 = P::now();

    // Phase 1: polling (skipped entirely by always-block).
    if (alg.kind != WaitKind::kAlwaysBlock) {
        for (;;) {
            detail::poll_step<P>(alg.poll);
            if (pred()) {
                out.wait_cycles = P::now() - t0;
                return out;
            }
            if (alg.kind == WaitKind::kTwoPhase &&
                P::now() - t0 >= alg.poll_limit)
                break;  // polling budget Lpoll exhausted
        }
    }

    // Phase 2: signaling (eventcount protocol; loops over spurious or
    // consumed wakeups).
    for (;;) {
        const std::uint32_t epoch = q.prepare_wait();
        if (pred()) {
            q.cancel_wait();
            break;
        }
        q.commit_wait(epoch);
        out.blocked = true;
        if (pred())
            break;
    }
    out.wait_cycles = P::now() - t0;
    return out;
}

/// What one bounded round of waiting produced (wait_round).
struct WaitRound {
    bool satisfied = false;  ///< pred() held when the round ended
    bool blocked = false;    ///< the round reached the signaling phase
};

/**
 * One *round* of @p alg: the polling phase (two-phase only), then at
 * most one signaling episode. Unlike wait_until this returns after a
 * single wakeup even if pred() is still false, so the caller can
 * re-consult a changed waiting-mode hint before re-parking — without
 * this, a waiter parked under a since-retracted park hint would stay
 * park-bound until it finally won. Precondition: alg.kind is
 * kAlwaysBlock or kTwoPhase (spinning has no round boundary; callers
 * bound it themselves). Same eventcount contract as wait_until.
 */
template <Platform P, typename Pred>
WaitRound wait_round(typename P::WaitQueue& q, Pred&& pred,
                     const WaitingAlgorithm& alg)
{
    WaitRound r;
    if (pred()) {
        r.satisfied = true;
        return r;
    }
    if (alg.kind == WaitKind::kTwoPhase) {
        const std::uint64_t t0 = P::now();
        for (;;) {
            detail::poll_step<P>(alg.poll);
            if (pred()) {
                r.satisfied = true;
                return r;
            }
            if (P::now() - t0 >= alg.poll_limit)
                break;  // polling budget Lpoll exhausted
        }
    }
    const std::uint32_t epoch = q.prepare_wait();
    if (pred()) {
        q.cancel_wait();
        r.satisfied = true;
        return r;
    }
    q.commit_wait(epoch);
    r.blocked = true;
    r.satisfied = pred();
    return r;
}

}  // namespace reactive

