/**
 * @file
 * J-structures (thesis Section 4.6.1): arrays with full/empty bits and
 * waiting readers — the I-structure [6] variant used on Alewife, where
 * full/empty bits are hardware-supported per memory word. Readers of an
 * empty slot wait (Figure 4.6 measures those waits); each slot is
 * written once per epoch; `reset` empties all slots for reuse.
 */
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"
#include "stats/summary.hpp"
#include "waiting/wait.hpp"

namespace reactive {

/**
 * Fixed-size array of single-assignment cells with waiting reads.
 *
 * @tparam T trivially copyable element.
 * @tparam P Platform model.
 */
template <typename T, Platform P>
class JStructure {
  public:
    explicit JStructure(std::size_t size, WaitingAlgorithm alg = {})
        : cells_(size), alg_(alg)
    {
    }

    std::size_t size() const { return cells_.size(); }

    /// Fills slot @p i (must be empty) and wakes its waiting readers.
    void write(std::size_t i, T v)
    {
        Cell& c = cells_[i].value;
        assert(c.full.load(std::memory_order_relaxed) == 0 &&
               "J-structure slot written twice");
        c.value = v;
        c.full.store(1, std::memory_order_release);
        c.queue.notify_all();
    }

    /// True if slot @p i is full (non-blocking probe).
    bool full(std::size_t i) const
    {
        return cells_[i].value.full.load(std::memory_order_acquire) != 0;
    }

    /**
     * Reads slot @p i, waiting until it is full.
     * @param profile optional waiting-time recorder.
     */
    T read(std::size_t i, stats::Samples* profile = nullptr)
    {
        Cell& c = cells_[i].value;
        WaitOutcome out = wait_until<P>(
            c.queue,
            [&c] { return c.full.load(std::memory_order_acquire) != 0; },
            alg_);
        if (profile != nullptr)
            profile->add(static_cast<double>(out.wait_cycles));
        return c.value;
    }

    /// Empties every slot (quiescent callers only).
    void reset()
    {
        for (auto& c : cells_)
            c.value.full.store(0, std::memory_order_relaxed);
    }

  private:
    struct Cell {
        typename P::template Atomic<std::uint32_t> full{0};
        T value{};
        typename P::WaitQueue queue;
    };

    std::vector<CacheAligned<Cell>> cells_;
    WaitingAlgorithm alg_;
};

}  // namespace reactive
