/**
 * @file
 * Barrier with configurable waiting algorithm (thesis Section 4.6.1).
 *
 * Sense-reversing centralized barrier: arrivals decrement a counter;
 * the last arrival resets the counter, flips the shared sense, and
 * wakes waiters. Barrier waiting times are the uniform-distribution
 * case of the thesis' analysis (Figures 4.8/4.9, Section 4.4.3).
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"
#include "stats/summary.hpp"
#include "waiting/wait.hpp"

namespace reactive {

/// Sense-reversing barrier for a fixed participant count.
template <Platform P>
class WaitingBarrier {
  public:
    /// Per-participant state; reuse the same Node across episodes.
    struct Node {
        std::uint32_t sense = 1;
    };

    explicit WaitingBarrier(std::uint32_t participants, WaitingAlgorithm alg = {})
        : participants_(participants), alg_(alg)
    {
        count_.store(participants, std::memory_order_relaxed);
        sense_->store(0, std::memory_order_relaxed);
    }

    /**
     * Arrives at the barrier; returns when all participants arrived.
     * @param profile optional waiting-time recorder (last arrival
     *        records 0).
     */
    void arrive(Node& node, stats::Samples* profile = nullptr)
    {
        const std::uint32_t my_sense = node.sense;
        node.sense ^= 1u;
        if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last arrival: reset and release this episode.
            count_.store(participants_, std::memory_order_relaxed);
            sense_->store(my_sense, std::memory_order_release);
            queue_.notify_all();
            if (profile != nullptr)
                profile->add(0.0);
            return;
        }
        WaitOutcome out = wait_until<P>(
            queue_,
            [this, my_sense] {
                return sense_->load(std::memory_order_acquire) == my_sense;
            },
            alg_);
        if (profile != nullptr)
            profile->add(static_cast<double>(out.wait_cycles));
    }

    std::uint32_t participants() const { return participants_; }

  private:
    const std::uint32_t participants_;
    typename P::template Atomic<std::uint32_t> count_{0};
    CacheAligned<typename P::template Atomic<std::uint32_t>> sense_;
    typename P::WaitQueue queue_;
    WaitingAlgorithm alg_;
};

}  // namespace reactive
