/**
 * @file
 * Mutex with configurable waiting algorithm (thesis Section 4.6.1,
 * mutual-exclusion synchronization).
 *
 * The protocol is deliberately simple (test-and-set word + eventcount):
 * Chapter 4 studies the *waiting mechanism* dimension in isolation,
 * with lock waiters not queued (Section 4.4.3 models un-queued mutex
 * waits); protocol selection is Chapter 3's axis, covered by
 * ReactiveLock. Waiting-time profiles from this mutex reproduce
 * Figures 4.10/4.11.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/platform_concept.hpp"
#include "stats/summary.hpp"
#include "waiting/wait.hpp"

namespace reactive {

/// Mutual-exclusion lock whose waiters use a waiting algorithm.
template <Platform P>
class WaitingMutex {
  public:
    explicit WaitingMutex(WaitingAlgorithm alg = {}) : alg_(alg) {}

    /// @param profile optional waiting-time recorder (uncontended
    ///        acquisitions record 0).
    void lock(stats::Samples* profile = nullptr)
    {
        if (try_lock()) {
            if (profile != nullptr)
                profile->add(0.0);
            return;
        }
        WaitOutcome out =
            wait_until<P>(queue_, [this] { return try_lock(); }, alg_);
        if (profile != nullptr)
            profile->add(static_cast<double>(out.wait_cycles));
    }

    bool try_lock()
    {
        return locked_.load(std::memory_order_relaxed) == 0 &&
               locked_.exchange(1, std::memory_order_acquire) == 0;
    }

    void unlock()
    {
        locked_.store(0, std::memory_order_release);
        queue_.notify_one();
    }

  private:
    typename P::template Atomic<std::uint32_t> locked_{0};
    typename P::WaitQueue queue_;
    WaitingAlgorithm alg_;
};

}  // namespace reactive
