/**
 * @file
 * Futures (thesis Section 4.6.1): single-assignment values whose
 * readers wait with a configurable waiting algorithm.
 *
 * A future is produced exactly once (`set_value`) and may be consumed
 * by any number of readers (`get`); unresolved reads wait. This is the
 * producer-consumer synchronization type whose waiting times the thesis
 * measures in Figure 4.7 and models as exponential under Poisson
 * arrivals (Section 4.4.3).
 */
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "platform/platform_concept.hpp"
#include "stats/summary.hpp"
#include "waiting/wait.hpp"

namespace reactive {

/**
 * Single-assignment future.
 *
 * @tparam T trivially copyable payload.
 * @tparam P Platform model.
 */
template <typename T, Platform P>
class FutureValue {
  public:
    explicit FutureValue(WaitingAlgorithm alg = {}) : alg_(alg) {}

    /// Resolves the future; must be called exactly once.
    void set_value(T v)
    {
        value_ = v;
        assert(state_.load(std::memory_order_relaxed) == 0 &&
               "future resolved twice");
        state_.store(1, std::memory_order_release);
        queue_.notify_all();
    }

    /// True if already resolved (non-blocking probe).
    bool ready() const { return state_.load(std::memory_order_acquire) != 0; }

    /**
     * Returns the value, waiting with the configured algorithm.
     * @param profile optional waiting-time recorder (single-threaded
     *        collection contexts only, e.g. the simulator).
     */
    T get(stats::Samples* profile = nullptr)
    {
        WaitOutcome out = wait_until<P>(
            queue_,
            [this] { return state_.load(std::memory_order_acquire) != 0; },
            alg_);
        if (profile != nullptr)
            profile->add(static_cast<double>(out.wait_cycles));
        return value_;
    }

  private:
    typename P::template Atomic<std::uint32_t> state_{0};
    T value_{};
    typename P::WaitQueue queue_;
    WaitingAlgorithm alg_;
};

}  // namespace reactive
