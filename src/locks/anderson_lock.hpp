/**
 * @file
 * Anderson's array-based queue lock (Anderson [5]; discussed in thesis
 * Section 3.1.1 as one of the three queueing protocols).
 *
 * Each waiter spins on its own slot of a circular array. The thesis
 * chose MCS over this protocol because the array costs space
 * proportional to the processor count per lock and the slot index needs
 * fetch&increment; it is implemented here so the baseline benchmarks can
 * reproduce that design discussion, and as an additional queue-protocol
 * witness for the tests.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"

namespace reactive {

/**
 * Array queue lock with one cache line per slot.
 *
 * The capacity must be at least the maximum number of simultaneous
 * contenders; exceeding it corrupts the queue (as with the original).
 */
template <Platform P>
class AndersonLock {
  public:
    struct Node {
        std::uint32_t slot = 0;  ///< slot granted at lock() time
    };

    explicit AndersonLock(std::uint32_t capacity = 64)
        : slots_(capacity), mask_checked_(capacity)
    {
        slots_[0].value.store(1, std::memory_order_relaxed);  // first is free
        for (std::uint32_t i = 1; i < capacity; ++i)
            slots_[i].value.store(0, std::memory_order_relaxed);
    }

    void lock(Node& node)
    {
        node.slot = next_.fetch_add(1, std::memory_order_relaxed) %
                    static_cast<std::uint32_t>(slots_.size());
        while (slots_[node.slot].value.load(std::memory_order_acquire) == 0)
            P::pause();
    }

    bool try_lock(Node& node)
    {
        std::uint32_t ticket = next_.load(std::memory_order_relaxed);
        const std::uint32_t slot =
            ticket % static_cast<std::uint32_t>(slots_.size());
        if (slots_[slot].value.load(std::memory_order_acquire) == 0)
            return false;
        if (!next_.compare_exchange_strong(ticket, ticket + 1,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed))
            return false;
        node.slot = slot;
        return true;
    }

    void unlock(Node& node)
    {
        slots_[node.slot].value.store(0, std::memory_order_relaxed);
        const std::uint32_t next_slot =
            (node.slot + 1) % static_cast<std::uint32_t>(slots_.size());
        slots_[next_slot].value.store(1, std::memory_order_release);
    }

    std::uint32_t capacity() const { return mask_checked_; }

  private:
    std::vector<CacheAligned<typename P::template Atomic<std::uint32_t>>> slots_;
    typename P::template Atomic<std::uint32_t> next_{0};
    std::uint32_t mask_checked_;
};

}  // namespace reactive
