/**
 * @file
 * Test-and-set spin lock with randomized exponential backoff
 * (thesis Section 3.1.1).
 *
 * The simplest protocol: acquire with test&set, release with a store.
 * Cheap when uncontended; under contention the waiters' test&set polling
 * generates interconnect traffic on every attempt, which randomized
 * exponential backoff (Anderson [5]) mitigates at the cost of sluggish
 * handoff — the tradeoff Figure 3.2 quantifies.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/backoff.hpp"
#include "platform/platform_concept.hpp"

namespace reactive {

/**
 * test&set lock, polling with test&set, randomized exponential backoff.
 *
 * @tparam P Platform model (native or simulated).
 */
template <Platform P>
class TasLock {
  public:
    /// No per-acquisition state; present for interface uniformity.
    struct Node {};

    TasLock() = default;
    explicit TasLock(BackoffParams backoff) : backoff_params_(backoff) {}

    void lock(Node&)
    {
        ExpBackoff<P> backoff(backoff_params_);
        while (flag_.exchange(1, std::memory_order_acquire) != 0)
            backoff.pause();
    }

    bool try_lock(Node&)
    {
        return flag_.exchange(1, std::memory_order_acquire) == 0;
    }

    void unlock(Node&) { flag_.store(0, std::memory_order_release); }

    /// True if the lock is currently held (racy; for tests/monitoring).
    bool is_locked() const
    {
        return flag_.load(std::memory_order_relaxed) != 0;
    }

  private:
    typename P::template Atomic<std::uint32_t> flag_{0};
    BackoffParams backoff_params_{};
};

}  // namespace reactive
