/**
 * @file
 * Ticket lock with proportional backoff.
 *
 * Not one of the thesis' component protocols, but a useful baseline
 * between test-and-set and MCS: FIFO-fair like MCS, centralized like
 * test-and-set. Included so the baseline benchmarks can show where the
 * reactive lock's two chosen endpoints sit relative to the middle ground
 * (and used by the test suite as a third mutual-exclusion witness).
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/platform_concept.hpp"

namespace reactive {

/// FIFO ticket lock; waiters back off proportionally to queue distance.
template <Platform P>
class TicketLock {
  public:
    struct Node {};

    /// @param handoff_cycles estimated cycles per lock handoff, used to
    ///        scale proportional backoff while waiting.
    explicit TicketLock(std::uint32_t handoff_cycles = 32)
        : handoff_cycles_(handoff_cycles)
    {
    }

    void lock(Node&)
    {
        const std::uint32_t ticket =
            next_.fetch_add(1, std::memory_order_relaxed);
        for (;;) {
            const std::uint32_t serving =
                serving_.load(std::memory_order_acquire);
            if (serving == ticket)
                return;
            const std::uint32_t ahead = ticket - serving;
            P::delay(static_cast<std::uint64_t>(ahead) * handoff_cycles_);
        }
    }

    bool try_lock(Node&)
    {
        std::uint32_t serving = serving_.load(std::memory_order_relaxed);
        std::uint32_t expected = serving;
        // Only take a ticket if it would be served immediately.
        if (next_.load(std::memory_order_relaxed) != serving)
            return false;
        return next_.compare_exchange_strong(expected, serving + 1,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed);
    }

    void unlock(Node&)
    {
        serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
    }

    bool is_locked() const
    {
        return next_.load(std::memory_order_relaxed) !=
               serving_.load(std::memory_order_relaxed);
    }

  private:
    typename P::template Atomic<std::uint32_t> next_{0};
    typename P::template Atomic<std::uint32_t> serving_{0};
    std::uint32_t handoff_cycles_;
};

}  // namespace reactive
