/**
 * @file
 * Concepts and helpers shared by all mutual-exclusion lock protocols.
 *
 * Queue-based protocols (MCS, CLH) need a per-acquisition queue node that
 * must be passed back to unlock. To keep every protocol interchangeable
 * in the tests, benchmarks, and the reactive dispatcher, *all* locks use
 * the node-passing interface; protocols without per-acquisition state use
 * an empty Node. `ScopedLock` is the RAII convenience wrapper.
 */
#pragma once

#include <concepts>
#include <utility>

namespace reactive {

// clang-format off
/// A mutual-exclusion lock with per-acquisition context.
template <typename L>
concept NodeLock = requires(L l, typename L::Node n) {
    typename L::Node;
    { l.lock(n) } -> std::same_as<void>;
    { l.unlock(n) } -> std::same_as<void>;
};

/// A NodeLock that also supports a non-blocking acquisition attempt.
template <typename L>
concept TryNodeLock = NodeLock<L> && requires(L l, typename L::Node n) {
    { l.try_lock(n) } -> std::same_as<bool>;
};
// clang-format on

/// RAII guard for any NodeLock; owns the queue node on the stack.
template <NodeLock L>
class ScopedLock {
  public:
    explicit ScopedLock(L& lock) : lock_(lock) { lock_.lock(node_); }
    ~ScopedLock() { lock_.unlock(node_); }

    ScopedLock(const ScopedLock&) = delete;
    ScopedLock& operator=(const ScopedLock&) = delete;

  private:
    L& lock_;
    typename L::Node node_;
};

}  // namespace reactive
