/**
 * @file
 * The MCS list-based queue lock (Mellor-Crummey & Scott [43]; thesis
 * Figure 3.1 and Section 3.1.1).
 *
 * Waiters append themselves to a software queue with fetch&store and
 * spin on a flag in their *own* queue node, so each waiter polls a
 * distinct location and a release signals exactly one successor. This is
 * the scalable half of the reactive spin lock; its cost is the extra
 * queue maintenance, which doubles the uncontended latency relative to
 * test-and-set (Figure 3.2).
 *
 * Two release variants are provided:
 *
 *  - `McsVariant::kFetchStore` (default): the variant the thesis uses,
 *    because Alewife has fetch&store but *no* compare&swap. Releasing
 *    with an apparently empty queue swings the tail with fetch&store and
 *    repairs the queue if a waiter slipped in ("usurper" path). This is
 *    the race that Section 3.5.3 identifies as inflating MCS cost at
 *    low-but-nonzero contention (patterns 5-8 of the multiple-lock test).
 *  - `McsVariant::kCompareSwap`: the textbook release that empties the
 *    queue with a single compare&swap.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/platform_concept.hpp"

namespace reactive {

/// Release-path flavor for McsLock.
enum class McsVariant {
    kFetchStore,   ///< fetch&store-only release (Alewife-faithful)
    kCompareSwap,  ///< compare&swap release
};

/**
 * MCS queue lock.
 *
 * @tparam P       Platform model.
 * @tparam variant release-path flavor (see McsVariant).
 */
template <Platform P, McsVariant variant = McsVariant::kFetchStore>
class McsLock {
  public:
    /// Per-acquisition queue node; must stay alive from lock to unlock.
    struct Node {
        typename P::template Atomic<Node*> next{nullptr};
        typename P::template Atomic<std::uint32_t> locked{0};
    };

    void lock(Node& node)
    {
        node.next.store(nullptr, std::memory_order_relaxed);
        Node* pred = tail_.exchange(&node, std::memory_order_acq_rel);
        if (pred != nullptr) {
            node.locked.store(1, std::memory_order_relaxed);
            pred->next.store(&node, std::memory_order_release);
            while (node.locked.load(std::memory_order_acquire) != 0)
                P::pause();
        }
    }

    bool try_lock(Node& node)
    {
        node.next.store(nullptr, std::memory_order_relaxed);
        Node* expected = nullptr;
        return tail_.compare_exchange_strong(expected, &node,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed);
    }

    void unlock(Node& node)
    {
        if constexpr (variant == McsVariant::kCompareSwap)
            unlock_cas(node);
        else
            unlock_fetch_store(node);
    }

    /// True if some process holds or is queued for the lock (racy).
    bool is_locked() const
    {
        return tail_.load(std::memory_order_relaxed) != nullptr;
    }

  private:
    void unlock_cas(Node& node)
    {
        Node* succ = node.next.load(std::memory_order_acquire);
        if (succ == nullptr) {
            Node* expected = &node;
            if (tail_.compare_exchange_strong(expected, nullptr,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed))
                return;  // queue emptied
            // A successor is appending itself; wait for the link.
            while ((succ = node.next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
        }
        succ->locked.store(0, std::memory_order_release);
    }

    void unlock_fetch_store(Node& node)
    {
        Node* succ = node.next.load(std::memory_order_acquire);
        if (succ == nullptr) {
            // Apparently no successor: swing the tail to empty.
            Node* old_tail = tail_.exchange(nullptr, std::memory_order_acq_rel);
            if (old_tail == &node)
                return;  // really had no successor
            // Processes arrived between our two observations. Put the
            // "usurpers" (anyone who enqueued after the tail swing) back
            // in front of the victims we orphaned.
            Node* usurper = tail_.exchange(old_tail, std::memory_order_acq_rel);
            while ((succ = node.next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();  // wait for our victim successor's link
            if (usurper != nullptr) {
                // Usurper holds the lock; victims queue behind it.
                usurper->next.store(succ, std::memory_order_release);
            } else {
                succ->locked.store(0, std::memory_order_release);
            }
            return;
        }
        succ->locked.store(0, std::memory_order_release);
    }

    typename P::template Atomic<Node*> tail_{nullptr};
};

}  // namespace reactive
