/**
 * @file
 * Test-and-test-and-set spin lock with randomized exponential backoff
 * (Segall & Rudolph [50]; thesis Section 3.1.1).
 *
 * Waiters read-poll the (cached) lock word and attempt test&set only
 * when they observe it free. On a cache-coherent machine this removes
 * steady-state polling traffic; the residual cost is the invalidation
 * storm on release, which is why the protocol stops scaling at high
 * contention on directory machines that invalidate sequentially
 * (thesis Section 3.1.3) — exactly the regime where the MCS queue lock
 * takes over in the reactive algorithm.
 *
 * Because failures of the *test&set* step are rarer here than under pure
 * test-and-set, backoff grows more slowly, which is why TTS beats TAS at
 * low contention in Figure 3.2 (the thesis explains this interaction of
 * backoff with the two protocols explicitly).
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/backoff.hpp"
#include "platform/platform_concept.hpp"

namespace reactive {

/**
 * test-and-test-and-set lock: read-poll, then test&set, with randomized
 * exponential backoff after failed test&set attempts.
 */
template <Platform P>
class TtsLock {
  public:
    struct Node {};

    TtsLock() = default;
    explicit TtsLock(BackoffParams backoff) : backoff_params_(backoff) {}

    void lock(Node&)
    {
        ExpBackoff<P> backoff(backoff_params_);
        for (;;) {
            // Read-poll while the lock is visibly held (cache-local).
            while (flag_.load(std::memory_order_relaxed) != 0)
                P::pause();
            if (flag_.exchange(1, std::memory_order_acquire) == 0)
                return;
            backoff.pause();  // lost the race: back off before re-polling
        }
    }

    bool try_lock(Node&)
    {
        return flag_.load(std::memory_order_relaxed) == 0 &&
               flag_.exchange(1, std::memory_order_acquire) == 0;
    }

    void unlock(Node&) { flag_.store(0, std::memory_order_release); }

    bool is_locked() const
    {
        return flag_.load(std::memory_order_relaxed) != 0;
    }

  private:
    typename P::template Atomic<std::uint32_t> flag_{0};
    BackoffParams backoff_params_{};
};

}  // namespace reactive
