/**
 * @file
 * Randomized exponential backoff (Anderson [5]; thesis Section 3.1.1).
 *
 * The mean delay doubles after each failed acquisition attempt and is
 * capped at a maximum proportional to the expected worst-case number of
 * contenders. The thesis notes two load-bearing details that this
 * implementation preserves:
 *
 *  - the delay is *randomized* around the current mean ("probabilistic
 *    queuing" of waiters), and
 *  - the cap matters: too large a cap makes lock handoff sluggish at low
 *    contention (this is exactly why test-and-set with backoff loses to
 *    test-and-test-and-set at low contention in Figure 3.2).
 */
#pragma once

#include <cstdint>

namespace reactive {

/// Tunable limits for exponential backoff, in platform delay units.
struct BackoffParams {
    std::uint32_t initial = 16;   ///< mean delay after the first failure
    std::uint32_t maximum = 8192; ///< cap on the mean delay

    /// Cap sized to accommodate @p max_contenders processors, as the
    /// thesis prescribes (Section 3.1.1): each doubling roughly absorbs a
    /// doubling of the contender population.
    static constexpr BackoffParams for_contenders(std::uint32_t max_contenders,
                                                  std::uint32_t per_contender = 128)
    {
        BackoffParams p;
        p.initial = 16;
        std::uint32_t cap = per_contender;
        while (cap < per_contender * max_contenders && cap < (1u << 24))
            cap <<= 1;
        p.maximum = cap;
        return p;
    }
};

/**
 * Stateful randomized exponential backoff.
 *
 * @tparam Platform supplies delay(cycles) and random_below(bound).
 */
template <typename Platform>
class ExpBackoff {
  public:
    explicit ExpBackoff(BackoffParams params = {}) : params_(params), mean_(params.initial)
    {
    }

    /// Waits a random interval in [0, mean) and doubles the mean (capped).
    void pause()
    {
        Platform::delay(Platform::random_below(mean_));
        if (mean_ < params_.maximum)
            mean_ <<= 1;
    }

    /// Halves the mean after a success, per Anderson's best-performing
    /// variant (double on failure, halve on success).
    void succeed()
    {
        mean_ = mean_ > params_.initial ? mean_ >> 1 : params_.initial;
    }

    /// Restores the initial mean.
    void reset() { mean_ = params_.initial; }

    std::uint32_t mean() const { return mean_; }

  private:
    BackoffParams params_;
    std::uint32_t mean_;
};

}  // namespace reactive
