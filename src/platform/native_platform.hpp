/**
 * @file
 * NativePlatform: the Platform model for real hardware.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "platform/cpu.hpp"
#include "platform/parker.hpp"
#include "platform/platform_concept.hpp"
#include "platform/prng.hpp"

namespace reactive {

/**
 * Platform model backed by std::atomic, TSC delays, and futex parking.
 *
 * `random_below` uses a thread-local xorshift generator seeded from the
 * generator's address and the TSC, so threads never share PRNG state
 * (sharing would serialize the very backoff paths that exist to
 * de-serialize contenders).
 */
struct NativePlatform {
    template <typename T>
    using Atomic = std::atomic<T>;

    using WaitQueue = NativeWaitQueue;

    static void pause() noexcept { cpu_relax(); }

    static void delay(std::uint64_t cycles) noexcept { spin_for_cycles(cycles); }

    static std::uint64_t now() noexcept { return tsc_now(); }

    static std::uint32_t random_below(std::uint32_t bound) noexcept
    {
        thread_local XorShift64Star rng{
            static_cast<std::uint64_t>(
                reinterpret_cast<std::uintptr_t>(&rng)) ^
            tsc_now()};
        return rng.below(bound);
    }

    /// Switch-spinning analogue on a conventional OS: yield the core to
    /// another runnable thread between polls.
    static void context_switch_poll() noexcept
    {
        std::this_thread::yield();
    }

    // ---- TopologyAware extension ------------------------------------
    // The socket id is declared, not discovered: a deployment that pins
    // its threads (the only configuration where NUMA-aware handoff is
    // meaningful) knows each thread's socket at pin time and declares
    // it once; everyone else keeps the flat default 0 and the
    // topology-aware protocols degenerate to their blind variants.
    // (sched_getcpu-style discovery would hand back a socket that can
    // change between the query and the use — a stale-but-consistent
    // declaration is what the cohort protocols actually need.)

    static std::uint32_t current_socket() noexcept { return socket_slot(); }

    static void set_current_socket(std::uint32_t s) noexcept
    {
        socket_slot() = s;
    }

  private:
    static std::uint32_t& socket_slot() noexcept
    {
        thread_local std::uint32_t socket = 0;
        return socket;
    }
};

static_assert(Platform<NativePlatform>);

}  // namespace reactive
