/**
 * @file
 * NativePlatform: the Platform model for real hardware.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "platform/cpu.hpp"
#include "platform/parker.hpp"
#include "platform/platform_concept.hpp"
#include "platform/prng.hpp"

namespace reactive {

/**
 * Platform model backed by std::atomic, TSC delays, and futex parking.
 *
 * `random_below` uses a thread-local xorshift generator seeded from the
 * generator's address and the TSC, so threads never share PRNG state
 * (sharing would serialize the very backoff paths that exist to
 * de-serialize contenders).
 */
struct NativePlatform {
    template <typename T>
    using Atomic = std::atomic<T>;

    using WaitQueue = NativeWaitQueue;

    static void pause() noexcept { cpu_relax(); }

    static void delay(std::uint64_t cycles) noexcept { spin_for_cycles(cycles); }

    static std::uint64_t now() noexcept { return tsc_now(); }

    static std::uint32_t random_below(std::uint32_t bound) noexcept
    {
        thread_local XorShift64Star rng{
            static_cast<std::uint64_t>(
                reinterpret_cast<std::uintptr_t>(&rng)) ^
            tsc_now()};
        return rng.below(bound);
    }

    /// Switch-spinning analogue on a conventional OS: yield the core to
    /// another runnable thread between polls.
    static void context_switch_poll() noexcept
    {
        std::this_thread::yield();
    }
};

static_assert(Platform<NativePlatform>);

}  // namespace reactive
