/**
 * @file
 * Cache-line geometry and alignment helpers.
 *
 * Several protocols in the thesis depend on cache-line placement for
 * performance (e.g. the reactive lock keeps its mode variable in a
 * mostly-read line separate from the frequently written lock words,
 * Section 3.2.6). These helpers make that placement explicit.
 */
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace reactive {

/// Size, in bytes, of the destructive interference granule. Pinned to
/// 64 rather than std::hardware_destructive_interference_size: the
/// standard value varies with tuning flags (GCC warns it is an ABI
/// hazard across TUs), and every target this library cares about uses
/// 64-byte lines.
inline constexpr std::size_t kCacheLineSize = 64;

/**
 * Wrapper that places @p T alone on its own cache line.
 *
 * Used to avoid false sharing between per-processor slots and between the
 * mostly-read mode variable and the frequently written lock words.
 */
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
    T value{};

    CacheAligned() = default;

    template <typename... Args>
        requires std::is_constructible_v<T, Args...>
    explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...)
    {
    }

    T& operator*() noexcept { return value; }
    const T& operator*() const noexcept { return value; }
    T* operator->() noexcept { return &value; }
    const T* operator->() const noexcept { return &value; }
};

}  // namespace reactive
