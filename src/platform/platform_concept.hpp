/**
 * @file
 * The Platform concept: the single seam between the portable protocol
 * implementations and the machine they run on.
 *
 * Every synchronization algorithm in this library (Chapters 3 and 4 of
 * the thesis) is a template over a Platform. Two models are provided:
 *
 *  - `reactive::NativePlatform` — std::atomic, pause/TSC, futex; the
 *    artifact a downstream application links against.
 *  - `reactive::sim::SimPlatform` — the Alewife-substitute simulated
 *    multiprocessor with a cache-coherence cost model; the platform on
 *    which every figure/table of the thesis is regenerated.
 *
 * Keeping one source of truth per algorithm is what makes the
 * experimental claims about *these* implementations, not about forks.
 */
#pragma once

#include <concepts>
#include <cstdint>

namespace reactive {

// clang-format off
template <typename P>
concept Platform = requires(std::uint32_t n, std::uint64_t c) {
    /// Atomic template with the std::atomic subset the protocols use.
    typename P::template Atomic<std::uint32_t>;
    typename P::template Atomic<void*>;

    /// Eventcount used by signaling waiting mechanisms (Chapter 4).
    typename P::WaitQueue;

    /// Spin-wait pipeline hint (one poll interval).
    { P::pause() } -> std::same_as<void>;

    /// Busy-delay of approximately `c` cycles (backoff).
    { P::delay(c) } -> std::same_as<void>;

    /// Cycle-resolution timestamp for cost accounting.
    { P::now() } -> std::same_as<std::uint64_t>;

    /// Per-execution-context uniform draw in [0, n).
    { P::random_below(n) } -> std::same_as<std::uint32_t>;
};
// clang-format on

}  // namespace reactive
