/**
 * @file
 * The Platform concept: the single seam between the portable protocol
 * implementations and the machine they run on.
 *
 * Every synchronization algorithm in this library (Chapters 3 and 4 of
 * the thesis) is a template over a Platform. Two models are provided:
 *
 *  - `reactive::NativePlatform` — std::atomic, pause/TSC, futex; the
 *    artifact a downstream application links against.
 *  - `reactive::sim::SimPlatform` — the Alewife-substitute simulated
 *    multiprocessor with a cache-coherence cost model; the platform on
 *    which every figure/table of the thesis is regenerated.
 *
 * Keeping one source of truth per algorithm is what makes the
 * experimental claims about *these* implementations, not about forks.
 */
#pragma once

#include <concepts>
#include <cstdint>

namespace reactive {

// clang-format off
template <typename P>
concept Platform = requires(std::uint32_t n, std::uint64_t c) {
    /// Atomic template with the std::atomic subset the protocols use.
    typename P::template Atomic<std::uint32_t>;
    typename P::template Atomic<void*>;

    /// Eventcount used by signaling waiting mechanisms (Chapter 4).
    typename P::WaitQueue;

    /// Spin-wait pipeline hint (one poll interval).
    { P::pause() } -> std::same_as<void>;

    /// Busy-delay of approximately `c` cycles (backoff).
    { P::delay(c) } -> std::same_as<void>;

    /// Cycle-resolution timestamp for cost accounting.
    { P::now() } -> std::same_as<std::uint64_t>;

    /// Per-execution-context uniform draw in [0, n).
    { P::random_below(n) } -> std::same_as<std::uint32_t>;
};

/**
 * Optional refinement: platforms that can name the NUMA socket of the
 * executing context (SimPlatform reads the machine topology;
 * NativePlatform carries a declared thread-local id). The query must
 * be traffic-free — the topology-aware protocols call it on hot
 * paths. Platforms without it run every topology-aware protocol in
 * its flat (socket-0) degeneration.
 */
template <typename P>
concept TopologyAwarePlatform =
    Platform<P> &&
    requires {
        { P::current_socket() } -> std::same_as<std::uint32_t>;
    };
// clang-format on

/// Socket of the executing context, or 0 on topology-blind platforms.
template <typename P>
inline std::uint32_t platform_socket()
{
    if constexpr (TopologyAwarePlatform<P>)
        return P::current_socket();
    else
        return 0;
}

/**
 * Socket-of-previous-holder tracker shared by the reactive primitives:
 * each new in-consensus process (lock holder, writing writer, episode
 * completer) notes its socket and learns whether the handoff crossed a
 * socket boundary — the bit the socket-split cost estimator classes
 * key on. Plain fields: mutated only in-consensus, carried across the
 * handoff by the same synchronization that protects policy state.
 */
template <typename P>
class SocketHandoffTracker {
  public:
    /// Records the calling context as the new holder; true when the
    /// handoff from the previous holder crossed sockets.
    bool note_handoff()
    {
        const std::uint32_t s = platform_socket<P>();
        const bool cross = seen_ && s != last_socket_;
        last_socket_ = s;
        seen_ = true;
        return cross;
    }

  private:
    std::uint32_t last_socket_ = 0;
    bool seen_ = false;
};

}  // namespace reactive
