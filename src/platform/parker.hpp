/**
 * @file
 * Native signaling substrate: a futex-backed eventcount.
 *
 * Chapter 4 of the thesis models every signaling mechanism as "pay a
 * fixed cost B, free the processor". On Linux the cheapest faithful
 * implementation is a futex eventcount: waiters snapshot an epoch,
 * re-test their predicate, and sleep until the epoch moves. This is the
 * `WaitQueue` facet of the native Platform; the simulator provides the
 * same interface with Alewife's measured costs (Table 4.1).
 */
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#include <condition_variable>
#include <mutex>
#endif

namespace reactive {

#if defined(__linux__)

/**
 * Futex-based eventcount.
 *
 * Usage (two-phase waiting, Section 4.3):
 * @code
 *   uint32_t epoch = q.prepare_wait();
 *   if (predicate()) { q.cancel_wait(); }     // won while arming
 *   else             { q.commit_wait(epoch); }  // block (cost B)
 * @endcode
 * Wakers must make the predicate true *before* calling notify_*().
 */
class FutexWaitQueue {
  public:
    /// Snapshots the epoch; the caller must re-test its predicate next.
    std::uint32_t prepare_wait() noexcept
    {
        waiters_.fetch_add(1, std::memory_order_seq_cst);
        return epoch_.load(std::memory_order_seq_cst);
    }

    /// Abandons a prepared wait (predicate became true while arming).
    void cancel_wait() noexcept
    {
        waiters_.fetch_sub(1, std::memory_order_relaxed);
    }

    /// Blocks until the epoch differs from @p epoch (or a spurious wake).
    void commit_wait(std::uint32_t epoch) noexcept
    {
        while (epoch_.load(std::memory_order_seq_cst) == epoch) {
            syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&epoch_),
                    FUTEX_WAIT_PRIVATE, epoch, nullptr, nullptr, 0);
        }
        waiters_.fetch_sub(1, std::memory_order_relaxed);
    }

    /// Wakes one blocked waiter.
    void notify_one() noexcept { notify(1); }

    /// Wakes all blocked waiters.
    void notify_all() noexcept { notify(INT32_MAX); }

  private:
    void notify(int count) noexcept
    {
        epoch_.fetch_add(1, std::memory_order_seq_cst);
        if (waiters_.load(std::memory_order_seq_cst) != 0) {
            syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&epoch_),
                    FUTEX_WAKE_PRIVATE, count, nullptr, nullptr, 0);
        }
    }

    std::atomic<std::uint32_t> epoch_{0};
    std::atomic<std::uint32_t> waiters_{0};
};

using NativeWaitQueue = FutexWaitQueue;

#else  // portable fallback

/// Portable eventcount over mutex + condition_variable.
class CondVarWaitQueue {
  public:
    std::uint32_t prepare_wait() noexcept
    {
        return epoch_.load(std::memory_order_seq_cst);
    }

    void cancel_wait() noexcept {}

    void commit_wait(std::uint32_t epoch) noexcept
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] {
            return epoch_.load(std::memory_order_relaxed) != epoch;
        });
    }

    void notify_one() noexcept
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            epoch_.fetch_add(1, std::memory_order_seq_cst);
        }
        cv_.notify_one();
    }

    void notify_all() noexcept
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            epoch_.fetch_add(1, std::memory_order_seq_cst);
        }
        cv_.notify_all();
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::atomic<std::uint32_t> epoch_{0};
};

using NativeWaitQueue = CondVarWaitQueue;

#endif

}  // namespace reactive
