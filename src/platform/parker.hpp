/**
 * @file
 * Native signaling substrate: a futex-backed eventcount.
 *
 * Chapter 4 of the thesis models every signaling mechanism as "pay a
 * fixed cost B, free the processor". On Linux the cheapest faithful
 * implementation is a futex eventcount: waiters snapshot an epoch,
 * re-test their predicate, and sleep until the epoch moves. This is the
 * `WaitQueue` facet of the native Platform; the simulator provides the
 * same interface with Alewife's measured costs (Table 4.1).
 *
 * Both implementations obey one eventcount contract:
 *
 *  - `prepare_wait` advertises the waiter (waiters_ += 1, seq_cst)
 *    *before* snapshotting the epoch; the caller then re-tests its
 *    predicate and either `cancel_wait`s or `commit_wait`s.
 *  - `notify_*` bumps the epoch with a seq_cst RMW *before* consulting
 *    waiters_ to decide whether the expensive wake (syscall /
 *    cv.notify) is needed.
 *
 * Those two seq_cst RMWs are the Dekker store/load pairing that closes
 * the prepare/notify race window: if the notifier reads waiters_ == 0
 * and skips the wake, its epoch bump is ordered before the waiter's
 * advertisement, so the waiter's epoch snapshot (taken after, seq_cst)
 * already observes the bump — and, transitively, the notifier's
 * predicate update — and the wait never blocks on the stale epoch. The
 * condvar fallback must implement the *same* discipline (it
 * historically skipped the waiter count entirely, which was only
 * accidentally correct because it also never skipped a notify — and it
 * could still block through a notify that landed between its late
 * epoch snapshot and the cv wait, because the snapshot was taken
 * without advertising anything). Both classes are compiled on Linux so
 * the unit tests exercise the fallback's race window on the platform
 * the CI actually runs.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace reactive {

#if defined(__linux__)

/**
 * Futex-based eventcount.
 *
 * Usage (two-phase waiting, Section 4.3):
 * @code
 *   uint32_t epoch = q.prepare_wait();
 *   if (predicate()) { q.cancel_wait(); }     // won while arming
 *   else             { q.commit_wait(epoch); }  // block (cost B)
 * @endcode
 * Wakers must make the predicate true *before* calling notify_*().
 */
class FutexWaitQueue {
  public:
    /// Snapshots the epoch; the caller must re-test its predicate next.
    std::uint32_t prepare_wait() noexcept
    {
        waiters_.fetch_add(1, std::memory_order_seq_cst);
        return epoch_.load(std::memory_order_seq_cst);
    }

    /// Abandons a prepared wait (predicate became true while arming).
    void cancel_wait() noexcept
    {
        waiters_.fetch_sub(1, std::memory_order_relaxed);
    }

    /// Blocks until the epoch differs from @p epoch (or a spurious wake).
    void commit_wait(std::uint32_t epoch) noexcept
    {
        while (epoch_.load(std::memory_order_seq_cst) == epoch) {
            syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&epoch_),
                    FUTEX_WAIT_PRIVATE, epoch, nullptr, nullptr, 0);
        }
        waiters_.fetch_sub(1, std::memory_order_relaxed);
    }

    /// Wakes one blocked waiter.
    void notify_one() noexcept { notify(1); }

    /// Wakes all blocked waiters.
    void notify_all() noexcept { notify(INT32_MAX); }

    /// Advisory count of advertised waiters (racy relaxed load) — the
    /// queue-depth signal a releasing holder reads for free.
    std::uint32_t waiters() const noexcept
    {
        return waiters_.load(std::memory_order_relaxed);
    }

  private:
    void notify(int count) noexcept
    {
        epoch_.fetch_add(1, std::memory_order_seq_cst);
        if (waiters_.load(std::memory_order_seq_cst) != 0) {
            syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&epoch_),
                    FUTEX_WAKE_PRIVATE, count, nullptr, nullptr, 0);
        }
    }

    std::atomic<std::uint32_t> epoch_{0};
    std::atomic<std::uint32_t> waiters_{0};
};

#endif  // defined(__linux__)

/**
 * Portable eventcount over mutex + condition_variable, with epoch and
 * waiter accounting matching FutexWaitQueue exactly (see file header):
 * prepare advertises then snapshots, notify bumps then consults the
 * count to elide the cv broadcast. The mutex guarantees only what the
 * futex syscall guarantees internally — that the epoch re-check and
 * the sleep are atomic against the bump — so a notify that lands
 * between prepare_wait and commit_wait is observed by the epoch
 * predicate and the wait returns immediately, exactly as FUTEX_WAIT's
 * compare-and-sleep would.
 */
class CondVarWaitQueue {
  public:
    std::uint32_t prepare_wait() noexcept
    {
        waiters_.fetch_add(1, std::memory_order_seq_cst);
        return epoch_.load(std::memory_order_seq_cst);
    }

    void cancel_wait() noexcept
    {
        waiters_.fetch_sub(1, std::memory_order_relaxed);
    }

    void commit_wait(std::uint32_t epoch) noexcept
    {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] {
                return epoch_.load(std::memory_order_relaxed) != epoch;
            });
        }
        waiters_.fetch_sub(1, std::memory_order_relaxed);
    }

    void notify_one() noexcept
    {
        // The bump must happen under the mutex so it cannot land
        // between a committed waiter's epoch re-check and its cv
        // sleep (the condvar analogue of FUTEX_WAIT's atomic
        // compare-and-sleep); the waiter-count check then elides the
        // notify exactly as the futex path elides its syscall.
        {
            std::lock_guard<std::mutex> lk(mu_);
            epoch_.fetch_add(1, std::memory_order_seq_cst);
        }
        if (waiters_.load(std::memory_order_seq_cst) != 0)
            cv_.notify_one();
    }

    void notify_all() noexcept
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            epoch_.fetch_add(1, std::memory_order_seq_cst);
        }
        if (waiters_.load(std::memory_order_seq_cst) != 0)
            cv_.notify_all();
    }

    /// Advisory count of advertised waiters (racy relaxed load).
    std::uint32_t waiters() const noexcept
    {
        return waiters_.load(std::memory_order_relaxed);
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::atomic<std::uint32_t> epoch_{0};
    std::atomic<std::uint32_t> waiters_{0};
};

#if defined(__linux__)
using NativeWaitQueue = FutexWaitQueue;
#else
using NativeWaitQueue = CondVarWaitQueue;
#endif

}  // namespace reactive
