/**
 * @file
 * Thread-local per-object node slots backing the std-compatibility
 * facades (ReactiveMutex::lock/unlock, ReactiveSharedMutex,
 * ReactiveBarrier::arrive_and_wait).
 *
 * The node-passing interfaces of the reactive primitives keep waiter
 * state on the caller's stack — the design the protocols' local-spin
 * properties depend on. The std lockable/barrier interfaces have no
 * node parameter, so a facade must materialize the node somewhere that
 * (a) is unique per (thread, object) pair — two threads acquiring the
 * same mutex, or one thread holding two mutexes, must not share a
 * node — and (b) survives from the acquire-shaped call to the
 * release-shaped call. A thread-local slot table keyed by object
 * address provides exactly that: claim() returns this thread's node
 * for the object (allocating on first use, reusing released slots
 * thereafter), release() frees the slot while keeping the node memory
 * for reuse.
 *
 * Scope and cost: lookup is a linear scan of this thread's slots —
 * a handful of entries in practice (one per simultaneously held
 * object, plus one persistent entry per barrier this thread
 * participates in). The facades are convenience interfaces; code that
 * cares about the last nanosecond uses the node-passing API directly.
 * Like the std primitives they mimic, the facades are non-reentrant
 * per object, and the acquire- and release-shaped calls must come from
 * the same thread (a claim is invisible to other threads). Simulated
 * fibers share their host thread's table, so sim code should use the
 * node-passing interfaces instead.
 *
 * Key choice: owners whose slots are released while the object is
 * alive (mutexes: every unlock releases) may key by address. Owners
 * whose slots persist for the object's lifetime (barriers: a Node is
 * bound to its barrier for life) must key by a *unique instance
 * token* (next_object_key()), not the address — a successor object at
 * a reused address would otherwise inherit the predecessor's stale
 * nodes, which for a barrier means mixed senses and a deadlocked
 * episode. The flip side is deliberate and documented: token-keyed
 * entries are never released (an object's destructor cannot reach
 * other threads' tables), so a thread retains one node per barrier it
 * ever called arrive_and_wait() on, for the thread's lifetime. That
 * is the right trade for the facade's target shape (long-lived
 * participant threads, few barriers); a worker that churns through
 * many short-lived barriers should use the node-passing API, whose
 * nodes live on its stack.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace reactive {

/// Process-unique key for facade slot tables whose entries outlive any
/// particular claim/release pairing (see file header). Monotone, never
/// reused.
inline std::uint64_t next_object_key()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

/// See file header. One instantiation (and so one thread-local table)
/// per Node type.
template <typename Node>
class ThreadNodeSlots {
  public:
    /// This thread's node for @p owner: the already-claimed slot if one
    /// exists (an object's acquire- and release-shaped calls both land
    /// here), else a reused-or-new slot claimed for @p owner.
    static Node* claim(std::uint64_t owner)
    {
        auto& slots = storage();
        Entry* free_entry = nullptr;
        for (auto& e : slots) {
            if (e.owner == owner)
                return e.node.get();
            if (e.owner == kFree && free_entry == nullptr)
                free_entry = &e;
        }
        if (free_entry != nullptr) {
            free_entry->owner = owner;
            return free_entry->node.get();
        }
        slots.push_back(Entry{owner, std::make_unique<Node>()});
        return slots.back().node.get();
    }

    /// Releases this thread's slot for @p owner; the node memory is
    /// kept for reuse. No-op if nothing is claimed.
    static void release(std::uint64_t owner)
    {
        for (auto& e : storage()) {
            if (e.owner == owner) {
                e.owner = kFree;
                return;
            }
        }
    }

  private:
    static constexpr std::uint64_t kFree = 0;

    struct Entry {
        std::uint64_t owner;
        std::unique_ptr<Node> node;
    };

    static std::vector<Entry>& storage()
    {
        thread_local std::vector<Entry> slots;
        return slots;
    }
};

}  // namespace reactive
