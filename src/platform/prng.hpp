/**
 * @file
 * Small, fast pseudo-random number generators.
 *
 * Randomized exponential backoff (Anderson [5]; Section 3.1.1 of the
 * thesis) needs a cheap per-thread source of randomness: a libc rand()
 * call costs hundreds of cycles (the thesis notes this explicitly when
 * describing the Alewife prototype runs, Section 3.5.2), which would
 * perturb the very overheads being measured. xorshift-family generators
 * cost a handful of cycles and have no shared state.
 */
#pragma once

#include <cstdint>

namespace reactive {

/**
 * xorshift64* generator (Vigna). 2^64-1 period, passes BigCrush on the
 * high bits, 3 shifts + 1 multiply per draw.
 */
class XorShift64Star {
  public:
    using result_type = std::uint64_t;

    /// Seeds the generator; a zero seed is remapped to a fixed constant.
    explicit constexpr XorShift64Star(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ull)
    {
    }

    static constexpr result_type min() { return 1; }
    static constexpr result_type max() { return ~result_type{0}; }

    constexpr result_type operator()()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    /// Uniform draw in [0, bound). bound == 0 yields 0.
    constexpr std::uint32_t below(std::uint32_t bound)
    {
        if (bound == 0)
            return 0;
        // Lemire's multiply-shift range reduction on the high 32 bits.
        std::uint64_t x = (*this)() >> 32;
        return static_cast<std::uint32_t>((x * bound) >> 32);
    }

    /// Uniform double in [0, 1).
    constexpr double uniform01()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

/**
 * splitmix64: used to derive well-distributed seeds for per-thread
 * XorShift64Star instances from a single experiment seed.
 */
constexpr std::uint64_t splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace reactive
