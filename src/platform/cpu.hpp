/**
 * @file
 * Low-level CPU primitives for the native platform: pause hints,
 * timestamp counters, and calibrated busy-wait delays.
 */
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace reactive {

/// Polite spin-wait hint to the pipeline / SMT sibling.
inline void cpu_relax() noexcept
{
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    asm volatile("" ::: "memory");
#endif
}

/**
 * Monotonic cycle-resolution timestamp.
 *
 * On x86 this is the TSC (constant-rate on every CPU from the last
 * decade); elsewhere it falls back to steady_clock nanoseconds, which is
 * close enough to "cycles" for the ratios these algorithms care about.
 */
inline std::uint64_t tsc_now() noexcept
{
#if defined(__x86_64__)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
}

/**
 * Busy-waits for approximately @p cycles timestamp ticks.
 *
 * Used by randomized exponential backoff. Precision is unimportant: the
 * backoff policy only needs geometric growth of the mean delay.
 */
inline void spin_for_cycles(std::uint64_t cycles) noexcept
{
    const std::uint64_t start = tsc_now();
    while (tsc_now() - start < cycles)
        cpu_relax();
}

}  // namespace reactive
