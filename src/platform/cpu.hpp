/**
 * @file
 * Low-level CPU primitives for the native platform: pause hints,
 * timestamp counters, and calibrated busy-wait delays.
 */
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace reactive {

/// Polite spin-wait hint to the pipeline / SMT sibling.
inline void cpu_relax() noexcept
{
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    asm volatile("" ::: "memory");
#endif
}

/**
 * Monotonic cycle-resolution timestamp.
 *
 * On x86 this is the TSC (constant-rate on every CPU from the last
 * decade); on aarch64 the generic-timer count register (also constant
 * rate, userspace readable). The portable fallback must NOT call
 * steady_clock::now() per sample — a vDSO clock read costs tens to
 * hundreds of cycles (the same pitfall prng.hpp documents for libc
 * rand), which would let the calibration layer's per-acquisition
 * timestamps perturb the very latencies being measured. Instead it
 * keeps a thread-local coarse timebase: one real clock read per 256
 * calls, advancing by one tick per call in between. Timestamps stay
 * monotonic per thread (a call can't take under a nanosecond, so
 * refreshes only ever jump forward). The accuracy tradeoff is
 * deliberate and bounded: a duration spanning fewer than ~256 calls
 * is a lower bound (it counts calls, not time), while any span that
 * crosses refresh windows tracks real time to within one window —
 * good enough for backoff growth and for EWMA cost ratios, the only
 * consumers off x86/aarch64.
 */
inline std::uint64_t tsc_now() noexcept
{
#if defined(__x86_64__)
    return __rdtsc();
#elif defined(__aarch64__)
    std::uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    struct CoarseTimebase {
        std::uint64_t base = 0;
        std::uint32_t calls = 0;
    };
    thread_local CoarseTimebase tb;
    if ((tb.calls & 255u) == 0) {
        const std::uint64_t real = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
        // Never step below the previous window's last tick.
        const std::uint64_t floor = tb.base + 256u;
        tb.base = real > floor ? real : floor;
    }
    return tb.base + (tb.calls++ & 255u);
#endif
}

/**
 * Busy-waits for approximately @p cycles timestamp ticks.
 *
 * Used by randomized exponential backoff. Precision is unimportant: the
 * backoff policy only needs geometric growth of the mean delay.
 */
inline void spin_for_cycles(std::uint64_t cycles) noexcept
{
    const std::uint64_t start = tsc_now();
    while (tsc_now() - start < cycles)
        cpu_relax();
}

}  // namespace reactive
