/**
 * @file
 * Application kernels (thesis Sections 3.5.6 and 4.6.2, Table 4.2).
 *
 * Each kernel reproduces the *synchronization pattern* of one of the
 * thesis' applications — which objects exist, which operations hit
 * them, at what grain, with what contention profile — which is the only
 * property the thesis uses the applications for. The numerical payload
 * is a deterministic stand-in (seeded pseudo-random compute delays on
 * the simulator), a substitution documented in DESIGN.md.
 *
 * Chapter 3 kernels (protocol selection):
 *  - Gamteb: photon-transport Monte Carlo; 9 interaction counters
 *    updated with fetch-and-increment, one much hotter than the rest.
 *  - TSP: branch-and-bound over a shared work queue whose enqueue /
 *    dequeue tickets are fetch-and-increment (fine grain, hot).
 *  - AQ: adaptive quadrature over the same queue at coarser grain.
 *  - MP3D: particle-in-cell; per-move cell locks (low contention) plus
 *    a per-iteration collision-count lock (high contention).
 *  - Cholesky: sparse-factorization-like task loop with per-column
 *    locks of skewed popularity.
 *
 * Chapter 4 kernels (waiting algorithms) are in waiting_workloads.hpp.
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "barrier/barrier_concepts.hpp"
#include "fetchop/fetchop_concepts.hpp"
#include "locks/lock_concepts.hpp"
#include "platform/prng.hpp"
#include "rw/rw_concepts.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"

namespace reactive::apps {

/**
 * Gamteb-like kernel. @tparam F FetchOp implementation (the quantity
 * under study). Each processor simulates `particles` particle
 * histories; each history performs a few interaction-counter updates
 * with a skewed counter distribution (the thesis observes one of the
 * nine counters is hot enough at 128 processors to want combining).
 * Returns simulated elapsed cycles.
 */
template <typename F>
std::uint64_t run_gamteb(std::uint32_t procs, std::uint32_t particles_per_proc,
                         std::uint64_t seed = 1)
{
    constexpr std::uint32_t kCounters = 9;
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    std::vector<std::shared_ptr<F>> counters;
    counters.reserve(kCounters);
    for (std::uint32_t i = 0; i < kCounters; ++i)
        counters.push_back(std::make_shared<F>(procs));
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=, &m] {
            (void)m;
            typename F::Node nodes[kCounters];
            for (std::uint32_t i = 0; i < particles_per_proc; ++i) {
                // Track a particle: a few flight segments, each ending
                // in an interaction that bumps one counter. Counter 0
                // absorbs half of all interactions (the hot one).
                const std::uint32_t events = 2 + sim::random_below(3);
                for (std::uint32_t e = 0; e < events; ++e) {
                    sim::delay(120 + sim::random_below(240));  // transport
                    const std::uint32_t r = sim::random_below(2 * kCounters);
                    const std::uint32_t c =
                        r < kCounters ? 0 : r - kCounters + 1;
                    counters[c % kCounters]->fetch_add(nodes[c % kCounters],
                                                       1);
                }
            }
        });
    }
    m.run();
    return m.elapsed();
}

/**
 * Work-queue kernel shared by the TSP and AQ reproductions: a bounded
 * concurrent FIFO (Gottlieb-style) whose tickets come from two
 * fetch-and-increment objects — the synchronization structure the
 * thesis describes for both applications [18]. Slots hand work across
 * with full/empty flags.
 *
 * Each task performs `grain` +- 50% cycles of work and spawns children
 * until `total_tasks` have been created; contention on the ticket
 * counters scales inversely with grain, which is exactly the TSP vs AQ
 * contrast (TSP = fine grain, AQ = coarse grain).
 */
template <typename F>
std::uint64_t run_queue_app(std::uint32_t procs, std::uint32_t total_tasks,
                            std::uint32_t grain, std::uint32_t branching = 2,
                            std::uint64_t seed = 1)
{
    struct Slot {
        sim::Atomic<std::uint32_t> full{0};
        std::uint32_t payload = 0;  // remaining spawn depth hint
    };
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto slots = std::make_shared<std::vector<Slot>>(total_tasks + procs + 1);
    auto head = std::make_shared<F>(procs);   // dequeue tickets
    auto tail = std::make_shared<F>(procs);   // enqueue tickets
    auto spawned = std::make_shared<sim::Atomic<std::uint32_t>>(0);
    auto done = std::make_shared<sim::Atomic<std::uint32_t>>(0);

    // Seed tasks: one per processor.
    for (std::uint32_t p = 0; p < procs && p < total_tasks; ++p) {
        (*slots)[p].payload = 1;
        (*slots)[p].full.store(1);
    }

    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename F::Node hn, tn;
            for (;;) {
                if (static_cast<std::uint32_t>(done->load()) >= total_tasks)
                    return;
                const auto ticket =
                    static_cast<std::uint32_t>(head->fetch_add(hn, 1));
                if (ticket >= total_tasks)
                    return;  // queue drained
                Slot& s = (*slots)[ticket];
                while (s.full.load() == 0)
                    sim::pause();  // producer still writing
                // Execute the task.
                sim::delay(grain / 2 + sim::random_below(grain));
                // Spawn children while the task budget lasts.
                for (std::uint32_t c = 0; c < branching; ++c) {
                    const auto id = static_cast<std::uint32_t>(
                        spawned->fetch_add(1) + procs);
                    if (id >= total_tasks)
                        break;
                    const auto enq =
                        static_cast<std::uint32_t>(tail->fetch_add(tn, 1)) +
                        procs;
                    if (enq < slots->size()) {
                        (*slots)[enq].payload = 1;
                        (*slots)[enq].full.store(1);
                    }
                }
                done->fetch_add(1);
            }
        });
    }
    m.run();
    return m.elapsed();
}

/// TSP reproduction: fine-grained tasks (hot ticket counters).
template <typename F>
std::uint64_t run_tsp(std::uint32_t procs, std::uint32_t tours = 600,
                      std::uint64_t seed = 1)
{
    return run_queue_app<F>(procs, tours, /*grain=*/700, 2, seed);
}

/// AQ reproduction: coarse-grained tasks (cool ticket counters).
template <typename F>
std::uint64_t run_aq(std::uint32_t procs, std::uint32_t intervals = 300,
                     std::uint64_t seed = 1)
{
    return run_queue_app<F>(procs, intervals, /*grain=*/4000, 2, seed);
}

/**
 * MP3D-like kernel. @tparam L lock implementation. `cells` cell locks
 * see scattered low-contention updates as particles move; after each
 * sweep every processor updates the single collision-count lock (hot),
 * reproducing the two contention regimes the thesis describes.
 */
template <typename L>
std::uint64_t run_mp3d(std::uint32_t procs, std::uint32_t particles_per_proc,
                       std::uint32_t sweeps = 3, std::uint32_t cells = 256,
                       std::uint64_t seed = 1)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto cell_locks = std::make_shared<std::vector<std::unique_ptr<L>>>();
    for (std::uint32_t i = 0; i < cells; ++i)
        cell_locks->push_back(std::make_unique<L>());
    auto collision_lock = std::make_shared<L>();
    auto arrived = std::make_shared<sim::Atomic<std::uint32_t>>(0);

    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t s = 0; s < sweeps; ++s) {
                for (std::uint32_t i = 0; i < particles_per_proc; ++i) {
                    sim::delay(150 + sim::random_below(150));  // move particle
                    L& cl = *(*cell_locks)[sim::random_below(cells)];
                    typename L::Node n;
                    cl.lock(n);
                    sim::delay(40);  // update cell parameters
                    cl.unlock(n);
                }
                // End of sweep: everyone updates the collision counts.
                {
                    typename L::Node n;
                    collision_lock->lock(n);
                    sim::delay(60);
                    collision_lock->unlock(n);
                }
                // Crude sweep barrier via arrival counting.
                const std::uint32_t target = (s + 1) * procs;
                arrived->fetch_add(1);
                while (static_cast<std::uint32_t>(arrived->load()) < target)
                    sim::delay(50 + sim::random_below(50));
            }
        });
    }
    m.run();
    return m.elapsed();
}

/**
 * Cholesky-like kernel: a task loop over sparse column updates with
 * per-column locks of skewed popularity (dense trailing columns are
 * touched by many updates — mild but non-uniform contention).
 */
template <typename L>
std::uint64_t run_cholesky(std::uint32_t procs, std::uint32_t updates_per_proc,
                           std::uint32_t columns = 128, std::uint64_t seed = 1)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto col_locks = std::make_shared<std::vector<std::unique_ptr<L>>>();
    for (std::uint32_t i = 0; i < columns; ++i)
        col_locks->push_back(std::make_unique<L>());

    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < updates_per_proc; ++i) {
                sim::delay(300 + sim::random_below(500));  // numeric update
                // Skew toward the trailing (dense) columns: square the
                // uniform draw.
                const std::uint32_t r = sim::random_below(columns);
                const std::uint32_t col =
                    columns - 1 - (r * r) / (columns ? columns : 1) % columns;
                L& cl = *(*col_locks)[col % columns];
                typename L::Node n;
                cl.lock(n);
                sim::delay(80);  // scatter-add into the column
                cl.unlock(n);
            }
        });
    }
    m.run();
    return m.elapsed();
}

/**
 * Minimal lock-crossover kernel: each processor loops
 * {lock; `cs`-cycle critical section; unlock; random think in
 * [0, think)}. This is the single source of truth for the calibration
 * figure's cells and their test-side envelope checks
 * (bench/fig_calibration.cpp, tests/test_cost_model.cpp) — both must
 * measure the same kernel or the acceptance test validates a
 * different experiment than the figure reports. Pass a constructed
 * lock to parameterize policies; inspect it after return.
 *
 * @param stats_out when non-null, receives the machine's final counter
 *        snapshot (mem ops, cross-socket traffic, ...) after the run.
 * @return simulated elapsed cycles.
 */
template <typename L>
std::uint64_t run_lock_cycle(std::uint32_t procs, std::uint32_t iters,
                             std::uint32_t cs, std::uint32_t think,
                             std::uint64_t seed = 1,
                             std::shared_ptr<L> lock = nullptr,
                             sim::Topology topo = {},
                             sim::MachineStats* stats_out = nullptr)
{
    sim::Machine m(procs, topo, sim::CostModel::alewife(), seed);
    std::shared_ptr<L> l = std::move(lock);
    if constexpr (std::is_default_constructible_v<L>) {
        if (!l)
            l = std::make_shared<L>();
    }
    assert(l != nullptr && "lock type without default ctor must be passed in");
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename L::Node node;
            for (std::uint32_t i = 0; i < iters; ++i) {
                l->lock(node);
                sim::delay(cs);
                l->unlock(node);
                if (think > 0)
                    sim::delay(sim::random_below(think));
            }
        });
    }
    m.run();
    if (stats_out != nullptr)
        *stats_out = m.stats();
    return m.elapsed();
}

/**
 * Oversubscribed lock-crossover kernel: `factor` threads per processor
 * run the run_lock_cycle loop on a machine whose processors hold
 * `costs.hardware_contexts` resident contexts each. With factor > 1 a
 * spinning waiter occupies a context the holder may need — the regime
 * where two-phase and immediate-park waiting pay off (Chapter 4's
 * multiprogramming axis, here as a second axis under the reactive
 * waiting subsystem). Pass a cost model with a nonzero
 * `preempt_quantum`: without preemption a single-context processor
 * whose resident thread spins forever would livelock the descheduled
 * holder (always-spin at 1 context is exactly the pathology the figure
 * demonstrates, and the quantum is what lets it *finish*, slowly,
 * instead of hanging the run).
 *
 * @param stats_out also carries `preemptions` and park/wake counts.
 * @return simulated elapsed cycles.
 */
template <typename L>
std::uint64_t run_lock_cycle_oversubscribed(
    std::uint32_t procs, std::uint32_t factor, std::uint32_t iters,
    std::uint32_t cs, std::uint32_t think, std::uint64_t seed = 1,
    std::shared_ptr<L> lock = nullptr,
    sim::CostModel costs = sim::CostModel::alewife(),
    sim::MachineStats* stats_out = nullptr)
{
    assert(factor >= 1);
    sim::Machine m(procs, costs, seed);
    std::shared_ptr<L> l = std::move(lock);
    if constexpr (std::is_default_constructible_v<L>) {
        if (!l)
            l = std::make_shared<L>();
    }
    assert(l != nullptr && "lock type without default ctor must be passed in");
    const std::uint32_t threads = procs * factor;
    for (std::uint32_t t = 0; t < threads; ++t) {
        m.spawn(t % procs, [=] {
            typename L::Node node;
            for (std::uint32_t i = 0; i < iters; ++i) {
                l->lock(node);
                sim::delay(cs);
                l->unlock(node);
                if (think > 0)
                    sim::delay(sim::random_below(think));
            }
        });
    }
    m.run();
    if (stats_out != nullptr)
        *stats_out = m.stats();
    return m.elapsed();
}

// ---- reader-writer workloads (src/rw/) --------------------------------

/**
 * Shared-table kernel parameterized by read fraction: each processor
 * performs `ops_per_proc` operations on one table guarded by a single
 * rwlock; an operation is a lookup (shared acquisition, short hold)
 * with probability `read_permille`/1000, otherwise an update (exclusive
 * acquisition, longer hold). This is the canonical read-mostly /
 * write-heavy axis the mutex-only kernels cannot model: at high read
 * fractions reader parallelism dominates and the centralized counter
 * protocol wins; at low read fractions the lock degenerates to a
 * contended mutex and the queue protocol wins.
 *
 * @tparam RW RwLock implementation (the quantity under study).
 * @return simulated elapsed cycles.
 */
template <RwLock RW>
std::uint64_t run_rw_mix(std::uint32_t procs, std::uint32_t ops_per_proc,
                         std::uint32_t read_permille, std::uint64_t seed = 1,
                         std::uint32_t read_hold = 60,
                         std::uint32_t write_hold = 140,
                         std::uint32_t think = 400)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto lock = std::make_shared<RW>();
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < ops_per_proc; ++i) {
                typename RW::Node n;
                if (sim::random_below(1000) < read_permille) {
                    lock->lock_read(n);
                    sim::delay(read_hold);
                    lock->unlock_read(n);
                } else {
                    lock->lock_write(n);
                    sim::delay(write_hold);
                    lock->unlock_write(n);
                }
                sim::delay(sim::random_below(think));
            }
        });
    }
    m.run();
    return m.elapsed();
}

/// Read-mostly traffic (95% lookups): the single most common real-world
/// rwlock scenario — caches, routing tables, configuration snapshots.
template <RwLock RW>
std::uint64_t run_read_mostly(std::uint32_t procs, std::uint32_t ops_per_proc,
                              std::uint64_t seed = 1)
{
    return run_rw_mix<RW>(procs, ops_per_proc, /*read_permille=*/950, seed);
}

/// Write-heavy traffic (25% lookups): the rwlock degenerates toward a
/// contended mutex; queue handoff and local spinning pay off.
template <RwLock RW>
std::uint64_t run_write_heavy(std::uint32_t procs, std::uint32_t ops_per_proc,
                              std::uint64_t seed = 1)
{
    return run_rw_mix<RW>(procs, ops_per_proc, /*read_permille=*/250, seed);
}

/**
 * Phase-shifting kernel: the read fraction flips between read-mostly
 * and write-heavy every `ops_per_phase` operations (per processor),
 * modeling a cache that alternates between serving lookups and taking
 * bursts of invalidations. A reactive rwlock must detect each regime
 * change and re-converge to the protocol the regime favors — the
 * rwlock analogue of the time-varying contention experiment
 * (Section 3.7.2).
 */
template <RwLock RW>
std::uint64_t run_rw_phases(std::uint32_t procs, std::uint32_t phases,
                            std::uint32_t ops_per_phase,
                            std::uint64_t seed = 1,
                            std::uint32_t read_permille_hi = 950,
                            std::uint32_t read_permille_lo = 100,
                            std::uint32_t read_hold = 60,
                            std::uint32_t write_hold = 140,
                            std::uint32_t think = 400)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    auto lock = std::make_shared<RW>();
    auto arrived = std::make_shared<sim::Atomic<std::uint32_t>>(0);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t ph = 0; ph < phases; ++ph) {
                const std::uint32_t permille =
                    (ph % 2 == 0) ? read_permille_hi : read_permille_lo;
                for (std::uint32_t i = 0; i < ops_per_phase; ++i) {
                    typename RW::Node n;
                    if (sim::random_below(1000) < permille) {
                        lock->lock_read(n);
                        sim::delay(read_hold);
                        lock->unlock_read(n);
                    } else {
                        lock->lock_write(n);
                        sim::delay(write_hold);
                        lock->unlock_write(n);
                    }
                    sim::delay(sim::random_below(think));
                }
                // Crude phase barrier via arrival counting, so regime
                // changes hit every processor at once.
                const std::uint32_t target = (ph + 1) * procs;
                arrived->fetch_add(1);
                while (static_cast<std::uint32_t>(arrived->load()) < target)
                    sim::delay(50 + sim::random_below(50));
            }
        });
    }
    m.run();
    return m.elapsed();
}

// ---- barrier workloads (src/barrier/) ---------------------------------

/**
 * Uniform-arrival barrier kernel: `episodes` rounds of compute + arrive
 * per processor, with per-episode compute drawn uniformly from
 * [0, 2*compute). Small compute windows bunch the arrivals — the
 * central counter serializes them and the combining tree wins; this is
 * the barrier analogue of the high-contention end of the spin-lock
 * sweep.
 *
 * @tparam B Barrier implementation (the quantity under study).
 * @param barrier optional pre-built barrier (for post-run inspection of
 *        reactive state); constructed internally when null. Must be
 *        fresh: barrier Nodes are bound to their barrier for life (they
 *        carry the episode sense), and each run creates its own, so a
 *        barrier cannot be carried across runs the way a lock can.
 * @param stats_out when non-null, receives the machine's final counter
 *        snapshot (mem ops, cross-socket traffic, ...) after the run.
 * @return simulated elapsed cycles.
 */
template <Barrier B>
std::uint64_t run_barrier_uniform(std::uint32_t procs, std::uint32_t episodes,
                                  std::uint32_t compute = 400,
                                  std::uint64_t seed = 1,
                                  std::shared_ptr<B> barrier = nullptr,
                                  sim::Topology topo = {},
                                  sim::MachineStats* stats_out = nullptr)
{
    sim::Machine m(procs, topo, sim::CostModel::alewife(), seed);
    auto bar = barrier ? std::move(barrier) : std::make_shared<B>(procs);
    auto nodes = std::make_shared<std::vector<typename B::Node>>(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename B::Node& n = (*nodes)[p];
            for (std::uint32_t e = 0; e < episodes; ++e) {
                if (compute > 0)
                    sim::delay(sim::random_below(2 * compute));
                bar->arrive(n);
            }
        });
    }
    m.run();
    if (stats_out != nullptr)
        *stats_out = m.stats();
    return m.elapsed();
}

/**
 * Straggler-arrival barrier kernel (load imbalance): processor 0
 * computes `straggle` extra cycles every episode while the rest arrive
 * almost together and wait. The episode's critical path is the
 * straggler's solo pass through the protocol — everyone else's arrival
 * cost and the wakeup fan-out are absorbed into the next straggle
 * window — so the cheapest protocol is the one with the smallest solo
 * critical path: one RMW + one flip for the centralized counter versus
 * a full climb for the tree. This is the skewed regime of the reactive
 * barrier's arrival-spread signal. (A *rotating* straggler is a
 * different regime: there the previous episode's wakeup latency lands
 * on the next straggler's critical path, which punishes the central
 * sense line's O(P) refill storm; the correctness tests cover it.)
 */
template <Barrier B>
std::uint64_t run_barrier_straggler(std::uint32_t procs,
                                    std::uint32_t episodes,
                                    std::uint32_t straggle = 30000,
                                    std::uint32_t compute = 200,
                                    std::uint64_t seed = 1,
                                    std::shared_ptr<B> barrier = nullptr,
                                    sim::Topology topo = {})
{
    sim::Machine m(procs, topo, sim::CostModel::alewife(), seed);
    auto bar = barrier ? std::move(barrier) : std::make_shared<B>(procs);
    auto nodes = std::make_shared<std::vector<typename B::Node>>(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename B::Node& n = (*nodes)[p];
            for (std::uint32_t e = 0; e < episodes; ++e) {
                sim::delay(sim::random_below(compute + 1));
                if (p == 0)
                    sim::delay(straggle);  // the imbalanced participant
                bar->arrive(n);
            }
        });
    }
    m.run();
    return m.elapsed();
}

/**
 * Phase-shifting barrier kernel: `phases` alternating blocks of
 * `episodes_per_phase` bunched-arrival episodes (tree territory) and
 * straggler episodes (central territory). Neither static protocol is
 * right for both regimes; a reactive barrier must detect each phase
 * change from the arrival-spread signal alone and re-converge — the
 * barrier analogue of the time-varying contention experiment
 * (Section 3.7.2).
 */
template <Barrier B>
std::uint64_t run_barrier_phases(std::uint32_t procs, std::uint32_t phases,
                                 std::uint32_t episodes_per_phase,
                                 std::uint32_t straggle = 30000,
                                 std::uint32_t compute = 200,
                                 std::uint64_t seed = 1,
                                 std::shared_ptr<B> barrier = nullptr,
                                 sim::Topology topo = {})
{
    sim::Machine m(procs, topo, sim::CostModel::alewife(), seed);
    auto bar = barrier ? std::move(barrier) : std::make_shared<B>(procs);
    auto nodes = std::make_shared<std::vector<typename B::Node>>(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            typename B::Node& n = (*nodes)[p];
            for (std::uint32_t ph = 0; ph < phases; ++ph) {
                const bool skewed_phase = ph % 2 == 1;
                for (std::uint32_t e = 0; e < episodes_per_phase; ++e) {
                    sim::delay(sim::random_below(compute + 1));
                    if (skewed_phase && p == 0)
                        sim::delay(straggle);
                    bar->arrive(n);
                }
                // The barrier itself separates the phases: every
                // processor changes regime on the same episode.
            }
        });
    }
    m.run();
    return m.elapsed();
}

}  // namespace reactive::apps
