/**
 * @file
 * Chapter 4 benchmark kernels (thesis Table 4.2): synchronization-type
 * workloads used to measure waiting-time distributions (Figures
 * 4.6-4.11) and execution times under different waiting algorithms
 * (Figures 4.12-4.14, Tables 4.3-4.6).
 *
 * Producer-consumer: J-structure pipeline and a future-based task net
 * (exponential-ish waits under random production grains).
 * Barrier: Jacobi-like sweeps (uniform-ish waits from skewed arrivals).
 * Mutual exclusion: FibHeap-like hot mutex, a Mutex stress kernel, and
 * a CountNet-like array of lightly-contended balancer mutexes.
 *
 * Every kernel takes the WaitingAlgorithm under study and optionally
 * records waiting-time profiles; all run on the simulated machine with
 * more threads than processors where the thesis' scenario needs
 * processors to be reusable by blocked threads' siblings.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"
#include "stats/summary.hpp"
#include "waiting/sync/barrier.hpp"
#include "waiting/sync/future.hpp"
#include "waiting/sync/jstructure.hpp"
#include "waiting/sync/waiting_mutex.hpp"

namespace reactive::apps {

using sim::SimPlatform;

/**
 * J-structure producer-consumer pipeline (Figure 4.6's reader waits):
 * one producer fills a J-structure with variable grain; `procs-1`
 * consumers read every slot. Returns simulated elapsed cycles.
 */
inline std::uint64_t run_jstructure_pipeline(std::uint32_t procs,
                                             WaitingAlgorithm alg,
                                             std::uint32_t slots = 96,
                                             stats::Samples* profile = nullptr,
                                             std::uint64_t seed = 1)
{
    sim::CostModel cm = sim::CostModel::multithreaded(2);
    sim::Machine m(procs, cm, seed);
    auto js = std::make_shared<JStructure<int, SimPlatform>>(slots, alg);
    m.spawn(0, [=] {
        for (std::uint32_t i = 0; i < slots; ++i) {
            sim::delay(150 + sim::random_below(900));  // produce element
            js->write(i, static_cast<int>(i));
        }
    });
    for (std::uint32_t p = 1; p < procs; ++p) {
        m.spawn(p, [=] {
            long sum = 0;
            for (std::uint32_t i = 0; i < slots; ++i) {
                sum += js->read(i, profile);
                // Consumption grain matches the production grain, so
                // readers run near the producer and most waits are
                // short with an exponential-ish tail (the Figure 4.6
                // regime).
                sim::delay(150 + sim::random_below(900));
            }
            (void)sum;
        });
    }
    m.run();
    return m.elapsed();
}

/**
 * Future-based task network (Figure 4.7's future-touch waits): each
 * round, every processor produces one future after a random grain and
 * touches a randomly chosen future of the previous round.
 */
inline std::uint64_t run_future_net(std::uint32_t procs, WaitingAlgorithm alg,
                                    std::uint32_t rounds = 12,
                                    stats::Samples* profile = nullptr,
                                    std::uint64_t seed = 1)
{
    using Fut = FutureValue<int, SimPlatform>;
    sim::CostModel cm = sim::CostModel::multithreaded(2);
    sim::Machine m(procs, cm, seed);
    auto futures = std::make_shared<std::vector<std::unique_ptr<Fut>>>();
    for (std::uint32_t i = 0; i < procs * (rounds + 1); ++i)
        futures->push_back(std::make_unique<Fut>(alg));
    // Round 0 futures resolve immediately.
    for (std::uint32_t p = 0; p < procs; ++p)
        (*futures)[p].get()->set_value(0);

    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t r = 0; r < rounds; ++r) {
                // Touch a random future of the previous round.
                const std::uint32_t src = sim::random_below(procs);
                const int v = (*futures)[r * procs + src].get()->get(profile);
                sim::delay(300 + sim::random_below(1500));  // compute
                (*futures)[(r + 1) * procs + p].get()->set_value(v + 1);
            }
        });
    }
    m.run();
    return m.elapsed();
}

/**
 * Jacobi-like barrier kernel (Figures 4.8/4.13): sweeps separated by
 * barriers; per-processor work is uniformly distributed, giving the
 * near-uniform barrier waiting times the thesis models.
 */
inline std::uint64_t run_barrier_sweeps(std::uint32_t procs,
                                        WaitingAlgorithm alg,
                                        std::uint32_t sweeps = 20,
                                        std::uint32_t mean_work = 3000,
                                        stats::Samples* profile = nullptr,
                                        std::uint64_t seed = 1)
{
    sim::CostModel cm = sim::CostModel::multithreaded(2);
    sim::Machine m(procs, cm, seed);
    auto bar = std::make_shared<WaitingBarrier<SimPlatform>>(procs, alg);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            WaitingBarrier<SimPlatform>::Node node;
            for (std::uint32_t s = 0; s < sweeps; ++s) {
                sim::delay(mean_work / 2 + sim::random_below(mean_work));
                bar->arrive(node, profile);
            }
        });
    }
    m.run();
    return m.elapsed();
}

/**
 * FibHeap-like kernel (Figures 4.10/4.14): one hot mutex protecting a
 * shared priority structure; operations hold it for variable times, so
 * mutex waiting times spread exponentially.
 */
inline std::uint64_t run_fibheap(std::uint32_t procs, WaitingAlgorithm alg,
                                 std::uint32_t ops_per_proc = 30,
                                 stats::Samples* profile = nullptr,
                                 std::uint64_t seed = 1)
{
    sim::CostModel cm = sim::CostModel::multithreaded(2);
    sim::Machine m(procs, cm, seed);
    auto mu = std::make_shared<WaitingMutex<SimPlatform>>(alg);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < ops_per_proc; ++i) {
                mu->lock(profile);
                // Heap op: usually cheap, occasionally a cascade.
                std::uint32_t hold = 80 + sim::random_below(200);
                if (sim::random_below(8) == 0)
                    hold += 1500;
                sim::delay(hold);
                mu->unlock();
                sim::delay(400 + sim::random_below(1200));
            }
        });
    }
    m.run();
    return m.elapsed();
}

/**
 * Mutex stress kernel (the thesis' "Mutex" microbenchmark): a single
 * mutex with fixed critical sections and think times.
 */
inline std::uint64_t run_mutex_stress(std::uint32_t procs, WaitingAlgorithm alg,
                                      std::uint32_t ops_per_proc = 40,
                                      stats::Samples* profile = nullptr,
                                      std::uint64_t seed = 1)
{
    sim::CostModel cm = sim::CostModel::multithreaded(2);
    sim::Machine m(procs, cm, seed);
    auto mu = std::make_shared<WaitingMutex<SimPlatform>>(alg);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < ops_per_proc; ++i) {
                mu->lock(profile);
                sim::delay(150);
                mu->unlock();
                sim::delay(sim::random_below(600));
            }
        });
    }
    m.run();
    return m.elapsed();
}

/**
 * CountNet-like kernel (Figure 4.11): a bank of balancer mutexes, each
 * lightly contended; threads traverse a few balancers per operation, so
 * most waits are short and the distribution is thin-tailed.
 */
inline std::uint64_t run_countnet(std::uint32_t procs, WaitingAlgorithm alg,
                                  std::uint32_t ops_per_proc = 30,
                                  std::uint32_t balancers = 16,
                                  stats::Samples* profile = nullptr,
                                  std::uint64_t seed = 1)
{
    sim::CostModel cm = sim::CostModel::multithreaded(2);
    sim::Machine m(procs, cm, seed);
    auto net = std::make_shared<
        std::vector<std::unique_ptr<WaitingMutex<SimPlatform>>>>();
    for (std::uint32_t b = 0; b < balancers; ++b)
        net->push_back(std::make_unique<WaitingMutex<SimPlatform>>(alg));
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            std::uint32_t wire = p % balancers;
            for (std::uint32_t i = 0; i < ops_per_proc; ++i) {
                // Traverse log2(balancers)-ish stages.
                for (std::uint32_t s = 0; s < 4; ++s) {
                    WaitingMutex<SimPlatform>& b =
                        *(*net)[(wire + s * 7 + i) % balancers];
                    b.lock(profile);
                    sim::delay(40);  // toggle the balancer
                    b.unlock();
                    sim::delay(60 + sim::random_below(120));
                }
                sim::delay(sim::random_below(400));
            }
        });
    }
    m.run();
    return m.elapsed();
}

}  // namespace reactive::apps
