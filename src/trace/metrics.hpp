/**
 * @file
 * MetricsRegistry: merged view of the per-thread trace shards.
 *
 * Each TraceRing doubles as its thread's single-writer metric shard:
 * exact per-class counters bumped on every publish (immune to ring
 * wrap) plus the event stream itself. A MetricsRegistry snapshot merges
 * both at drain time — counters by summation, latency histograms
 * (stats/histogram.hpp Log2) by replaying the drained events — so the
 * hot path never touches a histogram bucket and the merge runs on the
 * draining thread only. Counters are cumulative across drains; the
 * histograms cover only the events delivered to this snapshot (events
 * lost to drop-oldest are visible in dropped[] instead of silently
 * thinning the distribution).
 */
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "stats/histogram.hpp"
#include "trace/trace.hpp"

namespace reactive::trace {

inline const char* class_name(ObjectClass c)
{
    switch (c) {
    case ObjectClass::kLock:
        return "lock";
    case ObjectClass::kRwLock:
        return "rwlock";
    case ObjectClass::kBarrier:
        return "barrier";
    case ObjectClass::kCohort:
        return "cohort";
    default:
        return "none";
    }
}

inline const char* type_name(EventType t)
{
    switch (t) {
    case EventType::kSwitch:
        return "switch";
    case EventType::kProbeBegin:
        return "probe_begin";
    case EventType::kProbeEnd:
        return "probe_end";
    case EventType::kAcqSample:
        return "acq_sample";
    case EventType::kFastAcquire:
        return "fast_acquire";
    case EventType::kEpisode:
        return "episode";
    case EventType::kCohortGrant:
        return "cohort_grant";
    case EventType::kCohortHandoff:
        return "cohort_handoff";
    case EventType::kCohortAbort:
        return "cohort_abort";
    case EventType::kRegret:
        return "regret";
    case EventType::kPark:
        return "park";
    case EventType::kWake:
        return "wake";
    case EventType::kWaitModeSwitch:
        return "wait_mode_switch";
    default:
        return "none";
    }
}

/// Merged per-class metrics: exact counters + delivered-sample latency
/// histograms.
class MetricsRegistry {
  public:
    struct ClassRow {
        std::array<std::uint64_t, kMetricCount> counters{};
        std::uint64_t dropped = 0;
        /// Acquisition latencies (locks/rw) or episode cost samples
        /// (barriers), log2-bucketed as in the thesis' semi-log plots.
        stats::Log2Histogram latency{32};
        /// Counterfactual-regret rollup over *delivered* kRegret events
        /// (the exact drop-immune totals live in audit::snapshot()).
        std::uint64_t regret_cycles = 0;
        std::uint64_t regret_realized = 0;
        std::uint64_t regret_best = 0;
    };

    ClassRow& row(ObjectClass c)
    {
        return rows_[static_cast<std::size_t>(c) % kClassCount];
    }
    const ClassRow& row(ObjectClass c) const
    {
        return rows_[static_cast<std::size_t>(c) % kClassCount];
    }

    std::uint64_t counter(ObjectClass c, Metric m) const
    {
        return row(c).counters[static_cast<std::size_t>(m)];
    }

    /// Folds one ring's counter shard and drop counts into this view.
    void merge_shard(const TraceRing& ring)
    {
        for (std::size_t c = 0; c < kClassCount; ++c) {
            const auto cls = static_cast<ObjectClass>(c);
            for (std::size_t m = 0; m < kMetricCount; ++m)
                rows_[c].counters[m] +=
                    ring.counter(cls, static_cast<Metric>(m));
            rows_[c].dropped += ring.drops(cls);
        }
    }

    /// Feeds one delivered event's latency sample (if it carries one).
    void observe(const Event& e)
    {
        switch (e.type) {
        case EventType::kAcqSample:
        case EventType::kEpisode:
            row(e.cls).latency.add(static_cast<double>(e.a0));
            break;
        case EventType::kRegret: {
            ClassRow& r = row(e.cls);
            r.regret_realized += e.a0;
            r.regret_best += e.a1;
            r.regret_cycles += e.a2;
            break;
        }
        default:
            break;
        }
    }

    /// Compact per-class summary (bench stdout / audit dumps).
    void print(std::ostream& os) const
    {
        os << "trace metrics (per object class):\n";
        for (std::size_t c = 1; c < kClassCount; ++c) {
            const ClassRow& r = rows_[c];
            std::uint64_t any = r.dropped;
            for (std::uint64_t v : r.counters)
                any += v;
            if (any == 0)
                continue;
            os << "  " << class_name(static_cast<ObjectClass>(c)) << ": acq="
               << r.counters[0] << " fast=" << r.counters[1]
               << " switches=" << r.counters[2] << " probes=+"
               << r.counters[4] << "/-" << r.counters[5] << " (started "
               << r.counters[3] << ") episodes=" << r.counters[6]
               << " handoffs=" << r.counters[7] << " aborts="
               << r.counters[8] << " regret_samples=" << r.counters[9]
               << " regret_cycles=" << r.regret_cycles
               << " parks=" << r.counters[10] << " wakes=" << r.counters[11]
               << " wait_switches=" << r.counters[12]
               << " dropped=" << r.dropped << "\n";
            if (r.latency.stats().count() > 0)
                os << "    latency p50=" << r.latency.percentile(0.50)
                   << " p90=" << r.latency.percentile(0.90)
                   << " p99=" << r.latency.percentile(0.99)
                   << " (cycles, " << r.latency.stats().count()
                   << " delivered samples)\n";
        }
    }

  private:
    std::array<ClassRow, kClassCount> rows_{};
};

}  // namespace reactive::trace
