/**
 * @file
 * Zero-cost protocol-decision tracing: per-thread SPSC event rings.
 *
 * The reactive primitives switch protocols per object at runtime, but
 * until now the only way to see *why* a policy picked a rung was to
 * rerun a bench and stare at aggregate crossover tables. This layer
 * records the decisions themselves — protocol switches with the
 * triggering signal and estimator snapshot, probe begin/end, episode
 * cost samples, cohort handoff/abort edges — under the same discipline
 * the PR 4 `free_monitoring` finding forced on the primitives: events
 * are emitted only from code already in consensus (or otherwise
 * single-writer), reuse timestamps the caller already took, and touch
 * only host memory. The trace layer never performs a simulated memory
 * operation (`P::Atomic`), never calls `P::delay`/`P::pause`, and never
 * feeds anything back into a policy, so a traced simulation's schedule
 * and mem-op counts are bit-identical to an untraced one.
 *
 * Gating, two levels:
 *  - Compile time: `REACTIVE_TRACE` (CMake option, default OFF). When
 *    off, `kCompiled` is false, `enabled()` is a constexpr false, and
 *    every instrumentation site — written as
 *    `if constexpr (trace::kCompiled) { if (enabled()) ... }` — drops
 *    out of the binary entirely. Single-TU binaries (every test and
 *    bench here) may also `#define REACTIVE_TRACE 1` before their
 *    first include.
 *  - Runtime: `set_enabled(true)`. When compiled in but disabled, the
 *    per-site cost is one relaxed atomic bool load on a predicted
 *    branch.
 *
 * Recording: each OS thread lazily owns one `TraceRing`, a fixed-
 * capacity drop-oldest SPSC ring of 48-byte slots. The writer is the
 * owning thread; drains may run concurrently from any thread. Each
 * slot is a miniature seqlock whose payload words are relaxed atomics,
 * so a drain racing the writer is TSan-clean and torn reads are
 * detected and discarded (the writer lapped the reader; the event was
 * dropped-oldest and is accounted as such). On the simulator every
 * fiber shares the one host thread, so there is a single ring and the
 * drain order is the deterministic event order.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#ifndef REACTIVE_TRACE
#define REACTIVE_TRACE 0
#endif

namespace reactive::trace {

/// True when the tracing layer is compiled into this TU.
inline constexpr bool kCompiled = (REACTIVE_TRACE != 0);

// ---- event vocabulary -------------------------------------------------

enum class EventType : std::uint8_t {
    kNone = 0,
    kSwitch = 1,         ///< protocol change; from/to = protocol indices
    kProbeBegin = 2,     ///< calibrated policy started an off-home probe
    kProbeEnd = 3,       ///< probe settled; a0: 1=adopted 0=rejected
    kAcqSample = 4,      ///< slow-path acquisition latency sample (a0)
    kFastAcquire = 5,    ///< optimistic fast-path win (no queue, no spin)
    kEpisode = 6,        ///< barrier episode; a0 = cost sample, a1 = m
    kCohortGrant = 7,    ///< cohort pass: lock stayed on the socket
    kCohortHandoff = 8,  ///< budget exhausted: global handoff
    kCohortAbort = 9,    ///< protocol retired: waiters woken INVALID
    kRegret = 10,        ///< counterfactual regret sample (src/audit/)
    kPark = 11,          ///< a wait reached the parked phase (waiter-local)
    kWake = 12,          ///< a release broadcast to a parking site
    kWaitModeSwitch = 13,  ///< holder changed the wait-mode hint
};

/// Object class of the emitting primitive (drop accounting is per class).
enum class ObjectClass : std::uint8_t {
    kNone = 0,
    kLock = 1,
    kRwLock = 2,
    kBarrier = 3,
    kCohort = 4,
};
inline constexpr std::size_t kClassCount = 5;

/// One recorded decision point. Packs into five 64-bit slot words.
struct Event {
    std::uint64_t ts = 0;       ///< platform cycles (P::now() domain)
    std::uint32_t object = 0;   ///< per-object id from new_object()
    EventType type = EventType::kNone;
    ObjectClass cls = ObjectClass::kNone;
    std::uint8_t from = 0;      ///< protocol index before (where meaningful)
    std::uint8_t to = 0;        ///< protocol index after
    std::uint64_t a0 = 0, a1 = 0, a2 = 0;  ///< type-specific payload
};

// ---- per-class metric counters (single-writer shards) -----------------

enum class Metric : std::uint8_t {
    kAcquisitions = 0,
    kFastPathWins = 1,
    kSwitches = 2,
    kProbesStarted = 3,
    kProbesWon = 4,
    kProbesLost = 5,
    kEpisodes = 6,
    kHandoffs = 7,
    kAborts = 8,
    kRegretSamples = 9,
    kParks = 10,
    kWakes = 11,
    kWaitModeSwitches = 12,
};
inline constexpr std::size_t kMetricCount = 13;

/**
 * Lock-free drop-oldest SPSC ring of trace events.
 *
 * Exactly one writer (the owning thread) appends via publish(); any
 * thread may drain() concurrently — drains are serialized by the
 * caller (the Registry holds a mutex around them). Capacity is rounded
 * up to a power of two. When the writer laps the reader the oldest
 * unread event is overwritten and counted in drops(victim class); the
 * per-slot seqlock lets a concurrent drain detect the overwrite and
 * skip the torn slot instead of reading shredded data.
 *
 * Also carries the thread's metric shard: exact per-class counters
 * bumped by the writer on every publish, immune to ring drops.
 */
class TraceRing {
  public:
    static constexpr std::size_t kDefaultCapacity = 8192;

    explicit TraceRing(std::size_t capacity = kDefaultCapacity,
                       std::uint32_t id = 0)
        : id_(id)
    {
        std::size_t cap = 16;
        while (cap < capacity)
            cap <<= 1;
        slots_ = std::make_unique<Slot[]>(cap);
        capacity_ = cap;
        mask_ = cap - 1;
    }

    TraceRing(const TraceRing&) = delete;
    TraceRing& operator=(const TraceRing&) = delete;

    std::uint32_t id() const { return id_; }
    std::size_t capacity() const { return capacity_; }

    /// Appends @p e (writer thread only), dropping the oldest unread
    /// event when full.
    void publish(const Event& e)
    {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        Slot& s = slots_[h & mask_];
        if (h >= capacity_ &&
            cursor_.load(std::memory_order_relaxed) <= h - capacity_) {
            // Overwriting an unread slot: account the victim by class.
            // (A drain racing exactly this slot may have copied it
            // already — the overcount is a diagnostic-only race that
            // cannot happen on the single-threaded simulator.)
            const std::uint64_t meta =
                s.word[1].load(std::memory_order_relaxed);
            bump_drop(static_cast<ObjectClass>((meta >> 8) & 0xff));
        }
        // Fence-free seqlock (TSan models release/acquire on the
        // words themselves; standalone fences it does not): each
        // release payload store carries the odd seq store before it,
        // so a reader that observes a new word must also observe the
        // odd seq on its recheck. Free on x86 (plain movs).
        s.seq.store(2 * h + 1, std::memory_order_relaxed);
        s.word[0].store(e.ts, std::memory_order_release);
        s.word[1].store(pack_meta(e), std::memory_order_release);
        s.word[2].store(e.a0, std::memory_order_release);
        s.word[3].store(e.a1, std::memory_order_release);
        s.word[4].store(e.a2, std::memory_order_release);
        s.seq.store(2 * h + 2, std::memory_order_release);
        head_.store(h + 1, std::memory_order_release);
        bump_counters(e);
    }

    /**
     * Drains every readable event in publish order into @p f(Event).
     * Events lost to wrap (or torn by a writer lapping mid-drain) are
     * skipped; the writer already counted them in drops(). Returns the
     * number of events delivered. One drain at a time (Registry mutex).
     */
    template <typename F>
    std::uint64_t drain(F&& f)
    {
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        std::uint64_t c = cursor_.load(std::memory_order_relaxed);
        if (h > capacity_ && c < h - capacity_)
            c = h - capacity_;  // wrapped away; writer counted the drops
        std::uint64_t delivered = 0;
        for (; c < h; ++c) {
            Slot& s = slots_[c & mask_];
            const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
            if (s1 != 2 * c + 2)
                continue;  // lapped or in-flight: dropped-oldest
            Event e;
            // Acquire payload loads keep the seq recheck from moving
            // before them (and pair with the writer's release stores).
            e.ts = s.word[0].load(std::memory_order_acquire);
            const std::uint64_t meta =
                s.word[1].load(std::memory_order_acquire);
            e.a0 = s.word[2].load(std::memory_order_acquire);
            e.a1 = s.word[3].load(std::memory_order_acquire);
            e.a2 = s.word[4].load(std::memory_order_acquire);
            if (s.seq.load(std::memory_order_relaxed) != s1)
                continue;  // torn by a concurrent overwrite
            unpack_meta(meta, e);
            f(e);
            ++delivered;
        }
        cursor_.store(h, std::memory_order_release);
        return delivered;
    }

    /// Events ever published (including later-dropped ones).
    std::uint64_t published() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /// Events overwritten before being drained, for @p cls.
    std::uint64_t drops(ObjectClass cls) const
    {
        return drops_[static_cast<std::size_t>(cls)].load(
            std::memory_order_relaxed);
    }

    std::uint64_t total_drops() const
    {
        std::uint64_t n = 0;
        for (const auto& d : drops_)
            n += d.load(std::memory_order_relaxed);
        return n;
    }

    /// Exact per-class metric counter (bumped on publish, never drops).
    std::uint64_t counter(ObjectClass cls, Metric m) const
    {
        return counters_[static_cast<std::size_t>(cls)]
                        [static_cast<std::size_t>(m)]
                            .load(std::memory_order_relaxed);
    }

  private:
    struct Slot {
        std::atomic<std::uint64_t> seq{0};
        std::array<std::atomic<std::uint64_t>, 5> word{};
    };

    static std::uint64_t pack_meta(const Event& e)
    {
        return (static_cast<std::uint64_t>(e.object) << 32) |
               (static_cast<std::uint64_t>(e.to) << 24) |
               (static_cast<std::uint64_t>(e.from) << 16) |
               (static_cast<std::uint64_t>(e.cls) << 8) |
               static_cast<std::uint64_t>(e.type);
    }

    static void unpack_meta(std::uint64_t meta, Event& e)
    {
        e.object = static_cast<std::uint32_t>(meta >> 32);
        e.to = static_cast<std::uint8_t>((meta >> 24) & 0xff);
        e.from = static_cast<std::uint8_t>((meta >> 16) & 0xff);
        e.cls = static_cast<ObjectClass>((meta >> 8) & 0xff);
        e.type = static_cast<EventType>(meta & 0xff);
    }

    void bump_drop(ObjectClass cls)
    {
        auto& d = drops_[static_cast<std::size_t>(cls) % kClassCount];
        d.store(d.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    }

    void bump(ObjectClass cls, Metric m)
    {
        auto& c = counters_[static_cast<std::size_t>(cls) % kClassCount]
                           [static_cast<std::size_t>(m)];
        c.store(c.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    }

    void bump_counters(const Event& e)
    {
        switch (e.type) {
        case EventType::kAcqSample:
            bump(e.cls, Metric::kAcquisitions);
            break;
        case EventType::kFastAcquire:
            bump(e.cls, Metric::kAcquisitions);
            bump(e.cls, Metric::kFastPathWins);
            break;
        case EventType::kSwitch:
            bump(e.cls, Metric::kSwitches);
            break;
        case EventType::kProbeBegin:
            bump(e.cls, Metric::kProbesStarted);
            break;
        case EventType::kProbeEnd:
            bump(e.cls, e.a0 != 0 ? Metric::kProbesWon : Metric::kProbesLost);
            break;
        case EventType::kEpisode:
            bump(e.cls, Metric::kEpisodes);
            break;
        case EventType::kCohortGrant:
            bump(e.cls, Metric::kAcquisitions);
            break;
        case EventType::kCohortHandoff:
            bump(e.cls, Metric::kHandoffs);
            break;
        case EventType::kCohortAbort:
            bump(e.cls, Metric::kAborts);
            break;
        case EventType::kRegret:
            bump(e.cls, Metric::kRegretSamples);
            break;
        case EventType::kPark:
            bump(e.cls, Metric::kParks);
            break;
        case EventType::kWake:
            bump(e.cls, Metric::kWakes);
            break;
        case EventType::kWaitModeSwitch:
            bump(e.cls, Metric::kWaitModeSwitches);
            break;
        default:
            break;
        }
    }

    // Writer-owned cursor; readers only load it.
    alignas(64) std::atomic<std::uint64_t> head_{0};
    // Reader-owned cursor; the writer only loads it (drop detection).
    alignas(64) std::atomic<std::uint64_t> cursor_{0};

    std::unique_ptr<Slot[]> slots_;
    std::size_t capacity_ = 0;
    std::uint64_t mask_ = 0;
    std::uint32_t id_ = 0;

    std::array<std::atomic<std::uint64_t>, kClassCount> drops_{};
    std::array<std::array<std::atomic<std::uint64_t>, kMetricCount>,
               kClassCount>
        counters_{};
};

// ---- global registry ---------------------------------------------------

namespace detail {

inline std::atomic<bool> g_enabled{false};
inline std::atomic<std::uint32_t> g_next_object{1};

/// Owns every thread's ring; rings outlive their threads so events
/// survive joins. reset() bumps the epoch so cached thread_local
/// pointers re-register instead of dangling.
class Registry {
  public:
    static Registry& instance()
    {
        static Registry r;
        return r;
    }

    TraceRing& create_ring()
    {
        std::lock_guard<std::mutex> g(mu_);
        rings_.push_back(std::make_unique<TraceRing>(
            ring_capacity_, static_cast<std::uint32_t>(rings_.size())));
        return *rings_.back();
    }

    /// Quiesced-only: drop all rings and recorded events (tests).
    void reset(std::size_t ring_capacity)
    {
        std::lock_guard<std::mutex> g(mu_);
        rings_.clear();
        ring_capacity_ = ring_capacity;
        epoch_.store(epoch_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    }

    std::uint64_t epoch() const
    {
        return epoch_.load(std::memory_order_relaxed);
    }

    /// Runs @p f(TraceRing&) over every ring under the registry lock
    /// (serializes drains against each other, not against writers).
    template <typename F>
    void for_each_ring(F&& f)
    {
        std::lock_guard<std::mutex> g(mu_);
        for (auto& r : rings_)
            f(*r);
    }

  private:
    std::mutex mu_;
    std::vector<std::unique_ptr<TraceRing>> rings_;
    std::size_t ring_capacity_ = TraceRing::kDefaultCapacity;
    std::atomic<std::uint64_t> epoch_{1};
};

struct TlRef {
    TraceRing* ring = nullptr;
    std::uint64_t epoch = 0;
};
inline thread_local TlRef t_ref;

inline TraceRing& local_ring()
{
    Registry& reg = Registry::instance();
    if (t_ref.ring == nullptr || t_ref.epoch != reg.epoch()) [[unlikely]] {
        t_ref.ring = &reg.create_ring();
        t_ref.epoch = reg.epoch();
    }
    return *t_ref.ring;
}

}  // namespace detail

// ---- public API --------------------------------------------------------

/// Runtime gate. Constexpr false when the layer is compiled out, so
/// `if (enabled())` folds away entirely.
inline bool enabled() noexcept
{
    if constexpr (!kCompiled)
        return false;
    else
        return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept
{
    if constexpr (kCompiled)
        detail::g_enabled.store(on, std::memory_order_relaxed);
    else
        (void)on;
}

/// Drops all rings and recorded events and sets the capacity for rings
/// created afterwards. Call only while no thread is emitting.
inline void reset(std::size_t ring_capacity = TraceRing::kDefaultCapacity)
{
    if constexpr (kCompiled)
        detail::Registry::instance().reset(ring_capacity);
    else
        (void)ring_capacity;
}

/**
 * Allocates a per-object trace id (primitives call this once at
 * construction). Returns 0 — "untraced" — when the layer is compiled
 * out, so the member cost is a zeroed uint32_t either way.
 */
inline std::uint32_t new_object(ObjectClass cls) noexcept
{
    if constexpr (!kCompiled) {
        (void)cls;
        return 0;
    } else {
        (void)cls;
        return detail::g_next_object.fetch_add(1,
                                               std::memory_order_relaxed);
    }
}

/// Records @p e to the calling thread's ring. Callers check enabled()
/// first; this itself is unconditional.
inline void emit(const Event& e)
{
    if constexpr (kCompiled)
        detail::local_ring().publish(e);
    else
        (void)e;
}

/// Convenience form for one-line sites.
inline void emit(EventType type, ObjectClass cls, std::uint32_t object,
                 std::uint8_t from, std::uint8_t to, std::uint64_t ts,
                 std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                 std::uint64_t a2 = 0)
{
    Event e;
    e.ts = ts;
    e.object = object;
    e.type = type;
    e.cls = cls;
    e.from = from;
    e.to = to;
    e.a0 = a0;
    e.a1 = a1;
    e.a2 = a2;
    emit(e);
}

/**
 * One-line instrumentation: a single predicted branch when compiled in,
 * nothing at all when compiled out (arguments are not evaluated).
 */
#if REACTIVE_TRACE
#define REACTIVE_TRACE_EVENT(...)                                        \
    do {                                                                 \
        if (::reactive::trace::enabled()) [[unlikely]]                   \
            ::reactive::trace::emit(__VA_ARGS__);                        \
    } while (0)
#else
#define REACTIVE_TRACE_EVENT(...) \
    do {                          \
    } while (0)
#endif

}  // namespace reactive::trace
