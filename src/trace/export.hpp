/**
 * @file
 * Trace exporters: Chrome trace-event JSON and the switch-audit dump.
 *
 * capture() drains every ring into one time-sorted event list plus a
 * merged MetricsRegistry; write_chrome_json() emits the Chrome
 * trace-event format (loadable in Perfetto / chrome://tracing — every
 * decision is an instant event whose tid is the recording ring, with
 * the decoded payload in args), and write_switch_audit() emits the
 * compact one-line-per-switch text form the audit tests diff against
 * policy ground truth. Timestamps are platform cycles, not wall time;
 * the JSON says so in otherData.time_unit.
 *
 * Payload conventions (shared with the instrumentation sites):
 *   kSwitch     a0 = (signal.protocol << 8) | (drift + 1)
 *               a1 = (estimator latency A << 32) | estimator latency B
 *                    (A/B: tts/queue for locks, simple/queue for rw,
 *                     from-rung/to-rung for ladder barriers; 0 = none)
 *               a2 = measured switch duration, cycles (0 = unmeasured)
 *   kProbeBegin a0 = probes started so far
 *   kProbeEnd   a0 = outcome (1 adopted, 0 rejected, 2 unknown)
 *   kAcqSample  a0 = acquisition latency, a1 = packed signal as above
 *   kEpisode    a0 = episode cost sample, a1 = arrivals m
 *   kCohort*    a0 = cohort passes at the edge
 *   kRegret     a0 = realized cost, a1 = estimator's best-alternative
 *               cost, a2 = regret (max(0, a0 - a1)); from = protocol
 *               that paid, to = policy's next protocol
 *   kPark       a0 = wait cycles, a1 = measured wake latency (0 = not
 *               chained to a stamped release); from = WaitMode waited
 *               under (waiter-local, emitted after the wait ends)
 *   kWake       a0 = advisory parked-waiter count at the broadcast
 *   kWaitModeSwitch
 *               from/to = old/new WaitMode; a0 = packed new hint
 *               (wait_select.hpp layout), a1 = (hold EWMA << 32) |
 *               (block-cost EWMA & 0xffffffff), a2 = expected wait —
 *               the estimator snapshot behind the decision
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace reactive::trace {

struct CapturedEvent {
    Event e;
    std::uint32_t ring = 0;
    std::uint64_t index = 0;  ///< publish order within the ring
};

struct Capture {
    std::vector<CapturedEvent> events;  ///< time-sorted, ties in ring order
    MetricsRegistry metrics;            ///< counters cumulative over drains
    std::uint64_t total_dropped = 0;
};

/// Drains all rings (consuming their unread events) into one capture.
inline Capture capture()
{
    Capture cap;
    if constexpr (!kCompiled)
        return cap;
    detail::Registry::instance().for_each_ring([&](TraceRing& r) {
        cap.metrics.merge_shard(r);
        cap.total_dropped += r.total_drops();
        std::uint64_t idx = 0;
        r.drain([&](const Event& e) {
            cap.metrics.observe(e);
            cap.events.push_back(CapturedEvent{e, r.id(), idx++});
        });
    });
    std::stable_sort(cap.events.begin(), cap.events.end(),
                     [](const CapturedEvent& a, const CapturedEvent& b) {
                         return a.e.ts < b.e.ts;
                     });
    return cap;
}

/// Chrome trace-event / Perfetto-loadable JSON.
inline void write_chrome_json(std::ostream& os, const Capture& cap)
{
    os << "{\n\"traceEvents\": [\n";
    bool first = true;
    for (const CapturedEvent& ce : cap.events) {
        const Event& e = ce.e;
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\": \"" << type_name(e.type) << "\", \"cat\": \""
           << class_name(e.cls) << "\", \"ph\": \"i\", \"s\": \"t\", "
           << "\"pid\": 1, \"tid\": " << ce.ring << ", \"ts\": " << e.ts
           << ", \"args\": {\"object\": " << e.object
           << ", \"from\": " << static_cast<unsigned>(e.from)
           << ", \"to\": " << static_cast<unsigned>(e.to);
        switch (e.type) {
        case EventType::kSwitch:
            os << ", \"signal_protocol\": " << (e.a0 >> 8)
               << ", \"drift\": " << (static_cast<int>(e.a0 & 0xff) - 1)
               << ", \"est_a\": " << (e.a1 >> 32)
               << ", \"est_b\": " << (e.a1 & 0xffffffffu)
               << ", \"duration\": " << e.a2;
            break;
        case EventType::kAcqSample:
            os << ", \"cycles\": " << e.a0
               << ", \"signal_protocol\": " << (e.a1 >> 8)
               << ", \"drift\": " << (static_cast<int>(e.a1 & 0xff) - 1);
            break;
        case EventType::kEpisode:
            os << ", \"cost\": " << e.a0 << ", \"arrivals\": " << e.a1;
            break;
        case EventType::kProbeBegin:
        case EventType::kProbeEnd:
            os << ", \"outcome\": " << e.a0 << ", \"probes\": " << e.a1;
            break;
        case EventType::kRegret:
            os << ", \"realized\": " << e.a0 << ", \"best\": " << e.a1
               << ", \"regret\": " << e.a2;
            break;
        case EventType::kPark:
            os << ", \"wait_cycles\": " << e.a0
               << ", \"wake_latency\": " << e.a1;
            break;
        case EventType::kWake:
            os << ", \"woken\": " << e.a0;
            break;
        case EventType::kWaitModeSwitch:
            os << ", \"hint\": " << e.a0
               << ", \"hold_est\": " << (e.a1 >> 32)
               << ", \"block_est\": " << (e.a1 & 0xffffffffu)
               << ", \"expected_wait\": " << e.a2;
            break;
        default:
            os << ", \"a0\": " << e.a0;
            break;
        }
        os << "}}";
    }
    os << "\n],\n";
    os << "\"otherData\": {\"time_unit\": \"cycles\", \"dropped_total\": \""
       << cap.total_dropped << "\", \"event_count\": \""
       << cap.events.size() << "\", \"dropped_by_class\": {";
    bool firstd = true;
    for (std::size_t c = 1; c < kClassCount; ++c) {
        const auto cls = static_cast<ObjectClass>(c);
        if (!firstd)
            os << ", ";
        firstd = false;
        os << "\"" << class_name(cls) << "\": \""
           << cap.metrics.row(cls).dropped << "\"";
    }
    os << "}},\n";
    os << "\"reactiveMetrics\": {";
    bool firstc = true;
    for (std::size_t c = 1; c < kClassCount; ++c) {
        const auto cls = static_cast<ObjectClass>(c);
        const auto& r = cap.metrics.row(cls);
        if (!firstc)
            os << ", ";
        firstc = false;
        os << "\"" << class_name(cls) << "\": {\"acquisitions\": "
           << r.counters[0] << ", \"fast_path_wins\": " << r.counters[1]
           << ", \"switches\": " << r.counters[2]
           << ", \"probes_started\": " << r.counters[3]
           << ", \"probes_won\": " << r.counters[4]
           << ", \"probes_lost\": " << r.counters[5]
           << ", \"episodes\": " << r.counters[6]
           << ", \"handoffs\": " << r.counters[7]
           << ", \"aborts\": " << r.counters[8]
           << ", \"regret_samples\": " << r.counters[9]
           << ", \"parks\": " << r.counters[10]
           << ", \"wakes\": " << r.counters[11]
           << ", \"wait_mode_switches\": " << r.counters[12]
           << ", \"regret_cycles\": " << r.regret_cycles
           << ", \"regret_realized\": " << r.regret_realized
           << ", \"regret_best\": " << r.regret_best
           << ", \"dropped\": " << r.dropped << "}";
    }
    os << "},\n\"displayTimeUnit\": \"ms\"\n}\n";
}

/// Compact switch-audit dump: one line per protocol change, in time
/// order — the replayable decision record the audit tests diff.
/// Footer lines are `#`-prefixed comments (percentile summaries per
/// class, and a drop summary whenever any ring lost events) so line
/// diffs against policy ground truth can filter on the `t=` prefix.
inline void write_switch_audit(std::ostream& os, const Capture& cap)
{
    for (const CapturedEvent& ce : cap.events) {
        const Event& e = ce.e;
        if (e.type != EventType::kSwitch)
            continue;
        os << "t=" << e.ts << " obj=" << e.object << " "
           << class_name(e.cls) << " " << static_cast<unsigned>(e.from)
           << "->" << static_cast<unsigned>(e.to)
           << " sig=" << (e.a0 >> 8)
           << " drift=" << (static_cast<int>(e.a0 & 0xff) - 1)
           << " est=" << (e.a1 >> 32) << "/" << (e.a1 & 0xffffffffu)
           << " dur=" << e.a2 << "\n";
    }
    for (std::size_t c = 1; c < kClassCount; ++c) {
        const auto cls = static_cast<ObjectClass>(c);
        const auto& r = cap.metrics.row(cls);
        if (r.latency.stats().count() > 0)
            os << "# " << class_name(cls)
               << " latency p50=" << r.latency.percentile(0.50)
               << " p90=" << r.latency.percentile(0.90)
               << " p99=" << r.latency.percentile(0.99) << " (cycles, "
               << r.latency.stats().count() << " delivered samples)\n";
        if (r.counters[9] > 0)
            os << "# " << class_name(cls) << " regret samples="
               << r.counters[9] << " cycles=" << r.regret_cycles
               << " realized=" << r.regret_realized
               << " best=" << r.regret_best << "\n";
    }
    if (cap.total_dropped > 0) {
        os << "# dropped " << cap.total_dropped << " events:";
        for (std::size_t c = 1; c < kClassCount; ++c) {
            const auto cls = static_cast<ObjectClass>(c);
            if (cap.metrics.row(cls).dropped > 0)
                os << " " << class_name(cls) << "="
                   << cap.metrics.row(cls).dropped;
        }
        os << " (timeline is incomplete)\n";
    }
}

/**
 * Drains everything and writes the Chrome JSON to @p json_path (and,
 * when non-empty, the switch audit to @p audit_path). With tracing
 * compiled out this still writes a valid empty trace, so `--trace` on
 * an untraced build produces a parseable artifact rather than nothing.
 * Returns false on I/O failure.
 */
inline bool drain_to_json(const std::string& json_path,
                          const std::string& audit_path = "")
{
    Capture cap = capture();
    std::ofstream out(json_path);
    if (!out)
        return false;
    write_chrome_json(out, cap);
    if (!out)
        return false;
    if (!audit_path.empty()) {
        std::ofstream audit(audit_path);
        if (!audit)
            return false;
        write_switch_audit(audit, cap);
        if (!audit)
            return false;
    }
    return true;
}

}  // namespace reactive::trace
