/**
 * @file
 * Instrumentation helpers shared by the reactive primitives.
 *
 * Everything here runs only inside `if (trace::enabled())` blocks at
 * consensus points (the emitting process holds the object), so reading
 * policy accessors like `probing()` / `estimator()` is exactly as safe
 * as the policy mutation happening on the same line of the caller.
 * When tracing is compiled out, ProbeWatch is an empty shell and the
 * packers are never called.
 */
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace reactive::trace {

/// kSwitch/kAcqSample signal payload: (protocol << 8) | (drift + 1).
inline std::uint64_t pack_signal(std::uint32_t protocol, int drift)
{
    return (static_cast<std::uint64_t>(protocol) << 8) |
           static_cast<std::uint64_t>(drift + 1);
}

namespace detail {
inline std::uint64_t clamp32(double v)
{
    if (v <= 0)
        return 0;
    if (v >= 4294967295.0)
        return 0xffffffffu;
    return static_cast<std::uint64_t>(v);
}
}  // namespace detail

/**
 * Estimator snapshot for switch events: two packed 32-bit latencies.
 * Calibrated binary policies expose a CostEstimator (tts/queue EWMAs);
 * ladder policies expose per-rung latencies — snapshot the rungs being
 * left and entered. Policies without estimators snapshot as 0.
 */
template <typename Select>
std::uint64_t estimator_pair(const Select& s, std::uint32_t from,
                             std::uint32_t to)
{
    if constexpr (requires(const Select& q) {
                      q.estimator().tts_latency();
                      q.estimator().queue_latency();
                  }) {
        (void)from;
        (void)to;
        return (detail::clamp32(s.estimator().tts_latency()) << 32) |
               detail::clamp32(s.estimator().queue_latency());
    } else if constexpr (requires(const Select& q) {
                             q.latency(std::uint32_t{0});
                         }) {
        return (detail::clamp32(s.latency(from)) << 32) |
               detail::clamp32(s.latency(to));
    } else {
        (void)s;
        (void)from;
        (void)to;
        return 0;
    }
}

/**
 * Detects probe begin/end transitions across one `next_protocol` call
 * by snapshotting the policy's probe state before and comparing after.
 * Works for any policy exposing `probing()` + `probes_started()`
 * (CalibratedCompetitive3Policy, CalibratedLadderPolicy); probe
 * outcome additionally uses `adoptions()` when present. For every
 * other policy the watch is a no-op.
 */
template <typename Select>
class ProbeWatch {
  public:
    static constexpr bool kWatchable =
        kCompiled && requires(const Select& s) {
            s.probing();
            s.probes_started();
        };

    ProbeWatch(const Select& s, bool armed)
    {
        if constexpr (kWatchable) {
            if (armed) [[unlikely]] {
                armed_ = true;
                probing_ = s.probing();
                if constexpr (requires { s.adoptions(); })
                    adoptions_ = s.adoptions();
            }
        } else {
            (void)s;
            (void)armed;
        }
    }

    /// Call after next_protocol() (still in consensus): emits
    /// kProbeBegin / kProbeEnd if the policy crossed a probe edge.
    void emit_edges(const Select& s, ObjectClass cls, std::uint32_t object,
                    std::uint8_t cur, std::uint8_t next,
                    std::uint64_t ts) const
    {
        if constexpr (kWatchable) {
            if (!armed_)
                return;
            const bool now_probing = s.probing();
            if (now_probing == probing_)
                return;
            if (now_probing) {
                emit(EventType::kProbeBegin, cls, object, cur, next, ts, 0,
                     s.probes_started());
                return;
            }
            std::uint64_t outcome = 2;  // unknown
            if constexpr (requires { s.adoptions(); })
                outcome = s.adoptions() > adoptions_ ? 1 : 0;
            emit(EventType::kProbeEnd, cls, object, cur, next, ts, outcome,
                 s.probes_started());
        } else {
            (void)s;
            (void)cls;
            (void)object;
            (void)cur;
            (void)next;
            (void)ts;
        }
    }

  private:
    [[maybe_unused]] bool armed_ = false;
    [[maybe_unused]] bool probing_ = false;
    [[maybe_unused]] std::uint64_t adoptions_ = 0;
};

}  // namespace reactive::trace
