/**
 * @file
 * Task systems and competitive on-line algorithms (thesis Section 2.1).
 *
 * A task system (Borodin, Linial & Saks [9]) has n states, m tasks, an
 * n x n state-transition cost matrix D and an n x m task cost matrix C.
 * An on-line algorithm chooses, for each request in a sequence, which
 * state services it (lookahead-one: it may move first). Protocol
 * selection and waiting-mechanism selection both map onto 2-state task
 * systems (Figures 3.13 and 4.2), which is how the thesis derives its
 * 3-competitive switching policy and frames the waiting analysis.
 *
 * Provided here:
 *  - `TaskSystem` with cost evaluation of explicit schedules,
 *  - `offline_optimal` (dynamic programming over states),
 *  - `NearlyOblivious2`, the Borodin-Linial-Saks style algorithm for
 *    two-state systems: move when the accumulated task cost since
 *    entering the current state exceeds the round-trip transition cost;
 *    (2n-1) = 3-competitive for n = 2,
 *  - helpers to build the protocol-selection task system of Fig 3.13.
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

namespace reactive::theory {

/// A task system (n states, m tasks, transition costs D, task costs C).
class TaskSystem {
  public:
    TaskSystem(std::vector<std::vector<double>> transition,
               std::vector<std::vector<double>> task_cost)
        : d_(std::move(transition)), c_(std::move(task_cost))
    {
        assert(!d_.empty() && d_.size() == c_.size());
        for (std::size_t i = 0; i < d_.size(); ++i)
            assert(d_[i].size() == d_.size());
    }

    std::size_t states() const { return d_.size(); }
    std::size_t tasks() const { return c_.empty() ? 0 : c_[0].size(); }
    double transition_cost(std::size_t from, std::size_t to) const
    {
        return d_[from][to];
    }
    double task_cost(std::size_t state, std::size_t task) const
    {
        return c_[state][task];
    }

    /// Total cost of servicing @p requests with an explicit schedule of
    /// states (one per request), starting from @p initial_state.
    double schedule_cost(const std::vector<std::size_t>& requests,
                         const std::vector<std::size_t>& schedule,
                         std::size_t initial_state = 0) const
    {
        assert(requests.size() == schedule.size());
        double cost = 0;
        std::size_t cur = initial_state;
        for (std::size_t i = 0; i < requests.size(); ++i) {
            cost += d_[cur][schedule[i]];
            cur = schedule[i];
            cost += c_[cur][requests[i]];
        }
        return cost;
    }

  private:
    std::vector<std::vector<double>> d_;
    std::vector<std::vector<double>> c_;
};

/// Cost of the optimal off-line (clairvoyant) schedule, by DP.
inline double offline_optimal(const TaskSystem& ts,
                              const std::vector<std::size_t>& requests,
                              std::size_t initial_state = 0)
{
    const std::size_t n = ts.states();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> cost(n, kInf);
    cost[initial_state] = 0;
    std::vector<double> next(n);
    for (std::size_t task : requests) {
        for (std::size_t j = 0; j < n; ++j) {
            double best = kInf;
            for (std::size_t i = 0; i < n; ++i) {
                const double c = cost[i] + ts.transition_cost(i, j);
                if (c < best)
                    best = c;
            }
            next[j] = best + ts.task_cost(j, task);
        }
        cost = next;
    }
    double best = kInf;
    for (double c : cost)
        best = std::min(best, c);
    return best;
}

/**
 * The nearly-oblivious on-line algorithm for a two-state task system
 * (Section 3.4.1): accumulate task costs since entering the current
 * state; move to the other state when the accumulation exceeds the
 * round-trip transition cost. 3-competitive.
 */
class NearlyOblivious2 {
  public:
    explicit NearlyOblivious2(const TaskSystem& ts, std::size_t initial_state = 0)
        : ts_(ts), state_(initial_state)
    {
        assert(ts.states() == 2);
    }

    /// Services one request; returns the cost incurred (transition +
    /// task cost in the chosen state).
    double service(std::size_t task)
    {
        const std::size_t other = 1 - state_;
        const double round_trip = ts_.transition_cost(state_, other) +
                                  ts_.transition_cost(other, state_);
        double cost = 0;
        if (accumulated_ >= round_trip) {
            cost += ts_.transition_cost(state_, other);
            state_ = other;
            accumulated_ = 0;
        }
        const double task_cost = ts_.task_cost(state_, task);
        accumulated_ += task_cost;
        return cost + task_cost;
    }

    double run(const std::vector<std::size_t>& requests)
    {
        double total = 0;
        for (std::size_t t : requests)
            total += service(t);
        return total;
    }

    std::size_t state() const { return state_; }

  private:
    const TaskSystem& ts_;
    std::size_t state_;
    double accumulated_ = 0;
};

/**
 * Builds the protocol-selection task system of Figure 3.13: state A
 * (e.g. TTS) is free for low-contention requests and pays a residual
 * for high-contention ones; state B (e.g. MCS) vice versa.
 * Task 0 = low contention, task 1 = high contention.
 */
inline TaskSystem make_protocol_task_system(double d_ab, double d_ba,
                                            double residual_a_high,
                                            double residual_b_low)
{
    return TaskSystem({{0, d_ab}, {d_ba, 0}},
                      {{0, residual_a_high}, {residual_b_low, 0}});
}

}  // namespace reactive::theory
