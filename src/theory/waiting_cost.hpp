/**
 * @file
 * Expected-cost analysis of two-phase waiting algorithms under
 * restricted adversaries (thesis Sections 4.4-4.5).
 *
 * Model (Section 4.2): a polling mechanism costs t/beta for a wait of t
 * cycles (beta = 1 for spinning, ~N for switch-spinning on an N-context
 * multithreaded processor); a signaling mechanism costs a fixed B. A
 * two-phase algorithm polls until the polling cost reaches
 * Lpoll = alpha * B, then signals, for a total of (1+alpha)B when the
 * wait outlasts the polling phase.
 *
 * Expected costs (Equations 4.1 and 4.2), for waiting-time pdf f:
 *
 *   E[C_2phase/alpha] = Int_0^{a b B} (t/b) f(t) dt
 *                     + (1+alpha) B Int_{a b B}^inf f(t) dt
 *   E[C_opt]          = Int_0^{b B} (t/b) f(t) dt + B Int_{b B}^inf f(t) dt
 *
 * (a = alpha, b = beta). A *restricted adversary* (Section 4.4.1) fixes
 * the distribution family and controls only its parameter, so the
 * competitive factor of a static alpha is
 * sup_param E[C_2phase]/E[C_opt]. The thesis' results reproduced here:
 *
 *  - exponential waits: alpha* = ln(e-1) ~= 0.5413 gives a factor of
 *    e/(e-1) ~= 1.58, matching the Karlin et al. lower bound for
 *    on-line algorithms;
 *  - uniform waits: alpha* ~= 0.62 gives a factor of ~1.62;
 *  - alpha = 1 (Lpoll = B) is 2-competitive against a strong adversary.
 *
 * Closed forms are used where they exist; `worst_case_factor` and
 * `optimal_alpha` are numeric (grid + golden-section refinement), and
 * the test suite cross-checks the closed forms against adaptive Simpson
 * integration and Monte Carlo replay.
 */
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "platform/prng.hpp"

namespace reactive::theory {

/// Cost parameters of the waiting mechanisms.
struct WaitCosts {
    double block_cost = 500.0;  ///< B, cycles (Alewife: ~500, Table 4.1)
    double poll_efficiency = 1.0;  ///< beta (1 = spinning, ~N = switch-spin)
};

/// Exponentially distributed waiting times (producer-consumer under
/// Poisson arrivals; Section 4.4.3). Parameter: mean = 1/lambda.
struct ExponentialWait {
    double mean = 1.0;

    double pdf(double t) const
    {
        return t < 0 ? 0.0 : std::exp(-t / mean) / mean;
    }
    double cdf(double t) const
    {
        return t < 0 ? 0.0 : 1.0 - std::exp(-t / mean);
    }
    double sample(XorShift64Star& rng) const
    {
        return -mean * std::log(1.0 - rng.uniform01());
    }
};

/// Uniformly distributed waiting times on [0, upper] (barrier waits;
/// Section 4.4.3). Parameter: upper bound.
struct UniformWait {
    double upper = 1.0;

    double pdf(double t) const
    {
        return (t < 0 || t > upper) ? 0.0 : 1.0 / upper;
    }
    double cdf(double t) const
    {
        return std::clamp(t / upper, 0.0, 1.0);
    }
    double sample(XorShift64Star& rng) const
    {
        return upper * rng.uniform01();
    }
};

/// E[C_2phase/alpha] for exponential waits (closed form).
inline double expected_two_phase_cost(const ExponentialWait& w, double alpha,
                                      const WaitCosts& c)
{
    // With x = lambda*beta*B = beta*B/mean:
    //   E = B * [ 1/x + (1 - 1/x) * exp(-alpha x) ]
    const double b = c.poll_efficiency;
    const double big_b = c.block_cost;
    const double x = b * big_b / w.mean;
    return big_b * (1.0 / x + (1.0 - 1.0 / x) * std::exp(-alpha * x));
}

/// E[C_opt] for exponential waits (closed form).
inline double expected_optimal_cost(const ExponentialWait& w, const WaitCosts& c)
{
    const double b = c.poll_efficiency;
    const double big_b = c.block_cost;
    const double x = b * big_b / w.mean;
    return big_b * (1.0 - std::exp(-x)) / x;
}

/// E[C_2phase/alpha] for uniform waits (closed form, piecewise).
inline double expected_two_phase_cost(const UniformWait& w, double alpha,
                                      const WaitCosts& c)
{
    const double b = c.poll_efficiency;
    const double big_b = c.block_cost;
    const double t_poll = alpha * b * big_b;  // wait length ending phase 1
    if (w.upper <= t_poll)
        return w.upper / (2.0 * b);  // always resolved while polling
    // T^2/(2 b upper) + (1+alpha) B (1 - T/upper)
    return t_poll * t_poll / (2.0 * b * w.upper) +
           (1.0 + alpha) * big_b * (1.0 - t_poll / w.upper);
}

/// E[C_opt] for uniform waits (closed form, piecewise).
inline double expected_optimal_cost(const UniformWait& w, const WaitCosts& c)
{
    const double b = c.poll_efficiency;
    const double big_b = c.block_cost;
    const double u = b * big_b;  // poll/signal breakeven wait length
    if (w.upper <= u)
        return w.upper / (2.0 * b);
    return u * u / (2.0 * b * w.upper) + big_b * (1.0 - u / w.upper);
}

/// Expected competitive factor at one adversary parameter.
template <typename Dist>
double expected_factor(const Dist& w, double alpha, const WaitCosts& c)
{
    return expected_two_phase_cost(w, alpha, c) / expected_optimal_cost(w, c);
}

/**
 * Competitive factor against the restricted adversary: the supremum of
 * the expected factor over the distribution parameter (numeric sweep on
 * a log grid of mean-wait/B ratios, refined locally).
 *
 * @tparam Dist ExponentialWait or UniformWait.
 */
template <typename Dist>
double worst_case_factor(double alpha, const WaitCosts& c)
{
    auto factor_at = [&](double scale) {
        Dist w;
        if constexpr (std::is_same_v<Dist, ExponentialWait>)
            w.mean = scale * c.poll_efficiency * c.block_cost;
        else
            w.upper = scale * c.poll_efficiency * c.block_cost;
        return expected_factor(w, alpha, c);
    };
    // Coarse log-grid sweep over the adversary's parameter.
    double best = 0, best_scale = 1;
    for (double ls = -4.0; ls <= 4.0; ls += 0.01) {
        const double s = std::pow(10.0, ls);
        const double f = factor_at(s);
        if (f > best) {
            best = f;
            best_scale = s;
        }
    }
    // Local refinement (golden section on the log axis).
    double lo = best_scale / 1.05, hi = best_scale * 1.05;
    for (int i = 0; i < 60; ++i) {
        const double m1 = lo + (hi - lo) * 0.382;
        const double m2 = lo + (hi - lo) * 0.618;
        if (factor_at(m1) < factor_at(m2))
            lo = m1;
        else
            hi = m2;
    }
    return std::max(best, factor_at(0.5 * (lo + hi)));
}

/**
 * The optimal static Lpoll fraction alpha* = argmin_alpha of the
 * worst-case factor (Section 4.5). Exponential -> ln(e-1) ~ 0.5413;
 * uniform -> ~0.6180.
 */
template <typename Dist>
double optimal_alpha(const WaitCosts& c)
{
    double lo = 0.05, hi = 1.5;
    for (int i = 0; i < 80; ++i) {
        const double m1 = lo + (hi - lo) * 0.382;
        const double m2 = lo + (hi - lo) * 0.618;
        if (worst_case_factor<Dist>(m1, c) < worst_case_factor<Dist>(m2, c))
            hi = m2;
        else
            lo = m1;
    }
    return 0.5 * (lo + hi);
}

/// The thesis' analytic optimum for exponential waits: ln(e - 1).
inline double exponential_optimal_alpha()
{
    return std::log(std::exp(1.0) - 1.0);
}

/// Adaptive Simpson integration (used by tests to validate the closed
/// forms against Equation 4.1 evaluated numerically).
inline double integrate(const std::function<double(double)>& f, double a,
                        double b, double eps = 1e-9, int depth = 30)
{
    std::function<double(double, double, double, double, double, int)> rec =
        [&](double lo, double hi, double flo, double fhi, double fmid,
            int d) -> double {
        const double mid = 0.5 * (lo + hi);
        const double lm = 0.5 * (lo + mid), rm = 0.5 * (mid + hi);
        const double flm = f(lm), frm = f(rm);
        const double s1 = (hi - lo) / 6.0 * (flo + 4 * fmid + fhi);
        const double s2 = (hi - lo) / 12.0 *
                          (flo + 4 * flm + 2 * fmid + 4 * frm + fhi);
        if (d <= 0 || std::fabs(s2 - s1) < 15 * eps)
            return s2 + (s2 - s1) / 15.0;
        return rec(lo, mid, flo, fmid, flm, d - 1) +
               rec(mid, hi, fmid, fhi, frm, d - 1);
    };
    const double mid = 0.5 * (a + b);
    return rec(a, b, f(a), f(b), f(mid), depth);
}

/**
 * Monte Carlo replay of waiting algorithms over sampled waits: the
 * empirical counterpart of the closed forms, also used by the Table
 * 4.6-style experiments. Returns mean cost per wait.
 */
template <typename Dist>
double replay_two_phase(const Dist& w, double alpha, const WaitCosts& c,
                        std::size_t samples, std::uint64_t seed = 1)
{
    XorShift64Star rng(seed);
    const double t_poll = alpha * c.poll_efficiency * c.block_cost;
    double total = 0;
    for (std::size_t i = 0; i < samples; ++i) {
        const double t = w.sample(rng);
        if (t <= t_poll)
            total += t / c.poll_efficiency;
        else
            total += (1.0 + alpha) * c.block_cost;
    }
    return total / static_cast<double>(samples);
}

}  // namespace reactive::theory
