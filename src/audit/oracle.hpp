/**
 * @file
 * Offline oracle replay: the clairvoyant baseline for regret.
 *
 * The online meter (src/audit/audit.hpp) scores decisions against the
 * policy's *own* estimates — a lagging baseline. This harness produces
 * the true one: a recorded episode stream is re-run on the
 * deterministic simulator under every static protocol and under the
 * clairvoyant per-episode best, and the reactive run's cost divided by
 * the clairvoyant cost is the *empirical competitive ratio* — the
 * paper's headline claim (3-competitive against the best static
 * protocol, Section 3.4) as a measured observable
 * (bench/fig_regret.cpp).
 *
 * Determinism contract: every episode e draws its randomness from
 * sim::derive_seed(seed, e), so re-running episode e under a different
 * protocol — or on a fresh machine — replays exactly the episode-e
 * arrival pattern of the original stream. Same stream + same seed →
 * bit-identical costs (tests/test_audit.cpp asserts this).
 *
 * The oracle is deliberately *generous*: each clairvoyant episode runs
 * on a fresh machine with a fresh lock (zero switch cost, no carried
 * contention, per-episode protocol choice with perfect foresight), so
 * the clairvoyant total is a lower bound no online algorithm can
 * reach. The documented slack bound in fig_regret.cpp accounts for
 * this; DESIGN.md discusses what the gap does and does not mean.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "platform/prng.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"

namespace reactive::audit {

/// One recorded episode: a lock-cycle regime every processor runs
/// before the episode barrier (the run_lock_cycle vocabulary —
/// src/apps/workloads.hpp is the single source of truth for the
/// kernel shape).
struct EpisodeSpec {
    std::uint32_t iters = 0;  ///< lock/unlock cycles per processor
    std::uint32_t cs = 0;     ///< critical-section cycles
    std::uint32_t think = 0;  ///< think-time bound (0 = none)
};

using EpisodeStream = std::vector<EpisodeSpec>;

// ---- stream generators (the fig_regret regimes) -----------------------

/// Hot regime: every episode contends hard (no think time) — queue
/// territory throughout; a reactive lock should switch once and stay.
inline EpisodeStream hot_stream(std::size_t episodes,
                                std::uint32_t iters = 40)
{
    return EpisodeStream(episodes, EpisodeSpec{iters, 150, 0});
}

/// Phase-shifting regime: alternating hot and sparse episodes — the
/// time-varying contention experiment (Section 3.7.2) as a stream.
/// Neither static protocol is right for both halves.
inline EpisodeStream phase_shift_stream(std::size_t episodes,
                                        std::uint32_t iters = 40)
{
    EpisodeStream s;
    s.reserve(episodes);
    for (std::size_t e = 0; e < episodes; ++e) {
        if (e % 2 == 0)
            s.push_back(EpisodeSpec{iters, 150, 0});  // hot
        else
            s.push_back(EpisodeSpec{iters, 50, 4000});  // sparse
    }
    return s;
}

/// Bursty regime: mostly sparse with seeded random hot bursts — the
/// adversarial case for a slow-reacting policy (regret accumulates
/// during every mis-protocol burst).
inline EpisodeStream bursty_stream(std::size_t episodes, std::uint64_t seed,
                                   std::uint32_t iters = 40)
{
    EpisodeStream s;
    s.reserve(episodes);
    XorShift64Star rng(sim::derive_seed(seed, 0x6275727374ull));
    std::size_t burst_left = 0;
    for (std::size_t e = 0; e < episodes; ++e) {
        if (burst_left == 0 && rng() % 4 == 0)
            burst_left = 1 + rng() % 3;
        if (burst_left > 0) {
            --burst_left;
            s.push_back(EpisodeSpec{iters, 150, 0});  // burst: hot
        } else {
            s.push_back(EpisodeSpec{iters, 50, 4000});  // sparse
        }
    }
    return s;
}

// ---- replay ------------------------------------------------------------

/**
 * Runs @p stream end-to-end on one machine with one lock: each
 * processor executes every episode's lock-cycle regime, then waits at
 * an arrival-counter episode barrier so regime changes hit all
 * processors at once (the run_rw_phases idiom). Episode e draws its
 * think-time randomness from a per-episode PRNG seeded
 * derive_seed(seed, e) so the clairvoyant re-run of any single episode
 * sees the same draws.
 *
 * @param episode_ends when non-null, receives processor 0's sim::now()
 *        at each episode boundary (host memory; written in-sim by one
 *        fiber only).
 * @param first_episode index of stream[0] in the original recording;
 *        the clairvoyant replay passes e when re-running episode e as
 *        a single-episode sub-stream, so the per-episode think-time
 *        draws are those of the original stream's episode e.
 * @return simulated elapsed cycles.
 */
template <typename L>
std::uint64_t run_stream(std::uint32_t procs, const EpisodeStream& stream,
                         std::uint64_t seed, std::shared_ptr<L> lock,
                         std::vector<std::uint64_t>* episode_ends = nullptr,
                         std::size_t first_episode = 0)
{
    sim::Machine m(procs, sim::CostModel::alewife(), seed);
    std::shared_ptr<L> l = std::move(lock);
    if (!l)
        l = std::make_shared<L>();
    auto arrived = std::make_shared<sim::Atomic<std::uint32_t>>(0);
    if (episode_ends != nullptr) {
        episode_ends->clear();
        episode_ends->reserve(stream.size());
    }
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=, &stream] {
            typename L::Node node;
            for (std::size_t e = 0; e < stream.size(); ++e) {
                const EpisodeSpec& ep = stream[e];
                // Episode-local randomness: replayable per episode.
                XorShift64Star rng(sim::derive_seed(
                    sim::derive_seed(seed, first_episode + e), p));
                for (std::uint32_t i = 0; i < ep.iters; ++i) {
                    l->lock(node);
                    sim::delay(ep.cs);
                    l->unlock(node);
                    if (ep.think > 0)
                        sim::delay(rng() % ep.think);
                }
                const auto target =
                    static_cast<std::uint32_t>((e + 1) * procs);
                arrived->fetch_add(1);
                while (static_cast<std::uint32_t>(arrived->load()) < target)
                    sim::delay(50 + sim::random_below(50));
                if (p == 0 && episode_ends != nullptr)
                    episode_ends->push_back(sim::now());
            }
        });
    }
    m.run();
    return m.elapsed();
}

/// Whole-stream cost under one static protocol (same harness as the
/// reactive run, so the costs are directly comparable).
template <typename L>
std::uint64_t static_stream_cost(std::uint32_t procs,
                                 const EpisodeStream& stream,
                                 std::uint64_t seed)
{
    return run_stream<L>(procs, stream, seed, std::make_shared<L>());
}

namespace detail {
/// One clairvoyant episode: a fresh machine, a fresh @p L, only
/// episode @p e of the stream. The single-episode sub-stream reuses
/// run_stream so the harness (episode barrier included) is identical;
/// the per-episode seed keeps the think-time draws those of the
/// original stream's episode e.
template <typename L>
std::uint64_t episode_cost(std::uint32_t procs, const EpisodeStream& stream,
                           std::size_t e, std::uint64_t seed)
{
    EpisodeStream one{stream[e]};
    // Same experiment seed, first_episode = e: the sub-stream's only
    // episode replays the original episode e's think-time draws. The
    // machine's own jitter streams restart fresh — documented oracle
    // generosity, not a determinism leak (same inputs, same cost).
    return run_stream<L>(procs, one, seed, std::make_shared<L>(), nullptr,
                         e);
}
}  // namespace detail

/**
 * The clairvoyant per-episode best: Σ_e min over the static protocol
 * pack of episode e's cost on a fresh machine. Zero switch cost, no
 * carried state — a true lower bound (see file comment on generosity).
 */
template <typename... Protocols>
std::uint64_t clairvoyant_cost(std::uint32_t procs,
                               const EpisodeStream& stream,
                               std::uint64_t seed)
{
    static_assert(sizeof...(Protocols) > 0,
                  "clairvoyant oracle needs at least one static protocol");
    std::uint64_t total = 0;
    for (std::size_t e = 0; e < stream.size(); ++e) {
        std::uint64_t best = ~std::uint64_t{0};
        ((best = std::min(best, detail::episode_cost<Protocols>(
                                    procs, stream, e, seed))),
         ...);
        total += best;
    }
    return total;
}

}  // namespace reactive::audit
