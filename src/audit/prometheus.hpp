/**
 * @file
 * Prometheus-style text exporter for the decision audit.
 *
 * Writes the process-wide audit snapshot (and, when given, the merged
 * trace MetricsRegistry) in the Prometheus text exposition format:
 * `# HELP` / `# TYPE` headers followed by `name{labels} value` lines.
 * Every fig binary exposes this behind `--metrics <file>`
 * (bench/bench_common.hpp), so a sweep can be scraped without loading
 * the Chrome trace. Values are platform cycles / plain counts; there
 * is no wall-clock timestamp — the sim clock is the only meaningful
 * time base and it is already in the trace.
 */
#pragma once

#include <cstdint>
#include <ostream>

#include "audit/audit.hpp"
#include "trace/metrics.hpp"

namespace reactive::audit {

/**
 * Writes @p snap (plus per-class trace counters and latency quantiles
 * from @p metrics when non-null) as Prometheus text. @p top_objects
 * bounds the per-object regret series (worst offenders first) so
 * object-heavy sweeps don't explode the scrape.
 */
inline void write_prometheus(std::ostream& os, const Snapshot& snap,
                             const trace::MetricsRegistry* metrics = nullptr,
                             std::size_t top_objects = 8)
{
    os << "# HELP reactive_regret_samples_total consensus points with a "
          "counterfactual account\n"
          "# TYPE reactive_regret_samples_total counter\n";
    for (std::size_t c = 1; c < trace::kClassCount; ++c) {
        const ClassRegret& r = snap.classes[c];
        if (r.samples == 0)
            continue;
        const char* cls = trace::class_name(
            static_cast<trace::ObjectClass>(c));
        os << "reactive_regret_samples_total{class=\"" << cls << "\"} "
           << r.samples << "\n";
    }
    os << "# HELP reactive_regret_cycles_total accumulated regret "
          "(realized minus best-alternative, clamped at 0), cycles\n"
          "# TYPE reactive_regret_cycles_total counter\n";
    for (std::size_t c = 1; c < trace::kClassCount; ++c) {
        const ClassRegret& r = snap.classes[c];
        if (r.samples == 0)
            continue;
        const char* cls = trace::class_name(
            static_cast<trace::ObjectClass>(c));
        os << "reactive_regret_cycles_total{class=\"" << cls << "\"} "
           << r.regret << "\n"
           << "reactive_regret_realized_cycles_total{class=\"" << cls
           << "\"} " << r.realized << "\n"
           << "reactive_regret_best_cycles_total{class=\"" << cls
           << "\"} " << r.best << "\n";
        if (r.overflow_objects > 0)
            os << "reactive_regret_overflow_objects{class=\"" << cls
               << "\"} " << r.overflow_objects << "\n";
    }

    if (!snap.objects.empty()) {
        os << "# HELP reactive_object_regret_cycles per-object regret, "
              "worst offenders\n"
              "# TYPE reactive_object_regret_cycles gauge\n";
        std::size_t emitted = 0;
        for (const ObjectRegret& o : snap.objects) {
            if (emitted >= top_objects)
                break;
            os << "reactive_object_regret_cycles{class=\""
               << trace::class_name(o.cls) << "\", object=\"" << o.object
               << "\"} " << o.regret << "\n";
            ++emitted;
        }
    }

    if (metrics == nullptr)
        return;
    os << "# HELP reactive_trace_events_total exact per-class decision "
          "counters (drop-immune)\n"
          "# TYPE reactive_trace_events_total counter\n";
    static constexpr const char* kMetricNames[trace::kMetricCount] = {
        "acquisitions",   "fast_path_wins", "switches",
        "probes_started", "probes_won",     "probes_lost",
        "episodes",       "handoffs",       "aborts",
        "regret_samples",
    };
    for (std::size_t c = 1; c < trace::kClassCount; ++c) {
        const auto cls = static_cast<trace::ObjectClass>(c);
        const auto& row = metrics->row(cls);
        std::uint64_t any = row.dropped;
        for (std::uint64_t v : row.counters)
            any += v;
        if (any == 0)
            continue;
        for (std::size_t m = 0; m < trace::kMetricCount; ++m)
            os << "reactive_trace_events_total{class=\""
               << trace::class_name(cls) << "\", metric=\""
               << kMetricNames[m] << "\"} " << row.counters[m] << "\n";
        os << "reactive_trace_dropped_total{class=\""
           << trace::class_name(cls) << "\"} " << row.dropped << "\n";
        if (row.latency.stats().count() > 0) {
            os << "# TYPE reactive_latency_cycles summary\n";
            for (double q : {0.50, 0.90, 0.99})
                os << "reactive_latency_cycles{class=\""
                   << trace::class_name(cls) << "\", quantile=\"" << q
                   << "\"} " << row.latency.percentile(q) << "\n";
            os << "reactive_latency_cycles_count{class=\""
               << trace::class_name(cls) << "\"} "
               << row.latency.stats().count() << "\n";
        }
    }
}

}  // namespace reactive::audit
