/**
 * @file
 * Decision audit: online counterfactual-regret accounting.
 *
 * The paper's headline claim is competitiveness — the reactive
 * algorithm stays within a constant factor of the best static protocol
 * choice. The trace layer (src/trace/) records *what* was decided; this
 * layer accounts *what the decisions cost* relative to the calibrated
 * policy's own best alternative: at every consensus point where a
 * policy holds per-protocol cost estimates, the realized episode or
 * acquisition cost minus the estimator's cheapest-alternative estimate
 * is accumulated per object as counterfactual regret.
 *
 * Safety argument (same as PR 4's free_monitoring and the PR 6
 * in-consensus emission discipline): regret is recorded only by the
 * process in consensus on the object (lock holder, barrier completer),
 * reuses cost samples and timestamps the caller already took, and
 * touches only host memory — never a simulated memory operation, never
 * a policy input. A sim run with audit off is byte-identical to one
 * that never compiled this header (proven in-binary by
 * tests/test_audit.cpp and the CI trace job's cmp step).
 *
 * Counterfactual validity (see DESIGN.md): regret compares the
 * *realized* cost under the protocol actually run against the
 * estimator's EWMA for the alternatives. Both are acquisition/episode
 * latencies in platform cycles measured at the same consensus points,
 * so the difference is sound per class; it is NOT sound to compare
 * regret across classes (lock acquisitions vs barrier episodes) or to
 * read it as the clairvoyant gap — the estimator's alternative is
 * itself a lagging estimate. The clairvoyant account lives in the
 * offline oracle replay (src/audit/oracle.hpp, bench/fig_regret.cpp).
 *
 * Concurrency: one fixed open-addressed table of per-object cells.
 * A cell is claimed once by CAS and thereafter has a single writer at
 * a time (the process in consensus; handoffs are ordered by the
 * primitive's own synchronization), so updates use the same relaxed
 * load+store idiom as the TraceRing counter shards. snapshot() may run
 * concurrently from any thread and is TSan-clean; like any monitoring
 * read it may observe a torn multi-counter view (sample counts and
 * cycle totals from adjacent instants), never torn words.
 */
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "trace/trace.hpp"

namespace reactive::audit {

/// Audit rides the trace layer's compile-time gate: no trace, no audit.
inline constexpr bool kCompiled = trace::kCompiled;

/// Per-object regret account (snapshot form).
struct ObjectRegret {
    std::uint32_t object = 0;  ///< trace object id (trace::new_object)
    trace::ObjectClass cls = trace::ObjectClass::kNone;
    std::uint64_t samples = 0;   ///< consensus points accounted
    std::uint64_t realized = 0;  ///< Σ realized cost, cycles
    std::uint64_t best = 0;      ///< Σ best-alternative estimate, cycles
    std::uint64_t regret = 0;    ///< Σ max(0, realized - best), cycles
};

/// Per-class rollup (exact, drop-immune — unlike the trace ring's
/// delivered-event view these counters never wrap).
struct ClassRegret {
    std::uint64_t samples = 0;
    std::uint64_t realized = 0;
    std::uint64_t best = 0;
    std::uint64_t regret = 0;
    std::uint64_t overflow_objects = 0;  ///< objects folded into the
                                         ///< class row (table full)
};

/// Process-wide audit snapshot: per-class totals plus the per-object
/// accounts sorted by regret (worst offender first).
struct Snapshot {
    std::array<ClassRegret, trace::kClassCount> classes{};
    std::vector<ObjectRegret> objects;  ///< regret-descending

    std::uint64_t total_samples() const
    {
        std::uint64_t n = 0;
        for (const auto& c : classes)
            n += c.samples;
        return n;
    }
    std::uint64_t total_regret() const
    {
        std::uint64_t n = 0;
        for (const auto& c : classes)
            n += c.regret;
        return n;
    }
    std::uint64_t total_realized() const
    {
        std::uint64_t n = 0;
        for (const auto& c : classes)
            n += c.realized;
        return n;
    }
};

namespace detail {

/// Fixed cell count; sweeps here run thousands of objects at most, and
/// overflow degrades to exact per-class accounting, never data loss.
inline constexpr std::size_t kTableSize = 1024;

struct ObjectCell {
    std::atomic<std::uint32_t> object{0};  ///< 0 = free; CAS-claimed
    std::atomic<std::uint8_t> cls{0};
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> realized{0};
    std::atomic<std::uint64_t> best{0};
    std::atomic<std::uint64_t> regret{0};
};

struct Table {
    std::array<ObjectCell, kTableSize> cells{};
    /// Objects that found the table full: accounted per class only.
    std::array<std::atomic<std::uint64_t>, trace::kClassCount>
        overflow_samples{};
    std::array<std::atomic<std::uint64_t>, trace::kClassCount>
        overflow_realized{};
    std::array<std::atomic<std::uint64_t>, trace::kClassCount>
        overflow_best{};
    std::array<std::atomic<std::uint64_t>, trace::kClassCount>
        overflow_regret{};
    std::array<std::atomic<std::uint64_t>, trace::kClassCount>
        overflow_objects{};

    static Table& instance()
    {
        static Table t;
        return t;
    }
};

/// Single-writer bump (writer is the process in consensus on the cell's
/// object; see file comment). Readers tolerate cross-counter tearing.
inline void bump(std::atomic<std::uint64_t>& c, std::uint64_t by)
{
    c.store(c.load(std::memory_order_relaxed) + by,
            std::memory_order_relaxed);
}

/// Finds (or claims) the cell for @p object. Returns nullptr when the
/// probe window is exhausted — caller falls back to overflow counters.
inline ObjectCell* find_cell(std::uint32_t object, trace::ObjectClass cls)
{
    Table& t = Table::instance();
    const std::size_t mask = kTableSize - 1;
    std::size_t idx = (object * 0x9e3779b9u) & mask;
    for (std::size_t probe = 0; probe < kTableSize; ++probe) {
        ObjectCell& cell = t.cells[idx];
        std::uint32_t cur = cell.object.load(std::memory_order_acquire);
        if (cur == object)
            return &cell;
        if (cur == 0) {
            if (cell.object.compare_exchange_strong(
                    cur, object, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                cell.cls.store(static_cast<std::uint8_t>(cls),
                               std::memory_order_relaxed);
                return &cell;
            }
            if (cur == object)
                return &cell;  // lost the race to ourselves (reentry)
        }
        idx = (idx + 1) & mask;
    }
    return nullptr;
}

}  // namespace detail

/**
 * Accounts one consensus point: @p realized cost against the policy's
 * @p best alternative estimate (both platform cycles). Returns the
 * clamped regret max(0, realized - best) so the caller can also emit
 * it as a kRegret trace event. Call only from consensus (and, by
 * convention, only inside `if (trace::enabled())` blocks, which keeps
 * the audit-off schedule untouched).
 */
inline std::uint64_t record(trace::ObjectClass cls, std::uint32_t object,
                            std::uint64_t realized, std::uint64_t best)
{
    const std::uint64_t regret = realized > best ? realized - best : 0;
    if constexpr (!kCompiled)
        return regret;
    detail::Table& t = detail::Table::instance();
    const auto c = static_cast<std::size_t>(cls) % trace::kClassCount;
    if (detail::ObjectCell* cell = detail::find_cell(object, cls)) {
        detail::bump(cell->samples, 1);
        detail::bump(cell->realized, realized);
        detail::bump(cell->best, best);
        detail::bump(cell->regret, regret);
    } else {
        // Table full: exact class totals still hold, object resolution
        // is lost. fetch_add — overflow has no single-writer guarantee.
        t.overflow_samples[c].fetch_add(1, std::memory_order_relaxed);
        t.overflow_realized[c].fetch_add(realized,
                                         std::memory_order_relaxed);
        t.overflow_best[c].fetch_add(best, std::memory_order_relaxed);
        t.overflow_regret[c].fetch_add(regret, std::memory_order_relaxed);
        t.overflow_objects[c].fetch_add(1, std::memory_order_relaxed);
    }
    return regret;
}

/// Zeroes every account. Quiesced-only (tests), like trace::reset().
inline void reset()
{
    if constexpr (!kCompiled)
        return;
    detail::Table& t = detail::Table::instance();
    for (auto& cell : t.cells) {
        cell.object.store(0, std::memory_order_relaxed);
        cell.cls.store(0, std::memory_order_relaxed);
        cell.samples.store(0, std::memory_order_relaxed);
        cell.realized.store(0, std::memory_order_relaxed);
        cell.best.store(0, std::memory_order_relaxed);
        cell.regret.store(0, std::memory_order_relaxed);
    }
    for (std::size_t c = 0; c < trace::kClassCount; ++c) {
        t.overflow_samples[c].store(0, std::memory_order_relaxed);
        t.overflow_realized[c].store(0, std::memory_order_relaxed);
        t.overflow_best[c].store(0, std::memory_order_relaxed);
        t.overflow_regret[c].store(0, std::memory_order_relaxed);
        t.overflow_objects[c].store(0, std::memory_order_relaxed);
    }
}

/// Reads the whole account. Safe concurrently with writers (relaxed
/// monitoring read — see file comment on tearing).
inline Snapshot snapshot()
{
    Snapshot s;
    if constexpr (!kCompiled)
        return s;
    detail::Table& t = detail::Table::instance();
    for (const auto& cell : t.cells) {
        const std::uint32_t obj =
            cell.object.load(std::memory_order_acquire);
        if (obj == 0)
            continue;
        ObjectRegret r;
        r.object = obj;
        r.cls = static_cast<trace::ObjectClass>(
            cell.cls.load(std::memory_order_relaxed) %
            trace::kClassCount);
        r.samples = cell.samples.load(std::memory_order_relaxed);
        r.realized = cell.realized.load(std::memory_order_relaxed);
        r.best = cell.best.load(std::memory_order_relaxed);
        r.regret = cell.regret.load(std::memory_order_relaxed);
        if (r.samples == 0)
            continue;  // claimed but not yet accounted
        auto& row = s.classes[static_cast<std::size_t>(r.cls)];
        row.samples += r.samples;
        row.realized += r.realized;
        row.best += r.best;
        row.regret += r.regret;
        s.objects.push_back(r);
    }
    for (std::size_t c = 0; c < trace::kClassCount; ++c) {
        s.classes[c].samples +=
            t.overflow_samples[c].load(std::memory_order_relaxed);
        s.classes[c].realized +=
            t.overflow_realized[c].load(std::memory_order_relaxed);
        s.classes[c].best +=
            t.overflow_best[c].load(std::memory_order_relaxed);
        s.classes[c].regret +=
            t.overflow_regret[c].load(std::memory_order_relaxed);
        s.classes[c].overflow_objects +=
            t.overflow_objects[c].load(std::memory_order_relaxed);
    }
    std::sort(s.objects.begin(), s.objects.end(),
              [](const ObjectRegret& a, const ObjectRegret& b) {
                  if (a.regret != b.regret)
                      return a.regret > b.regret;
                  return a.object < b.object;
              });
    return s;
}

namespace detail {
inline std::uint64_t to_cycles(double v)
{
    if (v <= 0)
        return 0;
    if (v >= 18446744073709549568.0)
        return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(v);
}
}  // namespace detail

/**
 * The policy's cheapest-alternative estimate at this consensus point,
 * in cycles — the counterfactual baseline for record(). Mirrors
 * trace::estimator_pair's dispatch: calibrated binary policies expose
 * a CostEstimator (tts/queue EWMAs), ladder policies expose per-rung
 * latencies with a measured() validity bit. Returns nullopt for
 * policies without estimates (static / uncalibrated) — no estimate, no
 * counterfactual, no regret sample.
 */
template <typename Select>
std::optional<std::uint64_t> best_alternative(const Select& s,
                                              std::uint32_t protocols)
{
    if constexpr (requires(const Select& q) {
                      q.estimator().tts_latency();
                      q.estimator().queue_latency();
                  }) {
        (void)protocols;
        const std::uint64_t a =
            detail::to_cycles(s.estimator().tts_latency());
        const std::uint64_t b =
            detail::to_cycles(s.estimator().queue_latency());
        return std::min(a, b);
    } else if constexpr (requires(const Select& q) {
                             q.latency(std::uint32_t{0});
                             q.measured(std::uint32_t{0});
                         }) {
        std::optional<std::uint64_t> min;
        for (std::uint32_t j = 0; j < protocols; ++j) {
            if (!s.measured(j))
                continue;
            const std::uint64_t v = detail::to_cycles(s.latency(j));
            if (!min || v < *min)
                min = v;
        }
        return min;
    } else {
        (void)s;
        (void)protocols;
        return std::nullopt;
    }
}

}  // namespace reactive::audit

namespace reactive {

/// Process-wide decision-audit introspection: per-class and per-object
/// counterfactual-regret accounts since start (or audit::reset()).
inline audit::Snapshot audit_snapshot()
{
    return audit::snapshot();
}

}  // namespace reactive
