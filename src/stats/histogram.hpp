/**
 * @file
 * Histograms for waiting-time profiles (thesis Figures 4.6-4.11).
 *
 * The thesis plots waiting-time distributions both on linear axes
 * (J-structures, futures, barriers) and semi-log axes (mutex waits in
 * FibHeap/Mutex, Figure 4.10), so both linear- and log-bucketed
 * histograms are provided, plus an ASCII renderer for the bench output.
 */
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace reactive::stats {

/// Fixed-width linear histogram over [0, bucket_width * buckets).
class LinearHistogram {
  public:
    LinearHistogram(double bucket_width, std::size_t buckets)
        : width_(bucket_width), counts_(buckets, 0)
    {
    }

    void add(double x)
    {
        stats_.add(x);
        if (x < 0)
            x = 0;
        auto idx = static_cast<std::size_t>(x / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;  // clamp into overflow bucket
        ++counts_[idx];
    }

    double bucket_low(std::size_t i) const { return width_ * static_cast<double>(i); }
    std::uint64_t count(std::size_t i) const { return counts_[i]; }
    std::size_t buckets() const { return counts_.size(); }
    const OnlineStats& stats() const { return stats_; }

    /// Fraction of samples at or below x (empirical CDF on bucket edges).
    double cdf_at(double x) const
    {
        if (stats_.count() == 0)
            return 0.0;
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            if (bucket_low(i) > x)
                break;
            acc += counts_[i];
        }
        return static_cast<double>(acc) / static_cast<double>(stats_.count());
    }

  private:
    double width_;
    std::vector<std::uint64_t> counts_;
    OnlineStats stats_;
};

/// Power-of-two bucketed histogram: bucket i holds [2^i, 2^(i+1)).
class Log2Histogram {
  public:
    explicit Log2Histogram(std::size_t buckets = 40) : counts_(buckets, 0) {}

    void add(double x)
    {
        stats_.add(x);
        std::size_t idx = 0;
        if (x >= 1.0) {
            idx = static_cast<std::size_t>(std::floor(std::log2(x))) + 1;
            idx = std::min(idx, counts_.size() - 1);
        }
        ++counts_[idx];
    }

    std::uint64_t count(std::size_t i) const { return counts_[i]; }
    std::size_t buckets() const { return counts_.size(); }
    const OnlineStats& stats() const { return stats_; }

    /// Lowest bucket boundary of bucket i (0, 1, 2, 4, 8, ...).
    double bucket_low(std::size_t i) const
    {
        return i == 0 ? 0.0 : std::exp2(static_cast<double>(i - 1));
    }

    /**
     * Percentile estimate (q in [0,1]) by linear interpolation inside
     * the bucket that contains the target rank. The log2 buckets bound
     * the error to the bucket width (a factor of two at worst), which
     * is the same resolution the thesis' semi-log plots read at — good
     * enough for p50/p90/p99 summaries without keeping raw samples.
     */
    double percentile(double q) const
    {
        const std::uint64_t n = stats_.count();
        if (n == 0)
            return 0.0;
        if (q < 0.0)
            q = 0.0;
        if (q > 1.0)
            q = 1.0;
        // 1-based target rank; q=1 maps to the last sample.
        const double target = q * static_cast<double>(n - 1) + 1.0;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            if (counts_[i] == 0)
                continue;
            const std::uint64_t before = seen;
            seen += counts_[i];
            if (static_cast<double>(seen) < target)
                continue;
            const double low = bucket_low(i);
            const double high = i == 0 ? 1.0 : low * 2.0;
            const double frac = (target - static_cast<double>(before)) /
                                static_cast<double>(counts_[i]);
            return low + frac * (high - low);
        }
        return bucket_low(counts_.size() - 1);
    }

  private:
    std::vector<std::uint64_t> counts_;
    OnlineStats stats_;
};

/**
 * Renders a histogram as ASCII bars, skipping leading/trailing empties.
 * @param label_of  maps bucket index to its left edge label.
 */
template <typename Histo, typename LabelFn>
void render_histogram(std::ostream& os, const Histo& h, LabelFn label_of,
                      int bar_width = 50)
{
    std::uint64_t peak = 0;
    std::size_t first = h.buckets(), last = 0;
    for (std::size_t i = 0; i < h.buckets(); ++i) {
        if (h.count(i) > 0) {
            peak = std::max(peak, h.count(i));
            first = std::min(first, i);
            last = i;
        }
    }
    if (peak == 0) {
        os << "  (no samples)\n";
        return;
    }
    for (std::size_t i = first; i <= last; ++i) {
        const auto bar = static_cast<int>(
            static_cast<double>(h.count(i)) / static_cast<double>(peak) *
            bar_width);
        std::string label = label_of(i);
        label.resize(12, ' ');
        os << "  " << label << ' ' << std::string(static_cast<std::size_t>(bar), '#')
           << ' ' << h.count(i) << '\n';
    }
}

}  // namespace reactive::stats
