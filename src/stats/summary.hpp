/**
 * @file
 * Streaming summary statistics (Welford) and sample-based summaries.
 *
 * Every experiment harness in bench/ reports through these so that the
 * tables the harnesses print are computed identically everywhere.
 */
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace reactive::stats {

/// Numerically stable streaming mean/variance/min/max accumulator.
class OnlineStats {
  public:
    void add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    void merge(const OnlineStats& other)
    {
        if (other.n_ == 0)
            return;
        if (n_ == 0) {
            *this = other;
            return;
        }
        const double delta = other.mean_ - mean_;
        const auto na = static_cast<double>(n_);
        const auto nb = static_cast<double>(other.n_);
        const double nt = na + nb;
        m2_ += other.m2_ + delta * delta * na * nb / nt;
        mean_ += delta * nb / nt;
        n_ += other.n_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(n_); }

    double variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container with quantile queries (sorts lazily on demand).
class Samples {
  public:
    void reserve(std::size_t n) { values_.reserve(n); }

    void add(double x)
    {
        values_.push_back(x);
        sorted_ = false;
        online_.add(x);
    }

    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    const std::vector<double>& values() const { return values_; }
    const OnlineStats& stats() const { return online_; }

    /// Quantile in [0,1] by linear interpolation between order statistics.
    double quantile(double q)
    {
        if (values_.empty())
            return 0.0;
        ensure_sorted();
        q = std::clamp(q, 0.0, 1.0);
        const double pos = q * static_cast<double>(values_.size() - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, values_.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        return values_[lo] * (1.0 - frac) + values_[hi] * frac;
    }

    double median() { return quantile(0.5); }

  private:
    void ensure_sorted()
    {
        if (!sorted_) {
            std::sort(values_.begin(), values_.end());
            sorted_ = true;
        }
    }

    std::vector<double> values_;
    OnlineStats online_;
    bool sorted_ = true;
};

}  // namespace reactive::stats
