/**
 * @file
 * Column-aligned table emitter for the bench binaries.
 *
 * Every figure/table harness prints through this so the output format is
 * uniform: a title line, a header row, aligned data rows, and an optional
 * trailing note. Cells are strings; numeric helpers format consistently.
 */
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace reactive::stats {

/// Formats a double with @p digits fractional digits.
inline std::string fmt(double v, int digits = 2)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
}

/// Formats an integer-valued count.
inline std::string fmt(std::uint64_t v)
{
    return std::to_string(v);
}

/// Simple text table with left-aligned first column, right-aligned rest.
class Table {
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    Table& header(std::vector<std::string> cols)
    {
        header_ = std::move(cols);
        return *this;
    }

    Table& row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
        return *this;
    }

    Table& note(std::string text)
    {
        notes_.push_back(std::move(text));
        return *this;
    }

    void print(std::ostream& os = std::cout) const
    {
        std::vector<std::size_t> widths;
        auto absorb = [&](const std::vector<std::string>& cells) {
            if (widths.size() < cells.size())
                widths.resize(cells.size(), 0);
            for (std::size_t i = 0; i < cells.size(); ++i)
                widths[i] = std::max(widths[i], cells[i].size());
        };
        absorb(header_);
        for (const auto& r : rows_)
            absorb(r);

        os << "\n== " << title_ << " ==\n";
        auto emit = [&](const std::vector<std::string>& cells) {
            for (std::size_t i = 0; i < cells.size(); ++i) {
                if (i == 0) {
                    os << "  " << cells[i]
                       << std::string(widths[0] - cells[i].size(), ' ');
                } else {
                    os << "  "
                       << std::string(widths[i] - cells[i].size(), ' ')
                       << cells[i];
                }
            }
            os << '\n';
        };
        if (!header_.empty()) {
            emit(header_);
            std::size_t total = 2;
            for (std::size_t w : widths)
                total += w + 2;
            os << "  " << std::string(total > 4 ? total - 4 : 0, '-') << '\n';
        }
        for (const auto& r : rows_)
            emit(r);
        for (const auto& n : notes_)
            os << "  note: " << n << '\n';
        os.flush();
    }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
};

}  // namespace reactive::stats
