/**
 * @file
 * std::shared_mutex-shaped facade over the reactive reader-writer lock,
 * so `std::shared_lock` / `std::unique_lock` / `std::lock_guard` work
 * against the reactive rwlock unchanged ("the interface to the
 * application program remains constant", thesis Section 1.1).
 *
 * The node-passing `ReactiveRwLock` interface remains the fast path;
 * this facade materializes the per-acquisition node in a thread-local
 * slot keyed by the mutex address (platform/thread_slots.hpp), which is
 * what lets `unlock_shared()` find the node `lock_shared()` used
 * without the caller carrying it. Semantics follow std::shared_mutex:
 * non-reentrant per object (a thread holds at most one lock — shared
 * or exclusive — on a given mutex), and the matching unlock must come
 * from the locking thread.
 *
 * try_lock()/try_lock_shared() are single optimistic attempts: the
 * simple protocol's word first, then — while the lock lives in the
 * queue protocol — the queue's empty-tail path, so tries keep
 * succeeding on a momentarily free lock in either mode (std::lock /
 * std::scoped_lock over several reactive mutexes rely on that for
 * progress). Failure under contention may be spurious, which the
 * standard's allowance covers.
 */
#pragma once

#include <cstdint>

#include "platform/thread_slots.hpp"
#include "rw/reactive_rw_lock.hpp"

namespace reactive {

/**
 * std::shared_mutex-shaped reactive reader-writer mutex.
 *
 * @tparam P          Platform model.
 * @tparam Policy     switching policy, as for ReactiveRwLock.
 * @tparam Waiting    waiting axis (SpinWaiting / ParkWaiting), as for
 *                    ReactiveRwLock.
 * @tparam WaitPolicy waiting-mode policy, as for ReactiveRwLock.
 */
template <Platform P, typename Policy = AlwaysSwitchPolicy,
          typename Waiting = SpinWaiting,
          typename WaitPolicy = CalibratedWaitPolicy>
class ReactiveSharedMutex {
  public:
    using RwLock = ReactiveRwLock<P, Policy, Waiting, WaitPolicy>;

    ReactiveSharedMutex() = default;
    explicit ReactiveSharedMutex(ReactiveRwLockParams params,
                                 Policy policy = Policy{})
        : rw_(params, std::move(policy))
    {
    }

    // ---- exclusive (writer) ------------------------------------------

    void lock() { rw_.lock_write(*Slots::claim(key())); }

    bool try_lock()
    {
        typename RwLock::Node* n = Slots::claim(key());
        if (rw_.try_lock_write(*n))
            return true;
        Slots::release(key());
        return false;
    }

    void unlock()
    {
        typename RwLock::Node* n = Slots::claim(key());
        rw_.unlock_write(*n);
        Slots::release(key());
    }

    // ---- shared (reader) ---------------------------------------------

    void lock_shared() { rw_.lock_read(*Slots::claim(key())); }

    bool try_lock_shared()
    {
        typename RwLock::Node* n = Slots::claim(key());
        if (rw_.try_lock_read(*n))
            return true;
        Slots::release(key());
        return false;
    }

    void unlock_shared()
    {
        typename RwLock::Node* n = Slots::claim(key());
        rw_.unlock_read(*n);
        Slots::release(key());
    }

    /// Underlying reactive rwlock (monitoring, tests).
    RwLock& rw_lock() { return rw_; }

  private:
    using Slots = ThreadNodeSlots<typename RwLock::Node>;

    /// Slots are released at every unlock, so the address is a valid
    /// key (see thread_slots.hpp on key choice).
    std::uint64_t key() const
    {
        return static_cast<std::uint64_t>(
            reinterpret_cast<std::uintptr_t>(this));
    }

    RwLock rw_;
};

}  // namespace reactive
